"""SOR — red-black successive over-relaxation, paper §3.3 / §5.3.

Iterative 5-point stencil relaxation on a 2-D grid with fixed boundary,
red-black ordering (two half-sweeps per iteration, each followed by a
barrier), block-row decomposition.

Variants
--------
* traditional (LRC_d): the whole grid is one packed shared allocation; every
  processor updates its row block in place.  Block-boundary pages are shared
  between neighbouring processors (false sharing), and *all* interior updates
  become page diffs that cross the network at barriers even though only the
  boundary rows are ever consumed remotely.
* ``vopp`` (VC): each processor's block lives in a **local buffer**; only the
  boundary rows are shared, through dedicated per-processor border views
  (§3.3: "we use separate views for those border elements which are
  frequently shared ... only the border elements of the views are passed
  between processors through the cluster network").

The parallel grid is bitwise-identical to the sequential reference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

import numpy as np

from repro.apps.common import AppConfig, charge, chunk_bounds

__all__ = ["SorConfig", "default_config", "sequential", "build", "extract", "outputs_match"]

CYC_STENCIL = 8.0  # cycles per element relaxed
CYC_COPY = 1.0


@dataclass
class SorConfig(AppConfig):
    """Paper: 4096x2048 grid, 50 iterations.  Scaled default 192x96 (rows per
    processor do not align to page boundaries, so neighbouring block owners
    genuinely share pages, like the original program) with the
    compute/communication ratio restored by ``work_factor``."""

    rows: int = 200
    cols: int = 64
    iterations: int = 16
    seed: int = 3
    work_factor: float = float((4096 * 2048) // (200 * 64))


def default_config() -> SorConfig:
    return SorConfig()


def paper_config() -> SorConfig:
    return SorConfig(rows=4096, cols=2048, iterations=50, work_factor=1.0)


def _grid(config: SorConfig) -> np.ndarray:
    rng = np.random.RandomState(config.seed)
    g = rng.uniform(0.0, 1.0, size=(config.rows, config.cols))
    return g


def _relax_color(g: np.ndarray, lo: int, hi: int, color: int, row_offset: int = 0) -> int:
    """Red-black half-sweep over interior rows ``[lo, hi)`` of ``g`` in place.

    ``g`` must include the rows lo-1 and hi (ghosts) so the stencil closes.
    ``row_offset`` maps local row indices to global ones so the colour parity
    is distribution-independent.  Returns the number of elements updated.
    Identical arithmetic in the sequential and all parallel versions.
    """
    rows, cols = g.shape
    count = 0
    for i in range(max(lo, 1), min(hi, rows - 1)):
        start = 1 + ((i + row_offset + color) % 2)
        sl = slice(start, cols - 1, 2)
        g[i, sl] = 0.25 * (
            g[i - 1, sl] + g[i + 1, sl] + g[i, sl.start - 1 : cols - 2 : 2]
            + g[i, sl.start + 1 : cols : 2]
        )
        count += len(range(start, cols - 1, 2))
    return count


def sequential(config: SorConfig) -> np.ndarray:
    g = _grid(config)
    for _ in range(config.iterations):
        for color in (0, 1):
            _relax_color(g, 1, config.rows - 1, color)
    return g


def outputs_match(got: np.ndarray, expected: np.ndarray) -> bool:
    return bool(np.array_equal(got, expected))


# -- traditional ---------------------------------------------------------------------


def _build_traditional(system, config: SorConfig):
    R, C, P = config.rows, config.cols, system.nprocs
    grid = system.alloc_array("grid", (R, C), dtype="float64")

    def body(rt) -> Generator:
        p = rt.rank
        lo, hi = chunk_bounds(R, P, p)
        if p == 0:
            yield from grid.write_all(rt, _grid(config))
        yield from rt.barrier()
        for _ in range(config.iterations):
            for color in (0, 1):
                # read my block plus ghost rows straight from shared memory
                glo = max(lo - 1, 0)
                ghi = min(hi + 1, R)
                start, count = glo * C, (ghi - glo) * C
                flat = yield from grid.read(rt, start, count)
                block = flat.reshape(ghi - glo, C).copy()
                updated = _relax_color(block, lo - glo, hi - glo, color, row_offset=glo)
                yield from charge(rt, config, updated, CYC_STENCIL)
                # write back only my own rows
                yield from grid.write(
                    rt, lo * C, block[lo - glo : hi - glo].ravel()
                )
                yield from rt.barrier()
        if p == 0:
            system.app_output = (yield from grid.read_all(rt)).copy()
        return None

    return body


# -- VOPP ----------------------------------------------------------------------------


def _build_vopp(system, config: SorConfig):
    R, C, P = config.rows, config.cols, system.nprocs
    blocks = []
    tops = []
    bots = []
    for q in range(P):
        qlo, qhi = chunk_bounds(R, P, q)
        rows = max(qhi - qlo, 1)
        blocks.append(
            system.alloc_array(f"block{q}", (rows, C), dtype="float64", page_aligned=True)
        )
        # border views are double-buffered by sweep parity: readers of sweep k
        # use buffer k%2 while writers fill buffer (k+1)%2, so a read-only
        # acquire never queues behind the next sweep's exclusive writer
        tops.append(
            [
                system.alloc_array(f"top{q}_{j}", C, dtype="float64", page_aligned=True)
                for j in range(2)
            ]
        )
        bots.append(
            [
                system.alloc_array(f"bot{q}_{j}", C, dtype="float64", page_aligned=True)
                for j in range(2)
            ]
        )
    BLOCK, TOP, BOT = 0, P, 3 * P  # view ids: TOP+2q+j, BOT+2q+j

    def body(rt) -> Generator:
        p = rt.rank
        lo, hi = chunk_bounds(R, P, p)
        nrows = hi - lo
        if p == 0:
            g = _grid(config)
            for q in range(P):
                qlo, qhi = chunk_bounds(R, P, q)
                yield from rt.acquire_view(BLOCK + q)
                yield from blocks[q].write_all(rt, g[qlo:qhi])
                yield from rt.release_view(BLOCK + q)
        yield from rt.barrier()
        # local buffer with ghost rows above and below (§3.1/§3.3)
        yield from rt.acquire_Rview(BLOCK + p)
        inner = (yield from blocks[p].read_all(rt)).copy()
        yield from rt.release_Rview(BLOCK + p)
        yield from charge(rt, config, inner.size, CYC_COPY)
        local = np.zeros((nrows + 2, C), dtype=np.float64)
        local[1:-1] = inner
        # publish initial borders into the sweep-0 buffer
        yield from rt.acquire_view(TOP + 2 * p)
        yield from tops[p][0].write(rt, 0, local[1])
        yield from rt.release_view(TOP + 2 * p)
        yield from rt.acquire_view(BOT + 2 * p)
        yield from bots[p][0].write(rt, 0, local[nrows])
        yield from rt.release_view(BOT + 2 * p)
        yield from rt.barrier()
        sweep = 0
        for _ in range(config.iterations):
            for color in (0, 1):
                buf = sweep % 2
                # pull the neighbours' border rows into the ghost rows
                if p > 0:
                    yield from rt.acquire_Rview(BOT + 2 * (p - 1) + buf)
                    local[0] = yield from bots[p - 1][buf].read(rt)
                    yield from rt.release_Rview(BOT + 2 * (p - 1) + buf)
                if p < P - 1:
                    yield from rt.acquire_Rview(TOP + 2 * (p + 1) + buf)
                    local[nrows + 1] = yield from tops[p + 1][buf].read(rt)
                    yield from rt.release_Rview(TOP + 2 * (p + 1) + buf)
                # relax my rows (global indices lo..hi map to local 1..nrows)
                glo = max(lo, 1) - lo + 1
                ghi = min(hi, R - 1) - lo + 1
                count = 0
                for li in range(glo, ghi):
                    i = li + lo - 1  # global row index for colour phase
                    start = 1 + ((i + color) % 2)
                    sl = slice(start, C - 1, 2)
                    local[li, sl] = 0.25 * (
                        local[li - 1, sl] + local[li + 1, sl]
                        + local[li, sl.start - 1 : C - 2 : 2]
                        + local[li, sl.start + 1 : C : 2]
                    )
                    count += len(range(start, C - 1, 2))
                yield from charge(rt, config, count, CYC_STENCIL)
                # publish my fresh borders into the next sweep's buffer
                nbuf = (sweep + 1) % 2
                yield from rt.acquire_view(TOP + 2 * p + nbuf)
                yield from tops[p][nbuf].write(rt, 0, local[1])
                yield from rt.release_view(TOP + 2 * p + nbuf)
                yield from rt.acquire_view(BOT + 2 * p + nbuf)
                yield from bots[p][nbuf].write(rt, 0, local[nrows])
                yield from rt.release_view(BOT + 2 * p + nbuf)
                yield from rt.barrier()
                sweep += 1
        yield from rt.acquire_view(BLOCK + p)
        yield from blocks[p].write_all(rt, local[1:-1])
        yield from rt.release_view(BLOCK + p)
        yield from charge(rt, config, inner.size, CYC_COPY)
        yield from rt.barrier()
        if p == 0:
            out = np.empty((R, C), dtype=np.float64)
            for q in range(P):
                qlo, qhi = chunk_bounds(R, P, q)
                yield from rt.acquire_Rview(BLOCK + q)
                data = yield from blocks[q].read_all(rt)
                yield from rt.release_Rview(BLOCK + q)
                out[qlo:qhi] = data[: qhi - qlo]
            system.app_output = out
        return None

    return body


def build(system, config: SorConfig, variant: str = "default"):
    from repro.core.program import TraditionalSystem

    if isinstance(system, TraditionalSystem):
        return _build_traditional(system, config)
    return _build_vopp(system, config)


def extract(system, config: SorConfig):
    return system.app_output
