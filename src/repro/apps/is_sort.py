"""IS — Integer Sort (bucket-sort ranking), paper §3.2 / §5.1.

Ranks a sequence of integer keys by bucket counting, repeated over ``reps``
rounds with a per-round key rotation; bucket counts accumulate across rounds
and the final ranks come from the exclusive prefix sum of the accumulated
histogram.

Variants
--------
* traditional (LRC_d): per-processor partial-histogram rows in packed shared
  memory (adjacent rows false-share pages), **barriers only** for exclusion —
  the paper's Table 1 shows ``Acquires = 0`` for LRC_d; two barriers per
  round.
* ``vopp`` (VC): keys copied to local buffers (§3.1), bucket array split into
  page-aligned sub-views updated under ``acquire_view`` in a staggered order;
  keeps the two per-round barriers of the original ("one uses the same number
  of barriers", §5.1).
* ``vopp_lb`` — the "fewer barriers" version: the in-loop barriers move
  outside the loop (§3.2), leaving just the closing synchronisation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

import numpy as np

from repro.apps.common import AppConfig, charge, chunk_bounds

__all__ = ["IsConfig", "default_config", "sequential", "build", "extract", "outputs_match"]

# calibrated per-op costs (cycles on the 350 MHz node)
CYC_HIST = 12.0  # per key histogrammed
CYC_ADD = 6.0  # per bucket added into the shared histogram
CYC_PREFIX = 6.0  # per bucket prefix-summed
CYC_RANK = 10.0  # per key ranked


@dataclass
class IsConfig(AppConfig):
    """Problem size.  Paper: keys=2^25, Bmax=2^15; scaled default keeps the
    paper's compute/communication balance via ``work_factor``."""

    n_keys: int = 1 << 15
    b_max: int = 1 << 10
    reps: int = 20
    bucket_views: int = 8
    seed: int = 42
    work_factor: float = float(1 << 10)  # paper keys / scaled keys


def default_config() -> IsConfig:
    return IsConfig()


def paper_config() -> IsConfig:
    """The full problem size (only for reference; slow to simulate)."""
    return IsConfig(n_keys=1 << 25, b_max=1 << 15, reps=20, work_factor=1.0)


def _base_keys(config: IsConfig) -> np.ndarray:
    rng = np.random.RandomState(config.seed)
    return rng.randint(0, config.b_max, size=config.n_keys).astype(np.int64)


def _keys_at_rep(base: np.ndarray, rep: int, config: IsConfig) -> np.ndarray:
    return (base + rep * 17) % config.b_max


def sequential(config: IsConfig) -> dict:
    """Reference result: accumulated histogram prefix + ranks."""
    base = _base_keys(config)
    acc = np.zeros(config.b_max, dtype=np.int64)
    for rep in range(config.reps):
        acc += np.bincount(_keys_at_rep(base, rep, config), minlength=config.b_max)
    prefix = np.concatenate(([0], np.cumsum(acc)[:-1]))
    ranks = prefix[base]
    return {"prefix": prefix, "ranks": ranks}


def outputs_match(got: dict, expected: dict) -> bool:
    return bool(
        np.array_equal(got["prefix"], expected["prefix"])
        and np.array_equal(got["ranks"], expected["ranks"])
    )


# -- traditional (lock/barrier on LRC_d) -----------------------------------------------


def _build_traditional(system, config: IsConfig):
    n, B, P = config.n_keys, config.b_max, system.nprocs
    keys = system.alloc_array("keys", n, dtype="int64")
    partial = system.alloc_array("partial", (P, B), dtype="int64")
    prefix = system.alloc_array("prefix", B, dtype="int64")
    ranks = system.alloc_array("ranks", n, dtype="int64")

    def body(rt) -> Generator:
        lo, hi = chunk_bounds(n, P, rt.rank)
        if rt.rank == 0:
            yield from keys.write(rt, 0, _base_keys(config))
        yield from rt.barrier()
        # traditional style: keys stay in shared memory, read directly
        my_keys = yield from keys.read(rt, lo, hi - lo)
        acc = np.zeros(B, dtype=np.int64)  # rank 0's private accumulator
        for rep in range(config.reps):
            hist = np.bincount(_keys_at_rep(my_keys, rep, config), minlength=B)
            yield from charge(rt, config, hi - lo, CYC_HIST)
            yield from partial.write_row(rt, rt.rank, hist)
            yield from rt.barrier()
            if rt.rank == 0:
                rows = yield from partial.read_all(rt)
                acc += rows.sum(axis=0)
                yield from charge(rt, config, P * B, CYC_ADD)
            yield from rt.barrier()
        if rt.rank == 0:
            pref = np.concatenate(([0], np.cumsum(acc)[:-1]))
            yield from charge(rt, config, B, CYC_PREFIX)
            yield from prefix.write(rt, 0, pref)
        yield from rt.barrier()
        pref = yield from prefix.read(rt)
        my_ranks = pref[my_keys]
        yield from charge(rt, config, hi - lo, CYC_RANK)
        yield from ranks.write(rt, lo, my_ranks)
        yield from rt.barrier()
        if rt.rank == 0:
            out_prefix = yield from prefix.read(rt)
            out_ranks = yield from ranks.read(rt)
            system.app_output = {"prefix": out_prefix, "ranks": out_ranks}
        return None

    return body


# -- VOPP (views on VC_d / VC_sd) --------------------------------------------------------


def _build_vopp(system, config: IsConfig, fewer_barriers: bool):
    n, B, P, V = config.n_keys, config.b_max, system.nprocs, config.bucket_views
    if B % V:
        raise ValueError(f"b_max ({B}) must divide evenly into {V} bucket views")
    seg = B // V
    key_chunks = []
    for p in range(P):
        lo, hi = chunk_bounds(n, P, p)
        key_chunks.append(
            system.alloc_array(f"keys{p}", max(hi - lo, 1), dtype="int64", page_aligned=True)
        )
    bucket_segs = [
        system.alloc_array(f"buckets{v}", seg, dtype="int64", page_aligned=True)
        for v in range(V)
    ]
    prefix = system.alloc_array("prefix", B, dtype="int64", page_aligned=True)
    rank_chunks = []
    for p in range(P):
        lo, hi = chunk_bounds(n, P, p)
        rank_chunks.append(
            system.alloc_array(f"ranks{p}", max(hi - lo, 1), dtype="int64", page_aligned=True)
        )
    # view ids
    KEYS, BUCKET, PREFIX, RANKS = 0, P, P + V, P + V + 1

    def body(rt) -> Generator:
        p = rt.rank
        lo, hi = chunk_bounds(n, P, p)
        if p == 0:
            base = _base_keys(config)
            for q in range(P):
                qlo, qhi = chunk_bounds(n, P, q)
                yield from rt.acquire_view(KEYS + q)
                yield from key_chunks[q].write(rt, 0, base[qlo:qhi])
                yield from rt.release_view(KEYS + q)
        yield from rt.barrier()
        # local buffer for the read-only keys (§3.1)
        yield from rt.acquire_Rview(KEYS + p)
        my_keys = yield from key_chunks[p].read(rt, 0, hi - lo)
        yield from rt.release_Rview(KEYS + p)
        for rep in range(config.reps):
            hist = np.bincount(_keys_at_rep(my_keys, rep, config), minlength=B)
            yield from charge(rt, config, hi - lo, CYC_HIST)
            for i in range(V):
                v = (p + i) % V  # staggered order reduces view contention
                yield from rt.acquire_view(BUCKET + v)
                cur = yield from bucket_segs[v].read(rt)
                yield from bucket_segs[v].write(rt, 0, cur + hist[v * seg : (v + 1) * seg])
                yield from rt.release_view(BUCKET + v)
                yield from charge(rt, config, seg, CYC_ADD)
            if not fewer_barriers:
                # mirror the original's two per-round barriers (§5.1 variant 1)
                yield from rt.barrier()
                yield from rt.barrier()
        yield from rt.barrier()
        if p == 0:
            acc = np.empty(B, dtype=np.int64)
            for v in range(V):
                yield from rt.acquire_Rview(BUCKET + v)
                acc[v * seg : (v + 1) * seg] = yield from bucket_segs[v].read(rt)
                yield from rt.release_Rview(BUCKET + v)
            pref = np.concatenate(([0], np.cumsum(acc)[:-1]))
            yield from charge(rt, config, B, CYC_PREFIX)
            yield from rt.acquire_view(PREFIX)
            yield from prefix.write(rt, 0, pref)
            yield from rt.release_view(PREFIX)
        yield from rt.barrier()
        yield from rt.acquire_Rview(PREFIX)
        pref = yield from prefix.read(rt)
        yield from rt.release_Rview(PREFIX)
        my_ranks = pref[my_keys]
        yield from charge(rt, config, hi - lo, CYC_RANK)
        yield from rt.acquire_view(RANKS + p)
        yield from rank_chunks[p].write(rt, 0, my_ranks)
        yield from rt.release_view(RANKS + p)
        yield from rt.barrier()
        if p == 0:
            yield from rt.acquire_Rview(PREFIX)
            out_prefix = yield from prefix.read(rt)
            yield from rt.release_Rview(PREFIX)
            out_ranks = np.empty(n, dtype=np.int64)
            for q in range(P):
                qlo, qhi = chunk_bounds(n, P, q)
                yield from rt.acquire_Rview(RANKS + q)
                out_ranks[qlo:qhi] = yield from rank_chunks[q].read(rt, 0, qhi - qlo)
                yield from rt.release_Rview(RANKS + q)
            system.app_output = {"prefix": out_prefix, "ranks": out_ranks}
        return None

    return body


def build(system, config: IsConfig, variant: str = "default"):
    """Variants: traditional systems ignore ``variant``; VOPP systems accept
    ``"default"`` (same barriers) or ``"lb"`` (fewer barriers, §3.2)."""
    from repro.core.program import TraditionalSystem

    if isinstance(system, TraditionalSystem):
        return _build_traditional(system, config)
    if variant == "lb":
        return _build_vopp(system, config, fewer_barriers=True)
    return _build_vopp(system, config, fewer_barriers=False)


def extract(system, config: IsConfig) -> dict:
    return system.app_output
