"""Gauss — parallel Gaussian elimination, paper §3.1 / §5.2.

Forward elimination (no pivoting; the matrix is made diagonally dominant) on
an ``n x n`` float64 matrix with cyclic row distribution.

Variants
--------
* traditional (LRC_d): the whole matrix lives packed in shared memory and is
  updated in place.  With several rows per page, the cyclic distribution
  makes every page multi-writer — the false-sharing effect the paper removes.
  One consistency barrier per elimination step.
* ``vopp`` (VC): each processor keeps its rows in a **local buffer** (§3.1,
  "local buffer for infrequently-shared data"); only the pivot row crosses
  the network each step, through a double-buffered pair of pivot views; the
  per-processor row blocks are views written once at the start and once at
  the end.

The parallel result is bitwise-identical to the sequential reference (the
per-row floating-point operations do not depend on the distribution).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

import numpy as np

from repro.apps.common import AppConfig, charge

__all__ = ["GaussConfig", "default_config", "sequential", "build", "extract", "outputs_match"]

CYC_ELIM = 4.0  # cycles per matrix element updated (multiply + subtract)
CYC_COPY = 1.0  # cycles per element copied between buffers


@dataclass
class GaussConfig(AppConfig):
    """Paper: 2048x2048, 1024 steps.  Scaled default: 96x96 with the paper's
    compute/communication ratio restored by ``work_factor``."""

    n: int = 96
    seed: int = 7
    work_factor: float = float((2048 // 96) ** 3)


def default_config() -> GaussConfig:
    return GaussConfig()


def paper_config() -> GaussConfig:
    return GaussConfig(n=2048, work_factor=1.0)


def _matrix(config: GaussConfig) -> np.ndarray:
    rng = np.random.RandomState(config.seed)
    a = rng.uniform(0.1, 1.0, size=(config.n, config.n))
    a[np.diag_indices(config.n)] += config.n  # diagonally dominant: stable
    return a


def _eliminate_row(row: np.ndarray, pivot: np.ndarray, k: int) -> None:
    """One row update of step ``k`` (in place, identical in all versions)."""
    factor = row[k] / pivot[k]
    row[k:] -= factor * pivot[k:]


def sequential(config: GaussConfig) -> np.ndarray:
    a = _matrix(config)
    n = config.n
    for k in range(n - 1):
        pivot = a[k].copy()
        for i in range(k + 1, n):
            _eliminate_row(a[i], pivot, k)
    return a


def outputs_match(got: np.ndarray, expected: np.ndarray) -> bool:
    return bool(np.array_equal(got, expected))


def _my_rows(n: int, nprocs: int, rank: int) -> list[int]:
    """Cyclic row distribution (row i belongs to processor i % nprocs)."""
    return list(range(rank, n, nprocs))


# -- traditional ------------------------------------------------------------------


def _build_traditional(system, config: GaussConfig):
    n, P = config.n, system.nprocs
    matrix = system.alloc_array("matrix", (n, n), dtype="float64")

    def body(rt) -> Generator:
        p = rt.rank
        if p == 0:
            yield from matrix.write_all(rt, _matrix(config))
        yield from rt.barrier()
        mine = _my_rows(n, P, p)
        for k in range(n - 1):
            pivot = yield from matrix.read_row(rt, k)
            todo = [i for i in mine if i > k]
            for i in todo:
                row = (yield from matrix.read_row(rt, i)).copy()
                _eliminate_row(row, pivot, k)
                yield from matrix.write_row(rt, i, row)
            yield from charge(rt, config, len(todo) * (n - k), CYC_ELIM)
            yield from rt.barrier()
        if p == 0:
            system.app_output = (yield from matrix.read_all(rt)).copy()
        return None

    return body


# -- VOPP --------------------------------------------------------------------------


def _build_vopp(system, config: GaussConfig):
    n, P = config.n, system.nprocs
    blocks = []
    for q in range(P):
        rows = _my_rows(n, P, q)
        blocks.append(
            system.alloc_array(
                f"rows{q}", (max(len(rows), 1), n), dtype="float64", page_aligned=True
            )
        )
    pivots = [
        system.alloc_array(f"pivot{j}", n, dtype="float64", page_aligned=True)
        for j in range(2)
    ]
    BLOCK, PIVOT = 0, P  # view id ranges

    def body(rt) -> Generator:
        p = rt.rank
        mine = _my_rows(n, P, p)
        if p == 0:
            a = _matrix(config)
            for q in range(P):
                rows = _my_rows(n, P, q)
                yield from rt.acquire_view(BLOCK + q)
                yield from blocks[q].write_all(rt, a[rows])
                yield from rt.release_view(BLOCK + q)
        yield from rt.barrier()
        # local buffer for the infrequently-shared rows (§3.1)
        yield from rt.acquire_Rview(BLOCK + p)
        local = (yield from blocks[p].read_all(rt)).copy()
        yield from rt.release_Rview(BLOCK + p)
        yield from charge(rt, config, local.size, CYC_COPY)
        row_pos = {i: j for j, i in enumerate(mine)}
        for k in range(n - 1):
            pv = PIVOT + (k % 2)  # double-buffered pivot views
            if k in row_pos:
                yield from rt.acquire_view(pv)
                yield from pivots[k % 2].write(rt, 0, local[row_pos[k]])
                yield from rt.release_view(pv)
            yield from rt.barrier()
            yield from rt.acquire_Rview(pv)
            pivot = yield from pivots[k % 2].read(rt)
            yield from rt.release_Rview(pv)
            todo = [i for i in mine if i > k]
            for i in todo:
                _eliminate_row(local[row_pos[i]], pivot, k)
            yield from charge(rt, config, len(todo) * (n - k), CYC_ELIM)
        # write results back into the shared views for the final read-out
        yield from rt.acquire_view(BLOCK + p)
        yield from blocks[p].write_all(rt, local)
        yield from rt.release_view(BLOCK + p)
        yield from charge(rt, config, local.size, CYC_COPY)
        yield from rt.barrier()
        if p == 0:
            out = np.empty((n, n), dtype=np.float64)
            for q in range(P):
                rows = _my_rows(n, P, q)
                yield from rt.acquire_Rview(BLOCK + q)
                data = yield from blocks[q].read_all(rt)
                yield from rt.release_Rview(BLOCK + q)
                out[rows] = data[: len(rows)]
            system.app_output = out
        return None

    return body


def _build_vopp_no_local_buffers(system, config: GaussConfig):
    """Ablation of §3.1: rows stay in the shared block views and every step
    updates them in place, so each release ships the step's row diffs through
    the view manager — the data volume the local buffers avoid."""
    n, P = config.n, system.nprocs
    blocks = []
    for q in range(P):
        rows = _my_rows(n, P, q)
        blocks.append(
            system.alloc_array(
                f"rows{q}", (max(len(rows), 1), n), dtype="float64", page_aligned=True
            )
        )
    pivots = [
        system.alloc_array(f"pivot{j}", n, dtype="float64", page_aligned=True)
        for j in range(2)
    ]
    BLOCK, PIVOT = 0, P

    def body(rt) -> Generator:
        p = rt.rank
        mine = _my_rows(n, P, p)
        if p == 0:
            a = _matrix(config)
            for q in range(P):
                rows = _my_rows(n, P, q)
                yield from rt.acquire_view(BLOCK + q)
                yield from blocks[q].write_all(rt, a[rows])
                yield from rt.release_view(BLOCK + q)
        yield from rt.barrier()
        row_pos = {i: j for j, i in enumerate(mine)}
        for k in range(n - 1):
            pv = PIVOT + (k % 2)
            if k in row_pos:
                yield from rt.acquire_Rview(BLOCK + p)
                pivot_row = yield from blocks[p].read_row(rt, row_pos[k])
                yield from rt.release_Rview(BLOCK + p)
                yield from rt.acquire_view(pv)
                yield from pivots[k % 2].write(rt, 0, pivot_row)
                yield from rt.release_view(pv)
            yield from rt.barrier()
            yield from rt.acquire_Rview(pv)
            pivot = yield from pivots[k % 2].read(rt)
            yield from rt.release_Rview(pv)
            todo = [i for i in mine if i > k]
            if todo:
                # no local buffer: work directly in the shared view
                yield from rt.acquire_view(BLOCK + p)
                for i in todo:
                    row = (yield from blocks[p].read_row(rt, row_pos[i])).copy()
                    _eliminate_row(row, pivot, k)
                    yield from blocks[p].write_row(rt, row_pos[i], row)
                yield from rt.release_view(BLOCK + p)
            yield from charge(rt, config, len(todo) * (n - k), CYC_ELIM)
        yield from rt.barrier()
        if p == 0:
            out = np.empty((n, n), dtype=np.float64)
            for q in range(P):
                rows = _my_rows(n, P, q)
                yield from rt.acquire_Rview(BLOCK + q)
                data = yield from blocks[q].read_all(rt)
                yield from rt.release_Rview(BLOCK + q)
                out[rows] = data[: len(rows)]
            system.app_output = out
        return None

    return body


def build(system, config: GaussConfig, variant: str = "default"):
    """VOPP variants: ``"default"`` (local buffers, §3.1) or
    ``"no_local_buffers"`` (the ablation)."""
    from repro.core.program import TraditionalSystem

    if isinstance(system, TraditionalSystem):
        return _build_traditional(system, config)
    if variant == "no_local_buffers":
        return _build_vopp_no_local_buffers(system, config)
    return _build_vopp(system, config)


def extract(system, config: GaussConfig):
    return system.app_output
