"""NN — parallel back-propagation neural network training, §3.4 / §5.4.

A 9-40-1 sigmoid network trained by full-batch gradient descent; each epoch
every processor computes the gradient over its slice of the training set, the
partial gradients are summed, and the weights are updated before the next
epoch (paper: "After each epoch, the errors of the weights are gathered from
each processor and the weights of the neural network are adjusted").

Variants
--------
* traditional (LRC_d): weights, gradient accumulator and training set all
  live packed in shared memory; partial gradients are added under a global
  lock; two consistency barriers per epoch.
* ``vopp`` (VC): the training set is divided into per-processor views copied
  to local buffers once (§3.1); the weight view is read with
  ``acquire_Rview`` so all processors read it **concurrently** (§3.4:
  "Without it the major part of the VOPP program would run sequentially");
  the gradient view is updated under ``acquire_view``.
* ``mpi``: weights replicated, gradient combined with ``allreduce`` — the
  Table 9 baseline.

Gradient summation order differs between versions (lock order, tree order),
so verification uses ``allclose`` plus a loss-decrease check instead of
bitwise equality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

import numpy as np

from repro.apps.common import AppConfig, charge, chunk_bounds

__all__ = [
    "NnConfig",
    "default_config",
    "sequential",
    "build",
    "extract",
    "outputs_match",
    "build_mpi",
    "run_mpi",
]

CYC_GRAD = 20.0  # cycles per weight per sample (forward + backward)
CYC_UPDATE = 4.0  # cycles per weight updated


@dataclass
class NnConfig(AppConfig):
    """Paper: 9-40-1 network, 235 epochs.  Scaled default trains fewer epochs
    on a smaller synthetic set; ``work_factor`` restores the paper's
    compute/communication balance."""

    d_in: int = 9
    d_hidden: int = 40
    d_out: int = 1
    n_samples: int = 512
    epochs: int = 20
    lr: float = 0.5
    seed: int = 11
    grad_views: int = 4  # VOPP splits the gradient accumulator (§3.6)
    work_factor: float = 128.0


def default_config() -> NnConfig:
    return NnConfig()


def paper_config() -> NnConfig:
    return NnConfig(epochs=235, n_samples=32768, work_factor=1.0)


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-x))


def _dataset(config: NnConfig) -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.RandomState(config.seed)
    x = rng.uniform(-1.0, 1.0, size=(config.n_samples, config.d_in))
    # target: a smooth nonlinear function of the inputs, in (0, 1)
    y = _sigmoid(x @ rng.uniform(-1, 1, size=(config.d_in, config.d_out)) * 2.0)
    return x, y


def n_weights(config: NnConfig) -> int:
    return (
        config.d_in * config.d_hidden
        + config.d_hidden
        + config.d_hidden * config.d_out
        + config.d_out
    )


def _init_weights(config: NnConfig) -> np.ndarray:
    rng = np.random.RandomState(config.seed + 1)
    return rng.uniform(-0.5, 0.5, size=n_weights(config))


def _unpack(w: np.ndarray, config: NnConfig):
    i, h, o = config.d_in, config.d_hidden, config.d_out
    p = 0
    w1 = w[p : p + i * h].reshape(i, h)
    p += i * h
    b1 = w[p : p + h]
    p += h
    w2 = w[p : p + h * o].reshape(h, o)
    p += h * o
    b2 = w[p : p + o]
    return w1, b1, w2, b2


def _gradient(w: np.ndarray, x: np.ndarray, y: np.ndarray, config: NnConfig) -> np.ndarray:
    """Batch MSE gradient of the 2-layer sigmoid net (flattened)."""
    w1, b1, w2, b2 = _unpack(w, config)
    hidden = _sigmoid(x @ w1 + b1)
    out = _sigmoid(hidden @ w2 + b2)
    delta_out = (out - y) * out * (1.0 - out)
    delta_hid = (delta_out @ w2.T) * hidden * (1.0 - hidden)
    g_w2 = hidden.T @ delta_out
    g_b2 = delta_out.sum(axis=0)
    g_w1 = x.T @ delta_hid
    g_b1 = delta_hid.sum(axis=0)
    return np.concatenate([g_w1.ravel(), g_b1, g_w2.ravel(), g_b2])


def _loss(w: np.ndarray, x: np.ndarray, y: np.ndarray, config: NnConfig) -> float:
    w1, b1, w2, b2 = _unpack(w, config)
    out = _sigmoid(_sigmoid(x @ w1 + b1) @ w2 + b2)
    return float(((out - y) ** 2).mean())


def sequential(config: NnConfig) -> dict:
    x, y = _dataset(config)
    w = _init_weights(config)
    initial = _loss(w, x, y, config)
    for _ in range(config.epochs):
        w = w - config.lr * _gradient(w, x, y, config) / config.n_samples
    return {"weights": w, "loss": _loss(w, x, y, config), "initial_loss": initial}


def outputs_match(got: dict, expected: dict) -> bool:
    close = np.allclose(got["weights"], expected["weights"], rtol=1e-8, atol=1e-10)
    trained = got["loss"] < expected["initial_loss"]
    return bool(close and trained)


# -- traditional ------------------------------------------------------------------------


def _build_traditional(system, config: NnConfig):
    P = system.nprocs
    W = n_weights(config)
    weights = system.alloc_array("weights", W, dtype="float64")
    grad = system.alloc_array("grad", W, dtype="float64")
    xs = system.alloc_array("xs", (config.n_samples, config.d_in), dtype="float64")
    ys = system.alloc_array("ys", (config.n_samples, config.d_out), dtype="float64")
    GRAD_LOCK = 0

    def body(rt) -> Generator:
        p = rt.rank
        lo, hi = chunk_bounds(config.n_samples, P, p)
        if p == 0:
            x, y = _dataset(config)
            yield from xs.write_all(rt, x)
            yield from ys.write_all(rt, y)
            yield from weights.write(rt, 0, _init_weights(config))
        yield from rt.barrier()
        # traditional style: training data read from shared memory directly
        my_x = (yield from xs.read(rt, lo * config.d_in, (hi - lo) * config.d_in)).reshape(
            hi - lo, config.d_in
        )
        my_y = (yield from ys.read(rt, lo * config.d_out, (hi - lo) * config.d_out)).reshape(
            hi - lo, config.d_out
        )
        for _ in range(config.epochs):
            w = yield from weights.read(rt)
            g = _gradient(w, my_x, my_y, config)
            yield from charge(rt, config, (hi - lo) * W, CYC_GRAD)
            yield from rt.acquire_lock(GRAD_LOCK)
            cur = yield from grad.read(rt)
            yield from grad.write(rt, 0, cur + g)
            yield from rt.release_lock(GRAD_LOCK)
            yield from rt.barrier()
            if p == 0:
                total = yield from grad.read(rt)
                w = yield from weights.read(rt)
                yield from weights.write(rt, 0, w - config.lr * total / config.n_samples)
                yield from grad.write(rt, 0, np.zeros(W))
                yield from charge(rt, config, W, CYC_UPDATE)
            yield from rt.barrier()
        if p == 0:
            w = yield from weights.read(rt)
            x, y = _dataset(config)
            system.app_output = {
                "weights": np.array(w),
                "loss": _loss(w, x, y, config),
                "initial_loss": _loss(_init_weights(config), x, y, config),
            }
        return None

    return body


# -- VOPP ----------------------------------------------------------------------------------


def _build_vopp(system, config: NnConfig, use_rview: bool = True):
    P = system.nprocs
    W = n_weights(config)
    V = config.grad_views
    weights = system.alloc_array("weights", W, dtype="float64", page_aligned=True)
    # the gradient accumulator is split into V page-disjoint sub-views so
    # processors add their partials concurrently in a staggered order (the
    # §3.6 rule of thumb; a single gradient view would serialise every epoch)
    seg_bounds = [chunk_bounds(W, V, v) for v in range(V)]
    grad_segs = [
        system.alloc_array(
            f"grad{v}", max(hi - lo, 1), dtype="float64", page_aligned=True
        )
        for v, (lo, hi) in enumerate(seg_bounds)
    ]
    x_chunks = []
    y_chunks = []
    for q in range(P):
        qlo, qhi = chunk_bounds(config.n_samples, P, q)
        rows = max(qhi - qlo, 1)
        x_chunks.append(
            system.alloc_array(f"x{q}", (rows, config.d_in), dtype="float64", page_aligned=True)
        )
        y_chunks.append(
            system.alloc_array(f"y{q}", (rows, config.d_out), dtype="float64", page_aligned=True)
        )
    WEIGHTS, GRAD, DATA = 0, 1, 1 + V  # view ids: GRAD+v per segment

    def body(rt) -> Generator:
        p = rt.rank
        lo, hi = chunk_bounds(config.n_samples, P, p)
        if p == 0:
            x, y = _dataset(config)
            for q in range(P):
                qlo, qhi = chunk_bounds(config.n_samples, P, q)
                yield from rt.acquire_view(DATA + q)
                yield from x_chunks[q].write_all(rt, x[qlo:qhi])
                yield from y_chunks[q].write_all(rt, y[qlo:qhi])
                yield from rt.release_view(DATA + q)
            yield from rt.acquire_view(WEIGHTS)
            yield from weights.write(rt, 0, _init_weights(config))
            yield from rt.release_view(WEIGHTS)
        yield from rt.barrier()
        # local buffers for the read-only training data (§3.1)
        yield from rt.acquire_Rview(DATA + p)
        my_x = (yield from x_chunks[p].read_all(rt)).copy()
        my_y = (yield from y_chunks[p].read_all(rt)).copy()
        yield from rt.release_Rview(DATA + p)
        for _ in range(config.epochs):
            if use_rview:
                # concurrent read of the weight view (§3.4); all processors
                # train against the weights simultaneously
                yield from rt.acquire_Rview(WEIGHTS)
                w = yield from weights.read(rt)
                g = _gradient(w, my_x, my_y, config)
                yield from charge(rt, config, (hi - lo) * W, CYC_GRAD)
                yield from rt.release_Rview(WEIGHTS)
            else:
                # ablation (§3.4: "Without it the major part of the VOPP
                # program would run sequentially"): exclusive access means
                # the view is held for the whole training step, serialising
                # every processor's epoch
                yield from rt.acquire_view(WEIGHTS)
                w = yield from weights.read(rt)
                g = _gradient(w, my_x, my_y, config)
                yield from charge(rt, config, (hi - lo) * W, CYC_GRAD)
                yield from rt.release_view(WEIGHTS)
            for i in range(V):
                v = (p + i) % V  # staggered order reduces contention
                slo, shi = seg_bounds[v]
                yield from rt.acquire_view(GRAD + v)
                cur = yield from grad_segs[v].read(rt)
                yield from grad_segs[v].write(rt, 0, cur + g[slo:shi])
                yield from rt.release_view(GRAD + v)
            yield from rt.barrier()
            if p == 0:
                total = np.empty(W)
                for v in range(V):
                    slo, shi = seg_bounds[v]
                    yield from rt.acquire_view(GRAD + v)
                    total[slo:shi] = yield from grad_segs[v].read(rt)
                    yield from grad_segs[v].write(rt, 0, np.zeros(shi - slo))
                    yield from rt.release_view(GRAD + v)
                yield from rt.acquire_view(WEIGHTS)
                w = yield from weights.read(rt)
                yield from weights.write(rt, 0, w - config.lr * total / config.n_samples)
                yield from rt.release_view(WEIGHTS)
                yield from charge(rt, config, W, CYC_UPDATE)
            yield from rt.barrier()
        if p == 0:
            yield from rt.acquire_Rview(WEIGHTS)
            w = yield from weights.read(rt)
            yield from rt.release_Rview(WEIGHTS)
            x, y = _dataset(config)
            system.app_output = {
                "weights": np.array(w),
                "loss": _loss(w, x, y, config),
                "initial_loss": _loss(_init_weights(config), x, y, config),
            }
        return None

    return body


def build(system, config: NnConfig, variant: str = "default"):
    """VOPP variants: ``"default"`` (Rviews for the weight reads, §3.4) or
    ``"no_rview"`` (exclusive views everywhere — the ablation)."""
    from repro.core.program import TraditionalSystem

    if isinstance(system, TraditionalSystem):
        return _build_traditional(system, config)
    return _build_vopp(system, config, use_rview=(variant != "no_rview"))


def extract(system, config: NnConfig):
    return system.app_output


# -- MPI -------------------------------------------------------------------------------------


def build_mpi(system, config: NnConfig):
    """Program body for the Table 9 MPI baseline: scatter data once,
    allreduce the gradient.  Rank 0 stashes the read-out on
    ``system.app_output`` (the PDES driver spawns the body per partition and
    collects the output from whichever partition owns rank 0)."""
    W = n_weights(config)

    def body(comm) -> Generator:
        p = comm.rank
        P = comm.size
        lo, hi = chunk_bounds(config.n_samples, P, p)
        chunks = None
        if p == 0:
            x, y = _dataset(config)
            chunks = []
            for q in range(P):
                qlo, qhi = chunk_bounds(config.n_samples, P, q)
                chunks.append((x[qlo:qhi], y[qlo:qhi]))
        my_x, my_y = yield from comm.scatter(chunks, root=0)
        w = yield from comm.bcast(_init_weights(config) if p == 0 else None, root=0)
        w = np.array(w)
        for _ in range(config.epochs):
            g = _gradient(w, my_x, my_y, config)
            seconds = config.charge_seconds((hi - lo) * W, CYC_GRAD, comm.node.cfg.cpu_hz)
            yield from comm.compute(seconds)
            total = yield from comm.allreduce(g, op=np.add)
            w = w - config.lr * total / config.n_samples
            yield from comm.compute(
                config.charge_seconds(W, CYC_UPDATE, comm.node.cfg.cpu_hz)
            )
        if p == 0:
            x, y = _dataset(config)
            system.app_output = {
                "weights": w,
                "loss": _loss(w, x, y, config),
                "initial_loss": _loss(_init_weights(config), x, y, config),
            }
        return None

    return body


def run_mpi(system, config: NnConfig) -> dict:
    """Serial entry point for the MPI baseline."""
    system.run_program(build_mpi(system, config))
    return system.app_output
