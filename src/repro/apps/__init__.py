"""The paper's application suite.

Four applications (paper §3/§5), each with a sequential reference, a
*traditional* lock/barrier version (run on LRC_d) and a *VOPP* version (run
on VC_d / VC_sd), plus the extra variants the paper evaluates:

========  =====================================================================
IS        bucket-sort integer ranking; VOPP version with the same barriers and
          a "fewer barriers" variant (barrier moved out of the loop, §3.2)
Gauss     Gaussian elimination; VOPP version keeps infrequently-shared rows in
          local buffers (§3.1)
SOR       red-black successive over-relaxation; VOPP version uses local
          buffers plus dedicated border views (§3.3)
NN        back-propagation neural network training; VOPP version uses local
          buffers and acquire_Rview for the weight reads (§3.4), plus an MPI
          version (Table 9)
========  =====================================================================

Every parallel run is validated against the sequential reference.
"""

from repro.apps.common import AppConfig, AppResult, run_app
from repro.apps import is_sort, gauss, sor, nn

APPS = {
    "is": is_sort,
    "gauss": gauss,
    "sor": sor,
    "nn": nn,
}

__all__ = ["AppConfig", "AppResult", "run_app", "APPS", "is_sort", "gauss", "sor", "nn"]
