"""Shared application scaffolding: configs, results, the run driver.

Compute-cost modelling
----------------------

Applications charge CPU time through ``charge(rt, ops, cycles_per_op)``.
Problem sizes are scaled down from the paper's (a 350 MHz cluster ran
minutes-long jobs; the simulator runs in seconds), which would distort the
compute-to-communication ratio — so each config carries a ``work_factor``
that multiplies charged compute time by (paper size / scaled size).  Data
*volume* (diffs, pages) uses the scaled sizes; compute time uses the paper's.
The EXPERIMENTS.md notes record this calibration per experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Optional

import numpy as np

from repro.core.program import BaseSystem, make_system
from repro.mpi import MpiSystem
from repro.net.config import NetConfig, NodeConfig

__all__ = ["AppConfig", "AppResult", "charge", "chunk_bounds", "run_app"]


@dataclass
class AppConfig:
    """Base class for per-application configs."""

    work_factor: float = 1.0

    def charge_seconds(self, ops: float, cycles_per_op: float, cpu_hz: float) -> float:
        return self.work_factor * ops * cycles_per_op / cpu_hz


def charge(rt, config: AppConfig, ops: float, cycles_per_op: float) -> Generator:
    """Charge ``ops`` operations of application compute (``yield from``)."""
    seconds = config.charge_seconds(ops, cycles_per_op, rt.node.cfg.cpu_hz)
    yield from rt.compute(seconds)
    return None


def chunk_bounds(total: int, nprocs: int, rank: int) -> tuple[int, int]:
    """Contiguous block decomposition ``[lo, hi)`` of ``total`` items."""
    base = total // nprocs
    extra = total % nprocs
    lo = rank * base + min(rank, extra)
    hi = lo + base + (1 if rank < extra else 0)
    return lo, hi


def _run_or_abort(cluster, run: Callable[[], Any]) -> Any:
    """Run the simulation; escalate expected fault outcomes to RunAborted.

    A :class:`repro.net.transport.RequestError` (retry budget exhausted) or
    :class:`repro.faults.NodeCrashed` (fail-stop episode) anywhere in the
    exception's cause chain becomes a structured
    :class:`repro.faults.RunFailure`; everything else re-raises untouched.
    """
    from repro.faults.failure import NodeCrashed, RunAborted, describe_failure
    from repro.sim import SimError

    try:
        return run()
    except (SimError, NodeCrashed) as exc:
        failure = describe_failure(exc, cluster)
        if failure is None:
            raise
        raise RunAborted(failure) from exc


@dataclass
class AppResult:
    """Outcome of one application run."""

    protocol: str
    nprocs: int
    output: Any
    stats: Any  # RunStats (DSM) or NetStats-like (MPI)
    time: float
    verified: bool = False
    events: int = 0  # simulator callbacks executed (perf-harness denominator)
    breakdown: Any = None  # per-process time attribution (traced runs only)
    metrics: Any = None  # repro.obs.Metrics registry (metered runs only)
    pdes: Any = None  # window-protocol accounting dict (partitioned runs only)
    consistency: Any = None  # oracle report JSON dict (checked sweep cells only)

    def table_row(self) -> dict:
        if hasattr(self.stats, "table_row"):
            return self.stats.table_row()
        return {"Time (Sec.)": round(self.time, 3)}


def run_app(
    app_module,
    protocol: str,
    nprocs: int,
    config: Optional[AppConfig] = None,
    variant: str = "default",
    verify: bool = True,
    netcfg: Optional[NetConfig] = None,
    nodecfg: Optional[NodeConfig] = None,
    tracer: Any = None,
    view_tracer: Any = None,
    metrics: Any = None,
    oracle: Any = None,
    faults: Any = None,
    pdes_workers: Optional[int] = None,
    pdes_mode: str = "fork",
    pdes_batching: bool = True,
    host: Any = None,
) -> AppResult:
    """Build, run and (optionally) verify one application.

    ``app_module`` must expose ``default_config()``, ``sequential(config)``,
    ``build(system, config, variant)`` returning the program body, and
    ``extract(system, config)`` returning the comparable output.  MPI apps
    additionally expose ``build_mpi``/``run`` hooks via ``protocol="mpi"``.

    ``tracer`` (a :class:`repro.obs.EventTracer`) records structured events
    and fills ``AppResult.breakdown``; ``view_tracer`` (a
    :class:`repro.tools.tracer.ViewTracer`) records view-level sync events
    (DSM protocols only); ``metrics`` (a :class:`repro.obs.Metrics`) collects
    per-view/per-page contention metrics and is handed back on
    ``AppResult.metrics``; ``oracle`` (a
    :class:`repro.obs.oracle.AccessRecorder`) records the access history for
    the consistency oracle (under PDES the caller's recorder receives the
    merged per-partition history); ``faults`` (a
    :class:`repro.faults.FaultPlan` or pre-built
    :class:`~repro.faults.FaultInjector`) injects scripted network and node
    faults.

    ``host`` (a :class:`repro.obs.host.HostProfiler`) records *wall-clock*
    spans around the real work — build/execute/extract/verify serially, the
    coordinator/worker protocol under PDES — without ever touching the
    simulation (simulated observables stay bit-identical).

    An exhausted retransmission budget or a fail-stop crash episode raises
    :class:`repro.faults.RunAborted` carrying a structured
    :class:`~repro.faults.RunFailure`; any other exception propagates
    unchanged (it is a bug, not a fault outcome).
    """
    if host is None:
        return _run_app(app_module, protocol, nprocs, config, variant, verify,
                        netcfg, nodecfg, tracer, view_tracer, metrics, oracle,
                        faults, pdes_workers, pdes_mode, pdes_batching, host)
    host.begin("run", "total")
    try:
        return _run_app(app_module, protocol, nprocs, config, variant, verify,
                        netcfg, nodecfg, tracer, view_tracer, metrics, oracle,
                        faults, pdes_workers, pdes_mode, pdes_batching, host)
    finally:
        host.end()


def _run_app(app_module, protocol, nprocs, config, variant, verify, netcfg,
             nodecfg, tracer, view_tracer, metrics, oracle, faults,
             pdes_workers, pdes_mode, pdes_batching, host) -> AppResult:
    config = config or app_module.default_config()
    if pdes_workers is not None and pdes_workers > 1:
        # partitioned (PDES) execution: same observables, different engine;
        # unsupported combinations raise PdesError (see repro.sim.pdes)
        from repro.sim.pdes import run_partitioned

        outcome = run_partitioned(
            app_module, protocol=protocol, nprocs=nprocs, config=config,
            variant=variant, workers=pdes_workers, mode=pdes_mode,
            netcfg=netcfg, nodecfg=nodecfg, trace=tracer is not None,
            oracle=oracle is not None, view_trace=view_tracer is not None,
            metrics=metrics is not None, faults=faults,
            batching=pdes_batching, host=host,
        )
        result = AppResult(
            protocol, nprocs, outcome.output, outcome.stats, outcome.time,
            events=outcome.events,
            pdes={
                "workers": outcome.workers,
                "windows": outcome.windows,
                "elided_windows": outcome.elided_windows,
                "leased_windows": outcome.leased_windows,
                "frame_bytes": outcome.frame_bytes,
            },
        )
        if tracer is not None:
            # hand the merged trace back through the caller's tracer object
            tracer.events[:] = outcome.tracer.events
            tracer.sends.clear()
            tracer.sends.update(outcome.tracer.sends)
            tracer.wakes[:] = outcome.tracer.wakes
            tracer._mid.clear()
            tracer._mid.update(outcome.tracer._mid)
            result.breakdown = tracer.breakdown()
        if oracle is not None:
            # hand the merged history back through the caller's recorder
            oracle.events[:] = outcome.oracle.events
        if view_tracer is not None:
            # copy the merged (serial-order) shards into the caller's tracer
            view_tracer.events[:] = outcome.view_tracer.events
            view_tracer.profiles.clear()
            view_tracer.profiles.update(outcome.view_tracer.profiles)
        if metrics is not None:
            # copy the merged registry into the caller's Metrics object
            metrics.counters.update(outcome.metrics.counters)
            metrics.gauges.update(outcome.metrics.gauges)
            metrics.histograms.update(outcome.metrics.histograms)
            result.metrics = metrics
        if verify:
            if host is not None:
                host.begin("run", "verify")
            expected = app_module.sequential(config)
            result.verified = app_module.outputs_match(result.output, expected)
            if host is not None:
                host.end()
            if not result.verified:
                raise AssertionError(
                    f"{app_module.__name__} on {protocol}/{nprocs}p "
                    "produced wrong output"
                )
        return result
    if host is not None:
        host.begin("run", "build")
    if protocol == "mpi":
        if view_tracer is not None:
            raise ValueError("--trace-views needs a DSM protocol, not mpi")
        system = MpiSystem(nprocs, netcfg=netcfg, nodecfg=nodecfg)
        cluster = system.cluster
        if tracer is not None:
            cluster.sim.tracer = tracer
        if metrics is not None:
            cluster.sim.metrics = metrics
        if oracle is not None:
            # MPI has no shared pages: the recorder stays empty and the
            # checker reports "not-applicable", but installing it keeps the
            # call surface uniform
            cluster.sim.oracle = oracle
        if faults is not None:
            cluster.install_faults(faults)
        if host is not None:
            host.end()  # build
            host.begin("run", "execute")
        output = _run_or_abort(cluster, lambda: app_module.run_mpi(system, config))
        if host is not None:
            host.end()
        result = AppResult(
            protocol, nprocs, output, system.stats, system.time,
            events=cluster.sim.events_processed,
        )
    else:
        system = make_system(nprocs, protocol, netcfg=netcfg, nodecfg=nodecfg)
        cluster = system.dsm.cluster
        if tracer is not None:
            system.sim.tracer = tracer
        if metrics is not None:
            system.sim.metrics = metrics
        if oracle is not None:
            system.sim.oracle = oracle
        if view_tracer is not None:
            system.dsm.tracer = view_tracer
        if faults is not None:
            cluster.install_faults(faults)
        body = app_module.build(system, config, variant)
        if host is not None:
            host.end()  # build
            host.begin("run", "execute")
        _run_or_abort(cluster, lambda: system.run_program(body))
        if host is not None:
            host.end()
            host.begin("run", "extract")
        output = app_module.extract(system, config)
        if host is not None:
            host.end()
        result = AppResult(
            protocol, nprocs, output, system.stats, system.stats.time,
            events=system.sim.events_processed,
        )
    if tracer is not None:
        result.breakdown = tracer.breakdown()
    if metrics is not None:
        result.metrics = metrics
    if verify:
        if host is not None:
            host.begin("run", "verify")
        expected = app_module.sequential(config)
        result.verified = app_module.outputs_match(output, expected)
        if host is not None:
            host.end()
        if not result.verified:
            raise AssertionError(
                f"{app_module.__name__} on {protocol}/{nprocs}p produced wrong output"
            )
    return result
