"""View access tracing and partitioning advice.

Install a tracer on a :class:`repro.core.VoppSystem` before running::

    tracer = ViewTracer.install(system)
    system.run_program(body)
    print(tracer.report())

The report lists, per view: exclusive/read acquisitions, mean and worst wait
time, and the data each grant moved — then applies the paper's §3.6 rule of
thumb ("the more views are acquired, the more messages there are in the
system; and the larger a view is, the more data traffic is caused") to flag
views worth splitting, merging or converting to read-only access.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["ViewTracer", "ViewProfile"]

# advice thresholds
WAIT_FLAG_SECONDS = 2e-3  # mean exclusive wait worth flagging
BYTES_FLAG = 16 * 1024  # mean grant payload worth flagging
READ_MOSTLY_RATIO = 4  # R acquires per exclusive acquire


@dataclass
class ViewProfile:
    """Aggregated statistics for one view."""

    view: int
    excl_acquires: int = 0
    r_acquires: int = 0
    wait_sum: float = 0.0
    wait_max: float = 0.0
    grant_bytes: int = 0
    grants: int = 0

    @property
    def acquires(self) -> int:
        return self.excl_acquires + self.r_acquires

    @property
    def wait_avg(self) -> float:
        return self.wait_sum / self.acquires if self.acquires else 0.0

    @property
    def grant_bytes_avg(self) -> float:
        return self.grant_bytes / self.grants if self.grants else 0.0


class ViewTracer:
    """Collects view events from a run and produces a tuning report.

    Pass ``sim=`` to run in *log mode* for partitioned (PDES) execution:
    besides aggregating normally, the tracer journals each event with its
    simulated timestamp so per-partition shards can later be interleaved by
    :meth:`merged` into the exact serial event order — the same shard +
    merge pattern :class:`repro.obs.metrics.Metrics` uses.
    """

    def __init__(self, sim=None) -> None:
        self.profiles: dict[int, ViewProfile] = {}
        self.events: list[dict[str, Any]] = []
        self._sim = sim
        self._log: list[tuple] | None = [] if sim is not None else None

    @classmethod
    def install(cls, system) -> "ViewTracer":
        """Attach a fresh tracer to a VOPP system (returns the tracer)."""
        tracer = cls()
        system.dsm.tracer = tracer
        return tracer

    def record(self, **event) -> None:
        if self._log is not None:
            self._log.append((self._sim.now, event))
        self.events.append(event)
        profile = self.profiles.setdefault(
            event["view"], ViewProfile(view=event["view"])
        )
        if event["kind"] == "acquire":
            if event["mode"] == "w":
                profile.excl_acquires += 1
            else:
                profile.r_acquires += 1
            profile.wait_sum += event["wait"]
            profile.wait_max = max(profile.wait_max, event["wait"])
        elif event["kind"] == "grant":
            profile.grants += 1
            profile.grant_bytes += event["size"]

    # -- partitioned (PDES) shard support ----------------------------------------

    def detach_clock(self) -> None:
        """Drop the simulator reference so the shard can cross a pipe."""
        self._sim = None

    @classmethod
    def merged(cls, shards: "list[ViewTracer]") -> "ViewTracer":
        """Interleave per-partition log-mode shards into one tracer.

        Events replay through :meth:`record` in simulated-timestamp order,
        stable in partition order at equal timestamps — the merged
        ``events`` list and profile table are bit-identical to what one
        serial tracer would have recorded.
        """
        import heapq

        out = cls()
        streams = [
            [(t, i, event) for t, event in shard._log or ()]
            for i, shard in enumerate(shards)
        ]
        for _t, _i, event in heapq.merge(*streams):
            out.record(**event)
        return out

    # -- analysis ---------------------------------------------------------------

    def advice(self) -> list[str]:
        """Partitioning advice per the §3.6 rule of thumb."""
        out = []
        for profile in sorted(self.profiles.values(), key=lambda p: -p.wait_sum):
            v = profile.view
            if profile.excl_acquires and profile.wait_avg > WAIT_FLAG_SECONDS:
                if profile.r_acquires == 0 and profile.excl_acquires >= READ_MOSTLY_RATIO:
                    out.append(
                        f"view {v}: mean exclusive wait "
                        f"{profile.wait_avg*1e6:,.0f} us over "
                        f"{profile.excl_acquires} acquires — if some accesses "
                        "are read-only, convert them to acquire_Rview (§3.4); "
                        "otherwise split the view to reduce contention (§3.6)"
                    )
                else:
                    out.append(
                        f"view {v}: mean wait {profile.wait_avg*1e6:,.0f} us — "
                        "contended; consider splitting it into sub-views "
                        "acquired in a staggered order (§3.6)"
                    )
            if profile.grants and profile.grant_bytes_avg > BYTES_FLAG:
                out.append(
                    f"view {v}: each grant moves "
                    f"{profile.grant_bytes_avg/1024:,.1f} KB — a large view "
                    "causes that much traffic per acquire; partition it or "
                    "keep rarely-shared parts in local buffers (§3.1, §3.6)"
                )
        if not out:
            out.append("no contended or oversized views detected")
        return out

    def report(self) -> str:
        lines = ["View access report", "=================="]
        lines.append(
            f"{'view':>6}{'excl':>8}{'read':>8}{'avg wait us':>14}"
            f"{'max wait us':>14}{'KB/grant':>12}"
        )
        for profile in sorted(self.profiles.values(), key=lambda p: p.view):
            lines.append(
                f"{profile.view:>6}{profile.excl_acquires:>8}{profile.r_acquires:>8}"
                f"{profile.wait_avg*1e6:>14,.0f}{profile.wait_max*1e6:>14,.0f}"
                f"{profile.grant_bytes_avg/1024:>12,.2f}"
            )
        lines.append("")
        lines.append("Advice (paper §3.6 rule of thumb):")
        for item in self.advice():
            lines.append(f"  * {item}")
        return "\n".join(lines)
