"""Automatic view inference from recorded access patterns (paper §6).

The paper's future work: "The insertion of view primitives can be automated
by compiling techniques."  This module implements the dynamic-analysis half
of that idea:

1. run the *traditional* (lock/barrier) program once with an
   :class:`AccessRecorder` installed — every shared read/write is logged at
   page granularity, bucketed by barrier epoch;
2. :func:`infer_views` clusters pages by their access signature (who writes,
   who reads, whether writers ever overlap within an epoch) and produces a
   :class:`ViewPlan`: proposed views with the VOPP primitives to use and the
   §3.1/§3.4/§3.6 optimisation advice that applies.

The plan names the original allocations (regions), so its output reads like
the conversion recipes in the paper's §3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.program import BaseSystem
    from repro.memory.address_space import AddressSpace

__all__ = ["AccessRecorder", "ViewPlan", "ProposedView", "infer_views"]


@dataclass
class _PageUse:
    readers: set = field(default_factory=set)
    writers: set = field(default_factory=set)
    epoch_writers: dict = field(default_factory=dict)  # epoch -> set of writers

    @property
    def concurrent_writers(self) -> bool:
        return any(len(ws) > 1 for ws in self.epoch_writers.values())


class AccessRecorder:
    """Logs every shared-memory access of a run, bucketed by barrier epoch."""

    def __init__(self) -> None:
        self.pages: dict[int, _PageUse] = {}
        self._epoch: dict[int, int] = {}

    @classmethod
    def install(cls, system: "BaseSystem") -> "AccessRecorder":
        """Attach to every node of a system (before ``run_program``)."""
        recorder = cls()
        for proto in system.dsm.protocols:
            proto.mm.recorder = recorder.on_access
            orig_barrier = proto.barrier
            node_id = proto.node.id

            def wrapped(bid=0, _orig=orig_barrier, _node=node_id):
                recorder.on_barrier(_node)
                return _orig(bid)

            proto.barrier = wrapped
        return recorder

    def on_access(self, node_id: int, pids, mode: str) -> None:
        epoch = self._epoch.get(node_id, 0)
        for pid in pids:
            use = self.pages.setdefault(pid, _PageUse())
            if mode == "w":
                use.writers.add(node_id)
                use.epoch_writers.setdefault(epoch, set()).add(node_id)
            else:
                use.readers.add(node_id)

    def on_barrier(self, node_id: int) -> None:
        self._epoch[node_id] = self._epoch.get(node_id, 0) + 1


@dataclass
class ProposedView:
    """One inferred view: a page group with identical access signature."""

    name: str
    regions: tuple[str, ...]
    pages: tuple[int, ...]
    writers: tuple[int, ...]
    readers: tuple[int, ...]
    concurrent_writers: bool
    advice: str

    @property
    def primitive(self) -> str:
        """Suggested access pattern for this view."""
        if not self.writers:
            return "acquire_Rview/release_Rview (read-only data)"
        if self.concurrent_writers:
            return "split into per-writer sub-allocations first"
        return "acquire_view/release_view; readers use acquire_Rview"


class ViewPlan:
    """The inferred partitioning for one recorded run."""

    def __init__(self, views: list[ProposedView], nprocs: int):
        self.views = views
        self.nprocs = nprocs

    def report(self) -> str:
        lines = ["Inferred view plan", "=================="]
        for view in self.views:
            lines.append(
                f"{view.name}: regions {', '.join(view.regions)} "
                f"({len(view.pages)} pages)"
            )
            lines.append(f"    writers {list(view.writers)}, readers {list(view.readers)}")
            lines.append(f"    primitives: {view.primitive}")
            lines.append(f"    advice: {view.advice}")
        return "\n".join(lines)


def _advice(writers: set, readers: set, concurrent: bool, nprocs: int) -> str:
    if concurrent:
        return (
            "multiple processors write these pages within one epoch — "
            "repartition the data so each writer gets page-aligned private "
            "pages (views must not overlap), or funnel updates through an "
            "exclusive accumulator view"
        )
    if not writers:
        return (
            "read-only data: copy it into local buffers once at start-up "
            "(§3.1) or share it through a single Rview"
        )
    if len(writers) == 1:
        others = readers - writers
        if not others:
            return (
                "written and read by one processor only — keep it in a local "
                "buffer and write it back through a view at the end (§3.1)"
            )
        return (
            "single-writer data with remote readers: one view owned by the "
            "writer; readers use acquire_Rview so reads stay concurrent (§3.4)"
        )
    if writers == readers and len(writers) == nprocs:
        return (
            "a global accumulator touched by everyone: one exclusive view, "
            "or split into sub-views acquired in a staggered order if it "
            "becomes a bottleneck (§3.6)"
        )
    return (
        "shared by several processors in disjoint epochs: one exclusive view "
        "passed between them"
    )


def infer_views(recorder: AccessRecorder, space: "AddressSpace", nprocs: int) -> ViewPlan:
    """Cluster recorded pages into proposed views by access signature."""
    # packed allocations can share a page: a page may belong to several
    # regions, and the plan reports all of them (that overlap is itself a
    # false-sharing warning sign)
    regions_of_page: dict[int, set[str]] = {}
    for region in space.regions():
        for pid in region.page_range(space.page_size):
            regions_of_page.setdefault(pid, set()).add(region.name)
    groups: dict[tuple, list[int]] = {}
    for pid, use in sorted(recorder.pages.items()):
        sig = (
            frozenset(use.writers),
            frozenset(use.readers),
            use.concurrent_writers,
        )
        groups.setdefault(sig, []).append(pid)
    views = []
    for i, (sig, pids) in enumerate(
        sorted(groups.items(), key=lambda item: item[1][0])
    ):
        writers, readers, concurrent = sig
        names: set[str] = set()
        for p in pids:
            names |= regions_of_page.get(p, {"?"})
        regions = tuple(sorted(names))
        views.append(
            ProposedView(
                name=f"view_{i}",
                regions=regions,
                pages=tuple(pids),
                writers=tuple(sorted(writers)),
                readers=tuple(sorted(readers)),
                concurrent_writers=concurrent,
                advice=_advice(set(writers), set(readers), concurrent, nprocs),
            )
        )
    return ViewPlan(views, nprocs)
