"""Developer tools: view-tuning tracer and report.

The paper's thesis is that VOPP "allows the programmer to participate in
performance optimization of a program through wise partitioning of the shared
data into views" (§1) and gives a rule of thumb for it (§3.6).  The
:class:`repro.tools.ViewTracer` instruments a run and turns the view traffic
into exactly that advice.
"""

from repro.tools.tracer import ViewTracer, ViewProfile
from repro.tools.autoview import AccessRecorder, ViewPlan, ProposedView, infer_views

__all__ = [
    "ViewTracer",
    "ViewProfile",
    "AccessRecorder",
    "ViewPlan",
    "ProposedView",
    "infer_views",
]
