"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run APP``
    Run one application on one protocol and print the paper-style statistics
    row (``--protocol``, ``--nprocs``, ``--variant``).
``check APP``
    Run one application with access-history recording and machine-check the
    recorded read/write history against the protocol family's memory model
    (the consistency oracle, :mod:`repro.obs.oracle`).  Exit code 4 when the
    oracle finds violations; ``--findings-out`` dumps the structured
    findings as JSON.  ``run``/``trace`` accept ``--check-consistency`` to
    piggyback the same check on a normal run, and ``sweep`` accepts it to
    check every matrix (or degradation-grid) cell.
``table N``
    Regenerate paper table N (1–9) and print it with the paper's published
    values alongside.
``sweep APP``
    Print a speedup table for an application across processor counts.
    ``sweep --faults [PLAN.json]`` instead runs the fault-degradation grid
    (slowdown vs loss rate per protocol) and writes ``BENCH_faults.json``.
``trace APP``
    Run one application with event tracing: per-process time breakdown,
    message mix, optional causal critical path (``--critical-path``),
    contention metrics (``--metrics``, ``--metrics-out``) and
    Chrome-trace/JSONL export (``--trace-out``, ``--jsonl-out``); see
    docs/observability.md.
``profile APP``
    Run one application under ``cProfile`` and print the hottest functions
    (``--top``, ``--sort``); ``--profile-out`` dumps the raw stats for
    snakeviz/pstats.  This is the host-CPU view the events/sec work uses —
    ``trace`` attributes *simulated* time, ``profile`` attributes *wall*
    time inside the engine and protocol code.
``report SPEC SPEC [SPEC ...]``
    With two specs: compare two benchmark reports (files or
    ``git:REV[:path]`` specs) and flag regressions; ``--check`` makes
    regressions a non-zero exit for CI.  With ``--trend``: track every
    metric across N reports ordered oldest -> newest (terminal table,
    ``--html`` sparkline dashboard), gating each consecutive pair with the
    same exact-simulated / tolerance-gated-throughput semantics.

``run``/``trace`` accept ``--host-trace`` to record *wall-clock* spans of
the real work (coordinator barrier waits, frame codec, pipe I/O, partition
execute/sync under ``--pdes-workers``) and print a host-time breakdown
whose categories sum to measured wall time; with ``--trace-out`` the host
spans export as a second Perfetto process stream merged with the simulated
trace.  ``profile --pdes-workers K`` collects per-partition child cProfile
sessions over the PDES pipes and merges them with the coordinator's.
``list``
    Show the available applications, protocols, variants and tables.

``adversary APP``
    Seeded, deterministic adversarial search over the fault-plan space
    (:mod:`repro.faults.adversary`): evolve a :class:`repro.faults.FaultPlan`
    that maximises damage to one protocol (``--protocol``, ``--budget``,
    ``--seed``), delta-debug the winner to a 1-minimal plan, and print both.
    ``--grid`` searches every protocol in ``--protocols`` and writes the
    committed ``BENCH_adversarial.json`` report.  Exit code 4 if the search
    finds a consistency violation (a protocol bug, the jackpot fitness
    class).

``run``, ``check`` and ``trace`` accept ``--faults PLAN.json`` (a scripted
:class:`repro.faults.FaultPlan`) and ``--drop-prob P`` (seeded uniform
random loss); see docs/robustness.md.  ``--faults-out PATH`` dumps the
exact active plan before the run, so any failure leaves a one-command
repro artifact behind.  A run that cannot complete — retry budget
exhausted or a fail-stop crash episode — prints a one-screen structured
diagnostic (including the active fault plan and seeds) and exits with
code 3 instead of a traceback.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.apps import APPS
from repro.apps.common import run_app
from repro.faults import EXIT_RUN_FAILURE, RunAborted, format_failure
from repro.protocols import PROTOCOLS

VARIANTS = {
    "is": ("default", "lb"),
    "gauss": ("default", "no_local_buffers"),
    "sor": ("default",),
    "nn": ("default", "no_rview"),
}


def _load_faults(args: argparse.Namespace):
    """Resolve --faults PLAN.json into a FaultPlan (or None)."""
    path = getattr(args, "faults", None)
    if not path:
        return None
    from repro.faults import FaultPlan, FaultPlanError

    try:
        return FaultPlan.load(path)
    except (OSError, FaultPlanError) as exc:
        raise SystemExit(f"error: --faults {path}: {exc}") from exc


def _dump_faults_out(args: argparse.Namespace, plan) -> None:
    """Honour --faults-out: dump the exact active plan JSON.

    Written *before* the run so even an aborted (or crashed) run leaves the
    one-command repro artifact behind: ``--faults <dumped file>`` replays it.
    """
    out = getattr(args, "faults_out", None)
    if not out:
        return
    from repro.faults import FaultPlan

    (plan if plan is not None else FaultPlan()).dump(out)
    print(f"wrote active fault plan to {out}")


def _netcfg_override(args: argparse.Namespace):
    """Build a NetConfig when --drop-prob / --drop-seed are given."""
    drop_prob = getattr(args, "drop_prob", None)
    drop_seed = getattr(args, "drop_seed", None)
    if drop_prob is None and drop_seed is None:
        return None
    from repro.net.config import NetConfig

    kw = {}
    if drop_prob is not None:
        if not (0.0 <= drop_prob <= 1.0):
            raise SystemExit(f"error: --drop-prob must be in [0, 1], got {drop_prob}")
        kw["random_drop_prob"] = drop_prob
    if drop_seed is not None:
        kw["drop_seed"] = drop_seed
    return NetConfig(**kw)


def _pdes_error():
    """The PdesError type, imported lazily (for ``except`` clauses)."""
    from repro.sim.pdes import PdesError

    return PdesError


def _net_snapshot(stats) -> dict | None:
    """Network counters of a run (RunStats embeds NetStats; MPI has it bare)."""
    net = getattr(stats, "net", stats)
    return net.snapshot() if hasattr(net, "snapshot") else None


def _print_message_mix(stats) -> None:
    snap = _net_snapshot(stats)
    if not snap or not snap["by_kind"]:
        return
    print()
    print("Message mix")
    print("-----------")
    mix = sorted(snap["by_kind"].items(), key=lambda kv: (-kv[1]["bytes"], kv[0]))
    for kind, rec in mix:
        name = kind.split(".", 1)[-1]
        print(f"  {name:<20} {rec['count']:>8} msgs  {rec['bytes']:>12,} bytes")


def _make_oracle(args: argparse.Namespace):
    """An AccessRecorder when --check-consistency / --findings-out ask for one."""
    if getattr(args, "check_consistency", False) or getattr(args, "findings_out", None):
        from repro.obs.oracle import AccessRecorder

        return AccessRecorder()
    return None


def _check_consistency(
    oracle, protocol: str, nprocs: int, args: argparse.Namespace,
    aborted: bool = False,
) -> int:
    """Check a recorded history, print the report, return 0 or 4."""
    from repro.obs.oracle import EXIT_CONSISTENCY, check_history, format_oracle_report

    report = check_history(oracle, nprocs=nprocs, protocol=protocol, aborted=aborted)
    print()
    print(format_oracle_report(report))
    out = getattr(args, "findings_out", None)
    if out:
        report.write_json(out)
        print(f"wrote consistency findings to {out}")
    return EXIT_CONSISTENCY if report.verdict == "violations" else 0


def _write_trace_outputs(tracer, args: argparse.Namespace, host=None) -> None:
    from repro.obs import (
        chrome_trace,
        merged_chrome_trace,
        validate_chrome_trace,
        write_chrome_trace,
        write_jsonl,
        write_merged_chrome_trace,
    )

    if getattr(args, "trace_out", None):
        # validate before writing: an unbalanced trace (a span opened but
        # never closed) silently renders wrong in Perfetto, so fail loudly
        try:
            if host is not None:
                validate_chrome_trace(merged_chrome_trace(tracer, host))
            else:
                validate_chrome_trace(chrome_trace(tracer))
        except ValueError as exc:
            raise SystemExit(f"error: trace failed schema validation: {exc}") from exc
        if host is not None:
            write_merged_chrome_trace(tracer, host, args.trace_out)
            print(f"wrote merged simulated+host Chrome trace to {args.trace_out} "
                  "(open in https://ui.perfetto.dev)")
        else:
            write_chrome_trace(tracer, args.trace_out)
            print(f"wrote Chrome trace to {args.trace_out} (open in https://ui.perfetto.dev)")
    if getattr(args, "jsonl_out", None) and tracer is not None:
        write_jsonl(tracer, args.jsonl_out)
        print(f"wrote JSONL events to {args.jsonl_out}")


def _make_host(args: argparse.Namespace):
    """A HostProfiler when --host-trace asks for one."""
    if getattr(args, "host_trace", False):
        from repro.obs import HostProfiler

        return HostProfiler("main")
    return None


def _print_host_breakdown(host) -> None:
    if host is None:
        return
    from repro.obs import format_host_breakdown, host_breakdown

    print()
    print(format_host_breakdown(host_breakdown(host)))


def _cmd_run(args: argparse.Namespace) -> int:
    app = APPS[args.app]
    if args.protocol == "mpi" and not hasattr(app, "run_mpi"):
        print(f"error: {args.app} has no MPI version (only nn does)", file=sys.stderr)
        return 2
    tracer = view_tracer = metrics = None
    if args.trace or args.trace_out:
        from repro.obs import EventTracer

        tracer = EventTracer()
    if args.metrics or args.metrics_out:
        from repro.obs import Metrics

        metrics = Metrics()
    if args.trace_views:
        if args.protocol not in ("vc_d", "vc_sd"):
            print(
                "error: --trace-views records VOPP view events; "
                "use --protocol vc_d or vc_sd",
                file=sys.stderr,
            )
            return 2
        from repro.tools.tracer import ViewTracer

        view_tracer = ViewTracer()
    oracle = _make_oracle(args)
    host = _make_host(args)
    plan = _load_faults(args)
    _dump_faults_out(args, plan)
    try:
        result = run_app(
            app,
            args.protocol,
            args.nprocs,
            variant=args.variant,
            verify=not args.no_verify,
            netcfg=_netcfg_override(args),
            tracer=tracer,
            view_tracer=view_tracer,
            metrics=metrics,
            oracle=oracle,
            faults=plan,
            pdes_workers=args.pdes_workers,
            pdes_mode=args.pdes_mode,
            host=host,
        )
    except _pdes_error() as exc:
        print(f"error: --pdes-workers: {exc}", file=sys.stderr)
        return 2
    except RunAborted as exc:
        if oracle is None:
            raise
        # the run failed on an injected fault: still check the partial
        # history — a fault may cost time, never consistency
        print(format_failure(exc.failure), file=sys.stderr)
        code = _check_consistency(
            oracle, args.protocol, args.nprocs, args, aborted=True
        )
        return code or EXIT_RUN_FAILURE
    status = "verified against sequential reference" if result.verified else "NOT verified"
    workers = f", {args.pdes_workers} PDES partitions" if args.pdes_workers else ""
    print(f"{args.app} on {args.protocol}, {args.nprocs} processors{workers} ({status})")
    if result.pdes:
        p = result.pdes
        print(
            f"  PDES: {p['windows']} windows ({p['elided_windows']} elided, "
            f"{p['leased_windows']} leased), {p['frame_bytes']:,} frame bytes"
        )
    for key, value in result.table_row().items():
        print(f"  {key:<24} {value}")
    if result.breakdown is not None:
        from repro.obs import format_breakdown

        print()
        print(format_breakdown(result.breakdown))
    _print_host_breakdown(host)
    if tracer is not None or host is not None:
        _write_trace_outputs(tracer, args, host=host)
    if metrics is not None:
        from repro.obs import format_contention

        print()
        print(format_contention(metrics))
        if args.metrics_out:
            metrics.write_json(args.metrics_out)
            print(f"wrote metrics snapshot to {args.metrics_out}")
    if view_tracer is not None:
        print()
        print(view_tracer.report())
    if oracle is not None:
        return _check_consistency(oracle, args.protocol, args.nprocs, args)
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    """Record one run's access history and verify the memory-model contract."""
    app = APPS[args.app]
    if args.protocol == "mpi" and not hasattr(app, "run_mpi"):
        print(f"error: {args.app} has no MPI version (only nn does)", file=sys.stderr)
        return 2
    from repro.obs.oracle import AccessRecorder

    oracle = AccessRecorder()
    aborted = False
    plan = _load_faults(args)
    _dump_faults_out(args, plan)
    try:
        result = run_app(
            app,
            args.protocol,
            args.nprocs,
            variant=args.variant,
            verify=not args.no_verify,
            netcfg=_netcfg_override(args),
            oracle=oracle,
            faults=plan,
            pdes_workers=args.pdes_workers,
            pdes_mode=args.pdes_mode,
        )
    except _pdes_error() as exc:
        print(f"error: --pdes-workers: {exc}", file=sys.stderr)
        return 2
    except RunAborted as exc:
        # check the partial history anyway: injected faults may abort a run
        # but must never corrupt the consistency of what did execute
        aborted = True
        print(format_failure(exc.failure), file=sys.stderr)
    else:
        status = (
            "verified against sequential reference"
            if result.verified
            else "NOT verified"
        )
        workers = f", {args.pdes_workers} PDES partitions" if args.pdes_workers else ""
        print(f"{args.app} on {args.protocol}, {args.nprocs} processors{workers} ({status})")
    code = _check_consistency(oracle, args.protocol, args.nprocs, args, aborted=aborted)
    if code:
        return code
    return EXIT_RUN_FAILURE if aborted else 0


def _cmd_trace(args: argparse.Namespace) -> int:
    app = APPS[args.app]
    if args.protocol == "mpi" and not hasattr(app, "run_mpi"):
        print(f"error: {args.app} has no MPI version (only nn does)", file=sys.stderr)
        return 2
    from repro.obs import EventTracer, Metrics, flame_summary

    tracer = EventTracer()
    metrics = Metrics() if (args.metrics or args.metrics_out) else None
    oracle = _make_oracle(args)
    host = _make_host(args)
    plan = _load_faults(args)
    _dump_faults_out(args, plan)
    try:
        result = run_app(
            app,
            args.protocol,
            args.nprocs,
            variant=args.variant,
            verify=not args.no_verify,
            netcfg=_netcfg_override(args),
            tracer=tracer,
            metrics=metrics,
            oracle=oracle,
            faults=plan,
            pdes_workers=args.pdes_workers,
            pdes_mode=args.pdes_mode,
            host=host,
        )
    except _pdes_error() as exc:
        print(f"error: --pdes-workers: {exc}", file=sys.stderr)
        return 2
    except RunAborted as exc:
        if oracle is None:
            raise
        print(format_failure(exc.failure), file=sys.stderr)
        code = _check_consistency(
            oracle, args.protocol, args.nprocs, args, aborted=True
        )
        return code or EXIT_RUN_FAILURE
    print(
        f"{args.app} on {args.protocol}, {args.nprocs} processors "
        f"— {result.time:.6f} simulated seconds, {len(tracer.events)} trace events"
    )
    print()
    print(flame_summary(tracer))
    _print_message_mix(result.stats)
    if args.critical_path:
        from repro.obs import compute_critical_path, format_critical_path

        print()
        print(format_critical_path(compute_critical_path(tracer)))
    if metrics is not None:
        from repro.obs import format_contention

        print()
        print(format_contention(metrics))
        if args.metrics_out:
            metrics.write_json(args.metrics_out)
            print(f"wrote metrics snapshot to {args.metrics_out}")
    _print_host_breakdown(host)
    _write_trace_outputs(tracer, args, host=host)
    if oracle is not None:
        return _check_consistency(oracle, args.protocol, args.nprocs, args)
    return 0


class _StatsCarrier:
    """Adapter so ``pstats.Stats.add`` accepts a raw cProfile stats dict.

    Partition workers ship ``prof.stats`` (a plain picklable dict) over the
    result pipe; ``Stats.add`` wants an object with a ``stats`` attribute
    and a ``create_stats`` method.
    """

    def __init__(self, stats_dict):
        self.stats = stats_dict

    def create_stats(self):
        pass


def _cmd_profile(args: argparse.Namespace) -> int:
    """Host-CPU profile of one run (the events/sec workhorse).

    With ``--pdes-workers N`` (N > 1) the run forks partition workers; each
    child runs under its own cProfile and ships its stats dict back over the
    result pipe, and the printout merges coordinator + partition profiles.
    """
    app = APPS[args.app]
    if args.protocol == "mpi" and not hasattr(app, "run_mpi"):
        print(f"error: {args.app} has no MPI version (only nn does)", file=sys.stderr)
        return 2
    import cProfile
    import pstats

    prof = cProfile.Profile()
    outcome = None
    if args.pdes_workers and args.pdes_workers > 1:
        from repro.sim.pdes import run_partitioned

        config = app.default_config()
        prof.enable()
        try:
            outcome = run_partitioned(
                app, args.protocol, args.nprocs,
                config=config, variant=args.variant,
                workers=args.pdes_workers, mode=args.pdes_mode,
                profile=True,
            )
        except _pdes_error() as exc:
            prof.disable()
            print(f"error: --pdes-workers: {exc}", file=sys.stderr)
            return 2
        prof.disable()
        if not args.no_verify:
            expected = app.sequential(config)
            if not app.outputs_match(outcome.output, expected):
                print("error: partitioned output does not match sequential "
                      "reference", file=sys.stderr)
                return 2
        nparts = len(outcome.profiles or {})
        print(
            f"{args.app} on {args.protocol}, {args.nprocs} processors, "
            f"{args.pdes_workers} PDES partitions — "
            f"{outcome.time:.6f} simulated seconds, "
            f"coordinator + {nparts} partition profiles merged"
        )
    else:
        prof.enable()
        result = run_app(
            app, args.protocol, args.nprocs,
            variant=args.variant, verify=not args.no_verify,
        )
        prof.disable()
        print(
            f"{args.app} on {args.protocol}, {args.nprocs} processors — "
            f"{result.time:.6f} simulated seconds, {result.events} events"
        )
    print()
    stats = pstats.Stats(prof)
    if outcome is not None and outcome.profiles:
        for index in sorted(outcome.profiles):
            stats.add(_StatsCarrier(outcome.profiles[index]))
    stats.sort_stats(args.sort)
    stats.print_stats(args.top)
    if args.profile_out:
        stats.dump_stats(args.profile_out)
        print(f"wrote profile data to {args.profile_out} "
              "(inspect with pstats or snakeviz)")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    import subprocess

    from repro.obs import (
        DEFAULT_THROUGHPUT_TOLERANCE,
        compare_reports,
        compute_trend,
        format_html,
        format_report,
        format_trend,
        format_trend_html,
        load_report,
    )

    tolerance = args.throughput_tolerance
    if tolerance is None:
        tolerance = DEFAULT_THROUGHPUT_TOLERANCE
    load_errors = (ValueError, OSError, subprocess.CalledProcessError)
    if args.trend:
        if len(args.specs) < 2:
            print("error: --trend needs at least two report specs "
                  "(oldest first)", file=sys.stderr)
            return 2
        try:
            docs = [load_report(spec) for spec in args.specs]
            trend = compute_trend(docs, args.specs, tolerance=tolerance)
        except load_errors as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(format_trend(trend, verbose=args.verbose))
        if args.html:
            with open(args.html, "w") as fh:
                fh.write(format_trend_html(trend))
            print(f"wrote HTML trend report to {args.html}")
        if args.check and trend.regressions:
            print(
                f"error: {len(trend.regressions)} series regressed beyond "
                "tolerance",
                file=sys.stderr,
            )
            return 1
        return 0
    if len(args.specs) != 2:
        print("error: report compares exactly two reports "
              "(or use --trend for N)", file=sys.stderr)
        return 2
    base_spec, new_spec = args.specs
    try:
        base = load_report(base_spec)
        new = load_report(new_spec)
        cmp = compare_reports(
            base, new,
            tolerance=tolerance,
            base_label=base_spec, new_label=new_spec,
        )
    except load_errors as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(format_report(cmp, verbose=args.verbose))
    if args.html:
        with open(args.html, "w") as fh:
            fh.write(format_html(cmp))
        print(f"wrote HTML report to {args.html}")
    if args.check and cmp.regressions:
        print(
            f"error: {len(cmp.regressions)} regression(s) beyond tolerance",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_table(args: argparse.Namespace) -> int:
    from repro.bench.experiments import run_table

    print(run_table(args.number))
    return 0


def _cmd_sweep_faults(args: argparse.Namespace) -> int:
    """`sweep --faults [PLAN]`: the per-protocol degradation grid."""
    from repro.bench.degradation import (
        DEFAULT_FAULTS_OUTPUT,
        format_degradation_grid,
        run_degradation_grid,
        write_degradation_report,
    )
    from repro.faults import FaultPlan, FaultPlanError

    base_plan = None
    if args.faults:  # a path was given: layer the loss sweep over that plan
        try:
            base_plan = FaultPlan.load(args.faults)
        except (OSError, FaultPlanError) as exc:
            raise SystemExit(f"error: --faults {args.faults}: {exc}") from exc
    nprocs = args.procs[0] if len(args.procs) == 1 else 8
    report = run_degradation_grid(
        app=args.app or "is",
        nprocs=nprocs,
        protocols=tuple(args.protocols),
        loss_rates=tuple(args.loss_rates),
        seed=args.faults_seed,
        base_plan=base_plan,
        check=args.check_consistency,
    )
    print(format_degradation_grid(report))
    out = args.faults_out or DEFAULT_FAULTS_OUTPUT
    write_degradation_report(report, out)
    print(f"wrote {out}")
    if args.check_consistency:
        from repro.obs.oracle import EXIT_CONSISTENCY

        bad = [
            c for c in report["grid"]
            if c.get("consistency", {}).get("verdict") == "violations"
        ]
        if bad:
            print(
                f"error: consistency oracle found violations in {len(bad)} "
                "grid cell(s)",
                file=sys.stderr,
            )
            return EXIT_CONSISTENCY
        print(f"consistency oracle: all {len(report['grid'])} grid cells clean")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.bench import sweep as sweep_mod

    if args.faults is not None:
        return _cmd_sweep_faults(args)

    cache_dir = None if args.no_cache else (args.cache_dir or sweep_mod.DEFAULT_CACHE_DIR)
    jobs = args.jobs if args.jobs is not None else (os.cpu_count() or 1)
    if args.pdes_workers and args.jobs is None:
        jobs = 1  # the partitions are the parallelism; don't also fan out cells
    if args.app is None:
        # full benchmark matrix -> consolidated BENCH_sweep.json
        try:
            report = sweep_mod.run_sweep(
                sweep_mod.default_cells(), jobs=jobs, cache_dir=cache_dir,
                trace=args.trace, pdes_workers=args.pdes_workers,
                check=args.check_consistency,
            )
        except _pdes_error() as exc:
            print(f"error: --pdes-workers: {exc}", file=sys.stderr)
            return 2
        report_path = args.report or sweep_mod.DEFAULT_OUTPUT
        sweep_mod.write_report(report, report_path)
        for cell in report.cells:
            tag = "cached" if cell.cache_hit else f"{cell.wall_seconds:6.2f}s"
            c = cell.cell
            consistency = getattr(cell.result, "consistency", None)
            oracle_tag = f"  oracle={consistency['verdict']}" if consistency else ""
            print(
                f"  {c.app:<6} {c.protocol:<6} {c.variant:<8} {c.nprocs:>2}p"
                f"  [{tag}]  {cell.events_per_sec:>7} ev/s  fp={cell.fingerprint()}"
                f"{oracle_tag}"
            )
        if args.trace:
            from repro.obs import format_breakdown

            for cell in report.cells:
                breakdown = getattr(cell.result, "breakdown", None)
                if breakdown:
                    c = cell.cell
                    print()
                    print(
                        format_breakdown(
                            breakdown,
                            title=f"Breakdown — {c.app}/{c.protocol}/{c.variant}/{c.nprocs}p",
                        )
                    )
        print(
            f"{len(report.cells)} cells in {report.wall_seconds:.2f}s "
            f"({report.hits} cached, jobs={report.jobs}); wrote {report_path}"
        )
        if args.check_consistency:
            from repro.obs.oracle import EXIT_CONSISTENCY

            bad = [
                cell for cell in report.cells
                if (getattr(cell.result, "consistency", None) or {}).get("verdict")
                == "violations"
            ]
            if bad:
                print(
                    f"error: consistency oracle found violations in {len(bad)} "
                    "cell(s)",
                    file=sys.stderr,
                )
                return EXIT_CONSISTENCY
            print(f"consistency oracle: all {len(report.cells)} cells clean")
        return 0
    from repro.bench.runner import Entry, speedup_experiment
    from repro.bench.tables import format_speedup_table

    app = APPS[args.app]
    if "mpi" in args.protocols and not hasattr(app, "run_mpi"):
        print(f"error: {args.app} has no MPI version (only nn does)", file=sys.stderr)
        return 2
    entries = tuple(Entry(proto, proto) for proto in args.protocols)
    speedups = speedup_experiment(
        app, entries, proc_counts=tuple(args.procs), jobs=jobs,
    )
    print(format_speedup_table(f"Speedup of {args.app}", speedups))
    return 0


def _cmd_adversary(args: argparse.Namespace) -> int:
    """Adversarial fault search: one cell, or the whole --grid bench."""
    import json

    from repro.obs.oracle import EXIT_CONSISTENCY

    cache_dir = None
    if not args.no_cache:
        from repro.bench.sweep import DEFAULT_CACHE_DIR

        cache_dir = args.cache_dir or DEFAULT_CACHE_DIR
    if args.grid:
        from repro.bench.adversarial import (
            DEFAULT_ADVERSARIAL_OUTPUT,
            format_adversarial_grid,
            run_adversarial_grid,
            write_adversarial_report,
        )

        report = run_adversarial_grid(
            app=args.app, nprocs=args.nprocs,
            protocols=tuple(args.protocols), budget=args.budget,
            seed=args.seed, population=args.population,
            cache_dir=cache_dir, shrink=not args.no_shrink,
            log=print if args.verbose else None,
        )
        print(format_adversarial_grid(report))
        out = args.bench_out or DEFAULT_ADVERSARIAL_OUTPUT
        write_adversarial_report(report, out)
        print(f"wrote {out}")
        jackpots = [c for c in report["grid"] if c["best"]["class"] == "consistency"]
        if jackpots:
            print(
                f"error: adversary found consistency violations in "
                f"{len(jackpots)} cell(s) — a protocol bug, not a slow cell",
                file=sys.stderr,
            )
            return EXIT_CONSISTENCY
        return 0
    from repro.faults import FaultPlan
    from repro.faults.adversary import search

    result = search(
        app=args.app, protocol=args.protocol, nprocs=args.nprocs,
        budget=args.budget, seed=args.seed, population=args.population,
        cache_dir=cache_dir, shrink=not args.no_shrink, log=print,
    )
    best = result.best
    print()
    print(
        f"adversary — {args.app} on {args.protocol}, {args.nprocs} processors: "
        f"{result.evals} plans evaluated (budget {result.budget}, "
        f"seed {result.seed})"
    )
    print(
        f"  baseline  {result.baseline_time:.6f} simulated s; winner class "
        f"{best['class']}, magnitude {best['magnitude']}"
        + (f" (slowdown {best['slowdown']}x)" if best["slowdown"] else "")
    )
    print(f"  winning plan ({best['episodes']} episode(s)):")
    print("    " + json.dumps(best["plan"], sort_keys=True))
    if result.shrunk is not None:
        print(
            f"  shrunk to {result.shrunk['episodes']} episode(s) "
            f"({result.shrink_evals} shrink evals), class "
            f"{result.shrunk['class']}, magnitude {result.shrunk['magnitude']}:"
        )
        print("    " + json.dumps(result.shrunk["plan"], sort_keys=True))
    if args.plan_out:
        FaultPlan.from_json(best["plan"]).dump(args.plan_out)
        print(f"wrote winning plan to {args.plan_out}")
    if args.shrunk_out and result.shrunk is not None:
        FaultPlan.from_json(result.shrunk["plan"]).dump(args.shrunk_out)
        print(f"wrote shrunk plan to {args.shrunk_out}")
    if best["class"] == "consistency":
        print(
            "error: the winning plan produces consistency violations — "
            "a protocol bug, not a slow cell",
            file=sys.stderr,
        )
        return EXIT_CONSISTENCY
    return 0


def _cmd_list(_args: argparse.Namespace) -> int:
    print("applications:")
    for name in APPS:
        print(f"  {name:<8} variants: {', '.join(VARIANTS[name])}")
    print("protocols:", ", ".join(sorted(PROTOCOLS)), "+ mpi (NN only)")
    print("tables: 1-9 (paper evaluation section); `python -m repro table N`")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="VOPP reproduction: run the paper's applications and experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run one application")
    p_run.add_argument("app", choices=sorted(APPS))
    p_run.add_argument("--protocol", default="vc_sd", choices=[*sorted(PROTOCOLS), "mpi"])
    p_run.add_argument("--nprocs", type=int, default=16)
    p_run.add_argument("--variant", default="default")
    p_run.add_argument("--no-verify", action="store_true")
    p_run.add_argument("--trace", action="store_true",
                       help="record structured events; print a time breakdown")
    p_run.add_argument("--trace-out", default=None, metavar="PATH",
                       help="write a Chrome trace-event JSON file (implies --trace)")
    p_run.add_argument("--jsonl-out", default=None, metavar="PATH",
                       help="write the raw events as JSONL (with --trace)")
    p_run.add_argument("--trace-views", action="store_true",
                       help="record view accesses; print the paper-§3.6 "
                       "partitioning advice (VC protocols only)")
    p_run.add_argument("--metrics", action="store_true",
                       help="record contention metrics; print per-view/per-page tables")
    p_run.add_argument("--metrics-out", default=None, metavar="PATH",
                       help="write the metrics snapshot as JSON (implies --metrics)")
    p_run.add_argument("--check-consistency", action="store_true",
                       help="record the access history and machine-check it "
                       "against the protocol's memory model "
                       "(exit 4 on violations; docs/observability.md)")
    p_run.add_argument("--findings-out", default=None, metavar="PATH",
                       help="write the oracle report as JSON "
                       "(implies --check-consistency)")
    p_run.add_argument("--faults", default=None, metavar="PLAN.json",
                       help="install a scripted fault plan (docs/robustness.md)")
    p_run.add_argument("--faults-out", default=None, metavar="PATH",
                       help="dump the exact active fault plan JSON before the "
                       "run (replayable with --faults PATH)")
    p_run.add_argument("--drop-prob", type=float, default=None, metavar="P",
                       help="seeded uniform random loss probability at the switch")
    p_run.add_argument("--drop-seed", type=int, default=None, metavar="SEED",
                       help="seed for the random-loss / RED drop streams")
    p_run.add_argument("--pdes-workers", type=int, default=None, metavar="K",
                       help="partition the simulated cluster across K workers "
                       "under the conservative PDES engine (bit-identical "
                       "results; see docs/simulator.md)")
    p_run.add_argument("--pdes-mode", default="fork", choices=("fork", "inline"),
                       help="PDES partition execution: OS processes (fork, "
                       "default) or single-process round-robin (inline)")
    p_run.add_argument("--host-trace", action="store_true",
                       help="profile host wall-clock time (monotonic spans "
                       "around coordinator/worker work); print a host-time "
                       "breakdown and merge host spans into --trace-out")
    p_run.set_defaults(fn=_cmd_run)

    p_check = sub.add_parser(
        "check",
        help="run one application with access-history recording and "
        "machine-check the recorded read/write history against the "
        "protocol's memory model (exit 4 on violations)",
    )
    p_check.add_argument("app", choices=sorted(APPS))
    p_check.add_argument("--protocol", default="vc_sd",
                         choices=[*sorted(PROTOCOLS), "mpi"])
    p_check.add_argument("--nprocs", type=int, default=8)
    p_check.add_argument("--variant", default="default")
    p_check.add_argument("--no-verify", action="store_true")
    p_check.add_argument("--findings-out", default=None, metavar="PATH",
                         help="write the oracle report (verdict, counts and "
                         "structured findings) as JSON")
    p_check.add_argument("--faults", default=None, metavar="PLAN.json",
                         help="install a scripted fault plan; an aborted run's "
                         "partial history is still checked")
    p_check.add_argument("--faults-out", default=None, metavar="PATH",
                         help="dump the exact active fault plan JSON before "
                         "the run (replayable with --faults PATH)")
    p_check.add_argument("--drop-prob", type=float, default=None, metavar="P",
                         help="seeded uniform random loss probability at the switch")
    p_check.add_argument("--drop-seed", type=int, default=None, metavar="SEED",
                         help="seed for the random-loss / RED drop streams")
    p_check.add_argument("--pdes-workers", type=int, default=None, metavar="K",
                         help="partition the simulated cluster across K workers "
                         "under the conservative PDES engine (per-partition "
                         "histories are merged before checking)")
    p_check.add_argument("--pdes-mode", default="fork", choices=("fork", "inline"),
                         help="PDES partition execution: OS processes (fork, "
                         "default) or single-process round-robin (inline)")
    p_check.set_defaults(fn=_cmd_check)

    p_trace = sub.add_parser(
        "trace",
        help="run one application with event tracing and print where the "
        "time went (optionally exporting a Perfetto-loadable trace)",
    )
    p_trace.add_argument("app", choices=sorted(APPS))
    p_trace.add_argument("--protocol", default="vc_sd", choices=[*sorted(PROTOCOLS), "mpi"])
    p_trace.add_argument("--nprocs", type=int, default=8)
    p_trace.add_argument("--variant", default="default")
    p_trace.add_argument("--no-verify", action="store_true")
    p_trace.add_argument("--trace-out", default=None, metavar="PATH",
                         help="write a Chrome trace-event JSON file "
                         "(open in https://ui.perfetto.dev)")
    p_trace.add_argument("--jsonl-out", default=None, metavar="PATH",
                         help="write the raw events as JSONL")
    p_trace.add_argument("--critical-path", action="store_true",
                         help="walk the causal critical path and print its "
                         "per-category attribution and wait slack")
    p_trace.add_argument("--metrics", action="store_true",
                         help="record contention metrics; print per-view/per-page tables")
    p_trace.add_argument("--metrics-out", default=None, metavar="PATH",
                         help="write the metrics snapshot as JSON (implies --metrics)")
    p_trace.add_argument("--check-consistency", action="store_true",
                         help="record the access history and machine-check it "
                         "against the protocol's memory model "
                         "(exit 4 on violations)")
    p_trace.add_argument("--findings-out", default=None, metavar="PATH",
                         help="write the oracle report as JSON "
                         "(implies --check-consistency)")
    p_trace.add_argument("--faults", default=None, metavar="PLAN.json",
                         help="install a scripted fault plan (docs/robustness.md)")
    p_trace.add_argument("--faults-out", default=None, metavar="PATH",
                         help="dump the exact active fault plan JSON before "
                         "the run (replayable with --faults PATH)")
    p_trace.add_argument("--drop-prob", type=float, default=None, metavar="P",
                         help="seeded uniform random loss probability at the switch")
    p_trace.add_argument("--drop-seed", type=int, default=None, metavar="SEED",
                         help="seed for the random-loss / RED drop streams")
    p_trace.add_argument("--pdes-workers", type=int, default=None, metavar="K",
                         help="partition the simulated cluster across K workers "
                         "under the conservative PDES engine (traces are "
                         "merged; bit-identical results)")
    p_trace.add_argument("--pdes-mode", default="fork", choices=("fork", "inline"),
                         help="PDES partition execution: OS processes (fork, "
                         "default) or single-process round-robin (inline)")
    p_trace.add_argument("--host-trace", action="store_true",
                         help="profile host wall-clock time alongside the "
                         "simulated trace; print a host-time breakdown and "
                         "write --trace-out as a merged two-clock trace")
    p_trace.set_defaults(fn=_cmd_trace)

    p_profile = sub.add_parser(
        "profile",
        help="run one application under cProfile and print the hottest "
        "functions by host CPU time",
    )
    p_profile.add_argument("app", choices=sorted(APPS))
    p_profile.add_argument("--protocol", default="vc_sd",
                           choices=[*sorted(PROTOCOLS), "mpi"])
    p_profile.add_argument("--nprocs", type=int, default=16)
    p_profile.add_argument("--variant", default="default")
    p_profile.add_argument("--no-verify", action="store_true")
    p_profile.add_argument("--top", type=int, default=25,
                           help="number of functions to print (default 25)")
    p_profile.add_argument("--sort", default="cumulative",
                           choices=("cumulative", "tottime", "ncalls"),
                           help="pstats sort key (default cumulative)")
    p_profile.add_argument("--profile-out", default=None, metavar="PATH",
                           help="dump raw cProfile stats for pstats/snakeviz")
    p_profile.add_argument("--pdes-workers", type=int, default=None, metavar="K",
                           help="profile the partitioned PDES run: each forked "
                           "partition worker runs under its own cProfile and "
                           "the stats are merged into the printout")
    p_profile.add_argument("--pdes-mode", default="fork", choices=("fork", "inline"),
                           help="PDES partition execution: OS processes (fork, "
                           "default; per-partition profiles collected over the "
                           "result pipe) or single-process round-robin (inline; "
                           "the parent profiler already sees everything)")
    p_profile.set_defaults(fn=_cmd_profile)

    p_report = sub.add_parser(
        "report",
        help="compare two benchmark reports, or track a trend across N "
        "(--trend; BENCH files or git:REV[:path] specs) and flag regressions",
    )
    p_report.add_argument(
        "specs", nargs="+", metavar="SPEC",
        help="report specs, oldest first: paths or git:REV[:path] "
        "(two for a comparison; two or more with --trend)",
    )
    p_report.add_argument("--trend", action="store_true",
                          help="render per-metric trend tables across all "
                          "given reports instead of a two-way comparison "
                          "(gating applies to each consecutive pair)")
    p_report.add_argument("--check", action="store_true",
                          help="exit 1 if any metric regresses beyond tolerance")
    p_report.add_argument("--html", default=None, metavar="PATH",
                          help="also write a standalone HTML dashboard")
    p_report.add_argument(
        "--throughput-tolerance", type=float, default=None, metavar="FRAC",
        help="relative slowdown allowed on events/sec metrics "
        "(default 0.25; simulated metrics are always compared exactly)",
    )
    p_report.add_argument("--verbose", action="store_true",
                          help="print every cell, not just changed ones")
    p_report.set_defaults(fn=_cmd_report)

    p_table = sub.add_parser("table", help="regenerate a paper table")
    p_table.add_argument("number", type=int, choices=range(1, 10))
    p_table.set_defaults(fn=_cmd_table)

    p_sweep = sub.add_parser(
        "sweep",
        help="parallel, cached sweep: the full benchmark matrix (no app) "
        "or a speedup table for one application",
    )
    p_sweep.add_argument("app", nargs="?", default=None, choices=sorted(APPS))
    p_sweep.add_argument(
        "--protocols", nargs="+", default=["lrc_d", "vc_sd"],
        choices=[*sorted(PROTOCOLS), "mpi"],
    )
    p_sweep.add_argument("--procs", nargs="+", type=int, default=[2, 4, 8, 16])
    p_sweep.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes (default: CPU count)",
    )
    p_sweep.add_argument("--no-cache", action="store_true",
                         help="ignore and don't write the result cache")
    p_sweep.add_argument("--cache-dir", default=None,
                         help="result cache directory (default: .cache/sweep)")
    p_sweep.add_argument("--report", default=None,
                         help="report path for the full matrix (default: BENCH_sweep.json)")
    p_sweep.add_argument("--trace", action="store_true",
                         help="trace full-matrix cells and add per-process time "
                         "breakdowns to the report (separate cache entries)")
    p_sweep.add_argument("--faults", nargs="?", const="", default=None,
                         metavar="PLAN.json",
                         help="run the fault-degradation grid (slowdown vs loss "
                         "rate per protocol) instead of the matrix; an optional "
                         "plan file is layered under every cell")
    p_sweep.add_argument("--loss-rates", nargs="+", type=float,
                         default=[0.0, 0.002, 0.005, 0.01, 0.02], metavar="P",
                         help="loss rates swept by the degradation grid")
    p_sweep.add_argument("--faults-seed", type=int, default=7,
                         help="FaultPlan seed for the degradation grid")
    p_sweep.add_argument("--faults-out", default=None, metavar="PATH",
                         help="degradation report path (default BENCH_faults.json)")
    p_sweep.add_argument("--pdes-workers", type=int, default=None, metavar="K",
                         help="run full-matrix cells under the conservative "
                         "PDES engine with K partitions each (separate cache "
                         "entries; bit-identical simulated results)")
    p_sweep.add_argument("--check-consistency", action="store_true",
                         help="run every full-matrix (or degradation-grid) cell "
                         "under the consistency oracle; exit 4 if any cell "
                         "has violations")
    p_sweep.set_defaults(fn=_cmd_sweep)

    p_adv = sub.add_parser(
        "adversary",
        help="seeded adversarial search over the fault-plan space: find the "
        "plan that hurts a protocol most (docs/robustness.md)",
    )
    p_adv.add_argument("app", nargs="?", default="is", choices=sorted(APPS))
    p_adv.add_argument("--protocol", default="vc_d", choices=sorted(PROTOCOLS),
                       help="protocol under attack (single-cell mode)")
    p_adv.add_argument("--nprocs", type=int, default=8)
    p_adv.add_argument("--budget", type=int, default=24, metavar="N",
                       help="distinct fault plans to evaluate in the search "
                       "(shrinking runs extra evaluations afterwards)")
    p_adv.add_argument("--seed", type=int, default=11,
                       help="search seed; fixed seed + budget reproduces the "
                       "result bit-identically")
    p_adv.add_argument("--population", type=int, default=6,
                       help="evolutionary population size")
    p_adv.add_argument("--no-shrink", action="store_true",
                       help="skip the delta-debugging shrink of the winner")
    p_adv.add_argument("--plan-out", default=None, metavar="PATH",
                       help="write the winning plan JSON (replay with "
                       "`check --faults PATH`)")
    p_adv.add_argument("--shrunk-out", default=None, metavar="PATH",
                       help="write the shrunk winning plan JSON")
    p_adv.add_argument("--no-cache", action="store_true",
                       help="ignore and don't write the result cache")
    p_adv.add_argument("--cache-dir", default=None,
                       help="result cache directory (default: .cache/sweep)")
    p_adv.add_argument("--grid", action="store_true",
                       help="search every protocol in --protocols and write "
                       "the committed adversarial benchmark report")
    p_adv.add_argument("--protocols", nargs="+",
                       default=["lrc_d", "vc_d", "vc_sd"],
                       choices=sorted(PROTOCOLS),
                       help="protocols searched in --grid mode")
    p_adv.add_argument("--bench-out", default=None, metavar="PATH",
                       help="--grid report path (default BENCH_adversarial.json)")
    p_adv.add_argument("--verbose", action="store_true",
                       help="log per-evaluation progress in --grid mode")
    p_adv.set_defaults(fn=_cmd_adversary)

    p_list = sub.add_parser("list", help="show apps, protocols and tables")
    p_list.set_defaults(fn=_cmd_list)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except RunAborted as exc:
        # expected fault outcome (retry budget exhausted / fail-stop crash):
        # one-screen structured diagnostic, pinned exit code — no traceback
        print(format_failure(exc.failure), file=sys.stderr)
        return EXIT_RUN_FAILURE


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
