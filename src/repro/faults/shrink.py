"""Delta-debugging shrinker for fault plans (ddmin over episodes).

A winning adversarial plan usually carries freeloaders — episodes spliced in
by crossover or left over from mutation that contribute nothing to the
degradation.  :func:`shrink_plan` minimises the episode set with Zeller's
ddmin: repeatedly try subsets and complements at doubling granularity,
keeping any candidate the caller's ``keep`` predicate accepts, until the
plan is **1-minimal** — removing any single remaining episode breaks the
predicate.

``keep`` is the fitness-class oracle: the adversary passes a closure that
re-evaluates the candidate (through the content-addressed sweep cache, so
shrinking is mostly cache maths) and accepts it iff it lands in the same
fitness class as the unshrunk winner at a guarded fraction of its
magnitude.  The shrinker itself is deterministic and draws no randomness.
"""

from __future__ import annotations

from typing import Callable, Sequence, TypeVar

from repro.faults.plan import FaultPlan

__all__ = ["ddmin", "shrink_plan"]

T = TypeVar("T")


def ddmin(items: Sequence[T], keep: Callable[[tuple], bool]) -> tuple:
    """Minimise ``items`` to a 1-minimal subsequence still satisfying ``keep``.

    ``keep(tuple_of_items) -> bool`` must accept the full input (the caller
    established that — it is not re-tested here).  Relative order is
    preserved; the empty tuple is never proposed.
    """
    current = tuple(items)
    n = 2  # granularity: number of chunks current is split into
    while len(current) >= 2:
        size = len(current) / n
        chunks = [
            current[round(i * size):round((i + 1) * size)] for i in range(n)
        ]
        chunks = [c for c in chunks if c]
        reduced = False
        # pass 1: does any single chunk suffice?
        for chunk in chunks:
            if len(chunk) < len(current) and keep(chunk):
                current = chunk
                n = 2
                reduced = True
                break
        if reduced:
            continue
        # pass 2: can any chunk be thrown away?
        if n > 2 or len(chunks) > 2:
            for i in range(len(chunks)):
                complement = tuple(
                    item for j, chunk in enumerate(chunks) if j != i
                    for item in chunk
                )
                if 0 < len(complement) < len(current) and keep(complement):
                    current = complement
                    n = max(n - 1, 2)
                    reduced = True
                    break
        if reduced:
            continue
        if n >= len(current):
            break  # single-item granularity and nothing removable: 1-minimal
        n = min(n * 2, len(current))
    return current


def shrink_plan(plan: FaultPlan, keep: Callable[[FaultPlan], bool]) -> FaultPlan:
    """Minimise ``plan``'s episode set; ``keep`` judges candidate plans.

    Returns a plan with the same seed whose episodes are a 1-minimal
    subsequence of the winner's.  If the winner has no episodes (or one),
    it is already minimal and comes back unchanged.
    """
    if len(plan.episodes) <= 1:
        return plan
    episodes = ddmin(
        plan.episodes,
        lambda subset: keep(FaultPlan(tuple(subset), seed=plan.seed)),
    )
    return FaultPlan(tuple(episodes), seed=plan.seed)
