"""Graceful failure reporting: structured diagnostics instead of tracebacks.

Two things can legitimately kill a simulated run in a hostile network:

* a reliable send/request exhausts its retransmission budget
  (:class:`repro.net.transport.RequestError`), or
* a fault plan fail-stops a node (:class:`NodeCrashed`).

Both are *expected outcomes under faults*, not bugs, so
:func:`repro.apps.common.run_app` escalates them into a :class:`RunFailure`
— a one-screen structured diagnostic carrying the failing node, message
kind, attempt count, per-node pending-operation counts and a network-stats
snapshot — wrapped in :class:`RunAborted`.  The CLI renders it and exits
with the pinned code :data:`EXIT_RUN_FAILURE` (test-enforced); any other
exception still surfaces as a raw traceback, because it *is* a bug.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = [
    "EXIT_RUN_FAILURE",
    "NodeCrashed",
    "RunAborted",
    "RunFailure",
    "describe_failure",
    "format_failure",
]

# pinned CLI exit code for a structured run failure (2 is argparse's)
EXIT_RUN_FAILURE = 3


class NodeCrashed(RuntimeError):
    """A fault plan fail-stopped a node; the run must abort cleanly."""

    def __init__(self, node: int, sim_time: float):
        super().__init__(f"node {node} fail-stopped at t={sim_time:.6f}")
        self.node = node
        self.sim_time = sim_time


@dataclass
class RunFailure:
    """Structured description of why a run could not complete."""

    reason: str  # "retry-exhausted" | "node-crash"
    detail: str  # human-oriented one-liner
    sim_time: float
    node: Optional[int] = None  # failing / crashed node
    dst: Optional[int] = None  # peer of the exhausted send (if any)
    kind: Optional[str] = None  # message kind of the exhausted send
    attempts: Optional[int] = None  # retransmissions spent before giving up
    # node id -> {"pending_acks": n, "pending_replies": n} for nodes with any
    pending_ops: dict = field(default_factory=dict)
    net: Optional[dict] = None  # NetStats snapshot at abort time
    faults: Optional[dict] = None  # active FaultPlan (to_json form), if any
    seeds: Optional[dict] = None  # {"faults_seed": ..., "drop_seed": ...}

    def to_json(self) -> dict:
        return {
            "reason": self.reason,
            "detail": self.detail,
            "sim_time": self.sim_time,
            "node": self.node,
            "dst": self.dst,
            "kind": self.kind,
            "attempts": self.attempts,
            "pending_ops": self.pending_ops,
            "net": self.net,
            "faults": self.faults,
            "seeds": self.seeds,
        }


class RunAborted(RuntimeError):
    """Wrapper raised by ``run_app`` carrying the :class:`RunFailure`."""

    def __init__(self, failure: RunFailure):
        super().__init__(failure.detail)
        self.failure = failure


def _pending_ops(cluster) -> dict:
    """Per-node counts of in-flight reliable sends / outstanding requests."""
    out: dict[int, dict[str, int]] = {}
    for node in getattr(cluster, "nodes", []):
        transport = node.transport
        acks = len(transport._ack_events)
        replies = len(transport._pending_replies)
        if acks or replies:
            out[node.id] = {"pending_acks": acks, "pending_replies": replies}
    return out


def describe_failure(exc: BaseException, cluster) -> Optional[RunFailure]:
    """Build a :class:`RunFailure` if ``exc``'s cause chain is an expected
    fault outcome; return ``None`` for genuine bugs (caller re-raises)."""
    from repro.net.transport import RequestError

    cause: Optional[BaseException] = exc
    while cause is not None:
        if isinstance(cause, (RequestError, NodeCrashed)):
            break
        cause = cause.__cause__
    if cause is None:
        return None
    sim = cluster.sim
    stats = cluster.stats
    # embed the exact hostile inputs so the abort is one-command reproducible
    # (dump via --faults-out, replay via --faults; docs/robustness.md)
    injector = getattr(sim, "faults", None)
    netcfg = getattr(cluster, "netcfg", None)
    seeds: dict[str, Any] = {}
    if injector is not None:
        seeds["faults_seed"] = injector.plan.seed
    if netcfg is not None:
        seeds["drop_seed"] = netcfg.drop_seed
    common = {
        "sim_time": sim.now,
        "pending_ops": _pending_ops(cluster),
        "net": stats.snapshot() if hasattr(stats, "snapshot") else None,
        "faults": injector.plan.to_json() if injector is not None else None,
        "seeds": seeds or None,
    }
    if isinstance(cause, NodeCrashed):
        return RunFailure(
            reason="node-crash",
            detail=str(cause),
            node=cause.node,
            **common,
        )
    return RunFailure(
        reason="retry-exhausted",
        detail=str(cause),
        node=getattr(cause, "node", None),
        dst=getattr(cause, "dst", None),
        kind=getattr(cause, "kind", None),
        attempts=getattr(cause, "attempts", None),
        **common,
    )


def format_failure(failure: RunFailure) -> str:
    """Render the one-screen diagnostic the CLI prints instead of a traceback."""
    lines = [
        f"run failed: {failure.reason}",
        "-" * (12 + len(failure.reason)),
        f"  {failure.detail}",
        f"  simulated time     {failure.sim_time:.6f} s",
    ]
    if failure.node is not None:
        lines.append(f"  failing node       {failure.node}")
    if failure.dst is not None:
        lines.append(f"  unreachable peer   {failure.dst}")
    if failure.kind is not None:
        lines.append(f"  message kind       {failure.kind}")
    if failure.attempts is not None:
        lines.append(f"  retransmissions    {failure.attempts}")
    if failure.pending_ops:
        lines.append("  pending operations")
        for node in sorted(failure.pending_ops):
            ops = failure.pending_ops[node]
            lines.append(
                f"    node {node:<3} {ops['pending_acks']} unacked sends, "
                f"{ops['pending_replies']} outstanding requests"
            )
    if failure.net:
        net = failure.net
        lines.append(
            f"  network            {net['num_msg']} msgs, {net['rexmit']} rexmit, "
            f"{net['drops']} drops"
        )
        by_cause = net.get("drops_by_cause") or {}
        if by_cause:
            causes = ", ".join(f"{k}={v}" for k, v in sorted(by_cause.items()))
            lines.append(f"  drops by cause     {causes}")
    if failure.faults is not None:
        n_eps = len(failure.faults.get("episodes", []))
        seeds = failure.seeds or {}
        seed_bits = ", ".join(f"{k}={v}" for k, v in sorted(seeds.items()))
        lines.append(
            f"  fault plan         {n_eps} episode(s), {seed_bits or 'no seeds'}"
        )
        lines.append(
            "                     (dump with --faults-out PLAN.json, replay "
            "with --faults PLAN.json)"
        )
    lines.append(
        "  hint: raise max_retries / rexmit_timeout, enable backoff "
        "(backoff_factor > 1), or soften the fault plan"
    )
    return "\n".join(lines)
