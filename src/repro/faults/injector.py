"""The fault injector: installs a :class:`~repro.faults.plan.FaultPlan` on a
cluster and answers the network/CPU layers' hook queries.

Contract (mirroring ``tracer``/``metrics``):

* **Zero overhead when absent.**  ``Simulator.faults`` is ``None`` by
  default; every hook site guards with ``if faults is not None`` before
  doing any work, so a build with fault support but no plan executes the
  exact same simulator events as one without it (bit-identity is
  test-enforced against the committed sweep fingerprints).
* **Determinism.**  One ``RandomState`` stream, seeded from the plan and
  *separate* from the NIC's RED stream, consumed in simulator event order:
  same plan + seed → identical drops, duplicates, reorders, stats, traces.
* **Results invariance.**  Loss/dup/reorder/degrade/slowdown episodes change
  *timing and Rexmit*, never application answers — the reliable transport
  absorbs them.  Only ``crash`` (fail-stop) and plans hostile enough to
  exhaust the retry budget end a run, and those abort cleanly through
  :mod:`repro.faults.failure`.

Hook sites: ``Switch.transfer`` (loss, duplication, reordering, extra
latency), ``Nic.on_arrival`` (receive-buffer shrink), ``Nic`` tx/rx wire
time (bandwidth degradation), ``Node.compute`` (CPU slowdown / pause), and
an installed timer per ``crash`` episode.  Fault events are surfaced as
tracer instants (lane ``"faults"``) and ``fault_*`` metrics when those
observers are installed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.faults.failure import NodeCrashed
from repro.faults.plan import Episode, FaultPlan, FaultPlanError

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.cluster import Cluster
    from repro.net.message import Message

__all__ = ["FaultInjector", "install_faults"]

# decorrelates the fault stream from the RED stream (cfg.drop_seed [+ node])
_SEED_SALT = 0x5DEECE66


class FaultInjector:
    """Evaluates a fault plan against live traffic.  Create one per run."""

    def __init__(self, plan: FaultPlan):
        plan.validate()
        self.plan = plan
        self._rng = np.random.RandomState((plan.seed + _SEED_SALT) % 2**32)
        self.sim = None
        self.stats = None
        # split by hook so each site scans only the episodes it can match
        self._loss = plan.by_kind("loss")
        degrade = plan.by_kind("degrade")
        self._lat = tuple(ep for ep in degrade if ep.latency_add > 0.0)
        self._bw = tuple(ep for ep in degrade if ep.bandwidth_factor != 1.0)
        self._buffer = plan.by_kind("buffer")
        self._dup = plan.by_kind("duplicate")
        self._reorder = plan.by_kind("reorder")
        self._slow = plan.by_kind("slowdown")
        self._pause = plan.by_kind("pause")
        self._crashes = plan.by_kind("crash")
        # counters mirrored into the final report even without metrics
        self.injected = {"drop": 0, "duplicate": 0, "reorder": 0}

    # -- installation -------------------------------------------------------------

    def install(self, cluster: "Cluster") -> "FaultInjector":
        """Attach to ``cluster``: validate targets, arm crash timers."""
        if self.sim is not None:
            raise FaultPlanError("a FaultInjector can only be installed once")
        n = cluster.n
        for i, ep in enumerate(self.plan.episodes):
            for attr in ("node", "src", "dst"):
                v = getattr(ep, attr)
                if v is not None and not (0 <= v < n):
                    raise FaultPlanError(
                        f"episodes[{i}].{attr}: {ep.kind}: {attr}={v} out of "
                        f"range for a {n}-node cluster",
                        field=attr,
                    )
        self.sim = cluster.sim
        # mutate the per-node shards (cluster.stats is a merged snapshot);
        # fault drops are attributed to the sending node
        self.stats = cluster.node_stats
        cluster.sim.faults = self
        for ep in self._crashes:
            cluster.sim.schedule_at(
                max(ep.start, cluster.sim.now), self._crash, ep
            )
        return self

    # -- message-level hooks (Switch.transfer) -------------------------------------

    def on_transfer(self, msg: "Message") -> Optional[tuple]:
        """Decide the fate of one switch transfer.

        Returns ``None`` if the message is dropped (already counted/traced),
        else ``(extra_delay, duplicate_delay_or_None)`` where both delays are
        *additional* to the normal switch latency.
        """
        now = self.sim.now
        src, dst = msg.src, msg.dst
        for ep in self._loss:
            if (
                ep.start <= now < ep.end
                and ep.matches(src, dst)
                and self._rng.random_sample() < ep.drop_prob
            ):
                self.injected["drop"] += 1
                self.stats[src].count_drop("fault")
                self._observe("drop", msg, now)
                return None
        extra = 0.0
        for ep in self._lat:
            if ep.start <= now < ep.end and ep.matches(src, dst):
                extra += ep.latency_add
        for ep in self._reorder:
            if (
                ep.start <= now < ep.end
                and ep.matches(src, dst)
                and self._rng.random_sample() < ep.reorder_prob
            ):
                extra += self._rng.random_sample() * ep.reorder_delay
                self.injected["reorder"] += 1
                self._observe("reorder", msg, now)
        dup: Optional[float] = None
        for ep in self._dup:
            if (
                ep.start <= now < ep.end
                and ep.matches(src, dst)
                and self._rng.random_sample() < ep.dup_prob
            ):
                dup = extra
                self.injected["duplicate"] += 1
                self._observe("duplicate", msg, now)
                break
        return extra, dup

    def _observe(self, what: str, msg: "Message", now: float) -> None:
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.instant(
                msg.dst, "faults", "fault", f"{what} {msg.kind.name}",
                now, {"src": msg.src, "bytes": msg.size},
            )
        metrics = self.sim.metrics
        if metrics is not None:
            metrics.inc(f"fault_{what}s", kind=msg.kind.name)

    # -- node-level hooks ----------------------------------------------------------

    def buffer_factor(self, node: int) -> float:
        """Combined receive-buffer shrink factor for ``node`` right now."""
        f = 1.0
        now = self.sim.now
        for ep in self._buffer:
            if ep.start <= now < ep.end and (ep.node is None or ep.node == node):
                f *= ep.buffer_factor
        return f

    def bandwidth_factor(self, node: int) -> float:
        """Wire-time multiplier (>= 1) for ``node``'s NIC right now."""
        f = 1.0
        now = self.sim.now
        for ep in self._bw:
            if ep.start <= now < ep.end and (
                ep.node is None or ep.node == node
            ):
                f *= ep.bandwidth_factor
        return f

    def compute_seconds(self, node: int, seconds: float) -> float:
        """CPU slowdown/pause: the stretched duration of a compute slice
        starting now on ``node``."""
        now = self.sim.now
        for ep in self._slow:
            if ep.start <= now < ep.end and (ep.node is None or ep.node == node):
                seconds *= ep.cpu_factor
        for ep in self._pause:
            if ep.start <= now < ep.end and (ep.node is None or ep.node == node):
                stall = ep.end - now
                self._observe_pause(node, now, stall)
                seconds += stall
        return seconds

    def _observe_pause(self, node: int, now: float, stall: float) -> None:
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.instant(
                node, "faults", "fault", "pause", now, {"stall": stall}
            )
        metrics = self.sim.metrics
        if metrics is not None:
            metrics.observe("fault_pause_seconds", stall, node=node)

    # -- crash --------------------------------------------------------------------

    def _crash(self, ep: Episode) -> None:
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.instant(
                ep.node, "faults", "fault", f"crash node {ep.node}", self.sim.now
            )
        raise NodeCrashed(ep.node, self.sim.now)


def install_faults(cluster: "Cluster", plan: "FaultPlan | FaultInjector") -> FaultInjector:
    """Install ``plan`` (or a pre-built injector) on ``cluster``."""
    injector = plan if isinstance(plan, FaultInjector) else FaultInjector(plan)
    return injector.install(cluster)
