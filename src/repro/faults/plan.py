"""Declarative, seeded fault plans: a schedule of fault episodes over time.

A :class:`FaultPlan` is the single scripted input describing *everything
hostile* the network and nodes do to a run beyond the baseline model (the
NIC's RED buffer overflow and ``NetConfig.random_drop_prob``).  Plans are
plain data — JSON-serialisable, hashable into cache keys, and installed on a
cluster through :class:`repro.faults.injector.FaultInjector` with the same
None-default, zero-overhead contract as the tracer and metrics registries.

Episode kinds
-------------

``loss``
    Drop messages crossing the switch with ``drop_prob`` during the window.
    Filterable per link (``src``/``dst``) or per node (either endpoint).
``degrade``
    Add ``latency_add`` seconds of switch delay per matching message and/or
    stretch a node's wire time by ``bandwidth_factor`` (>1 = slower link).
``buffer``
    Shrink a node's receive buffer (capacity *and* RED threshold) by
    ``buffer_factor`` (<1 = smaller), amplifying congestion loss.
``duplicate``
    Deliver a second copy of matching messages with ``dup_prob`` — exercises
    the transport's duplicate suppression.
``reorder``
    With ``reorder_prob``, delay a matching message by a bounded extra
    ``U(0, reorder_delay)`` so later messages can overtake it.
``slowdown``
    Multiply compute time charged on ``node`` by ``cpu_factor`` during the
    window.
``pause``
    Suspend ``node``'s compute: work started inside the window additionally
    waits until the window ends (a GC stall / OS hiccup).  Requires a finite
    ``end``.
``crash``
    Fail-stop ``node`` at ``start``: the run aborts cleanly with a
    structured :class:`repro.faults.failure.RunFailure` diagnostic.

Determinism
-----------

All randomness (loss, duplication, reordering) draws from one
``numpy.random.RandomState`` seeded by ``FaultPlan.seed`` — a stream separate
from the NIC's RED stream (``NetConfig.drop_seed``), consumed in simulator
event order.  Replaying the same plan + seed on the same build reproduces
identical statistics, traces and timings, bit for bit.
"""

from __future__ import annotations

import dataclasses
import json
import math
from dataclasses import dataclass
from typing import Any, Iterable, Optional

__all__ = ["Episode", "FaultPlan", "FaultPlanError", "EPISODE_KINDS"]

EPISODE_KINDS = (
    "loss",
    "degrade",
    "buffer",
    "duplicate",
    "reorder",
    "slowdown",
    "pause",
    "crash",
)

# per-kind knobs an episode of that kind is allowed to set (beyond the
# window and targeting fields shared by every kind)
_KIND_FIELDS = {
    "loss": ("drop_prob",),
    "degrade": ("latency_add", "bandwidth_factor"),
    "buffer": ("buffer_factor",),
    "duplicate": ("dup_prob",),
    "reorder": ("reorder_prob", "reorder_delay"),
    "slowdown": ("cpu_factor",),
    "pause": (),
    "crash": (),
}

_SHARED_FIELDS = ("kind", "start", "end", "node", "src", "dst")


class FaultPlanError(ValueError):
    """A fault plan failed validation (unknown kind, bad window, bad knob).

    ``field`` names the offending episode field when one is identifiable;
    plan-level validation prefixes it with the episode index to a full path
    like ``episodes[3].drop_prob`` (the adversary's operator tests lean on
    these paths to pinpoint which mutation produced an invalid plan).
    """

    def __init__(self, message: str, field: Optional[str] = None):
        super().__init__(message)
        self.field = field


def _at_episode(exc: FaultPlanError, index: int) -> FaultPlanError:
    """Re-raise helper: prefix an episode-level error with its plan path."""
    path = f"episodes[{index}]" + (f".{exc.field}" if exc.field else "")
    return FaultPlanError(f"{path}: {exc}", field=exc.field)


@dataclass(frozen=True)
class Episode:
    """One fault episode: a kind, a time window, a target, and its knobs.

    Targeting: ``src``/``dst`` filter the link direction (message-level
    kinds); ``node`` matches either endpoint for message-level kinds and
    names the afflicted node for node-level kinds (``buffer``, ``slowdown``,
    ``pause``, ``crash``, and ``degrade``'s ``bandwidth_factor``).  ``None``
    means "any".
    """

    kind: str
    start: float = 0.0
    end: float = math.inf
    node: Optional[int] = None
    src: Optional[int] = None
    dst: Optional[int] = None
    drop_prob: float = 0.0
    latency_add: float = 0.0
    bandwidth_factor: float = 1.0
    buffer_factor: float = 1.0
    dup_prob: float = 0.0
    reorder_prob: float = 0.0
    reorder_delay: float = 0.0
    cpu_factor: float = 1.0

    def active(self, t: float) -> bool:
        return self.start <= t < self.end

    def matches(self, src: int, dst: int) -> bool:
        """Does a message ``src -> dst`` fall under this episode's target?"""
        if self.src is not None and self.src != src:
            return False
        if self.dst is not None and self.dst != dst:
            return False
        if self.node is not None and self.node not in (src, dst):
            return False
        return True

    def validate(self) -> None:
        if self.kind not in EPISODE_KINDS:
            raise FaultPlanError(
                f"unknown episode kind {self.kind!r}; expected one of {EPISODE_KINDS}",
                field="kind",
            )
        if not (self.start >= 0.0):
            raise FaultPlanError(
                f"{self.kind}: start must be >= 0, got {self.start!r}", field="start"
            )
        if not (self.end > self.start):
            raise FaultPlanError(
                f"{self.kind}: empty window [{self.start!r}, {self.end!r})",
                field="end",
            )
        allowed = set(_KIND_FIELDS[self.kind])
        for field in dataclasses.fields(self):
            if field.name in _SHARED_FIELDS or field.name in allowed:
                continue
            if getattr(self, field.name) != field.default:
                raise FaultPlanError(
                    f"{self.kind}: knob {field.name!r} is not valid for this kind",
                    field=field.name,
                )
        for prob in ("drop_prob", "dup_prob", "reorder_prob"):
            v = getattr(self, prob)
            if not (0.0 <= v <= 1.0):
                raise FaultPlanError(
                    f"{self.kind}: {prob} must be in [0, 1], got {v!r}", field=prob
                )
        if self.latency_add < 0:
            raise FaultPlanError(f"{self.kind}: delays must be >= 0", field="latency_add")
        if self.reorder_delay < 0:
            raise FaultPlanError(
                f"{self.kind}: delays must be >= 0", field="reorder_delay"
            )
        if self.bandwidth_factor < 1.0:
            raise FaultPlanError(
                f"degrade: bandwidth_factor must be >= 1 (slower), "
                f"got {self.bandwidth_factor!r}",
                field="bandwidth_factor",
            )
        if not (0.0 < self.buffer_factor <= 1.0):
            raise FaultPlanError(
                f"buffer: buffer_factor must be in (0, 1], got {self.buffer_factor!r}",
                field="buffer_factor",
            )
        if self.cpu_factor < 1.0:
            raise FaultPlanError(
                f"slowdown: cpu_factor must be >= 1, got {self.cpu_factor!r}",
                field="cpu_factor",
            )
        if self.kind == "pause" and not math.isfinite(self.end):
            raise FaultPlanError("pause: requires a finite end", field="end")
        if self.kind in ("slowdown", "pause", "crash", "buffer") and self.node is None:
            # whole-cluster slowdowns are legal; crash must name its victim
            if self.kind == "crash":
                raise FaultPlanError("crash: requires a node", field="node")

    def to_json(self) -> dict:
        """Minimal dict: only non-default fields, always including ``kind``."""
        out: dict[str, Any] = {"kind": self.kind}
        for field in dataclasses.fields(self):
            if field.name == "kind":
                continue
            value = getattr(self, field.name)
            if field.name == "end" and value == math.inf:
                continue
            if value != field.default:
                out[field.name] = value
        return out

    def replace(self, **changes: Any) -> "Episode":
        """A copy with ``changes`` applied (mutation-operator workhorse)."""
        return dataclasses.replace(self, **changes)

    @classmethod
    def from_json(cls, data: dict) -> "Episode":
        if not isinstance(data, dict) or "kind" not in data:
            raise FaultPlanError(
                f"episode must be an object with a 'kind': {data!r}", field="kind"
            )
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise FaultPlanError(
                f"{data['kind']}: unknown episode field(s) {sorted(unknown)}",
                field=sorted(unknown)[0],
            )
        ep = cls(**data)
        ep.validate()
        return ep


@dataclass(frozen=True)
class FaultPlan:
    """A seeded schedule of fault episodes.

    ``seed`` drives every probabilistic episode; two runs of the same plan
    on the same build are bit-identical.  An empty plan is legal and
    behaves exactly like no plan at all (test-enforced).
    """

    episodes: tuple = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "episodes", tuple(self.episodes))

    def validate(self) -> "FaultPlan":
        for i, ep in enumerate(self.episodes):
            try:
                ep.validate()
            except FaultPlanError as exc:
                raise _at_episode(exc, i) from exc
        return self

    def by_kind(self, *kinds: str) -> tuple:
        return tuple(ep for ep in self.episodes if ep.kind in kinds)

    def extended(self, *episodes: Episode) -> "FaultPlan":
        """A new plan with ``episodes`` appended (same seed)."""
        return FaultPlan(self.episodes + tuple(episodes), seed=self.seed)

    def replaced(self, index: int, episode: Episode) -> "FaultPlan":
        """A new plan with ``episodes[index]`` swapped for ``episode``."""
        episodes = list(self.episodes)
        episodes[index] = episode
        return FaultPlan(tuple(episodes), seed=self.seed)

    def without(self, index: int) -> "FaultPlan":
        """A new plan with ``episodes[index]`` removed."""
        episodes = list(self.episodes)
        del episodes[index]
        return FaultPlan(tuple(episodes), seed=self.seed)

    def reseeded(self, seed: int) -> "FaultPlan":
        """The same schedule driven by a different fault-RNG seed."""
        return FaultPlan(self.episodes, seed=seed)

    def canonical(self) -> str:
        """Deterministic JSON string — dedup/memo key for search engines."""
        return json.dumps(self.to_json(), sort_keys=True)

    def to_json(self) -> dict:
        return {
            "seed": self.seed,
            "episodes": [ep.to_json() for ep in self.episodes],
        }

    @classmethod
    def from_json(cls, data: dict) -> "FaultPlan":
        if not isinstance(data, dict):
            raise FaultPlanError(f"fault plan must be a JSON object, got {type(data)}")
        unknown = set(data) - {"seed", "episodes"}
        if unknown:
            raise FaultPlanError(f"unknown fault-plan field(s) {sorted(unknown)}")
        episodes = data.get("episodes", [])
        if not isinstance(episodes, list):
            raise FaultPlanError("'episodes' must be a list", field="episodes")
        parsed = []
        for i, ep in enumerate(episodes):
            try:
                parsed.append(Episode.from_json(ep))
            except FaultPlanError as exc:
                raise _at_episode(exc, i) from exc
        return cls(
            episodes=tuple(parsed),
            seed=int(data.get("seed", 0)),
        ).validate()

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        try:
            with open(path) as fh:
                data = json.load(fh)
        except json.JSONDecodeError as exc:
            raise FaultPlanError(f"{path}: not valid JSON: {exc}") from exc
        return cls.from_json(data)

    def dump(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_json(), fh, indent=1, sort_keys=True)
            fh.write("\n")
