"""Deterministic fault injection (``repro.faults``).

Scripted, seeded fault schedules (:class:`FaultPlan`) installed on a
simulated cluster via :class:`FaultInjector`, plus the structured
:class:`RunFailure` reporting that replaces tracebacks when a run cannot
complete.  See docs/robustness.md for the schema, the determinism/replay
guarantees, and the LRC_d-vs-VC_sd degradation example.
"""

from repro.faults.failure import (
    EXIT_RUN_FAILURE,
    NodeCrashed,
    RunAborted,
    RunFailure,
    describe_failure,
    format_failure,
)
from repro.faults.injector import FaultInjector, install_faults
from repro.faults.plan import EPISODE_KINDS, Episode, FaultPlan, FaultPlanError

__all__ = [
    "EPISODE_KINDS",
    "EXIT_RUN_FAILURE",
    "Episode",
    "FaultInjector",
    "FaultPlan",
    "FaultPlanError",
    "NodeCrashed",
    "RunAborted",
    "RunFailure",
    "describe_failure",
    "format_failure",
    "install_faults",
]
