"""Adversarial fault search: find the worst-case ``FaultPlan`` per protocol.

PR 5's random-loss grid (``BENCH_faults.json``) samples the fault space
uniformly; this module *searches* it.  A seeded, deterministic engine —
greedy hill-climb folded into a small (mu+lambda) evolutionary population —
walks the :class:`~repro.faults.plan.Episode` schedule space through typed
mutation/crossover operators (shift/widen windows, retarget links, escalate
knobs, splice episodes across kinds) looking for the plan that degrades a
given (app, protocol, nprocs) cell the most.

Fitness is **dual**, compared lexicographically as ``(rank, magnitude)``:

``consistency`` (rank 2)
    The consistency oracle (:mod:`repro.obs.oracle`) reports findings on the
    run's access history, or the answer fails sequential verification.  An
    immediate jackpot — this is a protocol bug, not a slow cell.
``abort`` (rank 1)
    The run died (:class:`~repro.faults.failure.RunAborted`): retry budget
    exhausted or congestion collapse.  Magnitude grows the *earlier* the
    abort lands (baseline time / abort time).
``slowdown`` (rank 0)
    The run completed; magnitude is simulated time over the clean baseline.

``crash`` episodes are deliberately **excluded** from the operator space: a
fail-stop trivially maxes the abort class and would collapse the search onto
a boring denial-of-service.  The interesting adversary degrades the protocol
through traffic it is supposed to absorb.

Every candidate evaluates through the content-addressed sweep cache
(:func:`repro.bench.sweep.cell_key` with the plan JSON hashed into the key),
so restarts, shrink passes and population duplicates are free.  All
randomness draws from one ``random.Random(seed)`` consumed in a fixed order:
a search with the same seed + budget is bit-reproducible, cache on or off
(``tests/faults/test_adversary.py`` pins this).

Surfaced as ``python -m repro adversary`` and, grid-wise, as
:mod:`repro.bench.adversarial` (the committed ``BENCH_adversarial.json``).
See docs/robustness.md ("Adversarial search").
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.faults.failure import RunAborted
from repro.faults.plan import Episode, FaultPlan

__all__ = [
    "AdversaryLimits",
    "EvalOutcome",
    "Evaluator",
    "Fitness",
    "MUTATIONS",
    "SearchResult",
    "crossover",
    "fitness_of",
    "random_episode",
    "search",
    "seed_plans",
]

# kinds the generator/mutators may emit: everything except fail-stop
GENERATED_KINDS = (
    "loss",
    "degrade",
    "buffer",
    "duplicate",
    "reorder",
    "slowdown",
    "pause",
)


@dataclass(frozen=True)
class AdversaryLimits:
    """Caps on the operator space: how hostile a candidate plan may get.

    ``horizon`` is the clean baseline's simulated time; episode windows are
    sampled inside ``[0, horizon)`` (an episode that outlives the clean run
    still bites a degraded one — infinite ends are allowed too).  The knob
    caps keep the search away from plans that trivially exhaust the
    transport's retry budget everywhere; with the default ``max_retries=20``
    a ``drop_prob`` at ``max_drop`` still completes essentially always, so
    the adversary must *schedule* hostility to win, not just crank it.
    """

    horizon: float
    nprocs: int
    max_drop: float = 0.35
    max_dup: float = 0.5
    max_reorder: float = 0.5
    max_reorder_delay: float = 0.01
    max_latency: float = 0.01
    max_bandwidth: float = 8.0
    min_buffer: float = 0.25
    max_cpu: float = 8.0

    def knob_range(self, knob: str) -> tuple[float, float]:
        """(benign, hostile) endpoints for one knob."""
        return {
            "drop_prob": (0.0, self.max_drop),
            "dup_prob": (0.0, self.max_dup),
            "reorder_prob": (0.0, self.max_reorder),
            "reorder_delay": (0.0, self.max_reorder_delay),
            "latency_add": (0.0, self.max_latency),
            "bandwidth_factor": (1.0, self.max_bandwidth),
            "buffer_factor": (1.0, self.min_buffer),  # hostile end is *small*
            "cpu_factor": (1.0, self.max_cpu),
        }[knob]


# knobs each generated kind exposes to escalate/soften
_KIND_KNOBS = {
    "loss": ("drop_prob",),
    "degrade": ("latency_add", "bandwidth_factor"),
    "buffer": ("buffer_factor",),
    "duplicate": ("dup_prob",),
    "reorder": ("reorder_prob", "reorder_delay"),
    "slowdown": ("cpu_factor",),
    "pause": (),
}


def _clamp(v: float, lo: float, hi: float) -> float:
    return max(lo, min(hi, v))


def _window(rng: random.Random, limits: AdversaryLimits,
            finite: bool = False) -> tuple[float, float]:
    """Sample a window inside the horizon; infinite ends unless ``finite``."""
    start = round(rng.uniform(0.0, limits.horizon), 6)
    if not finite and rng.random() < 0.3:
        return start, math.inf
    duration = rng.uniform(limits.horizon / 20.0, limits.horizon)
    return start, round(start + max(duration, 1e-6), 6)


def _target(rng: random.Random, kind: str, limits: AdversaryLimits) -> dict:
    """Sample targeting fields legal for ``kind``."""
    n = limits.nprocs
    if kind in ("buffer", "slowdown", "pause"):
        # node-level kinds: whole-cluster or one victim
        return {} if rng.random() < 0.4 else {"node": rng.randrange(n)}
    roll = rng.random()
    if roll < 0.4:
        return {}  # everywhere
    if roll < 0.7:
        return {"node": rng.randrange(n)}
    src = rng.randrange(n)
    dst = rng.randrange(n - 1)
    return {"src": src, "dst": dst if dst < src else dst + 1}


def random_episode(rng: random.Random, limits: AdversaryLimits) -> Episode:
    """One fresh episode of a random (non-crash) kind, knobs mid-hostile."""
    kind = rng.choice(GENERATED_KINDS)
    start, end = _window(rng, limits, finite=(kind == "pause"))
    knobs = {}
    for knob in _KIND_KNOBS[kind]:
        benign, hostile = limits.knob_range(knob)
        knobs[knob] = round(benign + (hostile - benign) * rng.uniform(0.2, 0.8), 6)
    return Episode(kind=kind, start=start, end=end,
                   **_target(rng, kind, limits), **knobs)


# -- mutation operators -----------------------------------------------------------
#
# Every operator maps (rng, plan, limits) -> a new plan that passes
# ``validate()`` (property-tested).  Operators on an empty plan fall back to
# adding an episode so the search can always move.


def _pick(rng: random.Random, plan: FaultPlan) -> int:
    return rng.randrange(len(plan.episodes))


def mutate_shift_window(rng: random.Random, plan: FaultPlan,
                        limits: AdversaryLimits) -> FaultPlan:
    """Slide one episode's window in time (duration preserved)."""
    if not plan.episodes:
        return mutate_add_episode(rng, plan, limits)
    i = _pick(rng, plan)
    ep = plan.episodes[i]
    delta = rng.uniform(-limits.horizon / 4.0, limits.horizon / 4.0)
    start = round(max(0.0, ep.start + delta), 6)
    end = ep.end if math.isinf(ep.end) else round(start + (ep.end - ep.start), 6)
    return plan.replaced(i, ep.replace(start=start, end=end))


def mutate_widen_window(rng: random.Random, plan: FaultPlan,
                        limits: AdversaryLimits) -> FaultPlan:
    """Stretch or shrink one episode's window about its start."""
    if not plan.episodes:
        return mutate_add_episode(rng, plan, limits)
    i = _pick(rng, plan)
    ep = plan.episodes[i]
    if math.isinf(ep.end):
        # give an open-ended episode a finite window (or leave it alone)
        duration = rng.uniform(limits.horizon / 10.0, limits.horizon)
        return plan.replaced(i, ep.replace(end=round(ep.start + duration, 6)))
    duration = (ep.end - ep.start) * rng.uniform(0.5, 2.0)
    return plan.replaced(
        i, ep.replace(end=round(ep.start + max(duration, 1e-6), 6))
    )


def mutate_retarget(rng: random.Random, plan: FaultPlan,
                    limits: AdversaryLimits) -> FaultPlan:
    """Point one episode at a different link / node / the whole cluster."""
    if not plan.episodes:
        return mutate_add_episode(rng, plan, limits)
    i = _pick(rng, plan)
    ep = plan.episodes[i]
    cleared = ep.replace(node=None, src=None, dst=None)
    return plan.replaced(
        i, cleared.replace(**_target(rng, ep.kind, limits))
    )


def _scale_knob(rng: random.Random, ep: Episode, limits: AdversaryLimits,
                toward_hostile: bool) -> Episode:
    knobs = _KIND_KNOBS[ep.kind]
    if not knobs:
        return ep
    knob = rng.choice(knobs)
    benign, hostile = limits.knob_range(knob)
    value = getattr(ep, knob)
    # walk a fraction of the remaining distance toward the chosen end
    target = hostile if toward_hostile else benign
    step = rng.uniform(0.3, 0.9)
    new = value + (target - value) * step
    lo, hi = (benign, hostile) if benign <= hostile else (hostile, benign)
    return ep.replace(**{knob: round(_clamp(new, lo, hi), 6)})


def mutate_escalate(rng: random.Random, plan: FaultPlan,
                    limits: AdversaryLimits) -> FaultPlan:
    """Push one episode's knob toward its hostile cap."""
    if not plan.episodes:
        return mutate_add_episode(rng, plan, limits)
    i = _pick(rng, plan)
    return plan.replaced(i, _scale_knob(rng, plan.episodes[i], limits, True))


def mutate_soften(rng: random.Random, plan: FaultPlan,
                  limits: AdversaryLimits) -> FaultPlan:
    """Relax one episode's knob toward benign (escape over-hostile plateaus:
    a plan can be *too* hostile — aborting early caps its slowdown)."""
    if not plan.episodes:
        return mutate_add_episode(rng, plan, limits)
    i = _pick(rng, plan)
    return plan.replaced(i, _scale_knob(rng, plan.episodes[i], limits, False))


def mutate_add_episode(rng: random.Random, plan: FaultPlan,
                       limits: AdversaryLimits) -> FaultPlan:
    return plan.extended(random_episode(rng, limits))


def mutate_drop_episode(rng: random.Random, plan: FaultPlan,
                        limits: AdversaryLimits) -> FaultPlan:
    if not plan.episodes:
        return mutate_add_episode(rng, plan, limits)
    return plan.without(_pick(rng, plan))


def mutate_reseed(rng: random.Random, plan: FaultPlan,
                  limits: AdversaryLimits) -> FaultPlan:
    """Same schedule, different fault-RNG stream."""
    return plan.reseeded(rng.randrange(2**31))


# (operator, selection weight): escalation and structural growth dominate
MUTATIONS: tuple[tuple[Callable, int], ...] = (
    (mutate_escalate, 3),
    (mutate_add_episode, 2),
    (mutate_shift_window, 2),
    (mutate_widen_window, 2),
    (mutate_retarget, 2),
    (mutate_soften, 1),
    (mutate_drop_episode, 1),
    (mutate_reseed, 1),
)


def crossover(rng: random.Random, a: FaultPlan, b: FaultPlan) -> FaultPlan:
    """Splice two plans: each parent contributes a random episode subset
    (at least one episode survives when either parent has any)."""
    keep_a = [ep for ep in a.episodes if rng.random() < 0.5]
    keep_b = [ep for ep in b.episodes if rng.random() < 0.5]
    episodes = tuple(keep_a + keep_b)
    if not episodes and (a.episodes or b.episodes):
        pool = a.episodes + b.episodes
        episodes = (pool[rng.randrange(len(pool))],)
    return FaultPlan(episodes, seed=a.seed)


# -- fitness ----------------------------------------------------------------------


@dataclass(frozen=True, order=True)
class Fitness:
    """Lexicographic fitness: class rank first, magnitude second."""

    rank: int  # 2 = consistency finding (jackpot), 1 = abort, 0 = completed
    magnitude: float

    @property
    def cls(self) -> str:
        return ("slowdown", "abort", "consistency")[self.rank]


@dataclass(frozen=True)
class EvalOutcome:
    """What one candidate plan did to the cell (cache payload)."""

    completed: bool
    sim_time: float
    rexmit: int = 0
    drops: int = 0
    num_msg: int = 0
    findings: int = 0
    verdict: str = "clean"  # clean | violations | not-applicable | wrong-answer
    failure: Optional[dict] = None
    verified: Optional[bool] = None


def fitness_of(outcome: EvalOutcome, baseline_time: float) -> Fitness:
    if outcome.findings > 0 or outcome.verdict in ("violations", "wrong-answer"):
        return Fitness(2, float(max(outcome.findings, 1)))
    if not outcome.completed:
        return Fitness(1, round(baseline_time / max(outcome.sim_time, 1e-9), 4))
    return Fitness(0, round(outcome.sim_time / baseline_time, 4))


def _outcome_summary(plan: FaultPlan, outcome: EvalOutcome,
                     baseline_time: float) -> dict:
    f = fitness_of(outcome, baseline_time)
    return {
        "plan": plan.to_json(),
        "episodes": len(plan.episodes),
        "class": f.cls,
        "magnitude": f.magnitude,
        "sim_time": round(outcome.sim_time, 6),
        "slowdown": (
            round(outcome.sim_time / baseline_time, 4) if outcome.completed else None
        ),
        "rexmit": outcome.rexmit,
        "drops": outcome.drops,
        "findings": outcome.findings,
        "verdict": outcome.verdict,
        **({"failure": outcome.failure} if outcome.failure is not None else {}),
    }


# -- evaluation through the sweep cache -------------------------------------------


class Evaluator:
    """Runs candidate plans against one (app, protocol, nprocs) cell.

    Every evaluation records the access history and replays it under the
    consistency oracle — the jackpot signal — and verifies the answer
    against the sequential reference.  Results memoise in-process (by the
    plan's canonical JSON) and, when ``cache_dir`` is set, persist in the
    content-addressed sweep cache keyed by the plan itself, so a restarted
    or re-seeded search re-runs nothing it has already tried.
    """

    def __init__(self, app: str, protocol: str, nprocs: int,
                 cache_dir: Optional[str] = None, variant: str = "default"):
        self.app = app
        self.protocol = protocol
        self.nprocs = nprocs
        self.variant = variant
        self.cache_dir = cache_dir
        self.evals = 0  # cold evaluations actually simulated
        self._memo: dict[Optional[str], EvalOutcome] = {}
        if cache_dir is not None:
            from repro.bench.sweep import ResultCache, code_fingerprint

            self._cache = ResultCache(cache_dir)
            self._code_fp = code_fingerprint()
        else:
            self._cache = None
            self._code_fp = None

    def _key(self, plan: Optional[FaultPlan]) -> str:
        from repro.bench.sweep import SweepCell, cell_key

        cell = SweepCell(app=self.app, protocol=self.protocol,
                         nprocs=self.nprocs, variant=self.variant)
        return cell_key(cell, self._code_fp, check=True,
                        faults=plan.to_json() if plan is not None else None)

    def evaluate(self, plan: Optional[FaultPlan]) -> EvalOutcome:
        memo_key = plan.canonical() if plan is not None else None
        hit = self._memo.get(memo_key)
        if hit is not None:
            return hit
        if self._cache is not None:
            cached = self._cache.get(self._key(plan))
            if cached is not None:
                outcome = cached[0]
                self._memo[memo_key] = outcome
                return outcome
        import time

        t0 = time.perf_counter()
        outcome = self._run(plan)
        if self._cache is not None:
            self._cache.put(self._key(plan), outcome,
                            time.perf_counter() - t0, 0)
        self._memo[memo_key] = outcome
        self.evals += 1
        return outcome

    def _run(self, plan: Optional[FaultPlan]) -> EvalOutcome:
        from repro.apps import APPS
        from repro.apps.common import run_app
        from repro.faults.injector import FaultInjector
        from repro.obs.oracle import AccessRecorder, check_history

        oracle = AccessRecorder()
        injector = FaultInjector(plan) if plan is not None else None
        aborted_failure: Optional[dict] = None
        sim_time = 0.0
        rexmit = drops = num_msg = 0
        verified: Optional[bool] = None
        verdict = "clean"
        try:
            result = run_app(
                APPS[self.app], self.protocol, self.nprocs,
                variant=self.variant, verify=True,
                oracle=oracle, faults=injector,
            )
            net = getattr(result.stats, "net", result.stats)
            sim_time, verified = result.time, result.verified
            rexmit, drops, num_msg = net.rexmit, net.drops, net.num_msg
        except RunAborted as exc:
            aborted_failure = exc.failure.to_json()
            sim_time = exc.failure.sim_time
        except AssertionError:
            # the run finished but the answer is wrong: a protocol bug the
            # verifier caught before the oracle did — jackpot class
            return EvalOutcome(completed=True, sim_time=0.0, verified=False,
                               verdict="wrong-answer", findings=1)
        report = check_history(oracle, nprocs=self.nprocs,
                               protocol=self.protocol,
                               aborted=aborted_failure is not None)
        if report.verdict == "violations":
            verdict = "violations"
        return EvalOutcome(
            completed=aborted_failure is None,
            sim_time=sim_time,
            rexmit=rexmit, drops=drops, num_msg=num_msg,
            findings=len(report.findings), verdict=verdict,
            failure=aborted_failure, verified=verified,
        )


# -- seed plans -------------------------------------------------------------------


def seed_plans(rng: random.Random, limits: AdversaryLimits,
               population: int) -> list[FaultPlan]:
    """Deterministic starting population: hand-rolled archetypes first
    (uniform loss at the random-grid's worst rate, heavy windowed loss, a
    degraded link, duplicate+reorder chaos, compute skew), then random
    plans to fill ``population``."""
    mk_seed = lambda: rng.randrange(2**31)  # noqa: E731
    plans = [
        # the random-loss grid's worst cell, as a floor to improve on
        FaultPlan((Episode(kind="loss", drop_prob=0.02),), seed=mk_seed()),
        FaultPlan((Episode(kind="loss", drop_prob=limits.max_drop / 2.0),),
                  seed=mk_seed()),
        FaultPlan(
            (Episode(kind="loss", drop_prob=limits.max_drop,
                     start=0.0, end=round(limits.horizon / 3.0, 6)),),
            seed=mk_seed(),
        ),
        FaultPlan(
            (
                Episode(kind="degrade", latency_add=limits.max_latency / 2.0),
                Episode(kind="degrade", node=0,
                        bandwidth_factor=limits.max_bandwidth / 2.0),
            ),
            seed=mk_seed(),
        ),
        FaultPlan(
            (
                Episode(kind="duplicate", dup_prob=limits.max_dup / 2.0),
                Episode(kind="reorder", reorder_prob=limits.max_reorder / 2.0,
                        reorder_delay=limits.max_reorder_delay / 2.0),
            ),
            seed=mk_seed(),
        ),
        FaultPlan(
            (
                Episode(kind="slowdown", node=0, cpu_factor=limits.max_cpu / 2.0),
                Episode(kind="buffer", node=1 % limits.nprocs,
                        buffer_factor=max(limits.min_buffer, 0.5)),
            ),
            seed=mk_seed(),
        ),
    ]
    while len(plans) < population:
        plans.append(FaultPlan((random_episode(rng, limits),), seed=mk_seed()))
    return plans[:max(population, 1)]


# -- the search -------------------------------------------------------------------


@dataclass
class SearchResult:
    """Everything one adversarial search produced (JSON-stable: no host
    clocks, so a fixed seed+budget reproduces this bit-for-bit)."""

    app: str
    protocol: str
    nprocs: int
    seed: int
    budget: int
    baseline_time: float
    evals: int  # distinct candidate plans evaluated during search
    shrink_evals: int
    best: dict
    best_completed: Optional[dict]
    shrunk: Optional[dict]
    trajectory: list = field(default_factory=list)
    operator_counts: dict = field(default_factory=dict)

    def to_json(self) -> dict:
        return {
            "app": self.app,
            "protocol": self.protocol,
            "nprocs": self.nprocs,
            "seed": self.seed,
            "budget": self.budget,
            "baseline_time": round(self.baseline_time, 6),
            "evals": self.evals,
            "shrink_evals": self.shrink_evals,
            "best": self.best,
            "best_completed": self.best_completed,
            "shrunk": self.shrunk,
            "trajectory": self.trajectory,
            "operator_counts": dict(sorted(self.operator_counts.items())),
        }


def search(
    app: str = "is",
    protocol: str = "vc_d",
    nprocs: int = 8,
    budget: int = 24,
    seed: int = 11,
    population: int = 6,
    cache_dir: Optional[str] = None,
    limits: Optional[AdversaryLimits] = None,
    shrink: bool = True,
    shrink_keep_frac: float = 0.9,
    variant: str = "default",
    log: Optional[Callable[[str], None]] = None,
) -> SearchResult:
    """Run the adversarial search for one (app, protocol, nprocs) cell.

    ``budget`` counts *distinct* candidate plans evaluated (the clean
    baseline and the shrink phase are extra); duplicates produced by
    mutation are free.  The result's ``best`` is the winner under the dual
    fitness; ``best_completed`` separately tracks the highest-slowdown
    candidate that finished — the figure compared against the random-loss
    grid.  With ``shrink`` the winner passes through the delta-debugging
    shrinker (:mod:`repro.faults.shrink`): the smallest episode subset
    still in the winner's fitness class at ``shrink_keep_frac`` of its
    magnitude.
    """
    say = log or (lambda _msg: None)
    budget = max(1, budget)
    rng = random.Random(seed)
    evaluator = Evaluator(app, protocol, nprocs, cache_dir=cache_dir,
                          variant=variant)
    baseline = evaluator.evaluate(None)
    if not baseline.completed or baseline.findings:
        raise RuntimeError(
            f"clean baseline run of {app}/{protocol}/{nprocs}p is not clean: "
            f"{baseline!r}"
        )
    base_t = baseline.sim_time
    limits = limits or AdversaryLimits(horizon=base_t, nprocs=nprocs)
    say(f"baseline {app}/{protocol}/{nprocs}p: {base_t:.3f} simulated s")

    scored: list[tuple[Fitness, FaultPlan, EvalOutcome]] = []
    seen: set[str] = set()
    trajectory: list[dict] = []
    operator_counts: dict[str, int] = {}
    counted = 0
    best: Optional[tuple[Fitness, FaultPlan, EvalOutcome]] = None
    best_completed: Optional[tuple[Fitness, FaultPlan, EvalOutcome]] = None

    def consider(plan: FaultPlan) -> bool:
        """Evaluate one candidate if novel; returns True if budget consumed."""
        nonlocal counted, best, best_completed
        key = plan.canonical()
        if key in seen:
            return False
        seen.add(key)
        outcome = evaluator.evaluate(plan)
        counted += 1
        f = fitness_of(outcome, base_t)
        scored.append((f, plan, outcome))
        scored.sort(key=lambda it: it[0], reverse=True)
        del scored[population:]
        if best is None or f > best[0]:
            best = (f, plan, outcome)
            trajectory.append(
                {"eval": counted, "class": f.cls, "magnitude": f.magnitude}
            )
            say(f"  eval {counted}: new best {f.cls} {f.magnitude}")
        if outcome.completed and not outcome.findings:
            if best_completed is None or f > best_completed[0]:
                best_completed = (f, plan, outcome)
        return True

    for plan in seed_plans(rng, limits, population):
        if counted >= budget:
            break
        consider(plan)

    ops = [op for op, _w in MUTATIONS]
    weights = [w for _op, w in MUTATIONS]
    attempts = 0
    while counted < budget and attempts < budget * 20:
        attempts += 1
        # rank-biased parent choice: quadratic pull toward the front
        parent = scored[int(rng.random() ** 2 * len(scored))][1]
        if len(scored) >= 2 and rng.random() < 0.25:
            other = scored[int(rng.random() ** 2 * len(scored))][1]
            child = crossover(rng, parent, other)
            name = "crossover"
        else:
            op = rng.choices(ops, weights=weights, k=1)[0]
            child = op(rng, parent, limits)
            name = op.__name__
        child.validate()  # operators must emit clean plans — fail loudly
        if consider(child):
            operator_counts[name] = operator_counts.get(name, 0) + 1

    assert best is not None
    winner_f, winner_plan, winner_out = best

    shrunk_summary: Optional[dict] = None
    shrink_evals = 0
    if shrink:
        from repro.faults.shrink import shrink_plan

        before = len(evaluator._memo)

        def keep(candidate: FaultPlan) -> bool:
            out = evaluator.evaluate(candidate)
            f = fitness_of(out, base_t)
            return (f.rank == winner_f.rank
                    and f.magnitude >= shrink_keep_frac * winner_f.magnitude)

        small = shrink_plan(winner_plan, keep)
        shrink_evals = len(evaluator._memo) - before
        small_out = evaluator.evaluate(small)
        shrunk_summary = _outcome_summary(small, small_out, base_t)
        say(
            f"  shrunk {len(winner_plan.episodes)} -> {len(small.episodes)} "
            f"episode(s), class {fitness_of(small_out, base_t).cls}"
        )

    return SearchResult(
        app=app, protocol=protocol, nprocs=nprocs, seed=seed, budget=budget,
        baseline_time=base_t,
        evals=counted, shrink_evals=shrink_evals,
        best=_outcome_summary(winner_plan, winner_out, base_t),
        best_completed=(
            _outcome_summary(best_completed[1], best_completed[2], base_t)
            if best_completed is not None else None
        ),
        shrunk=shrunk_summary,
        trajectory=trajectory,
        operator_counts=operator_counts,
    )
