"""Per-rank runtimes: the primitives application code calls.

:class:`VoppRuntime` exposes exactly the primitives the paper defines in §2
(``acquire_view``, ``release_view``, ``acquire_Rview``, ``release_Rview``,
barriers, and §3.5's ``merge_views``); :class:`TraditionalRuntime` exposes
the lock/barrier style the paper converts from.  Everything that blocks is a
generator to be driven with ``yield from``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from repro.protocols.base import BaseDsmProtocol
from repro.protocols.lrc import LrcProtocol
from repro.protocols.vc import VcProtocol

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.program import BaseSystem

__all__ = ["BaseRuntime", "VoppRuntime", "TraditionalRuntime"]


class BaseRuntime:
    """State shared by both programming styles."""

    def __init__(self, system: "BaseSystem", rank: int):
        self.system = system
        self.rank = rank
        self.proto: BaseDsmProtocol = system.dsm.protocols[rank]
        self.node = self.proto.node

    @property
    def nprocs(self) -> int:
        return self.system.dsm.nprocs

    @property
    def now(self) -> float:
        return self.node.sim.now

    def compute(self, seconds: float) -> Generator:
        """Charge application CPU time (``yield from``)."""
        if self.node.sim.tracer is None:
            return self.node.compute(seconds)
        return self._traced_compute(seconds)

    def _traced_compute(self, seconds: float) -> Generator:
        tracer = self.node.sim.tracer
        tracer.begin(
            self.node.id, "app", "compute", f"compute {seconds:g}s",
            self.node.sim.now, {"seconds": seconds},
        )
        yield from self.node.compute(seconds)
        tracer.end(self.node.id, "app", "compute", self.node.sim.now)

    def barrier(self) -> Generator:
        """Global barrier (consistency semantics depend on the protocol)."""
        return self.proto.barrier()


class VoppRuntime(BaseRuntime):
    """View-Oriented Parallel Programming primitives (paper §2)."""

    def __init__(self, system: "BaseSystem", rank: int):
        super().__init__(system, rank)
        if not isinstance(self.proto, VcProtocol):
            raise TypeError(
                f"VOPP programs need a VC protocol, got {type(self.proto).__name__}"
            )

    def acquire_view(self, view_id: int) -> Generator:
        """Acquire exclusive access to a view (must not be nested)."""
        return self.proto.acquire_view(view_id)

    def release_view(self, view_id: int) -> Generator:
        """Finish exclusive access to a view."""
        return self.proto.release_view(view_id)

    def acquire_Rview(self, view_id: int) -> Generator:
        """Acquire read-only access to a view (nestable, shared)."""
        return self.proto.acquire_rview(view_id)

    def release_Rview(self, view_id: int) -> Generator:
        """Finish read-only access to a view."""
        return self.proto.release_rview(view_id)

    def merge_views(self) -> Generator:
        """Bring this node up to date on *every* view (paper §3.5).

        Expensive but convenient: acquires each known view read-only and
        touches all of its pages, forcing a full update.
        """
        page_size = self.system.dsm.space.page_size
        views = self.system.dsm.views
        for view_id in views.known_views(self.node.id, self.now):
            yield from self.acquire_Rview(view_id)
            for pid in views.pages_of(view_id, self.node.id, self.now):
                yield from self.proto.mm.read_bytes(pid * page_size, 1)
            yield from self.release_Rview(view_id)
        return None


class TraditionalRuntime(BaseRuntime):
    """Lock/barrier (data-race-free) programming on LRC_d."""

    def __init__(self, system: "BaseSystem", rank: int):
        super().__init__(system, rank)
        if not isinstance(self.proto, LrcProtocol):
            raise TypeError(
                f"traditional programs need LRC, got {type(self.proto).__name__}"
            )

    def acquire_lock(self, lock_id: int) -> Generator:
        return self.proto.acquire_lock(lock_id)

    def release_lock(self, lock_id: int) -> Generator:
        return self.proto.release_lock(lock_id)
