"""Public API: the VOPP programming model (the paper's contribution).

Typical use::

    from repro.core import VoppSystem

    system = VoppSystem(nprocs=8, protocol="vc_sd")
    counter = system.alloc_array("counter", shape=(1,), dtype="int64")

    def body(rt):
        for _ in range(100):
            yield from rt.acquire_view(0)
            value = (yield from counter.read(rt))[0]
            yield from counter.write(rt, [0], value + 1)
            yield from rt.release_view(0)
        yield from rt.barrier()

    system.run_program(body)
    print(system.stats.table_row())

Two runtime flavours exist:

* :class:`VoppRuntime` — view primitives (``acquire_view``/``release_view``,
  ``acquire_Rview``/``release_Rview``, ``barrier``, ``merge_views``) for
  VC_d/VC_sd;
* :class:`TraditionalRuntime` — locks + consistency barriers for LRC_d
  (the baseline programming style the paper converts *from*).

Both expose ``rt.compute(seconds)`` for charging application CPU work and
typed :class:`SharedArray` accessors for shared data.
"""

from repro.core.shared_array import SharedArray
from repro.core.vopp import VoppRuntime, TraditionalRuntime
from repro.core.program import VoppSystem, TraditionalSystem, make_system
from repro.protocols.runstats import RunStats
from repro.protocols.base import VoppDisciplineError, ViewOverlapError

__all__ = [
    "SharedArray",
    "VoppRuntime",
    "TraditionalRuntime",
    "VoppSystem",
    "TraditionalSystem",
    "make_system",
    "RunStats",
    "VoppDisciplineError",
    "ViewOverlapError",
]
