"""Typed shared arrays over DSM regions.

A :class:`SharedArray` is the application-facing handle for a shared
allocation: it knows its region, dtype and shape, and translates element
slices into the byte-range reads/writes that drive the page-fault machinery.

Access methods take the calling rank's runtime (``rt``) because each node
reads through *its own* page copies — the same array object is shared by all
ranks, the data is not.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Sequence

import numpy as np

from repro.memory.address_space import Region

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.vopp import BaseRuntime

__all__ = ["SharedArray"]


class SharedArray:
    """An n-dimensional typed array living in the shared address space."""

    def __init__(self, region: Region, shape: tuple[int, ...], dtype: np.dtype):
        self.region = region
        self.shape = tuple(shape)
        self.dtype = np.dtype(dtype)
        self.size = int(np.prod(self.shape))
        if self.size * self.dtype.itemsize != region.size:
            raise ValueError(
                f"region {region.name!r} holds {region.size} bytes but shape "
                f"{self.shape} x {self.dtype} needs {self.size * self.dtype.itemsize}"
            )
        # (start, count) -> (addr, nbytes): apps re-read the same spans every
        # iteration; a hit skips the bounds re-validation
        self._span_cache: dict[tuple[int, int], tuple[int, int]] = {}

    # -- address arithmetic -------------------------------------------------------

    def _flat_span(self, start: int, count: int) -> tuple[int, int]:
        key = (start, count)
        hit = self._span_cache.get(key)
        if hit is not None:
            return hit
        if start < 0 or count < 0 or start + count > self.size:
            raise IndexError(
                f"span [{start}, {start + count}) out of bounds for size {self.size}"
            )
        item = self.dtype.itemsize
        hit = self._span_cache[key] = (self.region.base + start * item, count * item)
        return hit

    def row_span(self, row: int) -> tuple[int, int]:
        """Flat (start, count) of one row of a 2-D array."""
        if len(self.shape) != 2:
            raise ValueError("row_span requires a 2-D array")
        rows, cols = self.shape
        if not (0 <= row < rows):
            raise IndexError(f"row {row} out of range [0, {rows})")
        return row * cols, cols

    # -- element access (all ``yield from``) ------------------------------------------

    def read(self, rt: "BaseRuntime", start: int = 0, count: int | None = None) -> Generator:
        """Read ``count`` elements from flat index ``start``; returns ndarray."""
        if count is None:
            count = self.size - start
        addr, nbytes = self._flat_span(start, count)
        raw = yield from rt.proto.mm.read_bytes(addr, nbytes)
        # `raw` is a fresh contiguous buffer owned by the caller (never a view
        # of page memory), so reinterpreting it in place is safe — the old
        # `tobytes()` + `frombuffer` round-trip copied the data twice
        return raw.view(self.dtype)

    def write(self, rt: "BaseRuntime", start: int, values: "Sequence | np.ndarray") -> Generator:
        """Write ``values`` at flat index ``start``."""
        values = np.asarray(values, dtype=self.dtype).ravel()
        addr, nbytes = self._flat_span(start, values.size)
        yield from rt.proto.mm.write_bytes(addr, values.view(np.uint8))
        return None

    def read_all(self, rt: "BaseRuntime") -> Generator:
        """Read the entire array, reshaped to :attr:`shape`."""
        flat = yield from self.read(rt, 0, self.size)
        return flat.reshape(self.shape)

    def write_all(self, rt: "BaseRuntime", values: "Sequence | np.ndarray") -> Generator:
        values = np.asarray(values, dtype=self.dtype)
        if values.shape != self.shape:
            raise ValueError(f"expected shape {self.shape}, got {values.shape}")
        yield from self.write(rt, 0, values.ravel())
        return None

    def read_row(self, rt: "BaseRuntime", row: int) -> Generator:
        start, count = self.row_span(row)
        return (yield from self.read(rt, start, count))

    def write_row(self, rt: "BaseRuntime", row: int, values) -> Generator:
        start, count = self.row_span(row)
        values = np.asarray(values, dtype=self.dtype).ravel()
        if values.size != count:
            raise ValueError(f"row needs {count} elements, got {values.size}")
        yield from self.write(rt, start, values)
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SharedArray({self.region.name!r}, shape={self.shape}, "
            f"dtype={self.dtype}, base={self.region.base})"
        )
