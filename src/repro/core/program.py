"""System facades and the parallel program runner.

A *system* bundles a :class:`repro.protocols.system.DsmSystem` with typed
array allocation and a runner that spawns one application process per node.
Program bodies are generators taking the per-rank runtime::

    def body(rt):
        yield from rt.barrier()
        ...

``run_program`` drives the simulation to completion, records the run time in
the statistics, and surfaces any worker exception (deadlocks show up as
workers that never finish).
"""

from __future__ import annotations

from typing import Callable, Generator, Optional, Type

import numpy as np

from repro.core.shared_array import SharedArray
from repro.core.vopp import BaseRuntime, TraditionalRuntime, VoppRuntime
from repro.net.config import NetConfig, NodeConfig
from repro.protocols.system import DsmSystem

__all__ = ["BaseSystem", "VoppSystem", "TraditionalSystem", "make_system"]


class BaseSystem:
    """Common facade over a DSM deployment."""

    runtime_cls: Type[BaseRuntime] = BaseRuntime

    def __init__(
        self,
        nprocs: int,
        protocol: str,
        netcfg: Optional[NetConfig] = None,
        nodecfg: Optional[NodeConfig] = None,
        page_size: Optional[int] = None,
        manager_offset: int = 0,
    ):
        self.dsm = DsmSystem(
            nprocs,
            protocol=protocol,
            netcfg=netcfg,
            nodecfg=nodecfg,
            page_size=page_size,
            manager_offset=manager_offset,
        )
        self.arrays: dict[str, SharedArray] = {}
        self.app_output = None  # applications stash their rank-0 read-out here

    # -- convenience properties ----------------------------------------------------

    @property
    def nprocs(self) -> int:
        return self.dsm.nprocs

    @property
    def stats(self):
        return self.dsm.stats

    @property
    def sim(self):
        return self.dsm.sim

    # -- allocation -------------------------------------------------------------------

    def alloc_array(
        self,
        name: str,
        shape: "tuple[int, ...] | int",
        dtype: str = "float64",
        page_aligned: bool = False,
    ) -> SharedArray:
        """Allocate a typed shared array.

        VOPP code should pass ``page_aligned=True`` for each view's data so
        views never share pages; traditional code packs allocations (and may
        false-share) exactly like the original programs.
        """
        if isinstance(shape, int):
            shape = (shape,)
        dt = np.dtype(dtype)
        nbytes = int(np.prod(shape)) * dt.itemsize
        region = self.dsm.alloc(name, nbytes, page_aligned=page_aligned)
        arr = SharedArray(region, shape, dt)
        self.arrays[name] = arr
        return arr

    def array(self, name: str) -> SharedArray:
        return self.arrays[name]

    # -- running ---------------------------------------------------------------------------

    def runtime(self, rank: int) -> BaseRuntime:
        return self.runtime_cls(self, rank)

    def run_program(self, body: Callable[..., Generator], *args, **kwargs) -> list:
        """Run ``body(rt, *args, **kwargs)`` on every node; return results by rank.

        The simulated duration is recorded in ``stats.time``.
        """
        start = self.sim.now
        finish_times: list[float] = []

        def timed(rank: int) -> Generator:
            rt = self.runtime(rank)
            tracer = self.sim.tracer
            if tracer is not None:
                tracer.begin(rank, "app", "run", f"rank {rank}", self.sim.now)
            result = yield from body(rt, *args, **kwargs)
            if tracer is not None:
                tracer.end(rank, "app", "run", self.sim.now)
            finish_times.append(self.sim.now)
            return result

        procs = [
            self.sim.spawn(timed(rank), name=f"app-{rank}") for rank in range(self.nprocs)
        ]
        self.dsm.run()
        stuck = [p.name for p in procs if not p.finished]
        if stuck:
            raise RuntimeError(
                f"workers never finished (deadlock or lost wakeup): {stuck}"
            )
        # the run ends when the last application process finishes; the event
        # heap may keep draining cancelled retransmission timers afterwards,
        # which must not count towards the measured time
        self.stats.time = max(finish_times) - start
        return [p.result for p in procs]


class VoppSystem(BaseSystem):
    """A cluster running a VC protocol with the VOPP runtime.

    ``protocol`` is ``"vc_sd"`` (default, the optimal implementation) or
    ``"vc_d"``.
    """

    runtime_cls = VoppRuntime

    def __init__(self, nprocs: int, protocol: str = "vc_sd", **kw):
        if protocol not in ("vc_d", "vc_sd"):
            raise ValueError(f"VOPP runs on vc_d or vc_sd, not {protocol!r}")
        super().__init__(nprocs, protocol, **kw)


class TraditionalSystem(BaseSystem):
    """A cluster running an LRC variant with the lock/barrier runtime.

    ``protocol`` is ``"lrc_d"`` (homeless, diff-based — the paper's baseline)
    or ``"hlrc_d"`` (home-based — the comparison protocol from the authors'
    companion work).
    """

    runtime_cls = TraditionalRuntime

    def __init__(self, nprocs: int, protocol: str = "lrc_d", **kw):
        if protocol not in ("lrc_d", "hlrc_d"):
            raise ValueError(
                f"traditional programs run on lrc_d or hlrc_d, not {protocol!r}"
            )
        super().__init__(nprocs, protocol, **kw)


def make_system(nprocs: int, protocol: str, **kw) -> BaseSystem:
    """Factory choosing the right facade for a protocol name."""
    if protocol in ("lrc_d", "hlrc_d"):
        return TraditionalSystem(nprocs, protocol=protocol, **kw)
    return VoppSystem(nprocs, protocol=protocol, **kw)
