"""System facades and the parallel program runner.

A *system* bundles a :class:`repro.protocols.system.DsmSystem` with typed
array allocation and a runner that spawns one application process per node.
Program bodies are generators taking the per-rank runtime::

    def body(rt):
        yield from rt.barrier()
        ...

``run_program`` drives the simulation to completion, records the run time in
the statistics, and surfaces any worker exception (deadlocks show up as
workers that never finish).
"""

from __future__ import annotations

from typing import Callable, Generator, Optional, Type

import numpy as np

from repro.core.shared_array import SharedArray
from repro.core.vopp import BaseRuntime, TraditionalRuntime, VoppRuntime
from repro.net.config import NetConfig, NodeConfig
from repro.protocols.system import DsmSystem

__all__ = ["BaseSystem", "VoppSystem", "TraditionalSystem", "PendingRun", "make_system"]


class PendingRun:
    """A spawned-but-not-yet-driven program.

    ``start_program`` spawns the per-rank application processes and returns
    one of these; whoever drives the simulation (the serial ``run_program``
    or the PDES window loop, which alternates ``sim.run(until=...)`` with
    barrier exchanges) calls :meth:`finish` once the event queues drain.
    """

    def __init__(self, start: float, procs: list, finish_times: list):
        self.start = start
        self.procs = procs  # [(rank, Process), ...]
        self.finish_times = finish_times  # appended by the timed() wrappers

    def finish(self) -> dict:
        """Verify every spawned process completed; return results by rank."""
        stuck = [p.name for _, p in self.procs if not p.finished]
        if stuck:
            raise RuntimeError(
                f"workers never finished (deadlock or lost wakeup): {stuck}"
            )
        return {rank: p.result for rank, p in self.procs}


class BaseSystem:
    """Common facade over a DSM deployment."""

    runtime_cls: Type[BaseRuntime] = BaseRuntime

    def __init__(
        self,
        nprocs: int,
        protocol: str,
        netcfg: Optional[NetConfig] = None,
        nodecfg: Optional[NodeConfig] = None,
        page_size: Optional[int] = None,
        manager_offset: int = 0,
        sim=None,
    ):
        self.dsm = DsmSystem(
            nprocs,
            protocol=protocol,
            netcfg=netcfg,
            nodecfg=nodecfg,
            page_size=page_size,
            manager_offset=manager_offset,
            sim=sim,
        )
        self.arrays: dict[str, SharedArray] = {}
        self.app_output = None  # applications stash their rank-0 read-out here

    # -- convenience properties ----------------------------------------------------

    @property
    def nprocs(self) -> int:
        return self.dsm.nprocs

    @property
    def stats(self):
        return self.dsm.stats

    @property
    def sim(self):
        return self.dsm.sim

    # -- allocation -------------------------------------------------------------------

    def alloc_array(
        self,
        name: str,
        shape: "tuple[int, ...] | int",
        dtype: str = "float64",
        page_aligned: bool = False,
    ) -> SharedArray:
        """Allocate a typed shared array.

        VOPP code should pass ``page_aligned=True`` for each view's data so
        views never share pages; traditional code packs allocations (and may
        false-share) exactly like the original programs.
        """
        if isinstance(shape, int):
            shape = (shape,)
        dt = np.dtype(dtype)
        nbytes = int(np.prod(shape)) * dt.itemsize
        region = self.dsm.alloc(name, nbytes, page_aligned=page_aligned)
        arr = SharedArray(region, shape, dt)
        self.arrays[name] = arr
        return arr

    def array(self, name: str) -> SharedArray:
        return self.arrays[name]

    # -- running ---------------------------------------------------------------------------

    def runtime(self, rank: int) -> BaseRuntime:
        return self.runtime_cls(self, rank)

    def start_program(
        self, body: Callable[..., Generator], *args, ranks=None, **kwargs
    ) -> PendingRun:
        """Spawn ``body(rt, *args, **kwargs)`` for ``ranks`` without running.

        ``ranks`` defaults to every rank; the PDES driver passes each
        partition's owned subset (the replica holds all nodes, but only the
        owned ranks' application processes execute there).
        """
        start = self.sim.now
        finish_times: list[float] = []

        def timed(rank: int) -> Generator:
            rt = self.runtime(rank)
            tracer = self.sim.tracer
            if tracer is not None:
                tracer.begin(rank, "app", "run", f"rank {rank}", self.sim.now)
            result = yield from body(rt, *args, **kwargs)
            if tracer is not None:
                tracer.end(rank, "app", "run", self.sim.now)
            finish_times.append(self.sim.now)
            return result

        if ranks is None:
            ranks = range(self.nprocs)
        procs = [
            (rank, self.sim.spawn(timed(rank), name=f"app-{rank}")) for rank in ranks
        ]
        return PendingRun(start, procs, finish_times)

    def run_program(self, body: Callable[..., Generator], *args, **kwargs) -> list:
        """Run ``body(rt, *args, **kwargs)`` on every node; return results by rank.

        The simulated duration is recorded in ``stats.time``.
        """
        pending = self.start_program(body, *args, **kwargs)
        self.dsm.run()
        results = pending.finish()
        # the run ends when the last application process finishes; the event
        # heap may keep draining cancelled retransmission timers afterwards,
        # which must not count towards the measured time
        self.dsm.run_time = max(pending.finish_times) - pending.start
        return [results[rank] for rank in range(self.nprocs)]


class VoppSystem(BaseSystem):
    """A cluster running a VC protocol with the VOPP runtime.

    ``protocol`` is ``"vc_sd"`` (default, the optimal implementation) or
    ``"vc_d"``.
    """

    runtime_cls = VoppRuntime

    def __init__(self, nprocs: int, protocol: str = "vc_sd", **kw):
        if protocol not in ("vc_d", "vc_sd"):
            raise ValueError(f"VOPP runs on vc_d or vc_sd, not {protocol!r}")
        super().__init__(nprocs, protocol, **kw)


class TraditionalSystem(BaseSystem):
    """A cluster running an LRC variant with the lock/barrier runtime.

    ``protocol`` is ``"lrc_d"`` (homeless, diff-based — the paper's baseline)
    or ``"hlrc_d"`` (home-based — the comparison protocol from the authors'
    companion work).
    """

    runtime_cls = TraditionalRuntime

    def __init__(self, nprocs: int, protocol: str = "lrc_d", **kw):
        if protocol not in ("lrc_d", "hlrc_d"):
            raise ValueError(
                f"traditional programs run on lrc_d or hlrc_d, not {protocol!r}"
            )
        super().__init__(nprocs, protocol, **kw)


def make_system(nprocs: int, protocol: str, **kw) -> BaseSystem:
    """Factory choosing the right facade for a protocol name."""
    if protocol in ("lrc_d", "hlrc_d"):
        return TraditionalSystem(nprocs, protocol=protocol, **kw)
    return VoppSystem(nprocs, protocol=protocol, **kw)
