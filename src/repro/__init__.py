"""repro — a reproduction of "Performance Evaluation of View-Oriented
Parallel Programming" (Huang, Purvis, Werstein; ICPP 2005).

Layers, bottom-up:

* :mod:`repro.sim` — deterministic discrete-event kernel
* :mod:`repro.net` — cluster/network model (100 Mbps switched Ethernet,
  congestion loss, reliable transport)
* :mod:`repro.memory` — paged DSM substrate (twins, run-length byte diffs)
* :mod:`repro.protocols` — LRC_d, HLRC_d, VC_d, VC_sd
* :mod:`repro.core` — the VOPP public API (the paper's contribution)
* :mod:`repro.mpi` — message-passing baseline
* :mod:`repro.apps` — IS, Gauss, SOR, NN in both programming styles
* :mod:`repro.bench` — the paper-table benchmark harness
* :mod:`repro.tools` — view tracer and automatic view inference

Quick start::

    from repro import VoppSystem

    system = VoppSystem(nprocs=8)
    ...

or from the shell: ``python -m repro list``.
"""

from repro.core import (
    SharedArray,
    TraditionalSystem,
    ViewOverlapError,
    VoppDisciplineError,
    VoppSystem,
    make_system,
)

__version__ = "1.0.0"

__all__ = [
    "VoppSystem",
    "TraditionalSystem",
    "make_system",
    "SharedArray",
    "VoppDisciplineError",
    "ViewOverlapError",
    "__version__",
]
