"""PDES conformance + scaling benchmark: ``python -m repro.bench.pdes``.

Two halves, both recorded in ``BENCH_pdes.json``:

1. **Conformance** — every cell of the committed benchmark matrix
   (:func:`repro.bench.sweep.default_cells`) is run serially and under the
   partitioned driver, and the statistics-row fingerprints (the same hash
   ``BENCH_sweep.json`` commits) must be identical.  This is the executable
   form of the bit-identity claim in :mod:`repro.sim.pdes`.

2. **Scaling** — a halo-exchange ring over the reliable MPI transport at a
   rank count far beyond the paper's 32-node cluster (256 by default, with
   an optional 1024-rank point), run serially and with 2/4/8 fork
   partitions.  Reported figures are host wall-clock events/sec; the
   ``host_cpus`` field records how many cores the numbers were taken on —
   on a single-core host the partitions time-slice and the speedup ceiling
   is 1× regardless of how well the protocol scales, so treat sub-1×
   figures on ``host_cpus: 1`` as overhead measurements, not scaling
   results.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import time as _time
from dataclasses import dataclass
from typing import Generator, Optional, Sequence

import numpy as np

from repro.apps import APPS
from repro.apps.common import run_app
from repro.bench.sweep import SweepCell, default_cells

__all__ = [
    "DEFAULT_OUTPUT",
    "HaloConfig",
    "halo_app",
    "run_conformance",
    "run_scaling",
    "run_benchmark",
    "write_report",
]

DEFAULT_OUTPUT = "BENCH_pdes.json"


def _row_fingerprint(result) -> str:
    """Same hash :meth:`repro.bench.sweep.CellResult.fingerprint` commits."""
    return hashlib.sha256(
        json.dumps(result.table_row(), sort_keys=True).encode()
    ).hexdigest()[:16]


# -- conformance ------------------------------------------------------------------


def run_conformance(
    cells: Optional[Sequence[SweepCell]] = None,
    workers: int = 2,
    mode: str = "fork",
    batching: bool = True,
) -> dict:
    """Serial vs partitioned bit-identity over the benchmark matrix.

    For every cell the serial and PDES statistics rows must hash identically
    and the simulated completion times must be *exactly* equal (no
    tolerance: the engine is deterministic, so any drift is a bug).
    ``batching=False`` runs the minimal-window loop instead of the leased
    one — CI runs both, so a lease bug cannot hide behind a batching one.
    """
    cells = list(cells) if cells is not None else default_cells()
    rows = []
    all_match = True
    for cell in cells:
        serial = run_app(
            APPS[cell.app], cell.protocol, cell.nprocs,
            config=cell.config(), variant=cell.variant,
        )
        pdes = run_app(
            APPS[cell.app], cell.protocol, cell.nprocs,
            config=cell.config(), variant=cell.variant,
            pdes_workers=workers, pdes_mode=mode, pdes_batching=batching,
        )
        match = (
            _row_fingerprint(serial) == _row_fingerprint(pdes)
            and serial.time == pdes.time
        )
        all_match = all_match and match
        rows.append({
            "app": cell.app,
            "protocol": cell.protocol,
            "variant": cell.variant,
            "nprocs": cell.nprocs,
            "fingerprint": _row_fingerprint(serial),
            "pdes_fingerprint": _row_fingerprint(pdes),
            "sim_time_seconds": round(serial.time, 9),
            "events_serial": serial.events,
            "events_pdes": pdes.events,
            "match": match,
        })
    return {"workers": workers, "mode": mode, "batching": batching,
            "all_match": all_match, "cells": rows}


# -- the halo-exchange scaling app -------------------------------------------------


@dataclass
class HaloConfig:
    """Ring halo exchange: each rank trades edge strips with both
    neighbours every step, computes, and the run ends with a global sum."""

    steps: int = 8
    halo_words: int = 256  # doubles exchanged per neighbour per step
    compute_seconds: float = 200e-6  # per-step local compute
    seed: int = 11


class _HaloApp:
    """App-module-shaped wrapper so the PDES driver can run the ring."""

    __name__ = "halo"

    @staticmethod
    def default_config() -> HaloConfig:
        return HaloConfig()

    @staticmethod
    def build_mpi(system, config: HaloConfig):
        def body(comm) -> Generator:
            rank, size = comm.rank, comm.size
            left, right = (rank - 1) % size, (rank + 1) % size
            halo = np.full(config.halo_words, float(rank + 1))
            acc = 0.0
            for step in range(config.steps):
                yield from comm.compute(config.compute_seconds)
                yield from comm.send(halo, left, tag=2 * step)
                yield from comm.send(halo, right, tag=2 * step + 1)
                from_right = yield from comm.recv(right, tag=2 * step)
                from_left = yield from comm.recv(left, tag=2 * step + 1)
                acc += float(from_right.sum() + from_left.sum())
            total = yield from comm.reduce(np.array([acc]))
            if rank == 0:
                system.app_output = float(total[0])
            return acc

        return body


halo_app = _HaloApp()


def _serial_halo(nprocs: int, config: HaloConfig) -> tuple:
    from repro.mpi.comm import MpiSystem

    system = MpiSystem(nprocs)
    t0 = _time.perf_counter()
    system.run_program(halo_app.build_mpi(system, config))
    wall = _time.perf_counter() - t0
    return system.app_output, system.time, system.cluster.sim.events_processed, wall


def run_scaling(
    nprocs: int = 256,
    workers_list: Sequence[int] = (2, 4, 8),
    config: Optional[HaloConfig] = None,
    mode: str = "fork",
    batching: bool = True,
) -> dict:
    """Serial vs partitioned throughput on the halo ring at ``nprocs``.

    Each partitioned entry records the window-protocol accounting
    (``windows``/``elided_windows``/``leased_windows``/``frame_bytes``)
    plus ``workers_effective`` and ``timesliced``: when the requested
    worker count exceeds the host's cores the forked partitions time-slice
    one core and the wall-clock figure measures protocol overhead, not
    scaling — see ``docs/benchmarks.md``.
    """
    from repro.sim.pdes import run_partitioned

    config = config or HaloConfig()
    host_cpus = os.cpu_count() or 1
    output, sim_time, events, wall = _serial_halo(nprocs, config)
    report = {
        "app": "halo-ring",
        "nprocs": nprocs,
        "steps": config.steps,
        "halo_words": config.halo_words,
        "sim_time_seconds": round(sim_time, 9),
        "serial": {
            "wall_seconds": round(wall, 4),
            "events": events,
            "events_per_sec": round(events / wall) if wall > 0 else 0,
        },
        "partitioned": [],
    }
    for workers in workers_list:
        t0 = _time.perf_counter()
        outcome = run_partitioned(
            halo_app, protocol="mpi", nprocs=nprocs, config=config,
            workers=workers, mode=mode, batching=batching,
        )
        pwall = _time.perf_counter() - t0
        entry = {
            "workers": workers,
            "workers_effective": min(workers, host_cpus),
            "mode": mode,
            "wall_seconds": round(pwall, 4),
            "events": outcome.events,
            "events_per_sec": round(outcome.events / pwall) if pwall > 0 else 0,
            "windows": outcome.windows,
            "elided_windows": outcome.elided_windows,
            "leased_windows": outcome.leased_windows,
            "frame_bytes": outcome.frame_bytes,
            "speedup_vs_serial": round(wall / pwall, 3) if pwall > 0 else 0.0,
            "output_matches": outcome.output == output
            and outcome.time == sim_time,
        }
        if workers > host_cpus:
            entry["timesliced"] = True
        report["partitioned"].append(entry)
    return report


# -- driver -----------------------------------------------------------------------


def run_benchmark(
    quick: bool = False,
    workers: int = 2,
    mode: str = "fork",
    scale_nprocs: Optional[int] = None,
    workers_list: Sequence[int] = (2, 4, 8),
    batching: bool = True,
) -> dict:
    """The full benchmark: conformance matrix + scaling sweep.

    ``quick`` shrinks both halves for CI: a 6-cell conformance subset
    (one per app/protocol family, inline mode) and a 64-rank scaling point.
    """
    import platform
    import time

    t_start = time.perf_counter()
    if quick:
        cells = [
            SweepCell(app="is", protocol="lrc_d", nprocs=8),
            SweepCell(app="gauss", protocol="vc_d", nprocs=8),
            SweepCell(app="sor", protocol="vc_sd", nprocs=8),
            SweepCell(app="nn", protocol="vc_sd", nprocs=8),
            SweepCell(app="is", protocol="vc_d", nprocs=16, variant="lb"),
            SweepCell(app="nn", protocol="mpi", nprocs=8),
        ]
        conformance = run_conformance(cells, workers=workers, mode="inline",
                                      batching=batching)
        scaling = run_scaling(
            scale_nprocs or 64, workers_list=(2, 4), mode=mode,
            batching=batching,
        )
    else:
        conformance = run_conformance(workers=workers, mode=mode,
                                      batching=batching)
        scaling = run_scaling(scale_nprocs or 256, workers_list=workers_list,
                              mode=mode, batching=batching)
    from repro.bench.manifest import run_manifest

    return {
        "benchmark": "pdes",
        "host_cpus": os.cpu_count() or 1,
        "python": platform.python_version(),
        "quick": quick,
        "batching": batching,
        "conformance": conformance,
        "scaling": scaling,
        "manifest": run_manifest(
            config={"quick": quick, "workers": workers, "mode": mode,
                    "scale_nprocs": scale_nprocs,
                    "workers_list": list(workers_list), "batching": batching},
            wall_seconds=time.perf_counter() - t_start,
        ),
    }


def write_report(report: dict, path: str = DEFAULT_OUTPUT) -> None:
    with open(path, "w") as fh:
        json.dump(report, fh, indent=1)
        fh.write("\n")


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.pdes",
        description="PDES conformance matrix + halo-ring scaling benchmark",
    )
    parser.add_argument("--quick", action="store_true",
                        help="reduced matrix + 64-rank scaling point (CI)")
    parser.add_argument("--workers", type=int, default=2,
                        help="partition count for the conformance runs")
    parser.add_argument("--mode", default="fork", choices=("fork", "inline"))
    parser.add_argument("--scale-nprocs", type=int, default=None,
                        help="rank count for the scaling half (default 256)")
    parser.add_argument("--no-batching", action="store_true",
                        help="disable window leases/elision (minimal windows)")
    parser.add_argument("--out", default=DEFAULT_OUTPUT)
    args = parser.parse_args(argv)
    report = run_benchmark(
        quick=args.quick, workers=args.workers, mode=args.mode,
        scale_nprocs=args.scale_nprocs, batching=not args.no_batching,
    )
    write_report(report, args.out)
    ok = report["conformance"]["all_match"]
    for row in report["conformance"]["cells"]:
        tag = "ok" if row["match"] else "MISMATCH"
        print(
            f"  {row['app']:<6} {row['protocol']:<6} {row['variant']:<8}"
            f" {row['nprocs']:>3}p  fp={row['fingerprint']}  [{tag}]"
        )
    s = report["scaling"]
    print(
        f"halo-ring {s['nprocs']} ranks: serial "
        f"{s['serial']['events_per_sec']} ev/s"
    )
    for p in s["partitioned"]:
        print(
            f"  {p['workers']} partitions: {p['events_per_sec']} ev/s "
            f"({p['speedup_vs_serial']}x, {p['windows']} windows, "
            f"{p['elided_windows']} elided, {p['leased_windows']} leased, "
            f"{p['frame_bytes']} frame bytes, "
            f"identical={p['output_matches']})"
        )
    print(f"wrote {args.out} (host_cpus={report['host_cpus']})")
    if not ok:
        print("error: PDES results diverged from serial", flush=True)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(main())
