"""Wall-clock performance harness for the simulator hot path.

Everything else in :mod:`repro.bench` measures *simulated* quantities; this
module measures the **host**: how fast the discrete-event kernel, transport
and diff machinery push events through a fixed, seeded workload.  The
workload is the Table-1 experiment — IS on 16 processors under each of
LRC_d, VC_d and VC_sd — because it exercises every hot path at once (page
faults, diffs, diff integration, barriers, retransmissions under congestion
loss).

Determinism makes the harness a regression baseline: the same seed must
produce the same simulated statistics on every commit, so any change in
``wall_seconds``/``events_per_sec`` is a host-side performance change, not a
workload change.  ``python -m repro.bench.perf`` records the baseline to
``BENCH_hotpath.json`` in the repo root; see docs/simulator.md ("Performance")
for how to read it.
"""

from __future__ import annotations

import contextlib
import gc
import json
import platform
import resource
import time
from typing import Optional, Sequence

from repro.apps import is_sort
from repro.apps.common import run_app
from repro.bench.manifest import run_manifest
from repro.bench.runner import STATS_ENTRIES, Entry

__all__ = ["run_hotpath_benchmark", "write_report", "DEFAULT_OUTPUT"]

DEFAULT_OUTPUT = "BENCH_hotpath.json"


def _peak_rss_kb() -> int:
    """Peak resident set size of this process, in KiB (Linux semantics)."""
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


@contextlib.contextmanager
def _gc_paused():
    """Suspend cyclic GC around a timed section (pyperf-style hygiene).

    The simulator allocates almost exclusively acyclic objects (tuples,
    bytes, small dataclasses), so the cycle collector contributes only
    unpredictable pauses to the measurement.  Reference counting still
    reclaims everything promptly; one explicit collection afterwards
    releases whatever cycles the workload did create.
    """
    was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()
        gc.collect()


def _message_mix(stats) -> dict:
    """Per-kind message mix with breakdown percentages.

    ``stats`` is a DSM :class:`~repro.protocols.runstats.RunStats` (which
    embeds the shared :class:`~repro.net.stats.NetStats`) or a bare NetStats
    (MPI).  Kind keys are normalised from ``"MessageKind.DIFF_REQUEST"`` to
    ``"DIFF_REQUEST"``; kinds are sorted by descending message count (then
    name) so the report reads top-contributor first.
    """
    net = getattr(stats, "net", stats).snapshot()
    total_msg = net["num_msg"] or 1
    total_bytes = net["data_bytes"] or 1
    mix = {}
    by_kind = net["by_kind"]
    for k in sorted(by_kind, key=lambda k: (-by_kind[k]["count"], k)):
        rec = by_kind[k]
        mix[k.split(".", 1)[-1]] = {
            "count": rec["count"],
            "bytes": rec["bytes"],
            "pct_msgs": round(100.0 * rec["count"] / total_msg, 2),
            "pct_bytes": round(100.0 * rec["bytes"] / total_bytes, 2),
        }
    return {
        "num_msg": net["num_msg"],
        "data_bytes": net["data_bytes"],
        "rexmit": net["rexmit"],
        "drops": net["drops"],
        "by_kind": mix,
    }


def run_hotpath_benchmark(
    nprocs: int = 16,
    config: Optional[is_sort.IsConfig] = None,
    entries: Sequence[Entry] = STATS_ENTRIES,
    verify: bool = True,
    host=None,
) -> dict:
    """Run the fixed IS workload under each entry, timing the host.

    Returns a JSON-serialisable report: per-protocol wall seconds, executed
    simulator events, events/sec and the simulated statistics row (the
    fingerprint that must not change for a fixed seed), plus process-wide
    totals and peak RSS.  ``host`` (a
    :class:`repro.obs.host.HostProfiler`) additionally records one phase
    span per protocol entry under the ``bench`` lane.
    """
    config = config or is_sort.default_config()
    protocols = {}
    total_wall = 0.0
    total_events = 0
    for entry in entries:
        if host is not None:
            host.begin("bench", "phase", entry.label)
        with _gc_paused():
            t0 = time.perf_counter()
            result = run_app(
                is_sort, entry.protocol, nprocs,
                config=config, variant=entry.variant, verify=verify,
            )
            wall = time.perf_counter() - t0
        if host is not None:
            host.end()
        total_wall += wall
        total_events += result.events
        protocols[entry.label] = {
            "wall_seconds": round(wall, 4),
            "events": result.events,
            "events_per_sec": round(result.events / wall) if wall > 0 else 0,
            "sim_time_seconds": round(result.time, 6),
            "verified": result.verified,
            "table_row": result.stats.table_row(),
            "message_mix": _message_mix(result.stats),
        }
    return {
        "benchmark": "hotpath_is",
        "app": "is_sort",
        "nprocs": nprocs,
        "seed": config.seed,
        "config": {
            "n_keys": config.n_keys,
            "b_max": config.b_max,
            "reps": config.reps,
            "bucket_views": config.bucket_views,
            "work_factor": config.work_factor,
        },
        "protocols": protocols,
        "wall_seconds": round(total_wall, 4),
        "events": total_events,
        "events_per_sec": round(total_events / total_wall) if total_wall > 0 else 0,
        # the named regression metric: VC_d dominates the workload's event
        # volume, so its throughput is the most sensitive host-side signal
        "vc_d_events_per_sec": protocols.get("VC_d", {}).get("events_per_sec", 0),
        "peak_rss_kb": _peak_rss_kb(),
        "python": platform.python_version(),
        "manifest": run_manifest(config=config, wall_seconds=total_wall,
                                 peak_rss_kb=_peak_rss_kb()),
    }


def write_report(report: dict, path: str = DEFAULT_OUTPUT) -> None:
    with open(path, "w") as fh:
        json.dump(report, fh, indent=1, sort_keys=False)
        fh.write("\n")


def main() -> None:  # pragma: no cover - exercised via CLI
    report = run_hotpath_benchmark()
    write_report(report)
    print(json.dumps(report, indent=1))
    print(f"wrote {DEFAULT_OUTPUT}")


if __name__ == "__main__":  # pragma: no cover
    main()
