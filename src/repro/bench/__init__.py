"""Benchmark harness: one experiment per paper table.

The harness (:mod:`repro.bench.runner`) runs the applications across
protocols/processor counts, formats the same rows the paper reports
(:mod:`repro.bench.tables`), and compares against the paper's published
numbers (:mod:`repro.bench.paper_data`).  The ``benchmarks/`` directory
contains one pytest-benchmark target per table plus the ablation benches
listed in DESIGN.md §5.
"""

from repro.bench.runner import stats_experiment, speedup_experiment, Entry
from repro.bench.tables import format_stats_table, format_speedup_table
from repro.bench import paper_data

__all__ = [
    "stats_experiment",
    "speedup_experiment",
    "Entry",
    "format_stats_table",
    "format_speedup_table",
    "paper_data",
    "run_hotpath_benchmark",
]


def __getattr__(name):
    # lazy so `python -m repro.bench.perf` doesn't re-import its own module
    # through the package (runpy would warn about the double import)
    if name == "run_hotpath_benchmark":
        from repro.bench.perf import run_hotpath_benchmark

        return run_hotpath_benchmark
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
