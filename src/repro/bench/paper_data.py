"""The paper's published numbers, for side-by-side comparison.

Values are taken from the paper's tables and prose; entries that are not
legible in the available text are ``None``.  Units follow the paper: seconds,
MBytes, microseconds.

Source: Z. Huang, M. Purvis, P. Werstein, "Performance Evaluation of
View-Oriented Parallel Programming", ICPP 2005.
"""

from __future__ import annotations

# Table 1 — IS statistics on 16 processors
TABLE1_IS_STATS = {
    "LRC_d": {
        "Barriers": 40,
        "Acquires": 0,
        "Num. Msg": 123_000,  # first digits legible: 123,xxx
        "Barrier Time (usec.)": 34_492,
        "Rexmit": 114,
    },
    "VC_d": {
        "Barriers": 40,
        "Acquires": 20_479,
        "Num. Msg": 163_207,
        "Diff Requests": 38_398,
        "Barrier Time (usec.)": 5_467,
        "Rexmit": 14,
    },
    "VC_sd": {
        "Barriers": 40,
        "Acquires": 20_479,
        "Num. Msg": 80_387,
        "Diff Requests": 0,
    },
}

# Table 2 — IS with fewer barriers on 16 processors
TABLE2_IS_LB_STATS = {
    "VC_d": {
        "Acquires": 20_479,
        "Num. Msg": 163_420,
        "Diff Requests": 38_398,
        "Rexmit": 14,
    },
    "VC_sd": {
        "Acquires": 20_479,
        "Num. Msg": 63_586,
        "Diff Requests": 0,
        "Rexmit": 0,
    },
}

# Table 3 — IS speedups (values not legible in the available text; the
# paper's qualitative findings are recorded as shape assertions instead)
TABLE3_IS_SPEEDUP: dict = {}

# Table 4 — Gauss statistics on 16 processors (values largely illegible)
TABLE4_GAUSS_STATS: dict = {}

# Table 6 — SOR statistics on 16 processors
TABLE6_SOR_STATS = {
    "LRC_d": {
        "Num. Msg": 45_471,
        "Barrier Time (usec.)": 139_100,
    },
    "VC_d": {
        "Data (MByte)": 2.99,
        "Num. Msg": 33_144,
        "Barrier Time (usec.)": 3_738,
    },
    "VC_sd": {
        "Num. Msg": 21_152,
    },
}

# Table 8 — NN statistics on 16 processors
TABLE8_NN_STATS = {
    "LRC_d": {
        "Num. Msg": 101_000,  # first digits legible
        "Diff Requests": 31_228,
        "Barrier Time (usec.)": 122_000,
    },
    "VC_d": {
        "Acquires": 22_371,
        "Diff Requests": 39_900,
    },
    "VC_sd": {
        "Acquires": 22_371,
        "Num. Msg": 81_590,
        "Diff Requests": 0,
        "Barrier Time (usec.)": 13_141,
    },
}

# Qualitative findings per table — every bench asserts these shapes
SHAPE_NOTES = {
    "table1": "VC_d sends more msgs/data than LRC_d yet runs faster; "
    "VC_sd has the fewest msgs and zero diff requests; LRC_d's barrier "
    "time and rexmit count dominate",
    "table2": "moving the barrier out of the loop makes IS faster; "
    "VC_sd's msgs drop further",
    "table3": "speedup(VC_sd) >> speedup(LRC_d) at every p; VC_sd_lb best; "
    "gap grows with p",
    "table4": "local buffers remove false sharing: LRC_d needs far more "
    "diff requests and data than VC_d",
    "table5": "Gauss speedups of VC_sd far above LRC_d",
    "table6": "border views: LRC_d moves several times VC_d's data; "
    "LRC_d barrier time ~37x VC_d's",
    "table7": "SOR speedups of VC_sd far above LRC_d, growing with p",
    "table8": "VC_d is slower than LRC_d for NN (more view primitives) but "
    "VC_sd is clearly fastest with zero diff requests",
    "table9": "MPI >= VC_sd >> LRC_d; VC_sd comparable to MPI up to 16p and "
    "still growing at 24-32p",
}
