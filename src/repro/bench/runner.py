"""Experiment drivers for the table benchmarks.

Both drivers route their runs through :mod:`repro.bench.sweep`: runs with
the app's default config are resolved against the content-addressed result
cache (and can fan out over worker processes with ``jobs > 1``); runs with
an explicit custom config bypass the cache, since the cache key covers only
the default config plus a seed override.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.apps.common import AppResult, run_app

__all__ = [
    "Entry",
    "stats_experiment",
    "speedup_experiment",
    "PAPER_PROC_COUNTS",
    "STATS_ENTRIES",
]

PAPER_PROC_COUNTS = (2, 4, 8, 16, 24, 32)


@dataclass(frozen=True)
class Entry:
    """One column/row of an experiment: a label plus how to run it."""

    label: str
    protocol: str
    variant: str = "default"


STATS_ENTRIES = (
    Entry("LRC_d", "lrc_d"),
    Entry("VC_d", "vc_d"),
    Entry("VC_sd", "vc_sd"),
)


def _sweep_cells(app_module, specs, jobs: int, verify: bool) -> list[AppResult]:
    """Run ``(protocol, variant, nprocs)`` specs through the sweep engine."""
    from repro.bench.sweep import SweepCell, _app_name, run_sweep

    app = _app_name(app_module)
    cells = [
        SweepCell(app=app, protocol=protocol, nprocs=nprocs, variant=variant)
        for protocol, variant, nprocs in specs
    ]
    report = run_sweep(cells, jobs=jobs, verify=verify)
    return [c.result for c in report.cells]


def stats_experiment(
    app_module,
    nprocs: int = 16,
    config=None,
    entries: Sequence[Entry] = STATS_ENTRIES,
    verify: bool = True,
    jobs: int = 1,
) -> dict[str, AppResult]:
    """Run one application on ``nprocs`` under each entry (a paper stats table)."""
    if config is not None:
        return {
            entry.label: run_app(
                app_module, entry.protocol, nprocs,
                config=config, variant=entry.variant, verify=verify,
            )
            for entry in entries
        }
    specs = [(entry.protocol, entry.variant, nprocs) for entry in entries]
    results = _sweep_cells(app_module, specs, jobs, verify)
    return {entry.label: result for entry, result in zip(entries, results)}


def speedup_experiment(
    app_module,
    entries: Sequence[Entry],
    proc_counts: Sequence[int] = PAPER_PROC_COUNTS,
    config=None,
    verify: bool = True,
    jobs: int = 1,
) -> dict[str, dict[int, float]]:
    """Speedups T(1)/T(p) for each entry across ``proc_counts``.

    The baseline T(1) is the 1-processor run of the same protocol/variant —
    on one node every protocol degenerates to local execution, so this is
    effectively the sequential time (plus negligible local overhead).
    """
    if config is not None:
        def _run(protocol, variant, p):
            return run_app(
                app_module, protocol, p, config=config, variant=variant,
                verify=verify,
            )
        results = {
            entry.label: {p: _run(entry.protocol, entry.variant, p)
                          for p in (1, *proc_counts)}
            for entry in entries
        }
    else:
        specs = [
            (entry.protocol, entry.variant, p)
            for entry in entries
            for p in (1, *proc_counts)
        ]
        flat = _sweep_cells(app_module, specs, jobs, verify)
        results = {}
        it = iter(flat)
        for entry in entries:
            results[entry.label] = {p: next(it) for p in (1, *proc_counts)}
    speedups: dict[str, dict[int, float]] = {}
    for entry in entries:
        per_p = results[entry.label]
        base = per_p[1]
        speedups[entry.label] = {
            p: base.time / per_p[p].time if per_p[p].time > 0 else float("inf")
            for p in proc_counts
        }
    return speedups
