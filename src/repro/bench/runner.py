"""Experiment drivers for the table benchmarks."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.apps.common import AppResult, run_app

__all__ = [
    "Entry",
    "stats_experiment",
    "speedup_experiment",
    "PAPER_PROC_COUNTS",
    "STATS_ENTRIES",
]

PAPER_PROC_COUNTS = (2, 4, 8, 16, 24, 32)


@dataclass(frozen=True)
class Entry:
    """One column/row of an experiment: a label plus how to run it."""

    label: str
    protocol: str
    variant: str = "default"


STATS_ENTRIES = (
    Entry("LRC_d", "lrc_d"),
    Entry("VC_d", "vc_d"),
    Entry("VC_sd", "vc_sd"),
)


def stats_experiment(
    app_module,
    nprocs: int = 16,
    config=None,
    entries: Sequence[Entry] = STATS_ENTRIES,
    verify: bool = True,
) -> dict[str, AppResult]:
    """Run one application on ``nprocs`` under each entry (a paper stats table)."""
    results = {}
    for entry in entries:
        results[entry.label] = run_app(
            app_module,
            entry.protocol,
            nprocs,
            config=config,
            variant=entry.variant,
            verify=verify,
        )
    return results


def speedup_experiment(
    app_module,
    entries: Sequence[Entry],
    proc_counts: Sequence[int] = PAPER_PROC_COUNTS,
    config=None,
    verify: bool = True,
) -> dict[str, dict[int, float]]:
    """Speedups T(1)/T(p) for each entry across ``proc_counts``.

    The baseline T(1) is the 1-processor run of the same protocol/variant —
    on one node every protocol degenerates to local execution, so this is
    effectively the sequential time (plus negligible local overhead).
    """
    speedups: dict[str, dict[int, float]] = {}
    for entry in entries:
        base = run_app(
            app_module, entry.protocol, 1, config=config, variant=entry.variant,
            verify=verify,
        )
        row: dict[int, float] = {}
        for p in proc_counts:
            result = run_app(
                app_module, entry.protocol, p, config=config, variant=entry.variant,
                verify=verify,
            )
            row[p] = base.time / result.time if result.time > 0 else float("inf")
        speedups[entry.label] = row
    return speedups
