"""Common run-manifest block embedded in every BENCH report.

Every benchmark writer (``perf``, ``sweep``, ``pdes``, ``degradation``)
stamps its JSON document with a ``"manifest"`` object so a BENCH file is
self-describing: which host/python/git revision produced it, a hash of the
resolved configuration, and the run's wall/RSS cost.  ``python -m repro
report --trend`` reads these blocks to label trend columns and to refuse
apples-to-oranges comparisons loudly instead of silently.

The manifest never participates in the simulated fingerprints — those hash
only ``table_row()`` — so adding it to a writer cannot change any committed
fingerprint.

Schema (``MANIFEST_SCHEMA = 1``)::

    {
      "schema": 1,
      "host": {"system": "Linux", "machine": "x86_64", "cpus": 8},
      "python": "3.11.7",
      "git_rev": "abc1234..." | null,
      "config_hash": "16-hex-digest" | null,
      "wall_seconds": 12.34 | null,
      "peak_rss_kb": 123456 | null
    }

Files written before this block existed are *schema 0*:
``repro.obs.report.load_report`` backfills ``{"schema": 0}`` with a warning
so historical ``git:REV`` specs keep working.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import subprocess
from typing import Any, Optional

__all__ = ["MANIFEST_SCHEMA", "run_manifest", "config_hash"]

#: current manifest schema version; bump on incompatible layout changes
MANIFEST_SCHEMA = 1


def config_hash(config: Any) -> str:
    """Stable 16-hex digest of a resolved configuration object.

    Accepts anything: dataclass-like objects hash their ``repr`` via the
    ``default=repr`` fallback, dicts/lists hash their sorted JSON form.
    Equal configurations hash equal; that is the only contract.
    """
    blob = json.dumps(config, sort_keys=True, default=repr)
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def _git_rev() -> Optional[str]:
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
    except (OSError, subprocess.TimeoutExpired):  # pragma: no cover - no git
        return None
    rev = proc.stdout.strip()
    return rev if proc.returncode == 0 and rev else None


def run_manifest(config: Any = None, wall_seconds: Optional[float] = None,
                 peak_rss_kb: Optional[int] = None) -> dict:
    """Build the manifest block for one benchmark run.

    ``config`` is the writer's resolved configuration (hashed, not stored);
    ``wall_seconds``/``peak_rss_kb`` are the run's own measured cost when
    the writer tracks them (``None`` otherwise).
    """
    if peak_rss_kb is None:
        try:
            import resource

            peak_rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        except Exception:  # pragma: no cover - non-POSIX
            peak_rss_kb = None
    return {
        "schema": MANIFEST_SCHEMA,
        "host": {
            "system": platform.system(),
            "machine": platform.machine(),
            "cpus": os.cpu_count(),
        },
        "python": platform.python_version(),
        "git_rev": _git_rev(),
        "config_hash": config_hash(config) if config is not None else None,
        "wall_seconds": round(wall_seconds, 4) if wall_seconds is not None else None,
        "peak_rss_kb": peak_rss_kb,
    }
