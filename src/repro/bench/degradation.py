"""Fault-degradation grid: slowdown vs loss rate, per protocol.

The paper's headline robustness asymmetry — LRC_d's barrier congestion costs
~1 s retransmission stalls while VC_sd's distributed barrier keeps Rexmit
near zero — is a *graceful degradation* story.  This bench charts it: each
protocol runs the same application under a sweep of scripted uniform-loss
fault plans (``repro.faults``), and the grid records how simulated time and
Rexmit grow with the loss rate, normalised to the protocol's own zero-loss
baseline.

Every grid cell still **verifies against the sequential reference**: faults
change timing and Rexmit, never answers (the loss-invariance property the
chaos tests pin).  A cell hostile enough to exhaust the retry budget is
reported as a structured failure row instead of killing the sweep.

CLI: ``python -m repro sweep --faults`` (see docs/robustness.md); the
report is written to ``BENCH_faults.json``.
"""

from __future__ import annotations

import json
import math
from typing import Optional, Sequence

from repro.apps import APPS
from repro.apps.common import run_app
from repro.faults import Episode, FaultInjector, FaultPlan, RunAborted

__all__ = [
    "DEFAULT_FAULTS_OUTPUT",
    "DEFAULT_LOSS_RATES",
    "run_degradation_grid",
    "format_degradation_grid",
    "write_degradation_report",
]

DEFAULT_FAULTS_OUTPUT = "BENCH_faults.json"
DEFAULT_LOSS_RATES = (0.0, 0.002, 0.005, 0.01, 0.02)
DEFAULT_PROTOCOLS = ("lrc_d", "vc_d", "vc_sd")


def _grid_cell(
    app: str,
    protocol: str,
    nprocs: int,
    loss_rate: float,
    seed: int,
    base_plan: Optional[FaultPlan],
    verify: bool,
    check: bool = False,
) -> dict:
    episodes = base_plan.episodes if base_plan is not None else ()
    if loss_rate > 0.0:
        episodes = episodes + (Episode(kind="loss", drop_prob=loss_rate),)
    plan = FaultPlan(episodes, seed=seed)
    injector = FaultInjector(plan)
    oracle = None
    if check:
        from repro.obs.oracle import AccessRecorder

        oracle = AccessRecorder()
    cell = {
        "app": app,
        "protocol": protocol,
        "nprocs": nprocs,
        "loss_rate": loss_rate,
        "seed": seed,
    }

    def _checked(aborted: bool) -> None:
        if oracle is None:
            return
        from repro.obs.oracle import check_history

        # on an aborted run the recorder holds the partial history up to the
        # failure — still checkable: a fault must never corrupt consistency
        report = check_history(oracle, nprocs=nprocs, protocol=protocol,
                               aborted=aborted)
        cell["consistency"] = {
            "verdict": report.verdict,
            "findings": len(report.findings),
        }

    try:
        result = run_app(
            APPS[app], protocol, nprocs, verify=verify, faults=injector,
            oracle=oracle,
        )
    except RunAborted as exc:
        # hostile enough to exhaust the retry budget: report, don't crash
        cell.update(
            {
                "failed": True,
                "failure": exc.failure.to_json(),
            }
        )
        _checked(aborted=True)
        return cell
    _checked(aborted=False)
    net = result.stats.net if hasattr(result.stats, "net") else result.stats
    cell.update(
        {
            "failed": False,
            "time": round(result.time, 6),
            "rexmit": net.rexmit,
            "drops": net.drops,
            "drops_by_cause": dict(sorted(net.drops_by_cause.items())),
            "num_msg": net.num_msg,
            "injected": dict(injector.injected),
            "verified": result.verified,
        }
    )
    return cell


def run_degradation_grid(
    app: str = "is",
    nprocs: int = 8,
    protocols: Sequence[str] = DEFAULT_PROTOCOLS,
    loss_rates: Sequence[float] = DEFAULT_LOSS_RATES,
    seed: int = 7,
    base_plan: Optional[FaultPlan] = None,
    verify: bool = True,
    check: bool = False,
) -> dict:
    """Run the grid and return the report dict (``BENCH_faults.json`` shape).

    ``base_plan`` episodes (e.g. a duplication + reorder background from a
    ``--faults PLAN.json`` file) apply to every cell; the loss episode sweep
    is layered on top.  Slowdown is relative to each protocol's rate-0 cell
    (with the same base plan), so the curves isolate the *loss* response.
    ``check`` runs every cell — including aborted ones, on their partial
    history — under the consistency oracle and attaches the verdict.
    """
    import time

    t_start = time.perf_counter()
    loss_rates = tuple(sorted(set(float(r) for r in loss_rates)))
    if not loss_rates:
        raise ValueError("need at least one loss rate")
    grid: list[dict] = []
    for protocol in protocols:
        baseline_time: Optional[float] = None
        for rate in loss_rates:
            cell = _grid_cell(
                app, protocol, nprocs, rate, seed, base_plan, verify, check
            )
            if not cell["failed"]:
                if baseline_time is None and rate == loss_rates[0]:
                    baseline_time = cell["time"]
                cell["slowdown"] = (
                    round(cell["time"] / baseline_time, 4)
                    if baseline_time
                    else math.nan
                )
            grid.append(cell)
    from repro.bench.manifest import run_manifest

    return {
        "benchmark": "faults_degradation",
        "app": app,
        "nprocs": nprocs,
        "seed": seed,
        "loss_rates": list(loss_rates),
        "protocols": list(protocols),
        "base_plan": base_plan.to_json() if base_plan is not None else None,
        "grid": grid,
        "manifest": run_manifest(
            config={"app": app, "nprocs": nprocs, "seed": seed,
                    "loss_rates": list(loss_rates),
                    "protocols": list(protocols)},
            wall_seconds=time.perf_counter() - t_start,
        ),
    }


def format_degradation_grid(report: dict) -> str:
    """Terminal rendering: one row per (protocol, loss rate)."""
    lines = [
        f"Degradation grid — {report['app']} x {report['nprocs']}p "
        f"(seed {report['seed']})",
        f"{'protocol':<8} {'loss':>6}  {'time (s)':>10} {'slowdown':>9} "
        f"{'rexmit':>7} {'drops':>6}  verified",
    ]
    for cell in report["grid"]:
        if cell["failed"]:
            reason = cell["failure"]["reason"]
            lines.append(
                f"{cell['protocol']:<8} {cell['loss_rate']:>6.3f}  "
                f"{'-':>10} {'-':>9} {'-':>7} {'-':>6}  FAILED ({reason})"
            )
            continue
        lines.append(
            f"{cell['protocol']:<8} {cell['loss_rate']:>6.3f}  "
            f"{cell['time']:>10.4f} {cell.get('slowdown', float('nan')):>9.3f} "
            f"{cell['rexmit']:>7} {cell['drops']:>6}  "
            f"{'yes' if cell['verified'] else 'NO'}"
        )
    return "\n".join(lines)


def write_degradation_report(report: dict, path: str = DEFAULT_FAULTS_OUTPUT) -> None:
    with open(path, "w") as fh:
        json.dump(report, fh, indent=1, sort_keys=True)
        fh.write("\n")
