"""Render experiment results in the paper's table format.

Each stats table prints one column per protocol with the paper's row labels;
when the paper's value is known it is shown alongside as ``(paper: X)`` so
shape agreement is visible at a glance.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from repro.apps.common import AppResult

__all__ = ["format_stats_table", "format_speedup_table", "format_breakdown_section"]

STATS_ROWS = (
    "Time (Sec.)",
    "Barriers",
    "Acquires",
    "Data (MByte)",
    "Num. Msg",
    "Diff Requests",
    "Barrier Time (usec.)",
    "Acquire Time (usec.)",
    "Rexmit",
)


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:,.3f}" if value < 1000 else f"{value:,.1f}"
    return f"{value:,}"


def format_stats_table(
    title: str,
    results: Mapping[str, AppResult],
    paper: Optional[Mapping[str, Mapping[str, object]]] = None,
    rows: Sequence[str] = STATS_ROWS,
) -> str:
    """Paper-style statistics table (Tables 1, 2, 4, 6, 8)."""
    paper = paper or {}
    labels = list(results)
    measured = {label: results[label].table_row() for label in labels}
    width = max(22, *(len(l) + 2 for l in labels))
    lines = [title, "=" * len(title)]
    header = f"{'':<24}" + "".join(f"{label:>{width}}" for label in labels)
    lines.append(header)
    for row in rows:
        cells = []
        for label in labels:
            val = _fmt(measured[label].get(row))
            ref = paper.get(label, {}).get(row)
            if ref is not None:
                val = f"{val} ({_fmt(ref)})"
            cells.append(f"{val:>{width}}")
        lines.append(f"{row:<24}" + "".join(cells))
    lines.append("")
    lines.append("(values in parentheses: the paper's published numbers)")
    section = format_breakdown_section(results)
    if section:
        lines.append("")
        lines.append(section)
    return "\n".join(lines)


def format_breakdown_section(results: Mapping[str, AppResult]) -> str:
    """Per-protocol time-breakdown tables for traced results (else empty).

    Only results produced with an :class:`repro.obs.EventTracer` carry a
    breakdown; untraced table runs render exactly as before.
    """
    from repro.obs import format_breakdown

    parts = []
    for label, result in results.items():
        breakdown = getattr(result, "breakdown", None)
        if breakdown:
            parts.append(format_breakdown(breakdown, title=f"Breakdown — {label}"))
    return "\n\n".join(parts)


def format_speedup_table(
    title: str,
    speedups: Mapping[str, Mapping[int, float]],
    paper: Optional[Mapping[str, Mapping[int, float]]] = None,
) -> str:
    """Paper-style speedup table (Tables 3, 5, 7, 9)."""
    paper = paper or {}
    proc_counts = sorted({p for row in speedups.values() for p in row})
    lines = [title, "=" * len(title)]
    lines.append(f"{'':<12}" + "".join(f"{str(p) + '-p':>10}" for p in proc_counts))
    for label, row in speedups.items():
        cells = []
        for p in proc_counts:
            val = f"{row.get(p, float('nan')):.2f}"
            ref = paper.get(label, {}).get(p)
            if ref is not None:
                val = f"{val} ({ref:.1f})"
            cells.append(f"{val:>10}")
        lines.append(f"{label:<12}" + "".join(cells))
    return "\n".join(lines)
