"""Named experiments: one callable per paper table.

Used by the CLI (``python -m repro table N``); the pytest benchmarks in
``benchmarks/`` run the same drivers and add the shape assertions.
"""

from __future__ import annotations

from typing import Callable

from repro.apps import gauss, is_sort, nn, sor
from repro.bench import paper_data
from repro.bench.runner import Entry, PAPER_PROC_COUNTS, speedup_experiment, stats_experiment
from repro.bench.tables import format_speedup_table, format_stats_table

__all__ = ["TABLES", "run_table"]


def table1(nprocs: int = 16) -> str:
    results = stats_experiment(is_sort, nprocs=nprocs)
    return format_stats_table(
        f"Table 1: Statistics of IS on {nprocs} processors",
        results,
        paper=paper_data.TABLE1_IS_STATS,
    )


def table2(nprocs: int = 16) -> str:
    results = stats_experiment(
        is_sort,
        nprocs=nprocs,
        entries=(Entry("VC_d", "vc_d", "lb"), Entry("VC_sd", "vc_sd", "lb")),
    )
    return format_stats_table(
        f"Table 2: Statistics of IS with fewer barriers on {nprocs} processors",
        results,
        paper=paper_data.TABLE2_IS_LB_STATS,
    )


def table3(proc_counts=PAPER_PROC_COUNTS) -> str:
    speedups = speedup_experiment(
        is_sort,
        (Entry("LRC_d", "lrc_d"), Entry("VC_sd", "vc_sd"), Entry("VC_sd lb", "vc_sd", "lb")),
        proc_counts,
    )
    return format_speedup_table("Table 3: Speedup of IS on LRC_d and VC_sd", speedups)


def table4(nprocs: int = 16) -> str:
    results = stats_experiment(gauss, nprocs=nprocs)
    return format_stats_table(
        f"Table 4: Statistics of Gauss on {nprocs} processors",
        results,
        paper=paper_data.TABLE4_GAUSS_STATS,
    )


def table5(proc_counts=PAPER_PROC_COUNTS) -> str:
    speedups = speedup_experiment(
        gauss, (Entry("LRC_d", "lrc_d"), Entry("VC_sd", "vc_sd")), proc_counts
    )
    return format_speedup_table("Table 5: Speedup of Gauss on LRC_d and VC_sd", speedups)


def table6(nprocs: int = 16) -> str:
    results = stats_experiment(sor, nprocs=nprocs)
    return format_stats_table(
        f"Table 6: Statistics of SOR on {nprocs} processors",
        results,
        paper=paper_data.TABLE6_SOR_STATS,
    )


def table7(proc_counts=PAPER_PROC_COUNTS) -> str:
    speedups = speedup_experiment(
        sor, (Entry("LRC_d", "lrc_d"), Entry("VC_sd", "vc_sd")), proc_counts
    )
    return format_speedup_table("Table 7: Speedup of SOR on LRC_d and VC_sd", speedups)


def table8(nprocs: int = 16) -> str:
    results = stats_experiment(nn, nprocs=nprocs)
    return format_stats_table(
        f"Table 8: Statistics of NN on {nprocs} processors",
        results,
        paper=paper_data.TABLE8_NN_STATS,
    )


def table9(proc_counts=PAPER_PROC_COUNTS) -> str:
    speedups = speedup_experiment(
        nn,
        (Entry("LRC_d", "lrc_d"), Entry("VC_sd", "vc_sd"), Entry("MPI", "mpi")),
        proc_counts,
    )
    return format_speedup_table("Table 9: Speedup of NN on LRC_d, VC_sd and MPI", speedups)


TABLES: dict[int, Callable[[], str]] = {
    1: table1,
    2: table2,
    3: table3,
    4: table4,
    5: table5,
    6: table6,
    7: table7,
    8: table8,
    9: table9,
}


def run_table(number: int) -> str:
    """Run one paper table's experiment and return the formatted table."""
    try:
        fn = TABLES[number]
    except KeyError:
        raise ValueError(f"no table {number}; the paper has tables 1-9") from None
    return fn()
