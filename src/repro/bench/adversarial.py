"""Adversarial worst-case grid: searched fault plans per (app, protocol).

The random-loss grid (``BENCH_faults.json``, :mod:`repro.bench.degradation`)
samples the fault space; this bench *searches* it with
:mod:`repro.faults.adversary` and commits, per protocol: the winning plan,
its fitness trajectory, the delta-debugged (shrunk) plan inline, and — when
the committed random-loss grid is on disk — the worst random cell for the
same protocol, so the report shows how much a targeted adversary beats
uniform noise.

The whole grid is bit-reproducible for a fixed seed + budget (everything
except the ``manifest`` block, which records host facts by design); the CI
``adversarial-smoke`` job regenerates it and diffs against the committed
file.  CLI: ``python -m repro adversary --grid`` or
``python -m repro.bench.adversarial``.
"""

from __future__ import annotations

import json
from typing import Callable, Optional, Sequence

__all__ = [
    "DEFAULT_ADVERSARIAL_OUTPUT",
    "DEFAULT_BUDGET",
    "DEFAULT_PROTOCOLS",
    "DEFAULT_SEED",
    "format_adversarial_grid",
    "load_random_loss_worst",
    "run_adversarial_grid",
    "write_adversarial_report",
]

DEFAULT_ADVERSARIAL_OUTPUT = "BENCH_adversarial.json"
DEFAULT_PROTOCOLS = ("lrc_d", "vc_d", "vc_sd")
DEFAULT_BUDGET = 24
DEFAULT_SEED = 11


def load_random_loss_worst(path: str = "BENCH_faults.json") -> dict:
    """Worst completed slowdown per protocol from the random-loss grid.

    Returns ``{protocol: {"slowdown": ..., "loss_rate": ..., "time": ...}}``;
    empty when the file is absent (the adversarial report then simply omits
    the comparison)."""
    try:
        with open(path) as fh:
            report = json.load(fh)
    except (OSError, json.JSONDecodeError):
        return {}
    worst: dict[str, dict] = {}
    for cell in report.get("grid", []):
        if cell.get("failed") or cell.get("slowdown") is None:
            continue
        prev = worst.get(cell["protocol"])
        if prev is None or cell["slowdown"] > prev["slowdown"]:
            worst[cell["protocol"]] = {
                "slowdown": cell["slowdown"],
                "loss_rate": cell["loss_rate"],
                "time": cell["time"],
            }
    return worst


def run_adversarial_grid(
    app: str = "is",
    nprocs: int = 8,
    protocols: Sequence[str] = DEFAULT_PROTOCOLS,
    budget: int = DEFAULT_BUDGET,
    seed: int = DEFAULT_SEED,
    population: int = 6,
    cache_dir: Optional[str] = None,
    shrink: bool = True,
    faults_report: str = "BENCH_faults.json",
    log: Optional[Callable[[str], None]] = None,
) -> dict:
    """Search every protocol and return the report dict
    (``BENCH_adversarial.json`` shape)."""
    import time

    from repro.bench.manifest import run_manifest
    from repro.faults.adversary import search

    t_start = time.perf_counter()
    random_worst = load_random_loss_worst(faults_report)
    grid: list[dict] = []
    for protocol in protocols:
        result = search(
            app=app, protocol=protocol, nprocs=nprocs, budget=budget,
            seed=seed, population=population, cache_dir=cache_dir,
            shrink=shrink, log=log,
        )
        cell = result.to_json()
        worst = random_worst.get(protocol)
        if worst is not None:
            cell["random_loss_worst"] = worst
        grid.append(cell)
    return {
        "benchmark": "faults_adversarial",
        "app": app,
        "nprocs": nprocs,
        "budget": budget,
        "seed": seed,
        "population": population,
        "protocols": list(protocols),
        "grid": grid,
        "manifest": run_manifest(
            config={"app": app, "nprocs": nprocs, "budget": budget,
                    "seed": seed, "population": population,
                    "protocols": list(protocols)},
            wall_seconds=time.perf_counter() - t_start,
        ),
    }


def format_adversarial_grid(report: dict) -> str:
    """Terminal rendering: one row per protocol, searched vs random worst."""
    lines = [
        f"Adversarial grid — {report['app']} x {report['nprocs']}p "
        f"(budget {report['budget']}, seed {report['seed']})",
        f"{'protocol':<8} {'class':<12} {'magnitude':>9} {'slowdown':>9} "
        f"{'random':>8} {'eps':>4} {'shrunk':>6}",
    ]
    for cell in report["grid"]:
        best = cell["best"]
        slowdown = best["slowdown"]
        completed = cell.get("best_completed") or {}
        if slowdown is None:
            slowdown = completed.get("slowdown")
        random_worst = (cell.get("random_loss_worst") or {}).get("slowdown")
        shrunk = cell.get("shrunk") or {}
        lines.append(
            f"{cell['protocol']:<8} {best['class']:<12} "
            f"{best['magnitude']:>9.3f} "
            f"{(f'{slowdown:.3f}' if slowdown is not None else '-'):>9} "
            f"{(f'{random_worst:.3f}' if random_worst is not None else '-'):>8} "
            f"{best['episodes']:>4} "
            f"{(str(shrunk.get('episodes')) if shrunk else '-'):>6}"
        )
    return "\n".join(lines)


def write_adversarial_report(
    report: dict, path: str = DEFAULT_ADVERSARIAL_OUTPUT
) -> None:
    with open(path, "w") as fh:
        json.dump(report, fh, indent=1, sort_keys=True)
        fh.write("\n")


def main() -> None:  # pragma: no cover - exercised via CLI
    from repro.bench.sweep import DEFAULT_CACHE_DIR

    report = run_adversarial_grid(cache_dir=DEFAULT_CACHE_DIR, log=print)
    print(format_adversarial_grid(report))
    write_adversarial_report(report)
    print(f"wrote {DEFAULT_ADVERSARIAL_OUTPUT}")


if __name__ == "__main__":  # pragma: no cover
    main()
