"""Parallel sweep engine with a content-addressed on-disk result cache.

A *sweep* fans a set of :class:`SweepCell` s — one per (app, protocol,
variant, nprocs, seed) combination — over a ``ProcessPoolExecutor`` and
collects one :class:`CellResult` each.  Every simulation is self-contained
and deterministic, so parallel execution is **bit-identical** to serial:
the table rows of a cell do not depend on which worker ran it or in what
order (``tests/bench/test_sweep.py`` asserts this).

Results are cached on disk, keyed by a SHA-256 over the *content* that
determines the outcome:

* the cell itself (app, protocol, variant, nprocs, seed),
* the app's full config (``dataclasses.asdict``), and
* a fingerprint of every ``src/repro`` source file.

Any change to the simulator, protocols or app code changes the code
fingerprint and silently invalidates every cached entry; changing a seed or
config field invalidates exactly the affected cells.  A cache hit returns
the unpickled :class:`~repro.apps.common.AppResult` without re-running the
simulation, which makes warm re-runs of a whole sweep near-instant.

CLI: ``python -m repro sweep`` (see docs/benchmarks.md).  The consolidated
report is written to ``BENCH_sweep.json``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import resource
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.apps import APPS
from repro.apps.common import AppResult, run_app

__all__ = [
    "SweepCell",
    "CellResult",
    "SweepReport",
    "ResultCache",
    "code_fingerprint",
    "cell_key",
    "run_sweep",
    "default_cells",
    "write_report",
    "DEFAULT_OUTPUT",
    "DEFAULT_CACHE_DIR",
]

DEFAULT_OUTPUT = "BENCH_sweep.json"
DEFAULT_CACHE_DIR = os.path.join(".cache", "sweep")


@dataclass(frozen=True)
class SweepCell:
    """One point of a sweep.  ``app`` is a name from :data:`repro.apps.APPS`
    (module objects don't pickle; names do)."""

    app: str
    protocol: str
    nprocs: int
    variant: str = "default"
    seed: Optional[int] = None  # None = the app's default seed

    def config(self):
        """The resolved app config this cell runs with."""
        config = APPS[self.app].default_config()
        if self.seed is not None:
            config = dataclasses.replace(config, seed=self.seed)
        return config


@dataclass
class CellResult:
    """One executed (or cache-recalled) cell."""

    cell: SweepCell
    result: AppResult
    wall_seconds: float  # host seconds of the run that *produced* the result
    peak_rss_kb: int
    cache_hit: bool

    @property
    def events_per_sec(self) -> int:
        if self.wall_seconds <= 0:
            return 0
        return round(self.result.events / self.wall_seconds)

    def fingerprint(self) -> str:
        """Determinism fingerprint: hash of the simulated statistics row."""
        return hashlib.sha256(
            json.dumps(self.result.table_row(), sort_keys=True).encode()
        ).hexdigest()[:16]


@dataclass
class SweepReport:
    """All cells of one sweep plus totals."""

    cells: list[CellResult]
    jobs: int
    wall_seconds: float  # wall clock of the whole sweep (this process)
    code_fingerprint: str
    manifest: Optional[dict] = None  # run-manifest block (repro.bench.manifest)

    @property
    def hits(self) -> int:
        return sum(1 for c in self.cells if c.cache_hit)

    def to_json(self) -> dict:
        import platform

        return {
            "benchmark": "sweep",
            "jobs": self.jobs,
            "wall_seconds": round(self.wall_seconds, 4),
            "cache_hits": self.hits,
            "cache_misses": len(self.cells) - self.hits,
            "code_fingerprint": self.code_fingerprint,
            "python": platform.python_version(),
            **({"manifest": self.manifest} if self.manifest is not None else {}),
            "cells": [
                {
                    "app": c.cell.app,
                    "protocol": c.cell.protocol,
                    "variant": c.cell.variant,
                    "nprocs": c.cell.nprocs,
                    "seed": c.cell.config().seed,
                    "wall_seconds": round(c.wall_seconds, 4),
                    "events": c.result.events,
                    "events_per_sec": c.events_per_sec,
                    "peak_rss_kb": c.peak_rss_kb,
                    "sim_time_seconds": round(c.result.time, 6),
                    "verified": c.result.verified,
                    "cache_hit": c.cache_hit,
                    "fingerprint": c.fingerprint(),
                    "table_row": c.result.table_row(),
                    **(
                        {"breakdown": c.result.breakdown}
                        if getattr(c.result, "breakdown", None) is not None
                        else {}
                    ),
                    **(
                        {"consistency": c.result.consistency}
                        if getattr(c.result, "consistency", None) is not None
                        else {}
                    ),
                }
                for c in self.cells
            ],
        }


# -- cache keying ---------------------------------------------------------------


_CODE_FP: Optional[str] = None


def code_fingerprint(refresh: bool = False) -> str:
    """SHA-256 over every ``src/repro`` Python source (path + content).

    Computed once per process; any code change — engine, protocol, app —
    yields a new fingerprint and therefore a cold cache.
    """
    global _CODE_FP
    if _CODE_FP is not None and not refresh:
        return _CODE_FP
    import repro

    pkg_root = os.path.dirname(os.path.abspath(repro.__file__))
    digest = hashlib.sha256()
    for dirpath, dirnames, filenames in sorted(os.walk(pkg_root)):
        dirnames.sort()
        for name in sorted(filenames):
            if not name.endswith(".py"):
                continue
            path = os.path.join(dirpath, name)
            digest.update(os.path.relpath(path, pkg_root).encode())
            with open(path, "rb") as fh:
                digest.update(fh.read())
    _CODE_FP = digest.hexdigest()
    return _CODE_FP


def cell_key(
    cell: SweepCell,
    code_fp: Optional[str] = None,
    trace: bool = False,
    pdes_workers: Optional[int] = None,
    check: bool = False,
    faults: Optional[dict] = None,
) -> str:
    """Content-addressed cache key for one cell.

    Traced and untraced runs use distinct keys (a traced result carries a
    time breakdown the untraced one lacks), so enabling ``--trace`` never
    recalls an untraced cached entry or pollutes the untraced cache.
    Partitioned (PDES) runs likewise key separately — the simulated results
    are bit-identical, but the host-side wall/throughput figures are not.
    Consistency-checked runs (``check``) key separately too: their results
    carry the oracle verdict.  ``faults`` (a ``FaultPlan.to_json()`` dict)
    hashes the candidate fault plan into the key — the adversarial search
    (:mod:`repro.faults.adversary`) funnels every candidate evaluation
    through this cache, so search restarts and population duplicates recall
    instead of re-running.
    """
    material = {
        "app": cell.app,
        "protocol": cell.protocol,
        "variant": cell.variant,
        "nprocs": cell.nprocs,
        "seed": cell.seed,
        "config": dataclasses.asdict(cell.config()),
        "code": code_fp if code_fp is not None else code_fingerprint(),
    }
    if trace:
        material["trace"] = True
    if pdes_workers is not None and pdes_workers > 1:
        material["pdes_workers"] = pdes_workers
    if check:
        material["check"] = True
    if faults is not None:
        material["faults"] = faults
    return hashlib.sha256(
        json.dumps(material, sort_keys=True, default=repr).encode()
    ).hexdigest()


class ResultCache:
    """Pickle-per-key result store under ``root`` (one file per cell)."""

    def __init__(self, root: str = DEFAULT_CACHE_DIR):
        self.root = root

    def _path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], key + ".pkl")

    def get(self, key: str) -> Optional[tuple[AppResult, float, int]]:
        """Return ``(result, wall_seconds, peak_rss_kb)`` or ``None``."""
        try:
            with open(self._path(key), "rb") as fh:
                return pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError):
            return None

    def put(self, key: str, result: AppResult, wall: float, rss_kb: int) -> None:
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        tmp = path + f".tmp.{os.getpid()}"
        with open(tmp, "wb") as fh:
            pickle.dump((result, wall, rss_kb), fh, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)  # atomic: concurrent workers can't torn-write


# -- execution -------------------------------------------------------------------


def _execute_cell(
    cell: SweepCell,
    verify: bool,
    trace: bool = False,
    pdes_workers: Optional[int] = None,
    check: bool = False,
) -> tuple[AppResult, float, int]:
    """Run one cell; returns (result, wall seconds, peak RSS KiB).

    Module-level so a ``ProcessPoolExecutor`` worker can pickle it.  With
    ``trace`` the run records structured events and the result carries a
    time breakdown (the event list itself is not kept — it can be huge).
    With ``check`` the run records its access history, the consistency
    oracle verifies it, and the result carries the report on
    ``result.consistency`` (the history itself is not kept).
    """
    t0 = time.perf_counter()
    tracer = oracle = None
    if trace:
        from repro.obs import EventTracer

        tracer = EventTracer()
    if check:
        from repro.obs.oracle import AccessRecorder

        oracle = AccessRecorder()
    result = run_app(
        APPS[cell.app],
        cell.protocol,
        cell.nprocs,
        config=cell.config(),
        variant=cell.variant,
        verify=verify,
        tracer=tracer,
        oracle=oracle,
        pdes_workers=pdes_workers,
    )
    if oracle is not None:
        from repro.obs.oracle import check_history

        report = check_history(oracle, nprocs=cell.nprocs, protocol=cell.protocol)
        result.consistency = report.to_json()
    wall = time.perf_counter() - t0
    rss_kb = int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
    return result, wall, rss_kb


def _worker(
    args: tuple[SweepCell, bool, Optional[str], str, bool, Optional[int], bool]
) -> tuple[tuple[AppResult, float, int], float, float]:
    """Pool worker: run + cache one cell; returns ``(out, t_start, t_end)``.

    The start/end stamps are ``perf_counter`` readings — CLOCK_MONOTONIC is
    system-wide on Linux, so the parent can synthesise queue-wait (submit →
    start) and run spans on its own host profiler without clock translation.
    """
    cell, verify, cache_root, code_fp, trace, pdes_workers, check = args
    t_start = time.perf_counter()
    out = _execute_cell(cell, verify, trace, pdes_workers, check)
    if cache_root is not None:
        ResultCache(cache_root).put(
            cell_key(cell, code_fp, trace, pdes_workers, check), *out
        )
    return out, t_start, time.perf_counter()


def run_sweep(
    cells: Sequence[SweepCell],
    jobs: int = 1,
    cache_dir: Optional[str] = DEFAULT_CACHE_DIR,
    verify: bool = True,
    trace: bool = False,
    pdes_workers: Optional[int] = None,
    check: bool = False,
    host=None,
) -> SweepReport:
    """Run every cell, using the cache and up to ``jobs`` worker processes.

    Cache hits are resolved first (in this process); only misses are
    dispatched to the pool.  ``jobs <= 1`` executes misses serially in this
    process — the results are identical either way.  ``pdes_workers``
    executes each cell under the partitioned engine (fork mode), so keep
    ``jobs=1`` when setting it — the partitions are the parallelism.
    ``check`` runs every cell under the consistency oracle and attaches the
    verdict to each result (see :mod:`repro.obs.oracle`).

    ``host`` (a :class:`repro.obs.host.HostProfiler`) records one lane per
    cell under the ``sweep`` process: ``cache-hit`` for recalled cells, and
    ``queue-wait`` (dispatch → worker pickup) + ``run`` spans for executed
    ones — purely observational, results are bit-identical either way.
    """
    t_start = time.perf_counter()
    code_fp = code_fingerprint()
    cache = ResultCache(cache_dir) if cache_dir is not None else None
    keys = [cell_key(cell, code_fp, trace, pdes_workers, check) for cell in cells]

    def _lane(cell: SweepCell) -> str:
        return f"{cell.app}/{cell.protocol}/{cell.nprocs}/{cell.variant}"

    slots: list[Optional[CellResult]] = [None] * len(cells)
    misses: list[int] = []
    for i, (cell, key) in enumerate(zip(cells, keys)):
        t_hit = time.perf_counter()
        hit = cache.get(key) if cache is not None else None
        if hit is not None:
            result, wall, rss_kb = hit
            slots[i] = CellResult(cell, result, wall, rss_kb, cache_hit=True)
            if host is not None:
                host.add_span(_lane(cell), "cache-hit", "cache-hit",
                              t_hit, time.perf_counter(), proc="sweep")
        else:
            misses.append(i)

    if misses and jobs > 1:
        work = [
            (cells[i], verify, cache_dir, code_fp, trace, pdes_workers, check)
            for i in misses
        ]
        with ProcessPoolExecutor(max_workers=min(jobs, len(misses))) as pool:
            t_submit = time.perf_counter()
            for i, (out, t0, t1) in zip(misses, pool.map(_worker, work)):
                result, wall, rss_kb = out
                slots[i] = CellResult(cells[i], result, wall, rss_kb, cache_hit=False)
                if host is not None:
                    lane = _lane(cells[i])
                    host.add_span(lane, "queue-wait", "queue-wait",
                                  min(t_submit, t0), t0, proc="sweep")
                    host.add_span(lane, "run", "run", t0, t1, proc="sweep")
    else:
        for i in misses:
            t0 = time.perf_counter()
            result, wall, rss_kb = _execute_cell(
                cells[i], verify, trace, pdes_workers, check
            )
            if cache is not None:
                cache.put(keys[i], result, wall, rss_kb)
            slots[i] = CellResult(cells[i], result, wall, rss_kb, cache_hit=False)
            if host is not None:
                host.add_span(_lane(cells[i]), "run", "run",
                              t0, time.perf_counter(), proc="sweep")

    wall_total = time.perf_counter() - t_start
    from repro.bench.manifest import run_manifest

    manifest = run_manifest(
        config=[dataclasses.asdict(c) for c in cells], wall_seconds=wall_total
    )
    return SweepReport(
        cells=[s for s in slots if s is not None],
        jobs=jobs,
        wall_seconds=wall_total,
        code_fingerprint=code_fp,
        manifest=manifest,
    )


def cached_run_app(
    app_module,
    protocol: str,
    nprocs: int,
    variant: str = "default",
    verify: bool = True,
    cache_dir: Optional[str] = DEFAULT_CACHE_DIR,
) -> AppResult:
    """Drop-in for :func:`repro.apps.common.run_app` (default config only)
    that consults the sweep cache.  Used by the table/figure drivers."""
    cell = SweepCell(app=_app_name(app_module), protocol=protocol,
                     nprocs=nprocs, variant=variant)
    report = run_sweep([cell], jobs=1, cache_dir=cache_dir, verify=verify)
    return report.cells[0].result


def _app_name(app_module) -> str:
    for name, module in APPS.items():
        if module is app_module:
            return name
    raise KeyError(f"{app_module!r} is not a registered application")


# -- the default benchmark matrix -------------------------------------------------


def default_cells() -> list[SweepCell]:
    """The committed ``BENCH_sweep.json`` matrix.

    Covers every app under every DSM protocol at 8 processors, the paper's
    headline IS-on-16 cells (Table 1) and the fewer-barrier IS variant
    (Table 2), plus NN's MPI twin — small enough to run in well under a
    minute, broad enough to touch every protocol code path.
    """
    cells: list[SweepCell] = []
    for app in ("is", "gauss", "sor", "nn"):
        for protocol in ("lrc_d", "vc_d", "vc_sd"):
            cells.append(SweepCell(app=app, protocol=protocol, nprocs=8))
    for protocol in ("lrc_d", "vc_d", "vc_sd"):
        cells.append(SweepCell(app="is", protocol=protocol, nprocs=16))
    for protocol in ("vc_d", "vc_sd"):
        cells.append(SweepCell(app="is", protocol=protocol, nprocs=16, variant="lb"))
    cells.append(SweepCell(app="nn", protocol="mpi", nprocs=8))
    return cells


def write_report(report: SweepReport, path: str = DEFAULT_OUTPUT) -> None:
    with open(path, "w") as fh:
        json.dump(report.to_json(), fh, indent=1)
        fh.write("\n")


def main() -> None:  # pragma: no cover - exercised via CLI
    report = run_sweep(default_cells(), jobs=os.cpu_count() or 1)
    write_report(report)
    print(json.dumps(report.to_json(), indent=1))
    print(f"wrote {DEFAULT_OUTPUT}")


if __name__ == "__main__":  # pragma: no cover
    main()
