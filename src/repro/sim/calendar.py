"""Array-friendly calendar/bucket event queue.

A classic calendar queue (Brown 1988): events hash into an array of day
buckets by ``day(t) % nbuckets`` where ``day(t) = int(t * (1/width))``, and
the pop cursor walks the calendar day by day, so in the steady state both
``push`` and ``pop`` are O(1) amortized instead of the binary heap's
O(log n).  The simulator's workloads are a good fit — event times cluster
around ``now`` within a few network latencies — and the flat bucket array
keeps entries for the same instant adjacent in memory.

Entries are the engine's full ``(t, tsched, cls, seq, fn, args)`` tuples and
pop order is *exactly* the total order of a binary heap over the same keys
(property-tested against :mod:`heapq` in ``tests/sim/test_calendar.py``),
so :class:`repro.sim.Simulator` can swap this in for the heap without any
behavioural change.  Buckets hold small heaps, which makes degenerate
schedules (every event at one instant) gracefully collapse to plain heap
behaviour instead of breaking.

**Front cache.**  The engine's run loop peeks ``q[0]`` on every iteration
(often twice), so peeking must not cost a bucket scan.  The queue keeps the
current minimum in a dedicated ``_head`` slot *outside* the buckets: a peek
is an attribute read, the following pop hands the cached entry straight
back, and ``push`` maintains the invariant ``_head <= every bucket entry``
with one tuple comparison (a new pre-head entry swaps into the slot and the
old head is demoted into its bucket).

The queue resizes itself: when the population doubles past or shrinks below
the bucket count's working range, the calendar is rebuilt with a bucket
count proportional to the population and a width estimated from the spread
of a sample of pending event times, per the original paper's recipe.  A
far-future outlier therefore cannot strand the cursor scanning empty days:
a full lap without a hit falls back to a direct minimum scan over all
buckets, and the cursor re-anchors on the found day.

All day arithmetic goes through the single :meth:`_day` function for both
placement and the cursor scan, so float rounding can never place an entry
in one day and look for it in another.  (``_day`` multiplies by a cached
``1/width`` instead of dividing — multiplication by a positive constant is
monotone, and the sole-source-of-truth rule makes the exact rounding
irrelevant.)
"""

from __future__ import annotations

import heapq
from typing import Any, Optional

__all__ = ["CalendarQueue"]

_INF = float("inf")


class CalendarQueue:
    """Calendar queue with a heap-compatible ``push``/``pop``/peek surface."""

    MIN_BUCKETS = 8

    __slots__ = ("_size", "_nbuckets", "_width", "_inv_width",
                 "_buckets", "_cur_day", "_head")

    def __init__(self, nbuckets: int = 8, width: float = 1e-5):
        self._size = 0  # number of entries in the buckets (head excluded)
        self._head: Optional[tuple] = None  # cached minimum, <= all buckets
        self._init(nbuckets, width)

    def _init(self, nbuckets: int, width: float) -> None:
        if width <= 0.0:
            width = 1e-9
        self._nbuckets = nbuckets
        self._width = width
        self._inv_width = 1.0 / width
        self._buckets: list[list[tuple]] = [[] for _ in range(nbuckets)]
        self._cur_day = 0  # absolute day number the pop cursor is draining

    def _day(self, t: float) -> int:
        """Canonical day number for time ``t`` (sole source of truth)."""
        if t == _INF:
            return self._cur_day  # park infinities on the current day
        return int(t * self._inv_width)

    # -- sizing ---------------------------------------------------------------

    def _resize(self, nbuckets: int) -> None:
        entries = [e for b in self._buckets for e in b]
        self._init(nbuckets, self._estimate_width(entries))
        if entries:
            self._cur_day = min(self._day(e[0]) for e in entries)
            buckets = self._buckets
            nb = self._nbuckets
            for e in entries:
                heapq.heappush(buckets[self._day(e[0]) % nb], e)

    def _estimate_width(self, entries: list[tuple]) -> float:
        """Width ≈ a few average inter-event gaps, from a sample (CQ recipe)."""
        if len(entries) < 2:
            return self._width
        sample = sorted(e[0] for e in entries[: max(25, len(entries) // 16)])
        gaps = [b - a for a, b in zip(sample, sample[1:])
                if b > a and b != _INF]
        if not gaps:
            return self._width  # all sampled events simultaneous
        return 3.0 * (sum(gaps) / len(gaps))

    # -- queue surface --------------------------------------------------------

    def push(self, entry: tuple) -> None:
        """Insert ``entry`` (a ``(t, tsched, cls, seq, fn, args)`` tuple)."""
        head = self._head
        if head is not None and entry < head:
            # new global minimum: take the head slot, demote the old head
            self._head = entry
            entry = head
        day = self._day(entry[0])
        if self._size == 0 or day < self._cur_day:
            # re-anchor the cursor so the next pop starts on the right day
            # (an entry behind the cursor would otherwise lose the race to
            # later entries the scan reaches first)
            self._cur_day = day
        heapq.heappush(self._buckets[day % self._nbuckets], entry)
        self._size += 1
        if self._size > 2 * self._nbuckets:
            self._resize(2 * self._nbuckets)

    def pop(self) -> tuple:
        """Remove and return the minimum entry (full-key order)."""
        head = self._head
        if head is not None:
            self._head = None
            return head
        if self._size == 0:
            raise IndexError("pop from empty CalendarQueue")
        entry = self._pop_min()
        self._size -= 1
        if self._nbuckets > self.MIN_BUCKETS and self._size < self._nbuckets // 2:
            self._resize(max(self.MIN_BUCKETS, self._nbuckets // 2))
        return entry

    def _pop_min(self) -> tuple:
        buckets = self._buckets
        nb = self._nbuckets
        day = self._cur_day
        for _ in range(nb):
            b = buckets[day % nb]
            if b and self._day(b[0][0]) <= day:
                # hit on (or overdue for) this day: calendar-order pop
                self._cur_day = day
                return heapq.heappop(b)
            day += 1
        # a full lap without a hit (sparse year / far-future outlier):
        # direct minimum scan, then re-anchor the cursor on that day
        best_i = -1
        best: Any = None
        for i, b in enumerate(buckets):
            if b and (best is None or b[0] < best):
                best = b[0]
                best_i = i
        assert best is not None
        self._cur_day = self._day(best[0])
        return heapq.heappop(buckets[best_i])

    def __len__(self) -> int:
        return self._size + (self._head is not None)

    def __bool__(self) -> bool:
        return self._size > 0 or self._head is not None

    def __iter__(self):
        """All pending entries, in no particular order (inspection only).

        The PDES driver walks the pending set at barrier upload time to
        compute its output bound; iteration must not disturb the queue.
        """
        head = self._head
        if head is not None:
            yield head
        for bucket in self._buckets:
            yield from bucket

    def __getitem__(self, index: int) -> Any:
        """Peek support: ``q[0]`` is the minimum entry (heap-API parity)."""
        head = self._head
        if head is not None and index == 0:
            return head
        if index != 0:
            raise IndexError("CalendarQueue only supports peeking q[0]")
        if self._size == 0:
            raise IndexError("peek into empty CalendarQueue")
        # promote the bucket minimum into the head slot; subsequent peeks
        # and the next pop are then O(1)
        head = self._pop_min()
        self._size -= 1
        self._head = head
        return head
