"""Message channels for inter-process communication inside the simulator.

A :class:`Channel` is an unbounded (or optionally bounded) FIFO queue with
blocking ``get`` and non-blocking ``put``.  It is the building block for NIC
queues and protocol daemon mailboxes.

Blocked getters are registered together with their resumption token
(:attr:`Process._epoch`); a getter that was interrupted while waiting is
skipped when an item arrives, so the item goes to the next live getter
instead of being lost to a dropped wake-up.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional, Tuple

from repro.sim.engine import Effect, Process, SimError, Simulator

__all__ = ["Channel", "ChannelClosed"]


class ChannelClosed(Exception):
    """Raised from a blocked ``get`` when the channel is closed and drained."""


class _Get(Effect):
    __slots__ = ("chan",)

    def __init__(self, chan: "Channel"):
        self.chan = chan

    def apply(self, sim: Simulator, proc: Process) -> None:
        chan = self.chan
        if chan._items:
            item = chan._items.popleft()
            sim.call_soon(proc._resume, item, None, proc._epoch)
        elif chan.closed:
            sim.call_soon(proc._resume, None, ChannelClosed(), proc._epoch)
        else:
            chan._getters.append((proc, proc._epoch))


class Channel:
    """FIFO queue with blocking receive.

    ``put`` never blocks (capacity, when set, raises instead — the network
    layer models backpressure explicitly by *dropping*, not by blocking, to
    mirror a real NIC buffer).
    """

    def __init__(self, sim: Simulator, capacity: Optional[int] = None, name: str = ""):
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.closed = False
        self._items: Deque[Any] = deque()
        self._getters: Deque[Tuple[Process, int]] = deque()
        self._get_effect = _Get(self)  # stateless, shared by every get()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> bool:
        """Enqueue ``item``; returns False iff dropped due to capacity."""
        if self.closed:
            raise SimError(f"put on closed channel {self.name!r}")
        getters = self._getters
        while getters:
            proc, token = getters.popleft()
            if token == proc._epoch and not proc.finished:
                self.sim.call_soon(proc._resume, item, None, token)
                return True
        if self.capacity is not None and len(self._items) >= self.capacity:
            return False
        self._items.append(item)
        return True

    def get(self) -> Effect:
        """Effect: block until an item is available, resume with it."""
        return self._get_effect

    def try_get(self) -> tuple[bool, Any]:
        """Non-blocking receive: ``(True, item)`` or ``(False, None)``."""
        if self._items:
            return True, self._items.popleft()
        return False, None

    def close(self) -> None:
        """Close the channel; blocked getters receive :class:`ChannelClosed`."""
        self.closed = True
        while self._getters:
            proc, token = self._getters.popleft()
            if token == proc._epoch and not proc.finished:
                self.sim.call_soon(proc._resume, None, ChannelClosed(), token)
