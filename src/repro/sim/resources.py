"""Synchronisation resources living in simulated time.

These are *simulator-local* primitives used to structure the implementation
(e.g. serialising a NIC).  They are distinct from the *protocol-level* locks,
barriers and views in :mod:`repro.protocols`, which cost network messages; the
primitives here are free of charge and only order events.

All wait registrations carry the waiting process's resumption token
(:attr:`Process._epoch`).  A registration whose token no longer matches is
*stale* — the process was resumed by something else (an interrupt, a
competing wake-up) — and is skipped on signal and pruned on the next
registration, so losers of a race are deregistered instead of leaking or
firing into the wrong yield.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, Optional, Tuple

from repro.sim.engine import Effect, Process, SimError, Simulator

__all__ = ["Mutex", "Semaphore", "Condition", "Event", "Barrier", "TIMED_OUT"]


class _TimedOut:
    """Singleton sentinel returned by :meth:`Event.wait_timeout` on expiry."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "TIMED_OUT"


TIMED_OUT = _TimedOut()


class _Acquire(Effect):
    __slots__ = ("res",)

    def __init__(self, res: "Semaphore"):
        self.res = res

    def apply(self, sim: Simulator, proc: Process) -> None:
        res = self.res
        if res._count > 0:
            res._count -= 1
            sim.call_soon(proc._resume, None, None, proc._epoch)
        else:
            res._waiters.append((proc, proc._epoch))


class Semaphore:
    """Counting semaphore. ``yield sem.acquire()`` / ``sem.release()``."""

    def __init__(self, sim: Simulator, value: int = 1):
        if value < 0:
            raise SimError("semaphore initial value must be >= 0")
        self.sim = sim
        self._count = value
        self._waiters: Deque[Tuple[Process, int]] = deque()

    def acquire(self) -> Effect:
        return _Acquire(self)

    def release(self) -> None:
        while self._waiters:
            proc, token = self._waiters.popleft()
            if token == proc._epoch and not proc.finished:
                self.sim.call_soon(proc._resume, None, None, token)
                return
        self._count += 1

    def locked(self) -> bool:
        return self._count == 0


class Mutex(Semaphore):
    """Binary semaphore with a context-style helper.

    ``yield from mutex.holding(gen)`` runs ``gen`` with the mutex held.
    """

    def __init__(self, sim: Simulator):
        super().__init__(sim, value=1)

    def holding(self, gen: Generator) -> Generator:
        yield self.acquire()
        try:
            result = yield from gen
        finally:
            self.release()
        return result


class _Wait(Effect):
    __slots__ = ("evt",)

    def __init__(self, evt: "Event"):
        self.evt = evt

    def apply(self, sim: Simulator, proc: Process) -> None:
        evt = self.evt
        if evt._set:
            sim.call_soon(proc._resume, evt._value, None, proc._epoch)
        else:
            evt._register(proc)


class _WaitTimeout(Effect):
    """Cancellable wait: event value if it fires first, else ``TIMED_OUT``.

    The race has no auxiliary events or callbacks: the process registers on
    the event *and* schedules a timeout wake-up, both tagged with the same
    resumption token.  Whichever fires first resumes the process (bumping
    its epoch); the loser's wake-up carries a stale token and is dropped by
    :meth:`Process._resume`, while the loser's event registration is skipped
    by :meth:`Event.set` and pruned by the next :meth:`Event._register`.
    """

    __slots__ = ("evt", "delay")

    def __init__(self, evt: "Event", delay: float):
        self.evt = evt
        self.delay = delay

    def apply(self, sim: Simulator, proc: Process) -> None:
        evt = self.evt
        if evt._set:
            sim.call_soon(proc._resume, evt._value, None, proc._epoch)
            return
        evt._register(proc)
        sim.schedule_timer(self.delay, proc._resume, TIMED_OUT, None, proc._epoch)


class Event:
    """One-shot level-triggered event carrying an optional value."""

    __slots__ = ("sim", "_set", "_value", "_waiters")

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._set = False
        self._value: Any = None
        self._waiters: Deque[Tuple[Process, int]] = deque()

    @property
    def is_set(self) -> bool:
        return self._set

    @property
    def value(self) -> Any:
        """The value passed to :meth:`set` (None while unset)."""
        return self._value

    def _register(self, proc: Process) -> None:
        # prune stale registrations (timed-out / interrupted waiters) so a
        # retry loop re-waiting on the same event cannot grow the deque
        w = self._waiters
        while w:
            head, token = w[0]
            if token == head._epoch and not head.finished:
                break
            w.popleft()
        w.append((proc, proc._epoch))

    def set(self, value: Any = None) -> None:
        if self._set:
            return
        self._set = True
        self._value = value
        while self._waiters:
            proc, token = self._waiters.popleft()
            if token == proc._epoch and not proc.finished:
                self.sim.call_soon(proc._resume, value, None, token)

    def wait(self) -> Effect:
        return _Wait(self)

    def wait_timeout(self, delay: float) -> Effect:
        """Effect: resume with the event's value, or ``TIMED_OUT`` after
        ``delay`` seconds, whichever comes first (losing wake-up dropped)."""
        return _WaitTimeout(self, delay)


class Condition:
    """Condition variable over an explicit :class:`Mutex`.

    ``yield from cond.wait()`` atomically releases the mutex, blocks until
    notified, then reacquires the mutex before returning.
    """

    def __init__(self, sim: Simulator, mutex: Optional[Mutex] = None):
        self.sim = sim
        self.mutex = mutex or Mutex(sim)
        self._waiters: Deque[Event] = deque()

    def wait(self) -> Generator:
        evt = Event(self.sim)
        self._waiters.append(evt)
        self.mutex.release()
        yield evt.wait()
        yield self.mutex.acquire()

    def notify(self, n: int = 1) -> None:
        for _ in range(min(n, len(self._waiters))):
            self._waiters.popleft().set()

    def notify_all(self) -> None:
        self.notify(len(self._waiters))


class Barrier:
    """Simulator-local barrier for ``parties`` processes (zero message cost)."""

    def __init__(self, sim: Simulator, parties: int):
        if parties <= 0:
            raise SimError("barrier needs at least one party")
        self.sim = sim
        self.parties = parties
        self._count = 0
        self._generation = 0
        self._event = Event(sim)

    def wait(self) -> Generator:
        gen = self._generation
        self._count += 1
        if self._count == self.parties:
            self._count = 0
            self._generation += 1
            evt, self._event = self._event, Event(self.sim)
            evt.set(gen)
            return gen
        evt = self._event
        arrived = yield evt.wait()
        return arrived
