"""Synchronisation resources living in simulated time.

These are *simulator-local* primitives used to structure the implementation
(e.g. serialising a NIC).  They are distinct from the *protocol-level* locks,
barriers and views in :mod:`repro.protocols`, which cost network messages; the
primitives here are free of charge and only order events.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, Optional

from repro.sim.engine import Effect, Process, SimError, Simulator

__all__ = ["Mutex", "Semaphore", "Condition", "Event", "Barrier"]


class _Acquire(Effect):
    __slots__ = ("res",)

    def __init__(self, res: "Semaphore"):
        self.res = res

    def apply(self, sim: Simulator, proc: Process) -> None:
        res = self.res
        if res._count > 0:
            res._count -= 1
            sim.schedule(0.0, proc._resume, None)
        else:
            res._waiters.append(proc)


class Semaphore:
    """Counting semaphore. ``yield sem.acquire()`` / ``sem.release()``."""

    def __init__(self, sim: Simulator, value: int = 1):
        if value < 0:
            raise SimError("semaphore initial value must be >= 0")
        self.sim = sim
        self._count = value
        self._waiters: Deque[Process] = deque()

    def acquire(self) -> Effect:
        return _Acquire(self)

    def release(self) -> None:
        if self._waiters:
            waiter = self._waiters.popleft()
            self.sim.schedule(0.0, waiter._resume, None)
        else:
            self._count += 1

    def locked(self) -> bool:
        return self._count == 0


class Mutex(Semaphore):
    """Binary semaphore with a context-style helper.

    ``yield from mutex.holding(gen)`` runs ``gen`` with the mutex held.
    """

    def __init__(self, sim: Simulator):
        super().__init__(sim, value=1)

    def holding(self, gen: Generator) -> Generator:
        yield self.acquire()
        try:
            result = yield from gen
        finally:
            self.release()
        return result


class _Wait(Effect):
    __slots__ = ("evt",)

    def __init__(self, evt: "Event"):
        self.evt = evt

    def apply(self, sim: Simulator, proc: Process) -> None:
        evt = self.evt
        if evt._set:
            sim.schedule(0.0, proc._resume, evt._value)
        else:
            evt._waiters.append(proc)


class Event:
    """One-shot level-triggered event carrying an optional value."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._set = False
        self._value: Any = None
        self._waiters: Deque[Process] = deque()

    @property
    def is_set(self) -> bool:
        return self._set

    def set(self, value: Any = None) -> None:
        if self._set:
            return
        self._set = True
        self._value = value
        while self._waiters:
            waiter = self._waiters.popleft()
            self.sim.schedule(0.0, waiter._resume, value)

    def wait(self) -> Effect:
        return _Wait(self)


class Condition:
    """Condition variable over an explicit :class:`Mutex`.

    ``yield from cond.wait()`` atomically releases the mutex, blocks until
    notified, then reacquires the mutex before returning.
    """

    def __init__(self, sim: Simulator, mutex: Optional[Mutex] = None):
        self.sim = sim
        self.mutex = mutex or Mutex(sim)
        self._waiters: Deque[Event] = deque()

    def wait(self) -> Generator:
        evt = Event(self.sim)
        self._waiters.append(evt)
        self.mutex.release()
        yield evt.wait()
        yield self.mutex.acquire()

    def notify(self, n: int = 1) -> None:
        for _ in range(min(n, len(self._waiters))):
            self._waiters.popleft().set()

    def notify_all(self) -> None:
        self.notify(len(self._waiters))


class Barrier:
    """Simulator-local barrier for ``parties`` processes (zero message cost)."""

    def __init__(self, sim: Simulator, parties: int):
        if parties <= 0:
            raise SimError("barrier needs at least one party")
        self.sim = sim
        self.parties = parties
        self._count = 0
        self._generation = 0
        self._event = Event(sim)

    def wait(self) -> Generator:
        gen = self._generation
        self._count += 1
        if self._count == self.parties:
            self._count = 0
            self._generation += 1
            evt, self._event = self._event, Event(self.sim)
            evt.set(gen)
            return gen
        evt = self._event
        arrived = yield evt.wait()
        return arrived
