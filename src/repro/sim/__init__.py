"""Deterministic discrete-event simulation kernel.

The whole reproduction runs inside a single-threaded, deterministic
discrete-event simulator.  Simulated processors, NICs, protocol daemons and
application processes are Python generators driven by :class:`Simulator`.

Blocking operations are expressed as ``yield``/``yield from`` of *effects*:

* :class:`Timeout` — sleep for a simulated duration,
* :class:`Channel` operations — rendezvous message queues,
* resource operations from :mod:`repro.sim.resources`.

Determinism: events scheduled for the same simulated instant are processed in
FIFO scheduling order (a monotonically increasing sequence number breaks
ties), so a given program produces bit-identical traces on every run.
"""

from repro.sim.engine import Simulator, Process, Timeout, SimError, Interrupt
from repro.sim.channel import Channel, ChannelClosed
from repro.sim.resources import Mutex, Semaphore, Condition, Event, Barrier, TIMED_OUT

__all__ = [
    "Simulator",
    "Process",
    "Timeout",
    "SimError",
    "Interrupt",
    "Channel",
    "ChannelClosed",
    "Mutex",
    "Semaphore",
    "Condition",
    "Event",
    "Barrier",
    "TIMED_OUT",
]
