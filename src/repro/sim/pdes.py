"""Conservative windowed parallel discrete-event execution (PDES).

The serial engine processes one global event queue.  This driver partitions
the *simulated nodes* across OS processes and advances them in lock-step
windows, exploiting the switch's fixed forwarding latency λ as lookahead —
the classical conservative null-message/window scheme (Chandy–Misra–Bryant
family), specialised to a star topology where every cross-node interaction
takes at least λ.

Architecture
------------

* Ranks are split into contiguous blocks, one per partition.  Each partition
  builds a **full replica** of the simulated system — all ``n`` nodes, the
  same allocations, the same t=0 construction order — but spawns application
  processes only for its owned ranks; foreign nodes' dispatcher daemons park
  on their mailboxes forever.  Replication is what keeps every sequence
  number, RNG stream and data structure bit-identical to the serial run.
* The replica's switch is a :class:`PartitionSwitch`: frames for co-resident
  destinations take the normal staged arrival pump; frames for foreign
  destinations go to an **outbox** carrying their canonical ordering
  coordinates ``(dst, t_arrival, t_departure, src, departure#)``.  Foreign
  frames are captured the moment their *transmission starts* (a NIC TX-start
  probe): the hand-off instant ``t_dep = now + send_overhead + wire`` and
  the per-source departure number are already fully determined then (TX is
  serialised per NIC and the driver refuses every non-deterministic
  transfer perturbation), so a frame whose wire time spans a barrier ships
  one barrier *earlier* than its simulated hand-off — the destination holds
  it before any window that could need it, and an in-flight transmission
  never forces a minimal-width window.
* Execution alternates windows and barriers.  At each barrier the
  coordinator collects every partition's report — next-event time ``N``,
  output bound ``O`` (see below), struct-packed outbound frames
  (:func:`repro.net.message.encode_frames`) and shared-oracle deltas (page
  directory + view registry mutations, see
  :mod:`repro.protocols.versioned`) — routes the frame bytes to the
  destination partitions (:func:`repro.net.message.route_frames`, which
  never unpickles a relayed payload), and computes ``T = min`` next-event
  time over partitions and in-flight frames.  Each partition then injects
  its inbound frames, applies the foreign oracle deltas, and runs
  ``sim.run(until=H, inclusive=False)`` — the half-open window ``[T, H)``.

Three fast paths cut the per-barrier cost (``docs/simulator.md`` carries
the full protocol description and safety argument):

* **Null-barrier elision** — a partition with an empty outbox and no oracle
  deltas uploads a 3-tuple ``("r", N, O)``; when nothing routes to a
  partition it downloads a bare ``("s", H)``.  A round in which *every*
  partition reported null skips the frame/delta exchange entirely and is
  counted in ``elided_windows``.
* **Window leases** — each report carries an *output bound* ``O``: a lower
  bound on the earliest future simulated time at which that partition can
  put a new (not-yet-captured) frame on the switch or mutate a shared
  oracle.  ``O`` comes from a scan of the partition's pending event set
  (:meth:`PartitionWorld._output_bound`): arrival pumps cannot influence
  anything before their frames clear the receive wire and overhead, a TX
  completion's remaining chain is committed and its hand-off instants are
  computable from the backlog, and any other event is assumed to send
  immediately (costing ``δ_send = NetConfig.min_send_delay()`` to reach
  the switch) or — for DSM partitions — to mutate an oracle at its own
  instant.  The coordinator additionally bounds influence *induced* by the
  frames it routes this round (``arrival + δ_recv`` for DSM, ``+ δ_send``
  more for MPI) and grants the window ``[T, H)`` with ``H = λ + min`` over
  all bounds, clamped to at least ``T + λ`` — one round-trip covering what
  would otherwise be ``(H - T)/λ`` barriers (the extras are counted in
  ``leased_windows``).
* **Compact frames** — outboxes cross the pipe as struct-packed buffers
  with per-frame pickled payloads instead of pickled tuple lists; the
  coordinator routes by scanning fixed-offset headers and slicing bytes.

Why this is exact (not just approximately synchronised):

* **No missed events.**  Every cross-partition influence during ``[T, H)``
  happens at or after ``H - λ``: a partition's own pending work influences
  no earlier than its reported ``O ≥ H - λ``, and work triggered by frames
  injected this round no earlier than the induced bound — both folded into
  ``H``.  A frame placed on the switch at ``t ≥ H - λ`` arrives at
  ``t + λ ≥ H`` — outside the window, collected at the next barrier — and
  an oracle mutation at ``t_m ≥ H - λ`` is λ-visible only at
  ``t_m + λ ≥ H``, so no reader inside the window may select it.  Frames
  collected at a barrier all arrive inside the window about to run:
  ``t_arr = t_dep + λ`` with ``t_dep ≥ H_prev - λ`` gives
  ``t_arr ≥ H_prev``, and ``t_arr < H'`` because the arrival time is
  folded into the next ``T``.
* **Identical delivery order.**  Same-instant frames to one port are
  delivered by the switch's arrival pump in ``(src, departure#)`` order, and
  the pump event carries the explicit ``(t_sched, class)`` key via
  :meth:`repro.sim.Simulator.schedule_keyed` — both independent of which
  partition the frames came from, so injection rebuilds the exact serial
  pump slot.
* **Identical metadata reads.**  The shared oracles are read under the
  λ-visibility rule in serial runs too, and a partition executing ``[T,
  H)`` already holds every foreign mutation the rule can select (all have
  ``t_m + λ < H``, hence ``t_m < H - λ``, hence shipped at an earlier
  barrier by the influence bound above).
* **Identical statistics.**  Every counter lives in a per-node shard
  (:mod:`repro.net.stats`, :mod:`repro.protocols.runstats`); merging the
  owned shards in node order reproduces the serial float-summation order.

What the driver refuses (``PdesError``): fault plans and ``random_drop_prob``
(perturbed arrivals bypass the pump by design), and ``hlrc_d`` (its home
assignment needs an instantaneous directory read — see
:meth:`repro.protocols.directory.PageDirectory.origin_any`).  Contention
metrics, the consistency-oracle recorder and the VOPP view tracer *are*
supported: each partition records its own shard (metrics and view tracers
journal every operation with its sim-time) and the driver k-way merges the
shards in serial event order, the same way stats and tracers merge.

Host-time observability: pass ``host`` (a
:class:`repro.obs.host.HostProfiler`) to record wall-clock spans around the
coordinator's real work — pre-fork ``setup``, ``barrier-wait`` (blocking on
partition reports), frame ``route``, ``pipe-send`` and final ``merge`` —
while each partition worker records its own ``build`` / ``execute`` /
``decode`` / ``encode`` / ``sync-wait`` / ``finalize`` spans and ships them
back with its result (``perf_counter`` is system-wide on Linux, so no clock
translation is needed).  ``profile=True`` additionally runs each forked
worker under ``cProfile`` and returns the picklable per-partition stats
tables on ``PdesOutcome.profiles`` — without it, a profile of a fork-mode
run silently shows coordinator-only time.  Both are observers: they never
touch the simulated state.

``mode="fork"`` runs each partition in a forked OS process (pipes carry the
barrier traffic); ``mode="inline"`` runs all partitions in-process — same
window protocol, same frame codec (payloads are pickle-copied, not shared),
no parallelism — which is what the conformance tests use.
``batching=False`` disables leases and elision accounting (every window is
``[T, T+λ)``), reproducing the pre-lease barrier schedule; the conformance
suite runs both settings.

This module is deliberately *not* imported from ``repro.sim.__init__`` — it
imports the network and application layers, which import ``repro.sim``.
"""

from __future__ import annotations

import gc
import math
import multiprocessing
import traceback
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.net.message import decode_frames, encode_frames, route_frames
from repro.net.nic import Switch
from repro.sim.engine import SimError, Simulator

__all__ = [
    "PdesError",
    "PartitionSwitch",
    "PartitionWorld",
    "PdesOutcome",
    "partition_ranks",
    "run_partitioned",
]

#: raw message-id stride between forked partitions (each process has its own
#: counter; disjoint bases keep ids globally unique, see
#: :func:`repro.net.message.set_msg_id_base`)
MSG_ID_STRIDE = 1 << 48


class PdesError(SimError):
    """The requested run cannot be executed by the partitioned driver."""


def partition_ranks(nprocs: int, workers: int) -> list[range]:
    """Contiguous block decomposition of ``range(nprocs)`` into partitions.

    ``workers`` is clamped to ``nprocs`` so every partition owns at least one
    rank.  Contiguity puts rank 0 in partition 0, which is where application
    outputs are collected.
    """
    if workers < 1:
        raise PdesError(f"need at least one partition, got {workers}")
    workers = min(workers, nprocs)
    base, extra = divmod(nprocs, workers)
    out, lo = [], 0
    for p in range(workers):
        hi = lo + base + (1 if p < extra else 0)
        out.append(range(lo, hi))
        lo = hi
    return out


# -- the partitioned switch -------------------------------------------------------


def _make_partition_switch(cluster, owned):
    """Replace ``cluster.switch`` with a :class:`PartitionSwitch`.

    Done post-construction (rather than threading a parameter through every
    layer) so partition replicas are built by the exact same code path as
    serial systems; the swap happens at t=0 before any traffic.
    """
    switch = PartitionSwitch(cluster.sim, cluster.netcfg, cluster.node_stats, owned)
    for node in cluster.nodes:
        switch.register(node.nic)
    cluster.switch = switch
    return switch


class PartitionSwitch(Switch):
    """A switch owning a subset of the ports, with an outbox for the rest.

    The per-source departure counter is inherited from :class:`Switch` and
    advanced for *every* frame a source transmits — foreign-destination
    frames included — so the ``(src, departure#)`` coordinates recorded in
    the outbox equal the serial ones: TX is serialised per NIC, so a
    source's TX-start order (where :meth:`stage_tx` numbers foreign frames)
    equals its hand-off order (where :meth:`Switch.transfer` numbers
    co-resident frames), which is the source's own transmit order.
    """

    def __init__(self, sim, cfg, node_stats, owned):
        super().__init__(sim, cfg, node_stats)
        self.owned = frozenset(owned)
        #: frames awaiting the next window barrier:
        #: ``(dst, t_arrival, t_departure, src, departure#, msg)``
        self.outbox: list[tuple] = []

    def stage_tx(self, msg, t_dep: float) -> None:
        """NIC TX-start probe: capture foreign frames at transmission start.

        ``t_dep`` is the (already determined) instant the frame will be
        handed to the switch; the driver refuses every configuration that
        could perturb the transfer (faults, random drops), so the outbox
        record written here is exactly what :meth:`transfer` would have
        recorded ``send_overhead + wire`` later — shipping it up to one
        barrier earlier.
        """
        if msg.dst in self.owned:
            return
        self.outbox.append(
            (msg.dst, t_dep + self.cfg.switch_latency, t_dep,
             msg.src, self.next_departure(msg.src), msg)
        )

    def transfer(self, msg) -> None:
        if msg.dst in self.owned:
            super().transfer(msg)
        # foreign frames were already captured by stage_tx at TX start

    def take_outbox(self) -> list[tuple]:
        out, self.outbox = self.outbox, []
        return out

    def inject(self, frames) -> None:
        """Stage cross-partition arrivals handed over at a window barrier.

        Rebuilds the serial pump slot: a frame joins the ``(dst, t_arr)``
        slot if a co-resident sender already created it (same arrival
        instant ⇒ same departure instant, λ being constant), otherwise the
        pump event is scheduled with the frame's *departure* time as its
        ordering key — exactly what the serial switch would have used.  An
        early-shipped frame may arrive beyond the window about to run; its
        slot then waits in the queue, and a co-resident frame staged into
        the same ``(dst, t_arr)`` slot later simply appends (the pump sorts
        each slot by ``(src, departure#)`` before delivering).
        """
        for dst, t_arr, t_dep, src, dep, msg in frames:
            key = (dst, t_arr)
            slot = self._staged.get(key)
            entry = (src, dep, msg)
            if slot is None:
                self._staged[key] = [entry]
                self.sim.schedule_keyed(t_arr, t_dep, 1, self._pump, key)
            else:
                slot.append(entry)


def _deltas_empty(deltas) -> bool:
    """True when no oracle recorded any mutation (each delta is a tuple of
    record lists, see ``drain_deltas`` in :mod:`repro.protocols.versioned`)."""
    for d in deltas:
        for records in d:
            if records:
                return False
    return True


# -- one partition's world --------------------------------------------------------


@dataclass
class PartitionResult:
    """What one partition reports after the last window."""

    index: int
    owned: list
    finish_times: list
    results: dict  # rank -> program return value
    rank_stats: Optional[dict]  # rank -> RunStats shard (DSM) or None (MPI)
    node_stats: dict  # node -> NetStats shard
    events: int
    timer_spills: int
    output: Any  # extract() read-out (only from the partition owning rank 0)
    tracer: Any  # per-partition EventTracer, or None
    oracle: Any = None  # per-partition AccessRecorder, or None
    metrics: Any = None  # per-partition logged Metrics shard, or None
    view_tracer: Any = None  # per-partition logged ViewTracer shard, or None
    host: Any = None  # per-partition HostProfiler, or None
    profile: Any = None  # picklable cProfile stats table (fork mode), or None


class PartitionWorld:
    """One partition: a full system replica plus its window-protocol hooks."""

    def __init__(self, index, owned, sim, cluster, switch, oracles, pending,
                 extract_fn, rank_stats_fn, view_tracer=None, host=None):
        self.index = index
        self.owned = list(owned)
        self.sim = sim
        self.cluster = cluster
        self.switch = switch
        self.oracles = oracles
        self.pending = pending
        self._extract = extract_fn
        self._rank_stats = rank_stats_fn
        self._cfg = cluster.netcfg
        self._d_send = self._cfg.min_send_delay()
        self.view_tracer = view_tracer
        self.host = host  # per-partition HostProfiler, or None

    def report(self) -> tuple:
        """Barrier upload: ``("r", N, O)`` or ``("R", N, O, frames, deltas)``.

        ``N`` is the next pending event time, ``O`` the output bound — the
        earliest future instant this partition can influence another beyond
        what this report already ships (start transmitting a new frame, or
        mutate a shared oracle).  The short ``"r"`` form is the null-barrier
        fast path: empty outbox, no oracle deltas.
        """
        host = self.host
        if host is not None:
            host.begin("serve", "encode")
        n = self.sim.peek_next_time()
        outbox = self.switch.take_outbox()
        deltas = [o.drain_deltas() for o in self.oracles]
        out = ("r", n, self._output_bound()) if not outbox and \
            _deltas_empty(deltas) else \
            ("R", n, self._output_bound(), encode_frames(outbox), deltas)
        if host is not None:
            host.end()
        return out

    def _output_bound(self) -> float:
        """Earliest future instant this partition can influence another.

        Every future cross-partition influence — a new frame reaching the
        switch, or a shared-oracle mutation — originates at some *pending*
        event, and the pending set is fully enumerable at a barrier (the
        ready deque is always drained before a window breaks).  Walking it
        and bounding each event by its mechanics beats the naive
        ``N + δ_send``, because during communication phases the earliest
        pending events are NIC bookkeeping that *cannot* act immediately:

        * an arrival pump at ``t`` only hands its frame to a protocol
          handler after the receive wire time (known — the staged frames
          carry their sizes) plus ``recv_overhead``;
        * a TX completion's whole remaining chain is committed — hand-off
          instants follow from the backlog contents (TX is serialised per
          NIC, nothing can preempt or reorder it), see
          :meth:`_tx_chain_bound`;
        * everything else (process resumptions, timers, receive
          completions — which run delivery handlers) may call ``send()`` at
          its own instant, costing ``δ_send`` to reach the switch (MPI), or
          mutate an oracle right there (DSM, where the margin is zero).

        Each rule is a lower bound under every admissible behaviour (busy
        NICs and receive backlogs only delay things further), so the lease
        the coordinator derives from it can never reach an influence.
        """
        sim = self.sim
        cfg = self._cfg
        d_send = 0.0 if self.oracles else self._d_send
        recv = cfg.recv_overhead
        tx_time = cfg.tx_time
        staged = self.switch._staged
        best = math.inf
        if sim._ready:
            # zero-delay work at the current instant: only the first report
            # sees any (program start-ups are queued before the first
            # window; every later report happens at a window break, where
            # the run loop has drained the deque)
            best = sim.now + d_send
        for entry in sim._heap:
            t = entry[0]
            if t + d_send >= best:  # no rule can bound below t + δ_send
                continue
            if entry[2] == 1:  # arrival pump (sole class-1 event)
                slot = staged.get(entry[5][0])
                if slot:
                    c = t + min(tx_time(m.size) for _, _, m in slot) \
                        + recv + d_send
                else:  # pragma: no cover - defensive (slot already drained)
                    c = t + d_send
            else:
                fn = entry[4]
                if getattr(fn, "__name__", None) == "_tx_done":
                    c = self._tx_chain_bound(fn.__self__, t, entry[5][0], best)
                else:
                    c = t + d_send
            if c < best:
                best = c
        theads = sim._timer_heads
        if theads:
            c = theads[0][0] + d_send
            if c < best:
                best = c
        return best

    def _tx_chain_bound(self, nic, t_done, msg, best) -> float:
        """Earliest foreign influence of one NIC's committed TX chain.

        ``t_done`` is the pending completion of the in-flight frame ``msg``.
        A *foreign* in-flight frame was already captured at TX start (it
        ships with this very report, so the coordinator bounds it through
        the routed arrival times instead); a foreign *backlogged* frame's
        hand-off instant is its influence bound — it will be captured when
        its TX starts inside a window and shipped at the next barrier, so
        the lease must stop λ short of its arrival.  An *internal* hand-off
        influences other partitions only once its delivery handler runs,
        λ + wire + recv_overhead later (plus δ_send for MPI, where the
        handler must reach the switch through its own NIC).
        """
        cfg = self._cfg
        owned = self.switch.owned
        tail = cfg.switch_latency + cfg.recv_overhead
        if not self.oracles:
            tail += self._d_send
        tx_time = cfg.tx_time
        overhead = cfg.send_overhead
        if msg.dst in owned:
            c = t_done + tx_time(msg.size) + tail
            if c < best:
                best = c
        handoff = t_done
        for m in nic._tx_backlog:
            handoff += overhead + tx_time(m.size)
            if handoff >= best:  # chain instants only grow
                break
            c = handoff + tx_time(m.size) + tail if m.dst in owned else handoff
            if c < best:
                best = c
        return best

    def advance(self, window_end: float, frames_buf: bytes = b"",
                foreign_deltas=()) -> None:
        """Barrier download + one window: inject, apply, run ``[now, W)``."""
        host = self.host
        if frames_buf or foreign_deltas:
            if host is not None:
                host.begin("serve", "decode")
            if frames_buf:
                self.switch.inject(decode_frames(frames_buf))
            for deltas in foreign_deltas:
                for oracle, d in zip(self.oracles, deltas):
                    oracle.apply_deltas(d)
            if host is not None:
                host.end()
        if host is not None:
            host.begin("serve", "execute")
        self.sim.run(until=window_end, inclusive=False)
        if host is not None:
            host.end()

    def finalize(self, want_output: bool) -> PartitionResult:
        host = self.host
        if host is not None:
            host.begin("serve", "finalize")
        results = self.pending.finish()
        rank_stats = None
        if self._rank_stats is not None:
            rank_stats = {r: self._rank_stats(r) for r in self.owned}
        metrics = self.sim.metrics
        if metrics is not None:
            metrics.detach_clock()  # the shard crosses the pipe; sims don't pickle
        view_tracer = self.view_tracer
        if view_tracer is not None:
            view_tracer.detach_clock()
        result = PartitionResult(
            index=self.index,
            owned=self.owned,
            finish_times=list(self.pending.finish_times),
            results=results,
            rank_stats=rank_stats,
            node_stats={i: self.cluster.node_stats[i] for i in self.owned},
            events=self.sim.events_processed,
            timer_spills=self.sim.timer_spills,
            output=self._extract() if want_output else None,
            tracer=self.sim.tracer,
            oracle=self.sim.oracle,
            metrics=metrics,
            view_tracer=view_tracer,
        )
        if host is not None:
            host.end()  # finalize
            host.end()  # the "total" span opened by _build_world
            result.host = host
        return result


def _build_world(index, owned, app_module, protocol, nprocs, config, variant,
                 netcfg, nodecfg, trace, oracle=False, metrics=False,
                 view_trace=False, host_trace=False) -> PartitionWorld:
    """Construct one partition's replica (identical code path to serial)."""
    host = None
    if host_trace:
        from repro.obs.host import HostProfiler

        host = HostProfiler(f"partition-{index}")
        host.begin("serve", "total")  # closed by finalize()
        host.begin("serve", "build")
    sim = Simulator(queue="auto")

    def _observers() -> None:
        # same None-default contract as serial: installed before the program
        # starts, each partition records only its own nodes' activity
        if trace:
            from repro.obs.tracer import EventTracer

            sim.tracer = EventTracer()
        if oracle:
            from repro.obs.oracle import AccessRecorder

            sim.oracle = AccessRecorder()
        if metrics:
            from repro.obs.metrics import Metrics

            sim.metrics = Metrics(sim=sim)

    view_tracer = None
    if protocol == "mpi":
        from repro.mpi.comm import MpiSystem

        system = MpiSystem(nprocs, netcfg=netcfg, nodecfg=nodecfg, sim=sim)
        cluster = system.cluster
        _observers()
        switch = _make_partition_switch(cluster, owned)
        body = app_module.build_mpi(system, config)
        oracles = ()
        rank_stats_fn = None
        extract_fn = lambda: system.app_output  # noqa: E731
    else:
        from repro.core.program import make_system

        system = make_system(nprocs, protocol, netcfg=netcfg, nodecfg=nodecfg, sim=sim)
        cluster = system.dsm.cluster
        _observers()
        if view_trace:
            from repro.tools.tracer import ViewTracer

            view_tracer = ViewTracer(sim=sim)
            system.dsm.tracer = view_tracer
        switch = _make_partition_switch(cluster, owned)
        body = app_module.build(system, config, variant)
        oracles = (system.dsm.directory, system.dsm.views)
        rank_stats_fn = system.dsm.stats_for
        extract_fn = lambda: app_module.extract(system, config)  # noqa: E731
    # owned NICs feed the TX-start probe so cross-partition frames ship at
    # transmission start (foreign replicas never transmit — no probe needed)
    for i in owned:
        cluster.nodes[i].nic.tx_probe = switch.stage_tx
    for oracle in oracles:
        oracle.capture_deltas()
    pending = system.start_program(body, ranks=owned)
    if host is not None:
        host.end()  # build
    return PartitionWorld(index, owned, sim, cluster, switch, oracles, pending,
                          extract_fn, rank_stats_fn,
                          view_tracer=view_tracer, host=host)


# -- coordinator ports ------------------------------------------------------------


class _InlinePort:
    """All partitions in one process: commands execute synchronously.

    Dispatches the same ``("s",)/("S",)/("finish",)`` command tuples the
    fork pipes carry, so inline mode exercises the identical wire protocol
    (including the frame codec — payloads are pickle-copied, not shared).
    """

    def __init__(self, build: Callable[[], PartitionWorld], want_output: bool):
        self.world = build()
        self.want_output = want_output
        self._reply: Any = self.world.report()

    def send(self, cmd) -> None:
        tag = cmd[0]
        if tag == "s":
            self.world.advance(cmd[1])
            self._reply = self.world.report()
        elif tag == "S":
            self.world.advance(cmd[1], cmd[2], cmd[3])
            self._reply = self.world.report()
        else:  # "finish"
            self._reply = ("done", self.world.finalize(self.want_output))

    def recv(self):
        reply, self._reply = self._reply, None
        return reply

    def close(self) -> None:
        pass


def _worker_main(conn, index, build, want_output, msg_id_base,
                 profile=False) -> None:
    """Forked partition process: build the world, serve barrier commands.

    ``profile`` wraps the whole serve loop in a cProfile session and ships
    the picklable stats table back on the final :class:`PartitionResult`
    (the parent's profiler never observes forked children).
    """
    prof = None
    try:
        from repro.net.message import set_msg_id_base

        set_msg_id_base(msg_id_base)
        if profile:
            import cProfile

            prof = cProfile.Profile()
            prof.enable()
        world = build()
        host = world.host
        conn.send(world.report())
        while True:
            if host is not None:
                host.begin("serve", "sync-wait")
            cmd = conn.recv()
            if host is not None:
                host.end()
            tag = cmd[0]
            if tag == "s":  # bare window grant: nothing to download
                world.advance(cmd[1])
                conn.send(world.report())
            elif tag == "S":  # window grant + frame bytes + foreign deltas
                world.advance(cmd[1], cmd[2], cmd[3])
                conn.send(world.report())
            elif tag == "finish":
                final = world.finalize(want_output)
                if prof is not None:
                    prof.disable()
                    prof.create_stats()  # makes .stats a plain picklable dict
                    final.profile = prof.stats
                    prof = None
                conn.send(("done", final))
                return
            else:  # pragma: no cover - protocol bug
                raise RuntimeError(f"unknown PDES command {tag!r}")
    except BaseException:
        if prof is not None:
            prof.disable()
        try:
            conn.send(("error", traceback.format_exc()))
        except Exception:  # pragma: no cover - parent already gone
            pass
    finally:
        conn.close()


class _ForkPort:
    """One forked partition process behind a pipe."""

    def __init__(self, ctx, index, build, want_output, profile=False):
        self.index = index
        self.conn, child = ctx.Pipe()
        # fork start method: the build closure is inherited, never pickled
        self.proc = ctx.Process(
            target=_worker_main,
            args=(child, index, build, want_output,
                  1 + index * MSG_ID_STRIDE, profile),
            name=f"pdes-{index}",
        )
        self.proc.start()
        child.close()

    def send(self, cmd) -> None:
        self.conn.send(cmd)

    def recv(self):
        try:
            return self.conn.recv()
        except EOFError:
            raise PdesError(
                f"partition {self.index} exited without reporting "
                f"(exit code {self.proc.exitcode})"
            ) from None

    def close(self) -> None:
        self.conn.close()
        self.proc.join(timeout=30)
        if self.proc.is_alive():  # pragma: no cover - defensive
            self.proc.terminate()
            self.proc.join()


# -- the window loop --------------------------------------------------------------


def _drive(ports, owner_of, netcfg, has_oracles, batching, observer=None,
           host=None):
    """Run the window protocol over a set of ports.

    Returns ``(finals, stats)`` with ``stats`` carrying the barrier
    accounting: ``windows`` (barrier round-trips actually performed),
    ``elided_windows`` (rounds in which every partition reported null and
    the frame/delta exchange was skipped), ``leased_windows`` (extra
    λ-windows granted beyond the first by multi-window leases) and
    ``frame_bytes`` (encoded cross-partition frame bytes routed, counted
    once per frame on the download side).

    ``observer``, when given, is called once per round with a dict
    ``{"T", "window_end", "arrivals", "null"}`` — the property tests use it
    to check the lease-safety invariant (every injected arrival lies at or
    beyond the previous round's window end).
    """
    nparts = len(ports)
    lam = netcfg.lookahead()
    # earliest further influence induced by an injected frame: its handler
    # runs only once the frame clears the receive wire (size-dependent —
    # route_frames folds the per-byte part into load_mins) plus the header
    # wire time and receive overhead; a DSM handler can mutate an oracle
    # right there, an MPI handler must pay δ_send to reach the switch
    byte_seconds = 8.0 / netcfg.bandwidth_bps
    d_induced = netcfg.min_deliver_delay()
    if not has_oracles:
        d_induced += netcfg.min_send_delay()
    if host is not None:
        host.begin("run", "barrier-wait")
    replies = [_expect(port.recv(), i) for i, port in enumerate(ports)]
    if host is not None:
        host.end()
    windows = elided = leased = 0
    frame_bytes = 0
    while True:
        buffers = []
        delta_of: list = [None] * nparts
        null_round = True
        for i, r in enumerate(replies):
            if r[0] == "R":
                null_round = False
                buffers.append(r[3])
                if not _deltas_empty(r[4]):
                    delta_of[i] = r[4]
        T = min(r[1] for r in replies)
        if buffers:
            if host is not None:
                host.begin("run", "route")
            inboxes, arrival_mins, load_mins = route_frames(
                buffers, owner_of, nparts, byte_seconds)
            if host is not None:
                host.end()
            t = min(arrival_mins)
            if t < T:
                T = t
        else:
            inboxes = arrival_mins = load_mins = None
        if T == math.inf:
            break
        windows += 1
        if batching:
            # lease horizon: λ past the earliest possible cross-partition
            # influence, from each partition's own bound O and from the
            # frames injected this round (see module docstring)
            horizon = math.inf
            for i, r in enumerate(replies):
                b = r[2]
                if load_mins is not None:
                    induced = load_mins[i] + d_induced
                    if induced < b:
                        b = induced
                if b < horizon:
                    horizon = b
            window_end = horizon + lam
            floor = T + lam
            if window_end < floor:
                window_end = floor
            if window_end == math.inf:
                # terminal lease: no partition can ever influence another
                # again (every pending chain is influence-free), so everyone
                # runs to completion in this one window
                leased += 1
            else:
                extra = int((window_end - T) / lam) - 1
                if extra > 0:
                    leased += extra
            if null_round:
                elided += 1
        else:
            window_end = T + lam
        if observer is not None:
            observer({
                "T": T,
                "window_end": window_end,
                "arrivals": [] if arrival_mins is None
                else [t for t in arrival_mins if t != math.inf],
                "null": null_round,
            })
        if host is not None:
            host.begin("run", "pipe-send")
        for i, port in enumerate(ports):
            buf = inboxes[i] if inboxes is not None else b""
            foreign = [d for j, d in enumerate(delta_of)
                       if j != i and d is not None]
            if buf or foreign:
                frame_bytes += len(buf)
                port.send(("S", window_end, buf, foreign))
            else:
                port.send(("s", window_end))
        if host is not None:
            host.end()
            host.begin("run", "barrier-wait")
        replies = [_expect(port.recv(), i) for i, port in enumerate(ports)]
        if host is not None:
            host.end()
    if host is not None:
        host.begin("run", "barrier-wait", "finish")
    for port in ports:
        port.send(("finish",))
    finals = [_expect(port.recv(), i, tag="done") for i, port in enumerate(ports)]
    if host is not None:
        host.end()
    stats = {
        "windows": windows,
        "elided_windows": elided,
        "leased_windows": leased,
        "frame_bytes": frame_bytes,
    }
    return finals, stats


def _expect(reply, index, tag=None):
    if reply[0] == "error":
        raise PdesError(f"partition {index} failed:\n{reply[1]}")
    if tag is not None:
        if reply[0] != tag:  # pragma: no cover - protocol bug
            raise PdesError(f"partition {index}: expected {tag!r}, got {reply[0]!r}")
        return reply[1]
    if reply[0] not in ("r", "R"):  # pragma: no cover - protocol bug
        raise PdesError(f"partition {index}: expected a report, got {reply[0]!r}")
    return reply


# -- public driver ----------------------------------------------------------------


@dataclass
class PdesOutcome:
    """Merged results of a partitioned run, mirroring the serial observables."""

    output: Any
    stats: Any  # merged RunStats (DSM) or NetStats (MPI)
    time: float
    results: dict  # rank -> program return value
    events: int  # sum of per-partition executed callbacks
    windows: int  # barrier round-trips performed
    workers: int
    tracer: Any  # merged EventTracer, or None
    timer_spills: int
    oracle: Any = None  # merged AccessRecorder, or None
    metrics: Any = None  # merged Metrics registry, or None
    view_tracer: Any = None  # merged ViewTracer, or None
    profiles: Any = None  # {partition: cProfile stats table} (fork+profile), or None
    elided_windows: int = 0  # rounds that skipped the frame/delta exchange
    leased_windows: int = 0  # extra λ-windows granted by multi-window leases
    frame_bytes: int = 0  # encoded cross-partition frame bytes routed


def run_partitioned(
    app_module,
    protocol: str,
    nprocs: int,
    config=None,
    variant: str = "default",
    workers: int = 2,
    mode: str = "fork",
    netcfg=None,
    nodecfg=None,
    trace: bool = False,
    oracle: bool = False,
    view_trace: bool = False,
    metrics: bool = False,
    faults=None,
    batching: bool = True,
    observer=None,
    host=None,
    profile: bool = False,
) -> PdesOutcome:
    """Run one application under the partitioned driver.

    Produces observables bit-identical to the serial ``run_app`` path:
    same output arrays, same merged statistics (and therefore the same
    benchmark fingerprint), same simulated time.  ``events`` differs from
    serial by exactly ``(workers - 1) * nprocs`` replica dispatcher
    start-ups.  ``batching=False`` turns off window leases (every window is
    the minimal ``[T, T+λ)``) for conformance comparison.  Raises
    :class:`PdesError` for configurations the conservative scheme cannot
    replay (see module docstring).

    ``host`` is an optional :class:`repro.obs.host.HostProfiler`: the
    coordinator records setup/barrier-wait/route/pipe-send/merge spans into
    it and absorbs each partition's own span shard shipped back over the
    result pipe.  ``profile=True`` runs a cProfile session inside each
    forked worker and returns the picklable stats tables on
    ``PdesOutcome.profiles`` (inline mode returns no shards — the caller's
    own profiler already observes everything).
    """
    from repro.net.config import NetConfig

    if faults is not None:
        raise PdesError("fault injection perturbs arrivals; PDES runs are serial-only")
    if view_trace and protocol == "mpi":
        raise PdesError("view tracing needs a DSM protocol; mpi has no views")
    if protocol == "hlrc_d":
        raise PdesError(
            "hlrc_d needs an instantaneous home-assignment read "
            "(PageDirectory.origin_any); run it serially"
        )
    netcfg = netcfg or NetConfig()
    if netcfg.random_drop_prob > 0.0:
        raise PdesError("random_drop_prob draws a global RNG stream; run serially")
    try:
        netcfg.lookahead()
    except ValueError as exc:
        raise PdesError(str(exc)) from None
    if mode not in ("fork", "inline"):
        raise PdesError(f"unknown PDES mode {mode!r} (use 'fork' or 'inline')")
    config = config if config is not None else app_module.default_config()

    if host is not None:
        host.begin("run", "setup")
    parts = partition_ranks(nprocs, workers)
    owner_of = {}
    for p, ranks in enumerate(parts):
        for r in ranks:
            owner_of[r] = p

    want_oracle = bool(oracle)
    want_metrics = bool(metrics)
    want_views = bool(view_trace)
    host_trace = host is not None

    def make_builder(index: int):
        owned = parts[index]
        return lambda: _build_world(index, owned, app_module, protocol, nprocs,
                                    config, variant, netcfg, nodecfg, trace,
                                    oracle=want_oracle, metrics=want_metrics,
                                    view_trace=want_views,
                                    host_trace=host_trace)

    ports: list = []
    try:
        if mode == "inline":
            if host is not None:
                host.end()  # setup: inline build happens inside the port loop
            for p in range(len(parts)):
                ports.append(_InlinePort(make_builder(p), want_output=(p == 0)))
        else:
            ctx = multiprocessing.get_context("fork")
            # collect + freeze before forking (the standard fork-server
            # recipe): the children inherit the parent's heap copy-on-write,
            # so parent garbage — e.g. a serial reference run the caller just
            # finished — would otherwise be walked by every child's first GC
            # pass, dirtying pages and stalling all partitions
            gc.collect()
            gc.freeze()
            try:
                for p in range(len(parts)):
                    ports.append(
                        _ForkPort(ctx, p, make_builder(p), want_output=(p == 0),
                                  profile=profile))
            finally:
                gc.unfreeze()
            if host is not None:
                host.end()  # setup: GC freeze + fork of every partition
        finals, wstats = _drive(ports, owner_of, netcfg,
                                has_oracles=(protocol != "mpi"),
                                batching=batching, observer=observer, host=host)
    finally:
        for port in ports:
            port.close()

    if host is not None:
        host.begin("run", "merge")
    outcome = _merge(finals, wstats, protocol, nprocs, len(parts), trace)
    if host is not None:
        host.end()
        for f in finals:
            if f.host is not None:
                host.absorb(f.host)
    return outcome


def _merge(finals, wstats, protocol, nprocs, nparts, trace) -> PdesOutcome:
    """Assemble the serial-equivalent observables from partition results."""
    from repro.net.stats import NetStats

    finish = max(t for f in finals for t in f.finish_times)
    time = finish  # all runs start at t=0
    node_shards = {}
    results = {}
    for f in finals:
        node_shards.update(f.node_stats)
        results.update(f.results)
    net = NetStats.merged(node_shards[i] for i in range(nprocs))
    if protocol == "mpi":
        stats: Any = net
    else:
        from repro.protocols.runstats import RunStats

        rank_shards = {}
        for f in finals:
            rank_shards.update(f.rank_stats)
        stats = RunStats.merged(
            (rank_shards[r] for r in range(nprocs)), net=net
        )
        stats.time = time
    tracer = None
    if trace:
        from repro.obs.tracer import EventTracer

        tracer = EventTracer.merged([f.tracer for f in finals])
    oracle = None
    if finals and finals[0].oracle is not None:
        from repro.obs.oracle import AccessRecorder

        oracle = AccessRecorder.merged([f.oracle for f in finals])
    metrics = None
    if finals and finals[0].metrics is not None:
        from repro.obs.metrics import Metrics

        metrics = Metrics.merged([f.metrics for f in finals])
    view_tracer = None
    if finals and finals[0].view_tracer is not None:
        from repro.tools.tracer import ViewTracer

        view_tracer = ViewTracer.merged([f.view_tracer for f in finals])
    profiles = None
    if any(f.profile is not None for f in finals):
        profiles = {f.index: f.profile for f in finals if f.profile is not None}
    return PdesOutcome(
        output=finals[0].output,
        stats=stats,
        time=time,
        results=results,
        events=sum(f.events for f in finals),
        windows=wstats["windows"],
        workers=nparts,
        tracer=tracer,
        oracle=oracle,
        metrics=metrics,
        view_tracer=view_tracer,
        profiles=profiles,
        timer_spills=sum(f.timer_spills for f in finals),
        elided_windows=wstats["elided_windows"],
        leased_windows=wstats["leased_windows"],
        frame_bytes=wstats["frame_bytes"],
    )
