"""Conservative windowed parallel discrete-event execution (PDES).

The serial engine processes one global event queue.  This driver partitions
the *simulated nodes* across OS processes and advances them in lock-step
windows, exploiting the switch's fixed forwarding latency λ as lookahead —
the classical conservative null-message/window scheme (Chandy–Misra–Bryant
family), specialised to a star topology where every cross-node interaction
takes at least λ.

Architecture
------------

* Ranks are split into contiguous blocks, one per partition.  Each partition
  builds a **full replica** of the simulated system — all ``n`` nodes, the
  same allocations, the same t=0 construction order — but spawns application
  processes only for its owned ranks; foreign nodes' dispatcher daemons park
  on their mailboxes forever.  Replication is what keeps every sequence
  number, RNG stream and data structure bit-identical to the serial run.
* The replica's switch is a :class:`PartitionSwitch`: frames for co-resident
  destinations take the normal staged arrival pump; frames for foreign
  destinations go to an **outbox** carrying their canonical ordering
  coordinates ``(dst, t_arrival, t_departure, src, departure#)``.
* Execution alternates windows and barriers.  At each barrier the
  coordinator collects every partition's outbox, next-event time and shared
  oracle deltas (page directory + view registry mutations, see
  :mod:`repro.protocols.versioned`), routes frames to the destination
  partitions, and computes ``T = min`` next-event time over partitions and
  in-flight frames.  Each partition then injects its inbound frames, applies
  the foreign oracle deltas, and runs ``sim.run(until=T + λ,
  inclusive=False)`` — the half-open window ``[T, T+λ)``.

Why this is exact (not just approximately synchronised):

* **No missed events.**  An event executing at ``t ∈ [T, T+λ)`` can affect
  another partition only through a frame arriving at ``t + λ ≥ T + λ`` —
  outside the window.  Frames collected at the barrier all arrive inside the
  *next* window (``t_arr ∈ [W, W+λ)`` with the next ``T' ≥ W``), so they are
  injected before any event that could observe them.
* **Identical delivery order.**  Same-instant frames to one port are
  delivered by the switch's arrival pump in ``(src, departure#)`` order, and
  the pump event carries the explicit ``(t_sched, class)`` key via
  :meth:`repro.sim.Simulator.schedule_keyed` — both independent of which
  partition the frames came from, so injection rebuilds the exact serial
  pump slot.
* **Identical metadata reads.**  The shared oracles are read under the
  λ-visibility rule in serial runs too, and a partition executing ``[T,
  T+λ)`` already holds every foreign mutation the rule can select (all have
  ``t < T``; shipped at an earlier barrier).
* **Identical statistics.**  Every counter lives in a per-node shard
  (:mod:`repro.net.stats`, :mod:`repro.protocols.runstats`); merging the
  owned shards in node order reproduces the serial float-summation order.

What the driver refuses (``PdesError``): fault plans and ``random_drop_prob``
(perturbed arrivals bypass the pump by design), contention metrics and view
tracers (instantaneous global observers), and ``hlrc_d`` (its home assignment
needs an instantaneous directory read — see
:meth:`repro.protocols.directory.PageDirectory.origin_any`).

``mode="fork"`` runs each partition in a forked OS process (pipes carry the
barrier traffic); ``mode="inline"`` runs all partitions in-process — same
window protocol, no parallelism — which is what the conformance tests use.

This module is deliberately *not* imported from ``repro.sim.__init__`` — it
imports the network and application layers, which import ``repro.sim``.
"""

from __future__ import annotations

import math
import multiprocessing
import traceback
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.net.nic import Switch
from repro.sim.engine import SimError, Simulator

__all__ = [
    "PdesError",
    "PartitionSwitch",
    "PartitionWorld",
    "PdesOutcome",
    "partition_ranks",
    "run_partitioned",
]

#: raw message-id stride between forked partitions (each process has its own
#: counter; disjoint bases keep ids globally unique, see
#: :func:`repro.net.message.set_msg_id_base`)
MSG_ID_STRIDE = 1 << 48


class PdesError(SimError):
    """The requested run cannot be executed by the partitioned driver."""


def partition_ranks(nprocs: int, workers: int) -> list[range]:
    """Contiguous block decomposition of ``range(nprocs)`` into partitions.

    ``workers`` is clamped to ``nprocs`` so every partition owns at least one
    rank.  Contiguity puts rank 0 in partition 0, which is where application
    outputs are collected.
    """
    if workers < 1:
        raise PdesError(f"need at least one partition, got {workers}")
    workers = min(workers, nprocs)
    base, extra = divmod(nprocs, workers)
    out, lo = [], 0
    for p in range(workers):
        hi = lo + base + (1 if p < extra else 0)
        out.append(range(lo, hi))
        lo = hi
    return out


# -- the partitioned switch -------------------------------------------------------


def _make_partition_switch(cluster, owned):
    """Replace ``cluster.switch`` with a :class:`PartitionSwitch`.

    Done post-construction (rather than threading a parameter through every
    layer) so partition replicas are built by the exact same code path as
    serial systems; the swap happens at t=0 before any traffic.
    """
    switch = PartitionSwitch(cluster.sim, cluster.netcfg, cluster.node_stats, owned)
    for node in cluster.nodes:
        switch.register(node.nic)
    cluster.switch = switch
    return switch


class PartitionSwitch(Switch):
    """A switch owning a subset of the ports, with an outbox for the rest.

    The per-source departure counter is inherited from :class:`Switch` and
    advanced for *every* frame a source transmits — foreign-destination
    frames included — so the ``(src, departure#)`` coordinates recorded in
    the outbox equal the serial ones: a source's frames all depart from its
    home partition's switch, in the source's own transmit order.
    """

    def __init__(self, sim, cfg, node_stats, owned):
        super().__init__(sim, cfg, node_stats)
        self.owned = frozenset(owned)
        #: frames awaiting the next window barrier:
        #: ``(dst, t_arrival, t_departure, src, departure#, msg)``
        self.outbox: list[tuple] = []

    def transfer(self, msg) -> None:
        if msg.dst in self.owned:
            super().transfer(msg)
            return
        now = self.sim.now
        self.outbox.append(
            (msg.dst, now + self.cfg.switch_latency, now,
             msg.src, self.next_departure(msg.src), msg)
        )

    def take_outbox(self) -> list[tuple]:
        out, self.outbox = self.outbox, []
        return out

    def inject(self, frames) -> None:
        """Stage cross-partition arrivals handed over at a window barrier.

        Rebuilds the serial pump slot: a frame joins the ``(dst, t_arr)``
        slot if a co-resident sender already created it (same arrival
        instant ⇒ same departure instant, λ being constant), otherwise the
        pump event is scheduled with the frame's *departure* time as its
        ordering key — exactly what the serial switch would have used.
        Injected arrival times always lie in the window about to run, so an
        injected slot can never collide with one staged in a later window.
        """
        for dst, t_arr, t_dep, src, dep, msg in frames:
            key = (dst, t_arr)
            slot = self._staged.get(key)
            entry = (src, dep, msg)
            if slot is None:
                self._staged[key] = [entry]
                self.sim.schedule_keyed(t_arr, t_dep, 1, self._pump, key)
            else:
                slot.append(entry)


# -- one partition's world --------------------------------------------------------


@dataclass
class PartitionResult:
    """What one partition reports after the last window."""

    index: int
    owned: list
    finish_times: list
    results: dict  # rank -> program return value
    rank_stats: Optional[dict]  # rank -> RunStats shard (DSM) or None (MPI)
    node_stats: dict  # node -> NetStats shard
    events: int
    timer_spills: int
    output: Any  # extract() read-out (only from the partition owning rank 0)
    tracer: Any  # per-partition EventTracer, or None


class PartitionWorld:
    """One partition: a full system replica plus its window-protocol hooks."""

    def __init__(self, index, owned, sim, cluster, switch, oracles, pending,
                 extract_fn, rank_stats_fn):
        self.index = index
        self.owned = list(owned)
        self.sim = sim
        self.cluster = cluster
        self.switch = switch
        self.oracles = oracles
        self.pending = pending
        self._extract = extract_fn
        self._rank_stats = rank_stats_fn

    def report(self) -> tuple:
        """Barrier upload: (next event time, outbox, oracle deltas, events)."""
        return (
            self.sim.peek_next_time(),
            self.switch.take_outbox(),
            [o.drain_deltas() for o in self.oracles],
            self.sim.events_processed,
        )

    def advance(self, window_end: float, frames, foreign_deltas) -> None:
        """Barrier download + one window: inject, apply, run ``[now, W)``."""
        self.switch.inject(frames)
        for deltas in foreign_deltas:
            for oracle, d in zip(self.oracles, deltas):
                oracle.apply_deltas(d)
        self.sim.run(until=window_end, inclusive=False)

    def finalize(self, want_output: bool) -> PartitionResult:
        results = self.pending.finish()
        rank_stats = None
        if self._rank_stats is not None:
            rank_stats = {r: self._rank_stats(r) for r in self.owned}
        return PartitionResult(
            index=self.index,
            owned=self.owned,
            finish_times=list(self.pending.finish_times),
            results=results,
            rank_stats=rank_stats,
            node_stats={i: self.cluster.node_stats[i] for i in self.owned},
            events=self.sim.events_processed,
            timer_spills=self.sim.timer_spills,
            output=self._extract() if want_output else None,
            tracer=self.sim.tracer,
        )


def _build_world(index, owned, app_module, protocol, nprocs, config, variant,
                 netcfg, nodecfg, trace) -> PartitionWorld:
    """Construct one partition's replica (identical code path to serial)."""
    sim = Simulator(queue="calendar")
    if protocol == "mpi":
        from repro.mpi.comm import MpiSystem

        system = MpiSystem(nprocs, netcfg=netcfg, nodecfg=nodecfg, sim=sim)
        cluster = system.cluster
        if trace:
            from repro.obs.tracer import EventTracer

            sim.tracer = EventTracer()
        switch = _make_partition_switch(cluster, owned)
        body = app_module.build_mpi(system, config)
        oracles = ()
        rank_stats_fn = None
        extract_fn = lambda: system.app_output  # noqa: E731
    else:
        from repro.core.program import make_system

        system = make_system(nprocs, protocol, netcfg=netcfg, nodecfg=nodecfg, sim=sim)
        cluster = system.dsm.cluster
        if trace:
            from repro.obs.tracer import EventTracer

            sim.tracer = EventTracer()
        switch = _make_partition_switch(cluster, owned)
        body = app_module.build(system, config, variant)
        oracles = (system.dsm.directory, system.dsm.views)
        rank_stats_fn = system.dsm.stats_for
        extract_fn = lambda: app_module.extract(system, config)  # noqa: E731
    for oracle in oracles:
        oracle.capture_deltas()
    pending = system.start_program(body, ranks=owned)
    return PartitionWorld(index, owned, sim, cluster, switch, oracles, pending,
                          extract_fn, rank_stats_fn)


# -- coordinator ports ------------------------------------------------------------


class _InlinePort:
    """All partitions in one process: commands execute synchronously."""

    def __init__(self, build: Callable[[], PartitionWorld], want_output: bool):
        self.world = build()
        self.want_output = want_output
        self._reply: Any = ("report", self.world.report())

    def send_step(self, window_end, frames, deltas) -> None:
        self.world.advance(window_end, frames, deltas)
        self._reply = ("report", self.world.report())

    def send_finish(self) -> None:
        self._reply = ("done", self.world.finalize(self.want_output))

    def recv(self):
        reply, self._reply = self._reply, None
        return reply

    def close(self) -> None:
        pass


def _worker_main(conn, index, build, want_output, msg_id_base) -> None:
    """Forked partition process: build the world, serve barrier commands."""
    try:
        from repro.net.message import set_msg_id_base

        set_msg_id_base(msg_id_base)
        world = build()
        conn.send(("report", world.report()))
        while True:
            cmd = conn.recv()
            if cmd[0] == "step":
                _, window_end, frames, deltas = cmd
                world.advance(window_end, frames, deltas)
                conn.send(("report", world.report()))
            elif cmd[0] == "finish":
                conn.send(("done", world.finalize(want_output)))
                return
            else:  # pragma: no cover - protocol bug
                raise RuntimeError(f"unknown PDES command {cmd[0]!r}")
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except Exception:  # pragma: no cover - parent already gone
            pass
    finally:
        conn.close()


class _ForkPort:
    """One forked partition process behind a pipe."""

    def __init__(self, ctx, index, build, want_output):
        self.index = index
        self.conn, child = ctx.Pipe()
        # fork start method: the build closure is inherited, never pickled
        self.proc = ctx.Process(
            target=_worker_main,
            args=(child, index, build, want_output, 1 + index * MSG_ID_STRIDE),
            name=f"pdes-{index}",
        )
        self.proc.start()
        child.close()

    def send_step(self, window_end, frames, deltas) -> None:
        self.conn.send(("step", window_end, frames, deltas))

    def send_finish(self) -> None:
        self.conn.send(("finish",))

    def recv(self):
        try:
            return self.conn.recv()
        except EOFError:
            raise PdesError(
                f"partition {self.index} exited without reporting "
                f"(exit code {self.proc.exitcode})"
            ) from None

    def close(self) -> None:
        self.conn.close()
        self.proc.join(timeout=30)
        if self.proc.is_alive():  # pragma: no cover - defensive
            self.proc.terminate()
            self.proc.join()


# -- the window loop --------------------------------------------------------------


def _drive(ports, owner_of, lam) -> tuple[list[PartitionResult], int]:
    """Run the window protocol over a set of ports; return results + #windows."""
    nparts = len(ports)
    replies = [_expect(port.recv(), "report", i) for i, port in enumerate(ports)]
    windows = 0
    while True:
        inboxes: list[list] = [[] for _ in range(nparts)]
        deltas = [r[2] for r in replies]
        T = min(r[0] for r in replies)
        for r in replies:
            for frame in r[1]:
                inboxes[owner_of[frame[0]]].append(frame)
                if frame[1] < T:
                    T = frame[1]
        if T == math.inf:
            break
        windows += 1
        for i, port in enumerate(ports):
            foreign = [d for j, d in enumerate(deltas) if j != i]
            port.send_step(T + lam, inboxes[i], foreign)
        replies = [_expect(port.recv(), "report", i) for i, port in enumerate(ports)]
    for port in ports:
        port.send_finish()
    finals = [_expect(port.recv(), "done", i) for i, port in enumerate(ports)]
    return finals, windows


def _expect(reply, tag, index):
    if reply[0] == "error":
        raise PdesError(f"partition {index} failed:\n{reply[1]}")
    if reply[0] != tag:  # pragma: no cover - protocol bug
        raise PdesError(f"partition {index}: expected {tag!r}, got {reply[0]!r}")
    return reply[1]


# -- public driver ----------------------------------------------------------------


@dataclass
class PdesOutcome:
    """Merged results of a partitioned run, mirroring the serial observables."""

    output: Any
    stats: Any  # merged RunStats (DSM) or NetStats (MPI)
    time: float
    results: dict  # rank -> program return value
    events: int  # sum of per-partition executed callbacks
    windows: int
    workers: int
    tracer: Any  # merged EventTracer, or None
    timer_spills: int


def run_partitioned(
    app_module,
    protocol: str,
    nprocs: int,
    config=None,
    variant: str = "default",
    workers: int = 2,
    mode: str = "fork",
    netcfg=None,
    nodecfg=None,
    trace: bool = False,
    view_tracer=None,
    metrics=None,
    faults=None,
) -> PdesOutcome:
    """Run one application under the partitioned driver.

    Produces observables bit-identical to the serial ``run_app`` path:
    same output arrays, same merged statistics (and therefore the same
    benchmark fingerprint), same simulated time.  ``events`` differs from
    serial by exactly ``(workers - 1) * nprocs`` replica dispatcher
    start-ups.  Raises :class:`PdesError` for configurations the conservative
    scheme cannot replay (see module docstring).
    """
    from repro.net.config import NetConfig

    if faults is not None:
        raise PdesError("fault injection perturbs arrivals; PDES runs are serial-only")
    if metrics is not None:
        raise PdesError("contention metrics are not supported under PDES")
    if view_tracer is not None:
        raise PdesError("view tracing is not supported under PDES")
    if protocol == "hlrc_d":
        raise PdesError(
            "hlrc_d needs an instantaneous home-assignment read "
            "(PageDirectory.origin_any); run it serially"
        )
    netcfg = netcfg or NetConfig()
    if netcfg.random_drop_prob > 0.0:
        raise PdesError("random_drop_prob draws a global RNG stream; run serially")
    try:
        lam = netcfg.lookahead()
    except ValueError as exc:
        raise PdesError(str(exc)) from None
    if mode not in ("fork", "inline"):
        raise PdesError(f"unknown PDES mode {mode!r} (use 'fork' or 'inline')")
    config = config if config is not None else app_module.default_config()

    parts = partition_ranks(nprocs, workers)
    owner_of = {}
    for p, ranks in enumerate(parts):
        for r in ranks:
            owner_of[r] = p

    def make_builder(index: int):
        owned = parts[index]
        return lambda: _build_world(index, owned, app_module, protocol, nprocs,
                                    config, variant, netcfg, nodecfg, trace)

    ports: list = []
    try:
        if mode == "inline":
            for p in range(len(parts)):
                ports.append(_InlinePort(make_builder(p), want_output=(p == 0)))
        else:
            ctx = multiprocessing.get_context("fork")
            for p in range(len(parts)):
                ports.append(_ForkPort(ctx, p, make_builder(p), want_output=(p == 0)))
        finals, windows = _drive(ports, owner_of, lam)
    finally:
        for port in ports:
            port.close()

    return _merge(finals, windows, protocol, nprocs, len(parts), trace)


def _merge(finals, windows, protocol, nprocs, nparts, trace) -> PdesOutcome:
    """Assemble the serial-equivalent observables from partition results."""
    from repro.net.stats import NetStats

    finish = max(t for f in finals for t in f.finish_times)
    time = finish  # all runs start at t=0
    node_shards = {}
    results = {}
    for f in finals:
        node_shards.update(f.node_stats)
        results.update(f.results)
    net = NetStats.merged(node_shards[i] for i in range(nprocs))
    if protocol == "mpi":
        stats: Any = net
    else:
        from repro.protocols.runstats import RunStats

        rank_shards = {}
        for f in finals:
            rank_shards.update(f.rank_stats)
        stats = RunStats.merged(
            (rank_shards[r] for r in range(nprocs)), net=net
        )
        stats.time = time
    tracer = None
    if trace:
        from repro.obs.tracer import EventTracer

        tracer = EventTracer.merged([f.tracer for f in finals])
    return PdesOutcome(
        output=finals[0].output,
        stats=stats,
        time=time,
        results=results,
        events=sum(f.events for f in finals),
        windows=windows,
        workers=nparts,
        tracer=tracer,
        timer_spills=sum(f.timer_spills for f in finals),
    )
