"""Event loop and process abstraction for the discrete-event kernel.

The design follows the classic process-interaction style (SimPy-like) but is
deliberately small, allocation-light and fully deterministic:

* the event queue is a binary heap keyed by ``(time, seq)`` where ``seq`` is a
  global monotonically increasing counter — simultaneous events run in the
  order they were scheduled;
* zero-delay wake-ups (the majority of all events: channel hand-offs,
  semaphore grants, ``Timeout(0)`` yields) bypass the heap entirely and go
  through a plain FIFO *ready deque*.  Because the sequence counter is
  allocated in execution order and simulated time never decreases, every
  entry already in the heap at the current instant precedes every ready
  entry, so draining ``heap-entries-at-now`` before the deque preserves the
  exact ``(time, seq)`` total order of the naive implementation;
* a :class:`Process` wraps a Python generator; the generator *yields effects*
  (subclasses of :class:`Effect`), and the simulator resumes it with the
  effect's result value;
* every wake-up carries the *resumption token* (the process's suspension
  epoch) captured when the wait was registered; a token that no longer
  matches means the process has since been resumed by something else (e.g.
  an :meth:`Process.interrupt`) and the stale wake-up is dropped;
* helper generators compose with plain ``yield from``.

Only simulated time exists here; nothing reads the wall clock.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Simulator",
    "Process",
    "Effect",
    "Timeout",
    "SimError",
    "Interrupt",
]


class SimError(RuntimeError):
    """Raised for misuse of the simulation kernel (e.g. deadlock detection)."""


class Interrupt(Exception):
    """Thrown *into* a process that another process interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Effect:
    """Base class for everything a process may ``yield`` to the simulator.

    Subclasses implement :meth:`apply`, which either schedules a wake-up or
    registers the process on some wait queue.  The value the process receives
    back from ``yield`` is whatever the effect's continuation passes to
    :meth:`Process._resume`.  Registrations must capture ``proc._epoch`` and
    pass it back as the wake-up's token so stale wake-ups are dropped.
    """

    def apply(self, sim: "Simulator", proc: "Process") -> None:
        raise NotImplementedError


class Timeout(Effect):
    """Suspend the yielding process for ``delay`` simulated seconds.

    ``yield Timeout(0)`` is a legal (and common) way to yield the processor
    while staying runnable at the current instant.
    """

    __slots__ = ("delay", "value")

    def __init__(self, delay: float, value: Any = None):
        if delay < 0:
            raise SimError(f"negative timeout: {delay!r}")
        self.delay = float(delay)
        self.value = value

    def apply(self, sim: "Simulator", proc: "Process") -> None:
        if self.delay == 0.0:
            sim._ready.append((proc._resume, (self.value, None, proc._epoch)))
        else:
            sim.schedule(self.delay, proc._resume, self.value, None, proc._epoch)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Timeout({self.delay!r})"


class _Fork(Effect):
    """Internal effect: spawn a child process and resume immediately."""

    __slots__ = ("gen", "name")

    def __init__(self, gen: Generator, name: str):
        self.gen = gen
        self.name = name

    def apply(self, sim: "Simulator", proc: "Process") -> None:
        child = sim.spawn(self.gen, name=self.name)
        sim.call_soon(proc._resume, child, None, proc._epoch)


class _WaitProcess(Effect):
    """Internal effect: block until another process terminates."""

    __slots__ = ("target",)

    def __init__(self, target: "Process"):
        self.target = target

    def apply(self, sim: "Simulator", proc: "Process") -> None:
        if self.target.finished:
            sim.call_soon(proc._resume, self.target.result, None, proc._epoch)
        else:
            self.target._joiners.append((proc, proc._epoch))


class Process:
    """A simulated process: a generator plus bookkeeping.

    Application code never instantiates this directly — use
    :meth:`Simulator.spawn`.  Inside a running process::

        result = yield Timeout(1.5)          # sleep
        child  = yield sim.fork(other())     # spawn concurrently
        rv     = yield child.join()          # wait for termination
    """

    __slots__ = (
        "sim",
        "gen",
        "pid",
        "name",
        "finished",
        "result",
        "error",
        "_joiners",
        "_interrupt_pending",
        "_suspended",
        "_epoch",
        "_send",
        "_throw",
    )

    _ids = itertools.count()

    def __init__(self, sim: "Simulator", gen: Generator, name: str = ""):
        self.sim = sim
        self.gen = gen
        self.pid = next(Process._ids)
        self.name = name or f"proc-{self.pid}"
        self.finished = False
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self._joiners: list[tuple[Process, int]] = []
        self._interrupt_pending: Optional[Interrupt] = None
        self._suspended = True  # not yet resumed for the first time
        self._epoch = 0  # suspension counter; wake-up tokens must match it
        self._send = gen.send
        self._throw = gen.throw

    # -- public API ---------------------------------------------------------

    def join(self) -> Effect:
        """Effect that blocks the yielding process until this one finishes."""
        return _WaitProcess(self)

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into this process at its next resumption.

        The wake-up that delivers the interrupt carries the current
        resumption token, so whichever of {interrupt wake-up, awaited
        wake-up} fires first wins and the loser is dropped — the interrupted
        process never sees a stale value meant for a previous yield.
        """
        if self.finished:
            return
        self._interrupt_pending = Interrupt(cause)
        # Ensure the process wakes even if it was waiting on a queue that may
        # never be signalled.
        self.sim.call_soon(self._resume, None, None, self._epoch)

    # -- engine internals ----------------------------------------------------

    def _resume(self, value: Any = None, exc: Optional[BaseException] = None,
                token: Optional[int] = None) -> None:
        if self.finished:
            return
        if token is not None and token != self._epoch:
            return  # stale wake-up from an earlier suspension
        self._epoch += 1
        if self._interrupt_pending is not None and exc is None:
            exc = self._interrupt_pending
            self._interrupt_pending = None
        self._suspended = False
        try:
            if exc is not None:
                effect = self._throw(exc)
            else:
                effect = self._send(value)
        except StopIteration as stop:
            self._finish(result=stop.value)
            return
        except BaseException as err:  # noqa: BLE001 - propagate at run()
            self._finish(error=err)
            return
        self._suspended = True
        if type(effect) is Timeout:
            # inlined Timeout.apply: the single most common effect
            delay = effect.delay
            sim = self.sim
            if delay == 0.0:
                sim._ready.append((self._resume, (effect.value, None, self._epoch)))
            else:
                sim.schedule(delay, self._resume, effect.value, None, self._epoch)
        elif isinstance(effect, Effect):
            effect.apply(self.sim, self)
        else:
            self._finish(
                error=SimError(
                    f"process {self.name!r} yielded {effect!r}, expected an Effect"
                )
            )

    def _finish(self, result: Any = None, error: Optional[BaseException] = None) -> None:
        self.finished = True
        self.result = result
        self.error = error
        self.sim._live_processes -= 1
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.counter(-1, "live_processes", self.sim.now, self.sim._live_processes)
            if error is not None:
                tracer.instant(-1, "engine", "process", f"died: {self.name}", self.sim.now)
        for joiner, token in self._joiners:
            if error is not None:
                self.sim.call_soon(joiner._resume, None, error, token)
            else:
                self.sim.call_soon(joiner._resume, result, None, token)
        self._joiners.clear()
        if error is not None:
            self.sim._record_failure(self, error)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "finished" if self.finished else "live"
        return f"<Process {self.name} pid={self.pid} {state}>"


class Simulator:
    """The discrete-event scheduler.

    Typical usage::

        sim = Simulator()
        sim.spawn(main(), name="main")
        sim.run()
        print(sim.now)

    ``events_processed`` counts every executed callback (the perf harness
    divides it by wall-clock seconds to get events/sec).
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self.events_processed: int = 0
        # optional repro.obs.EventTracer; None (the default) is the
        # zero-overhead fast path — the run loop itself is never instrumented
        # and every other site guards on this attribute before doing any work
        self.tracer = None
        # optional repro.obs.Metrics registry, same contract as the tracer:
        # None means zero overhead, installed means record-only
        self.metrics = None
        # optional repro.faults.FaultInjector, same None-default contract:
        # every hook site (switch, NIC, Node.compute) guards on this before
        # doing any work, so no plan installed means no behaviour change
        self.faults = None
        self._heap: list[tuple[float, int, Callable, tuple]] = []
        self._timers: deque[tuple[float, int, Callable, tuple]] = deque()
        self._ready: deque[tuple[Callable, tuple]] = deque()
        self._seq = itertools.count()
        self._live_processes = 0
        self._failures: list[tuple[Process, BaseException]] = []
        self._running = False

    # -- scheduling -----------------------------------------------------------

    def schedule(self, delay: float, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` after ``delay`` simulated seconds.

        Zero-delay events (and delays small enough to vanish in float
        addition) go on the ready deque instead of the heap; see the module
        docstring for why this preserves the ``(time, seq)`` order exactly.
        """
        if delay < 0:
            raise SimError(f"cannot schedule in the past (delay={delay!r})")
        t = self.now + delay
        if t <= self.now:
            self._ready.append((fn, args))
        else:
            heapq.heappush(self._heap, (t, next(self._seq), fn, args))

    def call_soon(self, fn: Callable, *args: Any) -> None:
        """Zero-delay fast path: exactly ``schedule(0.0, fn, *args)``.

        Skips the delay arithmetic and branch for the wake-up paths (event
        sets, channel puts, NIC hand-off hops) that are always immediate.
        """
        self._ready.append((fn, args))

    def schedule_at(self, t: float, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` at absolute simulated time ``t``.

        Exact-time twin of :meth:`schedule` for callers that track deadlines
        as absolute times (rate-limited queues): converting to a delay and
        back through float addition would perturb the instant.
        """
        if t < self.now:
            raise SimError(f"cannot schedule in the past (t={t!r} < now={self.now!r})")
        if t <= self.now:
            self._ready.append((fn, args))
        else:
            heapq.heappush(self._heap, (t, next(self._seq), fn, args))

    def schedule_timer(self, delay: float, fn: Callable, *args: Any) -> None:
        """Heap-free lane for timeout guards that usually never fire.

        Retransmission timeouts share one constant delay, so their deadlines
        arrive in non-decreasing order and a plain FIFO holds them in sorted
        order with O(1) insertion — and, crucially, the tens of thousands of
        *cancelled* timers awaiting their (dropped) wake-up no longer bloat
        the heap and tax every push/pop with their log-factor.  Entries draw
        sequence numbers from the same counter as the heap and the run loop
        merges both lanes by ``(time, seq)``, so execution order is exactly
        the single-heap order.  An out-of-order deadline (different delay)
        falls back to the heap.
        """
        if delay < 0:
            raise SimError(f"cannot schedule in the past (delay={delay!r})")
        t = self.now + delay
        if t <= self.now:
            self._ready.append((fn, args))
            return
        timers = self._timers
        if timers and t < timers[-1][0]:
            heapq.heappush(self._heap, (t, next(self._seq), fn, args))
        else:
            timers.append((t, next(self._seq), fn, args))

    def spawn(self, gen: Generator, name: str = "") -> Process:
        """Create a process from a generator and make it runnable now."""
        proc = Process(self, gen, name=name)
        self._live_processes += 1
        self._ready.append((proc._resume, (None, None, 0)))
        tracer = self.tracer
        if tracer is not None:
            tracer.counter(-1, "live_processes", self.now, self._live_processes)
        return proc

    def fork(self, gen: Generator, name: str = "") -> Effect:
        """Effect form of :meth:`spawn`, usable from inside a process.

        ``child = yield sim.fork(worker())`` spawns ``worker`` and resumes the
        caller immediately with the child :class:`Process`.
        """
        return _Fork(gen, name)

    # -- execution -----------------------------------------------------------

    def run(self, until: Optional[float] = None) -> float:
        """Process events until the queues drain (or ``until`` is reached).

        Returns the final simulated time.  If any process died with an
        exception the first such exception is re-raised (with the remaining
        failures attached as ``__notes__``-style context in its args).
        """
        if self._running:
            raise SimError("Simulator.run() is not reentrant")
        self._running = True
        heap = self._heap
        timers = self._timers
        ready = self._ready
        pop = heapq.heappop
        popleft = ready.popleft
        tpopleft = timers.popleft
        failures = self._failures
        now = self.now
        count = self.events_processed
        try:
            while heap or ready or timers:
                # heap/timer entries at the current instant predate (smaller
                # seq) everything on the ready deque — run them first, merged
                # by (time, seq) so the two lanes behave as one queue
                if heap and heap[0][0] <= now:
                    h0 = heap[0]
                    if timers:
                        t0 = timers[0]
                        if t0[0] < h0[0] or (t0[0] == h0[0] and t0[1] < h0[1]):
                            _, _, fn, args = tpopleft()
                        else:
                            _, _, fn, args = pop(heap)
                    else:
                        _, _, fn, args = pop(heap)
                elif timers and timers[0][0] <= now:
                    _, _, fn, args = tpopleft()
                elif ready:
                    fn, args = popleft()
                else:
                    if not heap:
                        t0 = timers[0]
                        from_timer = True
                        t = t0[0]
                    elif timers:
                        t0 = timers[0]
                        h0 = heap[0]
                        from_timer = t0[0] < h0[0] or (
                            t0[0] == h0[0] and t0[1] < h0[1]
                        )
                        t = t0[0] if from_timer else h0[0]
                    else:
                        from_timer = False
                        t = heap[0][0]
                    if until is not None and t > until:
                        self.now = until
                        break
                    if from_timer:
                        _, _, fn, args = tpopleft()
                    else:
                        _, _, fn, args = pop(heap)
                    self.now = now = t
                count += 1
                fn(*args)
                if failures:
                    proc, err = failures[0]
                    raise SimError(
                        f"process {proc.name!r} died at t={self.now:.6f}"
                    ) from err
        finally:
            self._running = False
            self.events_processed = count
        return self.now

    def _record_failure(self, proc: Process, error: BaseException) -> None:
        self._failures.append((proc, error))

    @property
    def live_processes(self) -> int:
        """Number of spawned processes that have not yet terminated."""
        return self._live_processes

    def all_of(self, procs: Iterable[Process]) -> Generator:
        """Helper generator: join every process in ``procs`` in order.

        Usage: ``results = yield from sim.all_of(workers)``.
        """
        results = []
        for proc in procs:
            results.append((yield proc.join()))
        return results
