"""Event loop and process abstraction for the discrete-event kernel.

The design follows the classic process-interaction style (SimPy-like) but is
deliberately small, allocation-light and fully deterministic:

* the event queue is a binary heap keyed by ``(time, tsched, cls, seq)``:
  ``tsched`` is the simulated instant the event was *scheduled* at, ``cls``
  is an ordering class (0 for ordinary events, 1 for network arrival pumps,
  which must sort after every ordinary event scheduled at the same instant),
  and ``seq`` is a per-simulator monotonically increasing counter.  For
  ordinary events ``tsched``/``cls`` never reorder anything relative to the
  historical ``(time, seq)`` key — ``seq`` is allocated in scheduling order
  and simulated time never decreases, so ``seq`` order refines ``tsched``
  order — but they give events injected by the parallel (PDES) driver a
  *reconstructible* position: a cross-partition arrival can be inserted with
  the same ``(time, tsched, cls)`` prefix it would have carried in a serial
  run, making serial and partitioned executions order events identically;
* zero-delay wake-ups (the majority of all events: channel hand-offs,
  semaphore grants, ``Timeout(0)`` yields) bypass the heap entirely and go
  through a plain FIFO *ready deque*.  Because the sequence counter is
  allocated in execution order and simulated time never decreases, every
  entry already in the heap at the current instant precedes every ready
  entry, so draining ``heap-entries-at-now`` before the deque preserves the
  exact ``(time, seq)`` total order of the naive implementation;
* a :class:`Process` wraps a Python generator; the generator *yields effects*
  (subclasses of :class:`Effect`), and the simulator resumes it with the
  effect's result value;
* every wake-up carries the *resumption token* (the process's suspension
  epoch) captured when the wait was registered; a token that no longer
  matches means the process has since been resumed by something else (e.g.
  an :meth:`Process.interrupt`) and the stale wake-up is dropped;
* helper generators compose with plain ``yield from``.

Only simulated time exists here; nothing reads the wall clock.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Simulator",
    "Process",
    "Effect",
    "Timeout",
    "SimError",
    "Interrupt",
]


class SimError(RuntimeError):
    """Raised for misuse of the simulation kernel (e.g. deadlock detection)."""


class Interrupt(Exception):
    """Thrown *into* a process that another process interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Effect:
    """Base class for everything a process may ``yield`` to the simulator.

    Subclasses implement :meth:`apply`, which either schedules a wake-up or
    registers the process on some wait queue.  The value the process receives
    back from ``yield`` is whatever the effect's continuation passes to
    :meth:`Process._resume`.  Registrations must capture ``proc._epoch`` and
    pass it back as the wake-up's token so stale wake-ups are dropped.
    """

    def apply(self, sim: "Simulator", proc: "Process") -> None:
        raise NotImplementedError


class Timeout(Effect):
    """Suspend the yielding process for ``delay`` simulated seconds.

    ``yield Timeout(0)`` is a legal (and common) way to yield the processor
    while staying runnable at the current instant.
    """

    __slots__ = ("delay", "value")

    def __init__(self, delay: float, value: Any = None):
        if delay < 0:
            raise SimError(f"negative timeout: {delay!r}")
        self.delay = float(delay)
        self.value = value

    def apply(self, sim: "Simulator", proc: "Process") -> None:
        if self.delay == 0.0:
            sim._ready.append((proc._resume, (self.value, None, proc._epoch)))
        else:
            sim.schedule(self.delay, proc._resume, self.value, None, proc._epoch)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Timeout({self.delay!r})"


class _Fork(Effect):
    """Internal effect: spawn a child process and resume immediately."""

    __slots__ = ("gen", "name")

    def __init__(self, gen: Generator, name: str):
        self.gen = gen
        self.name = name

    def apply(self, sim: "Simulator", proc: "Process") -> None:
        child = sim.spawn(self.gen, name=self.name)
        sim.call_soon(proc._resume, child, None, proc._epoch)


class _WaitProcess(Effect):
    """Internal effect: block until another process terminates."""

    __slots__ = ("target",)

    def __init__(self, target: "Process"):
        self.target = target

    def apply(self, sim: "Simulator", proc: "Process") -> None:
        if self.target.finished:
            sim.call_soon(proc._resume, self.target.result, None, proc._epoch)
        else:
            self.target._joiners.append((proc, proc._epoch))


class Process:
    """A simulated process: a generator plus bookkeeping.

    Application code never instantiates this directly — use
    :meth:`Simulator.spawn`.  Inside a running process::

        result = yield Timeout(1.5)          # sleep
        child  = yield sim.fork(other())     # spawn concurrently
        rv     = yield child.join()          # wait for termination
    """

    __slots__ = (
        "sim",
        "gen",
        "pid",
        "name",
        "finished",
        "result",
        "error",
        "_joiners",
        "_interrupt_pending",
        "_suspended",
        "_epoch",
        "_send",
        "_throw",
    )

    def __init__(self, sim: "Simulator", gen: Generator, name: str = ""):
        self.sim = sim
        self.gen = gen
        # pids are simulator-local: a class-global counter would make pids
        # (and therefore traces, breakdowns and report fingerprints) depend
        # on how many Simulators ran earlier in the same OS process
        self.pid = next(sim._pids)
        self.name = name or f"proc-{self.pid}"
        self.finished = False
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self._joiners: list[tuple[Process, int]] = []
        self._interrupt_pending: Optional[Interrupt] = None
        self._suspended = True  # not yet resumed for the first time
        self._epoch = 0  # suspension counter; wake-up tokens must match it
        self._send = gen.send
        self._throw = gen.throw

    # -- public API ---------------------------------------------------------

    def join(self) -> Effect:
        """Effect that blocks the yielding process until this one finishes."""
        return _WaitProcess(self)

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into this process at its next resumption.

        The wake-up that delivers the interrupt carries the current
        resumption token, so whichever of {interrupt wake-up, awaited
        wake-up} fires first wins and the loser is dropped — the interrupted
        process never sees a stale value meant for a previous yield.
        """
        if self.finished:
            return
        self._interrupt_pending = Interrupt(cause)
        # Ensure the process wakes even if it was waiting on a queue that may
        # never be signalled.
        self.sim.call_soon(self._resume, None, None, self._epoch)

    # -- engine internals ----------------------------------------------------

    def _resume(self, value: Any = None, exc: Optional[BaseException] = None,
                token: Optional[int] = None) -> None:
        if self.finished:
            return
        if token is not None and token != self._epoch:
            return  # stale wake-up from an earlier suspension
        self._epoch += 1
        if self._interrupt_pending is not None and exc is None:
            exc = self._interrupt_pending
            self._interrupt_pending = None
        self._suspended = False
        try:
            if exc is not None:
                effect = self._throw(exc)
            else:
                effect = self._send(value)
        except StopIteration as stop:
            self._finish(result=stop.value)
            return
        except BaseException as err:  # noqa: BLE001 - propagate at run()
            self._finish(error=err)
            return
        self._suspended = True
        if type(effect) is Timeout:
            # inlined Timeout.apply: the single most common effect
            delay = effect.delay
            sim = self.sim
            if delay == 0.0:
                sim._ready.append((self._resume, (effect.value, None, self._epoch)))
            else:
                sim.schedule(delay, self._resume, effect.value, None, self._epoch)
        elif isinstance(effect, Effect):
            effect.apply(self.sim, self)
        else:
            self._finish(
                error=SimError(
                    f"process {self.name!r} yielded {effect!r}, expected an Effect"
                )
            )

    def _finish(self, result: Any = None, error: Optional[BaseException] = None) -> None:
        self.finished = True
        self.result = result
        self.error = error
        self.sim._live_processes -= 1
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.counter(-1, "live_processes", self.sim.now, self.sim._live_processes)
            if error is not None:
                tracer.instant(-1, "engine", "process", f"died: {self.name}", self.sim.now)
        for joiner, token in self._joiners:
            if error is not None:
                self.sim.call_soon(joiner._resume, None, error, token)
            else:
                self.sim.call_soon(joiner._resume, result, None, token)
        self._joiners.clear()
        if error is not None:
            self.sim._record_failure(self, error)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "finished" if self.finished else "live"
        return f"<Process {self.name} pid={self.pid} {state}>"


class Simulator:
    """The discrete-event scheduler.

    Typical usage::

        sim = Simulator()
        sim.spawn(main(), name="main")
        sim.run()
        print(sim.now)

    ``events_processed`` counts every executed callback (the perf harness
    divides it by wall-clock seconds to get events/sec).

    ``queue="calendar"`` swaps the binary heap for the array-friendly
    calendar/bucket queue from :mod:`repro.sim.calendar`; execution order is
    identical (property-tested), only the data structure changes.
    ``queue="auto"`` starts on the heap and migrates to the calendar queue
    at :meth:`run` entry once the pending population crosses
    :attr:`AUTO_CALENDAR_THRESHOLD` — C-implemented ``heapq`` beats the
    pure-Python calendar until its log factor bites at very large
    populations (measured crossover ≈ 2×10⁵ pending entries), so "auto"
    picks the measured winner for the event-count regime instead of
    guessing.  The partitioned PDES driver uses auto-queue simulators.
    The migration happens only between :meth:`run` calls (the run loop
    hoists the queue into locals), and only heap→calendar.
    """

    #: maximum number of distinct-delay timer FIFO lanes before
    #: :meth:`schedule_timer` falls back to the main event queue
    MAX_TIMER_LANES = 12

    #: pending-event population at which an ``queue="auto"`` simulator swaps
    #: its heap for the calendar queue (measured heap/calendar crossover)
    AUTO_CALENDAR_THRESHOLD = 200_000

    def __init__(self, queue: str = "heap") -> None:
        self.now: float = 0.0
        self.events_processed: int = 0
        # optional repro.obs.EventTracer; None (the default) is the
        # zero-overhead fast path — the run loop itself is never instrumented
        # and every other site guards on this attribute before doing any work
        self.tracer = None
        # optional repro.obs.Metrics registry, same contract as the tracer:
        # None means zero overhead, installed means record-only
        self.metrics = None
        # optional repro.faults.FaultInjector, same None-default contract:
        # every hook site (switch, NIC, Node.compute) guards on this before
        # doing any work, so no plan installed means no behaviour change
        self.faults = None
        # optional repro.obs.oracle.AccessRecorder, same None-default
        # contract: memory/protocol sites record read/write digests and
        # sync edges for the consistency oracle only when installed
        self.oracle = None
        # main event queue: entries are (t, tsched, cls, seq, fn, args)
        if queue == "heap" or queue == "auto":
            self._heap: Any = []
            self._qpush = heapq.heappush
            self._qpop = heapq.heappop
            self.queue_active = "heap"
        elif queue == "calendar":
            from repro.sim.calendar import CalendarQueue

            self._heap = CalendarQueue()
            self._qpush = CalendarQueue.push
            self._qpop = CalendarQueue.pop
            self.queue_active = "calendar"
        else:
            raise SimError(f"unknown event queue kind {queue!r}")
        self.queue_kind = queue
        self._auto_queue = queue == "auto"
        # timer lanes: one FIFO deque per distinct delay value (deadlines
        # within a lane are non-decreasing because `now` is), merged through
        # a small heap of lane heads; see schedule_timer
        self._timer_lanes: dict[float, deque] = {}
        self._timer_heads: list[tuple] = []
        self.timer_spills: int = 0
        self._ready: deque[tuple[Callable, tuple]] = deque()
        self._seq = itertools.count()
        self._pids = itertools.count()
        self._live_processes = 0
        self._failures: list[tuple[Process, BaseException]] = []
        self._running = False

    # -- scheduling -----------------------------------------------------------

    def schedule(self, delay: float, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` after ``delay`` simulated seconds.

        Zero-delay events (and delays small enough to vanish in float
        addition) go on the ready deque instead of the heap; see the module
        docstring for why this preserves the ``(time, seq)`` order exactly.
        """
        if delay < 0:
            raise SimError(f"cannot schedule in the past (delay={delay!r})")
        t = self.now + delay
        if t <= self.now:
            self._ready.append((fn, args))
        else:
            self._qpush(self._heap, (t, self.now, 0, next(self._seq), fn, args))

    def call_soon(self, fn: Callable, *args: Any) -> None:
        """Zero-delay fast path: exactly ``schedule(0.0, fn, *args)``.

        Skips the delay arithmetic and branch for the wake-up paths (event
        sets, channel puts, NIC hand-off hops) that are always immediate.
        """
        self._ready.append((fn, args))

    def schedule_at(self, t: float, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` at absolute simulated time ``t``.

        Exact-time twin of :meth:`schedule` for callers that track deadlines
        as absolute times (rate-limited queues): converting to a delay and
        back through float addition would perturb the instant.
        """
        if t < self.now:
            raise SimError(f"cannot schedule in the past (t={t!r} < now={self.now!r})")
        if t <= self.now:
            self._ready.append((fn, args))
        else:
            self._qpush(self._heap, (t, self.now, 0, next(self._seq), fn, args))

    def schedule_keyed(self, t: float, tsched: float, cls: int,
                       fn: Callable, *args: Any) -> None:
        """Schedule at absolute time ``t`` with an explicit ordering key.

        Used by the network switch's arrival pump (and the PDES driver when
        it re-injects cross-partition arrivals): the caller supplies the
        ``(tsched, cls)`` prefix the event must sort under so that a
        partitioned run reconstructs the exact serial position.  Always goes
        through the main event queue, even for ``t == now`` — ready-deque
        entries sort *after* all queue entries at the current instant, which
        is wrong for an event whose logical scheduling instant lies in the
        past.
        """
        if t < self.now:
            raise SimError(f"cannot schedule in the past (t={t!r} < now={self.now!r})")
        self._qpush(self._heap, (t, tsched, cls, next(self._seq), fn, args))

    def schedule_timer(self, delay: float, fn: Callable, *args: Any) -> None:
        """Heap-free lanes for timeout guards that usually never fire.

        Timers with the *same* delay have non-decreasing deadlines (``now``
        never decreases), so a plain FIFO per distinct delay value holds
        them sorted with O(1) insertion — and, crucially, the tens of
        thousands of *cancelled* timers awaiting their (dropped) wake-up no
        longer bloat the main queue and tax every push/pop with their
        log-factor.  A small heap of lane heads merges the lanes; entries
        draw sequence numbers from the same counter as the main queue and
        the run loop merges all lanes by the full ``(time, tsched, cls,
        seq)`` key, so execution order is exactly the single-queue order
        (property-tested in ``tests/sim/test_engine.py``).

        The pre-backoff implementation kept *one* FIFO and pushed any
        out-of-order deadline to the main heap.  With PR 5's exponential
        backoff the delays became variable, and a single long backed-off
        timer at the lane tail silently rerouted every subsequent
        shorter-delay timer — including the constant-delay fast path —
        into the heap.  Per-delay lanes keep each delay class O(1); only
        runs juggling more than :attr:`MAX_TIMER_LANES` distinct live delay
        values ever spill (counted in :attr:`timer_spills`).
        """
        if delay < 0:
            raise SimError(f"cannot schedule in the past (delay={delay!r})")
        t = self.now + delay
        if t <= self.now:
            self._ready.append((fn, args))
            return
        lanes = self._timer_lanes
        lane = lanes.get(delay)
        entry = (t, self.now, 0, next(self._seq), fn, args)
        if lane is not None:
            # lane head is already registered in _timer_heads
            lane.append(entry)
        elif len(lanes) < self.MAX_TIMER_LANES:
            lanes[delay] = deque((entry,))
            heapq.heappush(self._timer_heads, entry + (delay,))
        else:
            self.timer_spills += 1
            self._qpush(self._heap, entry)

    def _pop_timer(self) -> tuple:
        """Pop the earliest timer entry across all lanes."""
        heads = self._timer_heads
        entry = heapq.heappop(heads)
        delay = entry[-1]
        lanes = self._timer_lanes
        lane = lanes[delay]
        lane.popleft()
        if lane:
            heapq.heappush(heads, lane[0] + (delay,))
        else:
            del lanes[delay]
        return entry

    def spawn(self, gen: Generator, name: str = "") -> Process:
        """Create a process from a generator and make it runnable now."""
        proc = Process(self, gen, name=name)
        self._live_processes += 1
        self._ready.append((proc._resume, (None, None, 0)))
        tracer = self.tracer
        if tracer is not None:
            tracer.counter(-1, "live_processes", self.now, self._live_processes)
        return proc

    def fork(self, gen: Generator, name: str = "") -> Effect:
        """Effect form of :meth:`spawn`, usable from inside a process.

        ``child = yield sim.fork(worker())`` spawns ``worker`` and resumes the
        caller immediately with the child :class:`Process`.
        """
        return _Fork(gen, name)

    # -- execution -----------------------------------------------------------

    def run(self, until: Optional[float] = None, inclusive: bool = True) -> float:
        """Process events until the queues drain (or ``until`` is reached).

        Returns the final simulated time.  If any process died with an
        exception the first such exception is re-raised (with the remaining
        failures attached as ``__notes__``-style context in its args).

        ``until`` boundary contract (the PDES outer loop calls this
        repeatedly, so the semantics are load-bearing):

        * ``until`` in the past (``until < self.now``) raises
          :class:`SimError` — the clock never moves backwards;
        * with ``inclusive=True`` (default) events scheduled *exactly at*
          ``until`` execute before the break; with ``inclusive=False`` they
          stay queued (the PDES window ``[T, W)`` is half-open);
        * ready-deque entries (zero-delay work at the current instant) are
          always drained before the clock can advance, so none are pending
          at the break;
        * if the queues drain before ``until``, the clock still advances to
          ``until`` — repeated ``run(until=...)`` calls observe a monotone
          ``self.now`` whether or not events existed in each window.
        """
        if self._running:
            raise SimError("Simulator.run() is not reentrant")
        if until is not None and until < self.now:
            raise SimError(
                f"run(until={until!r}) is in the past (now={self.now!r})"
            )
        if self._auto_queue and len(self._heap) >= self.AUTO_CALENDAR_THRESHOLD:
            self._migrate_to_calendar()
        self._running = True
        heap = self._heap
        theads = self._timer_heads
        ready = self._ready
        pop = self._qpop
        popleft = ready.popleft
        pop_timer = self._pop_timer
        failures = self._failures
        now = self.now
        count = self.events_processed
        try:
            while heap or ready or theads:
                # queue/timer entries at the current instant predate (smaller
                # seq) everything on the ready deque — run them first, merged
                # by (time, tsched, cls, seq) so all lanes behave as one queue
                if heap and heap[0][0] <= now:
                    h0 = heap[0]
                    if theads and theads[0] < h0:
                        _, _, _, _, fn, args, _ = pop_timer()
                    else:
                        _, _, _, _, fn, args = pop(heap)
                elif theads and theads[0][0] <= now:
                    _, _, _, _, fn, args, _ = pop_timer()
                elif ready:
                    fn, args = popleft()
                else:
                    if not heap:
                        from_timer = True
                        t = theads[0][0]
                    elif theads and theads[0] < heap[0]:
                        from_timer = True
                        t = theads[0][0]
                    else:
                        from_timer = False
                        t = heap[0][0]
                    if until is not None and (t > until or (
                            not inclusive and t >= until)):
                        if until > now:
                            self.now = until
                        break
                    if from_timer:
                        _, _, _, _, fn, args, _ = pop_timer()
                    else:
                        _, _, _, _, fn, args = pop(heap)
                    self.now = now = t
                count += 1
                fn(*args)
                if failures:
                    proc, err = failures[0]
                    raise SimError(
                        f"process {proc.name!r} died at t={self.now:.6f}"
                    ) from err
            else:
                # queues drained: the clock still runs out the window
                if until is not None and until > now:
                    self.now = until
        finally:
            self._running = False
            self.events_processed = count
        return self.now

    def _migrate_to_calendar(self) -> None:
        """One-way heap→calendar migration for ``queue="auto"`` simulators.

        Called only from :meth:`run` entry, never mid-loop (the run loop
        hoists the queue and its pop into locals).  Entries are carried over
        verbatim and the calendar pops in exactly the heap's total order, so
        execution order is unchanged — only the data structure's scaling.
        """
        from repro.sim.calendar import CalendarQueue

        cq = CalendarQueue()
        push = cq.push
        for entry in self._heap:
            push(entry)
        self._heap = cq
        self._qpush = CalendarQueue.push
        self._qpop = CalendarQueue.pop
        self._auto_queue = False
        self.queue_active = "calendar"

    def peek_next_time(self) -> float:
        """Earliest pending event time across all lanes (``inf`` if idle).

        Ready-deque entries run at the current instant, so a non-empty
        ready deque reports ``now``.  The PDES driver uses this to compute
        the global lower bound T for the next synchronization window.
        """
        if self._ready:
            return self.now
        t = float("inf")
        if self._heap:
            t = self._heap[0][0]
        if self._timer_heads and self._timer_heads[0][0] < t:
            t = self._timer_heads[0][0]
        return t

    def _record_failure(self, proc: Process, error: BaseException) -> None:
        self._failures.append((proc, error))

    @property
    def live_processes(self) -> int:
        """Number of spawned processes that have not yet terminated."""
        return self._live_processes

    def all_of(self, procs: Iterable[Process]) -> Generator:
        """Helper generator: join every process in ``procs`` in order.

        Usage: ``results = yield from sim.all_of(workers)``.
        """
        results = []
        for proc in procs:
            results.append((yield proc.join()))
        return results
