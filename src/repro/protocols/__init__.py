"""DSM consistency protocols.

Three protocol implementations, matching the paper's three systems:

* :class:`repro.protocols.lrc.LrcProtocol` — **LRC_d**: diff-based Lazy
  Release Consistency as in TreadMarks (invalidate protocol, write notices,
  vector timestamps, diff requests on page faults, *consistency-maintaining
  centralised barriers*).
* :class:`repro.protocols.vc.VcProtocol` — **VC_d**: View-based Consistency
  built from the same machinery (views detected dynamically, consistency
  maintenance distributed through view acquire/release, synchronisation-only
  barriers; diff requests still happen on faults).
* :class:`repro.protocols.vc_sd.VcSdProtocol` — **VC_sd**: the optimal VC
  implementation with *diff integration* (one merged diff per page) and
  *diff piggybacking* on the view-grant message (zero diff requests).

All three share the interval/timestamp machinery (:mod:`.timestamps`), the
fault-handling base (:mod:`.base`) and the global page directory hints
(:mod:`.directory`).
"""

from repro.protocols.timestamps import VectorClock, IntervalNotice
from repro.protocols.directory import PageDirectory
from repro.protocols.base import BaseDsmProtocol, VoppDisciplineError, ViewOverlapError
from repro.protocols.lrc import LrcProtocol
from repro.protocols.hlrc import HlrcProtocol
from repro.protocols.vc import VcProtocol
from repro.protocols.vc_sd import VcSdProtocol
from repro.protocols.runstats import RunStats
from repro.protocols.system import DsmSystem

PROTOCOLS = {
    "lrc_d": LrcProtocol,
    "hlrc_d": HlrcProtocol,
    "vc_d": VcProtocol,
    "vc_sd": VcSdProtocol,
}

__all__ = [
    "RunStats",
    "DsmSystem",
    "VectorClock",
    "IntervalNotice",
    "PageDirectory",
    "BaseDsmProtocol",
    "VoppDisciplineError",
    "ViewOverlapError",
    "LrcProtocol",
    "HlrcProtocol",
    "VcProtocol",
    "VcSdProtocol",
    "PROTOCOLS",
]
