"""Versioned shared oracles with visibility delayed by the network lookahead.

The simulator keeps two pieces of cross-node metadata outside the message
layer: the page directory (who created / last wrote each page) and the view
registry (which pages belong to which view).  They stand in for metadata a
real DSM distributes through its managers, at zero simulated cost.

A purely serial simulator could consult them instantaneously, but the
partitioned (PDES) driver replicates them per partition and ships mutations
only at window boundaries.  To keep serial and partitioned runs
bit-identical, **both** read through the same visibility rule:

    a mutation made by node ``m`` at time ``t_m`` is visible to a reader
    ``r`` at time ``t_r`` iff ``r == m`` or ``t_m + lookahead <= t_r``.

The rule is physically faithful: real metadata travels in messages that take
at least the switch forwarding latency (the PDES lookahead), so no node can
act on another node's mutation sooner than that.  And it makes every read a
pure function of ``(reader, t_r)`` and the mutation log — independent of how
the engine interleaved other nodes' events, and of which partition the
reader runs in.

Replica sufficiency under the window protocol: a partition executing window
``[T, T + lookahead)`` holds every foreign mutation with ``t_m < T`` (shipped
at the previous window barrier), and the visibility rule never selects a
foreign mutation with ``t_m >= T`` — that would need ``t_r >= T + lookahead``,
past the window's end.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional

__all__ = ["VersionedOracle", "ViewRegistry"]

# a delta record, as captured/applied for PDES shipping: (key, t, node, value)
Record = tuple


class VersionedOracle:
    """A multimap ``key -> [(t, node, value)]`` read under the visibility rule."""

    def __init__(self, lookahead: float = 0.0):
        self.lookahead = lookahead
        self._log: dict[Any, list[tuple]] = {}
        self._pending: Optional[list[Record]] = None  # delta capture (PDES)

    # -- mutation ---------------------------------------------------------------

    def record(self, key: Any, t: float, node: int, value: Any = None) -> None:
        self._log.setdefault(key, []).append((t, node, value))
        if self._pending is not None:
            self._pending.append((key, t, node, value))

    def has_record(self, key: Any, node: int) -> bool:
        """Whether ``node`` itself ever recorded under ``key`` (no visibility:
        used for idempotence checks, which are node-local by construction)."""
        return any(e[1] == node for e in self._log.get(key, ()))

    def all_entries(self, key: Any) -> list[tuple]:
        """Every entry regardless of visibility (instantaneous read).

        Only valid in a serial run — a partitioned replica does not hold
        other partitions' in-window mutations, so consumers of this method
        (HLRC's home lookup) cannot run under the PDES driver.
        """
        return self._log.get(key, [])

    # -- reads ------------------------------------------------------------------

    def visible(self, key: Any, reader: int, t: float) -> list[tuple]:
        """All entries visible to ``reader`` at time ``t``, log order."""
        entries = self._log.get(key)
        if not entries:
            return []
        lam = self.lookahead
        return [e for e in entries if e[1] == reader or e[0] + lam <= t]

    def earliest(self, key: Any, reader: int, t: float) -> Optional[tuple]:
        """Visible entry with the smallest ``(t, node)`` — first-wins reads."""
        vis = self.visible(key, reader, t)
        return min(vis, key=_order) if vis else None

    def latest(self, key: Any, reader: int, t: float) -> Optional[tuple]:
        """Visible entry with the largest ``(t, node)`` — last-wins reads."""
        vis = self.visible(key, reader, t)
        return max(vis, key=_order) if vis else None

    # -- PDES delta shipping ----------------------------------------------------

    def capture_deltas(self) -> None:
        """Start buffering local mutations for window-boundary shipping."""
        if self._pending is None:
            self._pending = []

    def drain_deltas(self) -> list[Record]:
        out, self._pending = self._pending or [], []
        return out

    def apply_deltas(self, records: Iterable[Record]) -> None:
        """Replay another partition's mutations into this replica."""
        pending = self._pending
        self._pending = None  # foreign mutations must not be re-shipped
        try:
            for key, t, node, value in records:
                self.record(key, t, node, value)
        finally:
            self._pending = pending


def _order(entry: tuple) -> tuple:
    return (entry[0], entry[1])


class ViewRegistry:
    """Page-to-view bindings (VOPP metadata), visibility-delayed.

    Replaces the plain ``page_view`` / ``view_pages`` dicts: bindings carry
    the binding node and time, and every read filters through the oracle
    visibility rule so partitioned runs agree with serial runs exactly.
    """

    def __init__(self, lookahead: float = 0.0):
        self._binds = VersionedOracle(lookahead)  # pid -> entries, value=view
        # secondary index for per-view iteration: view -> entries, value=pid
        self._members = VersionedOracle(lookahead)

    def bind(self, pid: int, view_id: int, node: int, t: float) -> None:
        """Bind ``pid`` to ``view_id`` (idempotent; overlap-checked)."""
        from repro.protocols.base import ViewOverlapError

        bound = self.view_of(pid, node, t)
        if bound is not None:
            if bound != view_id:
                raise ViewOverlapError(
                    f"page {pid} already belongs to view {bound}, cannot bind "
                    f"to view {view_id}"
                )
            if self._binds.has_record(pid, node):
                return  # re-release of an already-bound page by the same node
        self._binds.record(pid, t, node, view_id)
        self._members.record(view_id, t, node, pid)

    def view_of(self, pid: int, reader: int, t: float) -> Optional[int]:
        """The view ``pid`` belongs to, as visible to ``reader`` at ``t``."""
        from repro.protocols.base import ViewOverlapError

        vis = self._binds.visible(pid, reader, t)
        if not vis:
            return None
        views = {e[2] for e in vis}
        if len(views) > 1:
            raise ViewOverlapError(
                f"page {pid} is bound to multiple views {sorted(views)} "
                "(views must not overlap)"
            )
        return vis[0][2]

    def pages_of(self, view_id: int, reader: int, t: float) -> list[int]:
        """Sorted pages of ``view_id`` visible to ``reader`` at ``t``."""
        return sorted({e[2] for e in self._members.visible(view_id, reader, t)})

    def known_views(self, reader: int, t: float) -> list[int]:
        """Sorted ids of every view with at least one visible binding."""
        lam = self._members.lookahead
        out = []
        for view_id, entries in self._members._log.items():
            if any(e[1] == reader or e[0] + lam <= t for e in entries):
                out.append(view_id)
        return sorted(out)

    # -- PDES delta shipping ----------------------------------------------------

    def capture_deltas(self) -> None:
        self._binds.capture_deltas()
        self._members.capture_deltas()

    def drain_deltas(self) -> tuple[list[Record], list[Record]]:
        return (self._binds.drain_deltas(), self._members.drain_deltas())

    def apply_deltas(self, deltas: tuple) -> None:
        binds, members = deltas
        self._binds.apply_deltas(binds)
        self._members.apply_deltas(members)
