"""Vector clocks, intervals and write notices.

An **interval** is the span of a node's execution between two synchronisation
points (lock/view release, barrier).  Each interval gets:

* a per-node index (position in that node's interval sequence), and
* a **Lamport stamp** — a scalar clock that is a linear extension of the
  happened-before order.  Diffs from different writers to the same page are
  applied in Lamport order, which is correct for data-race-free programs
  (conflicting writes are ordered by synchronisation, hence by the stamp).

An :class:`IntervalNotice` is the wire record announcing one interval's write
set; its accounted size mirrors TreadMarks' packed write-notice records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = ["VectorClock", "IntervalNotice", "NOTICE_BASE_BYTES", "NOTICE_PER_PAGE_BYTES"]

NOTICE_BASE_BYTES = 12  # node id + interval index + lamport stamp
NOTICE_PER_PAGE_BYTES = 4


class VectorClock:
    """Classic vector clock over node interval indices.

    ``vc[i]`` = highest interval index of node ``i`` whose write notices this
    node has *seen* (seen means invalidations applied, not diffs fetched).
    """

    __slots__ = ("_v",)

    def __init__(self, n: int):
        self._v = [0] * n

    def __getitem__(self, i: int) -> int:
        return self._v[i]

    def __len__(self) -> int:
        return len(self._v)

    def advance(self, i: int, idx: int) -> None:
        """Record that intervals of node ``i`` up to ``idx`` have been seen."""
        if idx > self._v[i]:
            self._v[i] = idx

    def merge(self, other: Sequence[int]) -> None:
        if len(other) != len(self._v):
            raise ValueError("vector clock length mismatch")
        for i, x in enumerate(other):
            if x > self._v[i]:
                self._v[i] = x

    def dominates(self, other: Sequence[int]) -> bool:
        """True iff this clock has seen everything ``other`` has."""
        return all(a >= b for a, b in zip(self._v, other))

    def copy(self) -> list[int]:
        return list(self._v)

    @property
    def wire_size(self) -> int:
        return 4 * len(self._v)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VC{self._v!r}"


@dataclass(frozen=True)
class IntervalNotice:
    """Announcement that ``node``'s interval ``idx`` wrote ``pages``."""

    node: int
    idx: int
    lamport: int
    pages: tuple[int, ...]

    @property
    def wire_size(self) -> int:
        return NOTICE_BASE_BYTES + NOTICE_PER_PAGE_BYTES * len(self.pages)

    def key(self) -> tuple[int, int]:
        return (self.node, self.idx)

    def order(self) -> tuple[int, int]:
        """Total order consistent with happened-before (Lamport, node)."""
        return (self.lamport, self.node)


def notices_wire_size(notices: Iterable[IntervalNotice]) -> int:
    return sum(n.wire_size for n in notices)
