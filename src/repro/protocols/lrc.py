"""LRC_d: diff-based Lazy Release Consistency (TreadMarks-style).

Traditional (lock + barrier) DSM programs run on this protocol.

**Locks** use a centralised manager per lock (``lock_id % nprocs``): the
acquire message carries the acquirer's vector clock; the manager's grant
carries every write notice the acquirer hasn't seen; the release ships the
releaser's previously-unshipped knowledge to the manager so causality chains
through the manager.

**Barriers maintain consistency centrally** — the defining cost of LRC that
the paper measures: every arriver ships its new write notices to the barrier
manager (node 0), whose dispatcher processes all 2(n-1) messages *serially*
(notice-proportional CPU cost), merges vector clocks and notice sets, and
broadcasts per-node releases carrying all unseen notices out of its single
network port.  With many processors this centralisation dominates (paper,
Table 1: 34,492 µs mean barrier time vs 5,467 µs for VC_d) and the arrival
burst overflows the manager's receive buffer, causing the retransmissions the
paper reports in the "Rexmit" row.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional

from repro.net.message import Message, MessageKind
from repro.protocols.base import (
    CTRL_MSG_BYTES,
    HANDLER_BASE_COST,
    NOTICE_PROC_COST,
    BaseDsmProtocol,
)
from repro.protocols.timestamps import IntervalNotice, VectorClock, notices_wire_size
from repro.sim import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.protocols.system import DsmSystem
    from repro.net.cluster import Node

__all__ = ["LrcProtocol"]


class _LockState:
    """Manager-side state of one lock."""

    __slots__ = ("held_by", "queue")

    def __init__(self) -> None:
        self.held_by: Optional[int] = None
        self.queue: list[Message | int] = []  # waiting acquire msgs (or self id)


class LrcProtocol(BaseDsmProtocol):
    """Per-node LRC_d instance."""

    name = "lrc_d"

    def __init__(self, system: "DsmSystem", node: "Node"):
        super().__init__(system, node)
        n = system.nprocs
        self.vc = VectorClock(n)
        # all notices this node knows, per origin node, ordered by idx
        self.known: dict[int, list[IntervalNotice]] = {i: [] for i in range(n)}
        # knowledge horizon already shipped to each manager node
        self._shipped: dict[int, list[int]] = {}
        # manager-side lock table (only used on manager nodes)
        self._locks: dict[int, _LockState] = {}
        self._grant_events: dict[int, Event] = {}
        # barrier manager state (node 0 only)
        self._barrier_arrivals: list[dict] = []
        self._barrier_arrival_t: list[float] = []  # metrics-only skew samples
        self._barrier_events: dict[int, Event] = {}
        self._barrier_gen = 0
        node.register_handler(MessageKind.LOCK_ACQUIRE, self._handle_lock_acquire)
        node.register_handler(MessageKind.LOCK_GRANT, self._handle_lock_grant)
        node.register_handler(MessageKind.LOCK_FORWARD, self._handle_lock_release_msg)
        node.register_handler(MessageKind.BARRIER_ARRIVE, self._handle_barrier_arrive)
        node.register_handler(MessageKind.BARRIER_RELEASE, self._handle_barrier_release)

    # -- knowledge bookkeeping ------------------------------------------------------

    def _record_notice(self, notice: IntervalNotice) -> None:
        """Add a notice to this node's knowledge base (no invalidation)."""
        self.observe_lamport(notice.lamport)
        lst = self.known[notice.node]
        if not lst or notice.idx > lst[-1].idx:
            lst.append(notice)
        elif all(existing.idx != notice.idx for existing in lst):
            lst.append(notice)
            lst.sort(key=lambda n: n.idx)

    def _unseen_for(self, vc: list[int]) -> list[IntervalNotice]:
        """Every known notice with an index beyond ``vc``."""
        out = []
        for origin, lst in self.known.items():
            horizon = vc[origin]
            for notice in lst:
                if notice.idx > horizon:
                    out.append(notice)
        return out

    def _absorb(self, notices: list[IntervalNotice], vc: Optional[list[int]] = None) -> None:
        """Apply invalidations + record knowledge + advance vector clock."""
        for notice in notices:
            self._record_notice(notice)
        self.apply_notices(notices)
        for notice in notices:
            self.vc.advance(notice.node, notice.idx)
        if vc is not None:
            self.vc.merge(vc)

    def _publish_own_interval(self) -> Generator:
        """End the interval; record the notice under our own knowledge."""
        notice = yield from self.end_interval()
        if notice is not None:
            self.known[self.node.id].append(notice)
            self.vc.advance(self.node.id, notice.idx)
        return notice

    def _unshipped_for_manager(self, manager: int) -> list[IntervalNotice]:
        """Knowledge not yet shipped to ``manager`` (keeps causality chains)."""
        horizon = self._shipped.setdefault(manager, [0] * self.nprocs)
        out = self._unseen_for(horizon)
        for notice in out:
            if notice.idx > horizon[notice.node]:
                horizon[notice.node] = notice.idx
        return out

    # -- lock client API ------------------------------------------------------------

    def lock_manager(self, lock_id: int) -> int:
        return lock_id % self.nprocs

    def acquire_lock(self, lock_id: int) -> Generator:
        """Acquire a global lock (``yield from``)."""
        t0 = self.node.sim.now
        tracer = self.node.sim.tracer
        if tracer is not None:
            tracer.begin(
                self.node.id, "app", "acquire-wait", f"lock {lock_id}",
                t0, {"lock": lock_id},
            )
        manager = self.lock_manager(lock_id)
        if manager == self.node.id:
            state = self._lock_state(lock_id)
            if state.held_by is None:
                state.held_by = self.node.id
                # manager's own knowledge is local: apply anything unseen
                self._absorb(self._unseen_for(self.vc.copy()))
            else:
                evt = Event(self.node.sim)
                self._grant_events[lock_id] = evt
                state.queue.append(self.node.id)
                payload = yield evt.wait()
                self._absorb(payload["notices"], payload["vc"])
        else:
            self.stats.count_acquire_msg()
            evt = Event(self.node.sim)
            self._grant_events[lock_id] = evt
            yield from self.node.send_reliable(
                manager,
                MessageKind.LOCK_ACQUIRE,
                {"lock": lock_id, "vc": self.vc.copy(), "node": self.node.id},
                size=CTRL_MSG_BYTES + self.vc.wire_size,
            )
            payload = yield evt.wait()
            yield from self.node.compute(NOTICE_PROC_COST * len(payload["notices"]))
            self._absorb(payload["notices"], payload["vc"])
        oracle = self.node.sim.oracle
        if oracle is not None:
            oracle.acquire(self.node.sim.now, self.node.id, "lock", lock_id, "w")
        if tracer is not None:
            tracer.end(self.node.id, "app", "acquire-wait", self.node.sim.now)
        self.stats.add_acquire_time(self.node.sim.now - t0)
        metrics = self.node.sim.metrics
        if metrics is not None:
            metrics.observe(
                "acquire_wait_seconds", self.node.sim.now - t0, lock=lock_id
            )

    def release_lock(self, lock_id: int) -> Generator:
        """Release a global lock (``yield from``)."""
        yield from self._publish_own_interval()
        oracle = self.node.sim.oracle
        if oracle is not None:
            oracle.release(self.node.sim.now, self.node.id, "lock", lock_id, "w")
        manager = self.lock_manager(lock_id)
        if manager == self.node.id:
            self._manager_release(lock_id)
        else:
            notices = self._unshipped_for_manager(manager)
            yield from self.node.send_reliable(
                manager,
                MessageKind.LOCK_FORWARD,
                {
                    "lock": lock_id,
                    "vc": self.vc.copy(),
                    "notices": notices,
                    "node": self.node.id,
                },
                size=CTRL_MSG_BYTES + self.vc.wire_size + notices_wire_size(notices),
            )

    # -- lock manager side -------------------------------------------------------------

    def _lock_state(self, lock_id: int) -> _LockState:
        state = self._locks.get(lock_id)
        if state is None:
            state = _LockState()
            self._locks[lock_id] = state
        return state

    def _grant_to(self, lock_id: int, waiter: "Message | int") -> None:
        """Manager grants the lock to a queued waiter."""
        state = self._lock_state(lock_id)
        if isinstance(waiter, int):
            # local (manager's own) waiter
            state.held_by = waiter
            evt = self._grant_events.pop(lock_id)
            tracer = self.node.sim.tracer
            if tracer is not None:
                tracer.wake(self.node.id, self.node.sim.now)
            evt.set({"notices": self._unseen_for(self.vc.copy()), "vc": self.vc.copy()})
            return
        acq_vc = waiter.payload["vc"]
        notices = self._unseen_for(acq_vc)
        state.held_by = waiter.payload["node"]
        grant = {"lock": lock_id, "notices": notices, "vc": self.vc.copy()}
        size = CTRL_MSG_BYTES + self.vc.wire_size + notices_wire_size(notices)
        self.node.sim.spawn(
            self.node.send_reliable(waiter.payload["node"], MessageKind.LOCK_GRANT, grant, size),
            name=f"grant-{self.node.id}-{lock_id}",
        )

    def _handle_lock_acquire(self, msg: Message) -> Generator:
        yield from self.node.compute(HANDLER_BASE_COST)
        state = self._lock_state(msg.payload["lock"])
        if state.held_by is None:
            self._grant_to(msg.payload["lock"], msg)
        else:
            state.queue.append(msg)

    def _handle_lock_release_msg(self, msg: Message) -> Generator:
        notices = msg.payload["notices"]
        yield from self.node.compute(HANDLER_BASE_COST + NOTICE_PROC_COST * len(notices))
        # manager records the shipped knowledge (lazily applied at its own
        # next acquire/barrier; recording alone does not invalidate)
        for notice in notices:
            self._record_notice(notice)
        self._manager_release(msg.payload["lock"])

    def _manager_release(self, lock_id: int) -> None:
        state = self._lock_state(lock_id)
        state.held_by = None
        if state.queue:
            self._grant_to(lock_id, state.queue.pop(0))

    def _handle_lock_grant(self, msg: Message) -> Generator:
        yield from self.node.compute(
            HANDLER_BASE_COST + NOTICE_PROC_COST * len(msg.payload["notices"])
        )
        evt = self._grant_events.pop(msg.payload["lock"])
        tracer = self.node.sim.tracer
        if tracer is not None:
            tracer.wake(self.node.id, self.node.sim.now)
        evt.set(msg.payload)

    # -- consistency-maintaining barrier --------------------------------------------------

    BARRIER_MANAGER = 0

    def barrier(self, bid: int = 0) -> Generator:
        """Global barrier with centralised consistency maintenance."""
        t0 = self.node.sim.now
        tracer = self.node.sim.tracer
        if tracer is not None:
            tracer.begin(
                self.node.id, "app", "barrier-wait", f"barrier {bid}", t0, {"bid": bid}
            )
        yield from self._publish_own_interval()
        gen = self._barrier_gen
        self._barrier_gen += 1
        oracle = self.node.sim.oracle
        if oracle is not None:
            oracle.barrier_arrive(self.node.sim.now, self.node.id, gen)
        evt = Event(self.node.sim)
        self._barrier_events[gen] = evt
        if self.node.id == self.BARRIER_MANAGER:
            self._manager_note_arrival(
                {"node": self.node.id, "vc": self.vc.copy(), "notices": [], "gen": gen}
            )
        else:
            notices = self._unshipped_for_manager(self.BARRIER_MANAGER)
            yield from self.node.send_reliable(
                self.BARRIER_MANAGER,
                MessageKind.BARRIER_ARRIVE,
                {"node": self.node.id, "vc": self.vc.copy(), "notices": notices, "gen": gen},
                size=CTRL_MSG_BYTES + self.vc.wire_size + notices_wire_size(notices),
            )
        payload = yield evt.wait()
        yield from self.node.compute(NOTICE_PROC_COST * len(payload["notices"]))
        self._absorb(payload["notices"], payload["vc"])
        if oracle is not None:
            oracle.barrier_exit(self.node.sim.now, self.node.id, gen)
        if tracer is not None:
            tracer.end(self.node.id, "app", "barrier-wait", self.node.sim.now)
        self.stats.add_barrier_time(self.node.sim.now - t0)
        metrics = self.node.sim.metrics
        if metrics is not None:
            metrics.observe(
                "barrier_wait_seconds", self.node.sim.now - t0, node=self.node.id
            )

    def _handle_barrier_arrive(self, msg: Message) -> Generator:
        assert self.node.id == self.BARRIER_MANAGER
        notices = msg.payload["notices"]
        # the manager's serial dispatcher pays per-notice processing: this is
        # the centralisation cost the paper measures
        yield from self.node.compute(HANDLER_BASE_COST + NOTICE_PROC_COST * len(notices))
        self._manager_note_arrival(msg.payload)

    def _manager_note_arrival(self, payload: dict) -> None:
        for notice in payload["notices"]:
            self._record_notice(notice)
        self._barrier_arrivals.append(payload)
        metrics = self.node.sim.metrics
        if metrics is not None:
            # record-only arrival timestamps for the per-epoch skew metric
            self._barrier_arrival_t.append(self.node.sim.now)
        if len(self._barrier_arrivals) == self.nprocs:
            arrivals, self._barrier_arrivals = self._barrier_arrivals, []
            self.stats.count_barrier_episode()
            if metrics is not None:
                ts, self._barrier_arrival_t = self._barrier_arrival_t, []
                metrics.observe("barrier_skew_seconds", max(ts) - min(ts))
                metrics.inc("barrier_episodes")
            merged_vc = self.vc.copy()
            for arrival in arrivals:
                for i, x in enumerate(arrival["vc"]):
                    if x > merged_vc[i]:
                        merged_vc[i] = x
            for origin, lst in self.known.items():
                for notice in lst:
                    if notice.idx > merged_vc[origin]:
                        merged_vc[origin] = notice.idx
            for arrival in arrivals:
                release = {
                    "notices": self._unseen_for(arrival["vc"]),
                    "vc": merged_vc,
                    "gen": arrival["gen"],
                }
                if arrival["node"] == self.node.id:
                    evt = self._barrier_events.pop(arrival["gen"])
                    tracer = self.node.sim.tracer
                    if tracer is not None:
                        tracer.wake(self.node.id, self.node.sim.now)
                    evt.set(release)
                else:
                    size = (
                        CTRL_MSG_BYTES
                        + 4 * len(merged_vc)
                        + notices_wire_size(release["notices"])
                    )
                    self.node.sim.spawn(
                        self.node.send_reliable(
                            arrival["node"], MessageKind.BARRIER_RELEASE, release, size
                        ),
                        name=f"barrier-release-{arrival['node']}",
                    )

    def _handle_barrier_release(self, msg: Message) -> Generator:
        yield from self.node.compute(HANDLER_BASE_COST)
        evt = self._barrier_events.pop(msg.payload["gen"])
        tracer = self.node.sim.tracer
        if tracer is not None:
            tracer.wake(self.node.id, self.node.sim.now)
        evt.set(msg.payload)
