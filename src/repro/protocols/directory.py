"""Global page-location hints.

Real DSM systems assign every page a *static manager* at initialisation time
(TreadMarks: pages are distributed round-robin; the manager always knows a
node holding a valid base copy).  We model that metadata as a zero-cost global
directory: it carries **routing hints only** (who first materialised a page,
who wrote it last) and never any page content — content always moves through
accounted network messages.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["PageDirectory"]


class PageDirectory:
    """Shared (simulation-global) page metadata."""

    def __init__(self) -> None:
        self._origin: dict[int, int] = {}
        self._last_writer: dict[int, int] = {}

    def claim_origin(self, pid: int, node: int) -> None:
        """Record the first node to materialise ``pid`` (idempotent)."""
        self._origin.setdefault(pid, node)

    def origin(self, pid: int) -> Optional[int]:
        return self._origin.get(pid)

    def note_writer(self, pid: int, node: int) -> None:
        self._last_writer[pid] = node

    def fetch_source(self, pid: int, asker: int) -> Optional[int]:
        """Best node to fetch a full base copy of ``pid`` from (not ``asker``)."""
        src = self._last_writer.get(pid)
        if src is not None and src != asker:
            return src
        src = self._origin.get(pid)
        if src is not None and src != asker:
            return src
        return None

    def has_any_copy(self, pid: int) -> bool:
        return pid in self._origin
