"""Global page-location hints.

Real DSM systems assign every page a *static manager* at initialisation time
(TreadMarks: pages are distributed round-robin; the manager always knows a
node holding a valid base copy).  We model that metadata as a zero-cost global
directory: it carries **routing hints only** (who first materialised a page,
who wrote it last) and never any page content — content always moves through
accounted network messages.

The directory is *versioned*: every claim and write note carries the acting
node and time, and every read filters through the visibility rule of
:mod:`repro.protocols.versioned` — a node sees another node's mutation only
once it is at least one network lookahead old.  That makes reads a pure
function of ``(reader, time)`` and the mutation log, which is what lets the
partitioned (PDES) driver replicate the directory per partition (shipping
mutations at window boundaries) and still produce bit-identical runs.
"""

from __future__ import annotations

from typing import Optional

from repro.protocols.versioned import VersionedOracle

__all__ = ["PageDirectory"]


class PageDirectory:
    """Shared page metadata, read under the lookahead-visibility rule."""

    def __init__(self, lookahead: float = 0.0) -> None:
        self._origins = VersionedOracle(lookahead)  # pid -> creation claims
        self._writers = VersionedOracle(lookahead)  # pid -> write notes

    def claim_origin(self, pid: int, node: int, t: float) -> None:
        """Record that ``node`` materialised ``pid`` at ``t`` (idempotent).

        Within one lookahead window two nodes can both zero-fill the same
        page without seeing each other; both claims are kept and readers
        deterministically pick the earliest visible one.
        """
        if self._origins.has_record(pid, node):
            return
        self._origins.record(pid, t, node)

    def origin(self, pid: int, asker: int, t: float) -> Optional[int]:
        """First visible creator of ``pid``, or None."""
        entry = self._origins.earliest(pid, asker, t)
        return entry[1] if entry is not None else None

    def origin_any(self, pid: int) -> Optional[int]:
        """First creator of ``pid`` with **instantaneous** visibility.

        HLRC's home assignment needs every node to agree on a page's home the
        moment it exists: a writer that wrongly believes itself home skips
        the eager diff push and the true home deadlocks waiting for it.  The
        price of agreement is that this read is only meaningful serially —
        the PDES driver refuses ``hlrc_d`` (a partitioned replica lacks other
        partitions' in-window claims).
        """
        entries = self._origins.all_entries(pid)
        return min(entries, key=lambda e: (e[0], e[1]))[1] if entries else None

    def note_writer(self, pid: int, node: int, t: float) -> None:
        self._writers.record(pid, t, node)

    def fetch_source(self, pid: int, asker: int, t: float) -> Optional[int]:
        """Best node to fetch a full base copy of ``pid`` from (not ``asker``)."""
        entry = self._writers.latest(pid, asker, t)
        if entry is not None and entry[1] != asker:
            return entry[1]
        entry = self._origins.earliest(pid, asker, t)
        if entry is not None and entry[1] != asker:
            return entry[1]
        return None

    def has_any_copy(self, pid: int, asker: int, t: float) -> bool:
        return bool(self._origins.visible(pid, asker, t))

    # -- PDES delta shipping ----------------------------------------------------

    def capture_deltas(self) -> None:
        self._origins.capture_deltas()
        self._writers.capture_deltas()

    def drain_deltas(self) -> tuple:
        return (self._origins.drain_deltas(), self._writers.drain_deltas())

    def apply_deltas(self, deltas: tuple) -> None:
        origins, writers = deltas
        self._origins.apply_deltas(origins)
        self._writers.apply_deltas(writers)
