"""Run statistics matching the rows of the paper's tables.

Each rank records into its **own** :class:`RunStats` shard (``net=None``);
``DsmSystem.stats`` merges the shards in rank order, attaching the merged
network counters.  Rank-order merging fixes the floating-point summation
order of the time accumulators independently of cross-node event
interleaving, so a partitioned (PDES) run reproduces serial statistics
exactly.  The rows reproduced (Tables 1, 2, 4, 6, 8):

======================  =============================================
Row                     Source
======================  =============================================
Time (Sec.)             final simulated time of the parallel section
Barriers                count of global barrier episodes
Acquires                lock/view acquiring messages sent
Data                    ``NetStats.data_bytes``
Num. Msg                ``NetStats.num_msg``
Diff Requests           diff request messages sent
Barrier Time            mean per-call time spent inside barrier()
Acquire Time            mean per-call time spent inside acquire()
Rexmit                  ``NetStats.rexmit``
======================  =============================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.net.stats import NetStats

__all__ = ["RunStats"]


@dataclass
class RunStats:
    """Protocol + network counters for one run (or one rank's shard)."""

    net: Optional[NetStats] = None
    barriers: int = 0
    acquires: int = 0
    diff_requests: int = 0
    barrier_time_sum: float = 0.0
    barrier_time_n: int = 0
    acquire_time_sum: float = 0.0
    acquire_time_n: int = 0
    time: float = 0.0

    # -- recording -------------------------------------------------------------

    def count_barrier_episode(self) -> None:
        self.barriers += 1

    def count_acquire_msg(self) -> None:
        self.acquires += 1

    def count_diff_request(self) -> None:
        self.diff_requests += 1

    def add_barrier_time(self, seconds: float) -> None:
        self.barrier_time_sum += seconds
        self.barrier_time_n += 1

    def add_acquire_time(self, seconds: float) -> None:
        self.acquire_time_sum += seconds
        self.acquire_time_n += 1

    # -- merging -----------------------------------------------------------------

    @classmethod
    def merged(cls, shards, net: Optional[NetStats] = None) -> "RunStats":
        """Sum per-rank shards (in the order given) into a fresh RunStats."""
        out = cls(net=net)
        for s in shards:
            out.barriers += s.barriers
            out.acquires += s.acquires
            out.diff_requests += s.diff_requests
            out.barrier_time_sum += s.barrier_time_sum
            out.barrier_time_n += s.barrier_time_n
            out.acquire_time_sum += s.acquire_time_sum
            out.acquire_time_n += s.acquire_time_n
        return out

    # -- derived ----------------------------------------------------------------

    @property
    def barrier_time_avg(self) -> float:
        """Mean seconds per barrier call (per node), the paper's row unit is µs."""
        return self.barrier_time_sum / self.barrier_time_n if self.barrier_time_n else 0.0

    @property
    def acquire_time_avg(self) -> float:
        return self.acquire_time_sum / self.acquire_time_n if self.acquire_time_n else 0.0

    def table_row(self) -> dict:
        """The paper's statistics rows, in paper units."""
        return {
            "Time (Sec.)": round(self.time, 3),
            "Barriers": self.barriers,
            "Acquires": self.acquires,
            "Data (MByte)": round(self.net.data_bytes / 1e6, 3),
            "Num. Msg": self.net.num_msg,
            "Diff Requests": self.diff_requests,
            "Barrier Time (usec.)": round(self.barrier_time_avg * 1e6, 1),
            "Acquire Time (usec.)": round(self.acquire_time_avg * 1e6, 1),
            "Rexmit": self.net.rexmit,
        }
