"""HLRC_d: home-based Lazy Release Consistency.

An extension beyond the paper's three systems: the *home-based* LRC variant
its research context compares against (Yu & Huang, "Homeless and Home-based
Lazy Release Consistency Protocols on Distributed Shared Memory"; Zhou et
al.'s original HLRC).  Including it lets the benchmarks place VOPP against
both ends of the LRC design space:

* every page has a **home** node (its first toucher) whose copy is kept
  current: at every interval end, writers eagerly push their diffs to the
  homes (``DIFF_PUSH``, one-way reliable);
* a **fault fetches the full page from its home** — exactly one round trip,
  regardless of how many writers touched the page (the homeless protocol
  needs one diff request per writer and applies chains);
* write notices, vector clocks, locks and the consistency-maintaining
  barrier are inherited unchanged from LRC_d.

The classic trade-off this reproduces: HLRC sends more *eager* data (diffs
travel even when nobody will read them) but repairs faults in one exchange
and never accumulates diff chains; whole-page fetches cost bandwidth when
only a few bytes changed.

Ordering subtlety handled here: a faulting node may learn of an interval
(via barrier/lock notices) before the home received that interval's diff
push.  The page request therefore carries the intervals the requester knows;
the home defers the reply until its ``applied`` record covers them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from repro.memory.page import PageState
from repro.net.message import Message, MessageKind
from repro.protocols.base import CTRL_MSG_BYTES, HANDLER_BASE_COST
from repro.protocols.lrc import LrcProtocol

if TYPE_CHECKING:  # pragma: no cover
    from repro.protocols.system import DsmSystem
    from repro.net.cluster import Node

__all__ = ["HlrcProtocol"]

DIFF_PUSH = MessageKind.MERGE_VIEWS  # reuse a spare kind for the push channel


class HlrcProtocol(LrcProtocol):
    """Per-node home-based LRC instance."""

    name = "hlrc_d"

    # "first_touch": a page's home is whoever materialised it first (simple,
    # but a master-initialised data set makes node 0 home of everything);
    # "round_robin": home = pid % nprocs (spreads the push load)
    home_policy = "first_touch"

    def __init__(self, system: "DsmSystem", node: "Node"):
        super().__init__(system, node)
        # home side: which (writer, interval) diffs have been applied per page
        self._applied: dict[int, set[tuple[int, int]]] = {}
        # remote page requests waiting for outstanding diff pushes
        self._waiting: dict[int, list[Message]] = {}
        # local accesses (we are home) waiting for outstanding diff pushes
        self._home_events: dict[int, list] = {}
        node.register_handler(DIFF_PUSH, self._handle_diff_push)

    # -- home assignment ---------------------------------------------------------

    def home_of(self, pid: int) -> "int | None":
        """The page's home node, or None if the page does not exist yet."""
        if self.home_policy == "round_robin":
            return pid % self.nprocs
        # instantaneous read: all nodes must agree on a page's home from the
        # moment it exists, or eager pushes go astray (serial-only; the PDES
        # driver refuses hlrc_d)
        return self.directory.origin_any(pid)

    # -- writer side: eager diff propagation -----------------------------------------

    def end_interval(self) -> Generator:
        notice = yield from super().end_interval()
        if notice is None:
            return None
        by_home: dict[int, dict[int, list]] = {}
        for pid in notice.pages:
            home = self.home_of(pid)
            if home is None:
                home = self.node.id
            if home == self.node.id:
                # we are the home: our copy is the current one already
                self._applied.setdefault(pid, set()).add((self.node.id, notice.idx))
                continue
            by_home.setdefault(home, {})[pid] = self.diff_store[(pid, notice.idx)]
        for home, pages in by_home.items():
            size = CTRL_MSG_BYTES + sum(
                d.wire_size for diffs in pages.values() for d in diffs
            )
            yield from self.node.send_reliable(
                home,
                DIFF_PUSH,
                {"node": self.node.id, "idx": notice.idx, "pages": pages},
                size=size,
            )
        return notice

    def _handle_diff_push(self, msg: Message) -> Generator:
        yield from self.node.compute(HANDLER_BASE_COST)
        writer = msg.payload["node"]
        idx = msg.payload["idx"]
        oracle = self.node.sim.oracle
        nbytes = 0
        for pid, diffs in msg.payload["pages"].items():
            copy = self.mm.page(pid)
            copy.materialise()
            for diff in diffs:
                from repro.memory.diff import apply_diff

                apply_diff(copy.data, diff)
                nbytes += diff.changed_bytes
            self._applied.setdefault(pid, set()).add((writer, idx))
            if oracle is not None:
                oracle.apply(
                    self.node.sim.now, self.node.id, pid, ((writer, idx),), copy.data
                )
            self._retry_waiting(pid)
        if nbytes:
            yield from self.node.copy_cost(nbytes)

    # -- fault side: whole-page fetch from the home ---------------------------------------

    def _make_one_valid(self, pid: int, lane: str = "app") -> Generator:
        state = self.mm.state(pid)
        if state in (PageState.RO, PageState.RW):
            return
        notices = self.pending.pop(pid, [])
        home = self.home_of(pid)
        if home is None:
            # first touch anywhere: create the page locally and become home
            self.mm.zero_fill(pid)
            self.directory.claim_origin(pid, self.node.id, self.node.sim.now)
            self._applied.setdefault(pid, set())
            oracle = self.node.sim.oracle
            if oracle is not None:
                oracle.zero_fill(
                    self.node.sim.now, self.node.id, pid, self.mm.pages[pid].data
                )
            return
        if home == self.node.id:
            # we are the home: pushes keep our data current, but a push can
            # physically trail the notice that announced it — wait until
            # every interval we know of has been applied
            copy = self.mm.page(pid)
            copy.materialise()
            applied = self._applied.setdefault(pid, set())
            from repro.sim import Event

            while True:
                missing = [n for n in notices if (n.node, n.idx) not in applied]
                if not missing:
                    break
                evt = Event(self.node.sim)
                self._home_events.setdefault(pid, []).append(evt)
                yield evt.wait()
            copy.state = PageState.RO
            return
        need = [(n.node, n.idx) for n in notices]
        reply = yield from self.node.request(
            home,
            MessageKind.PAGE_REQUEST,
            {"pid": pid, "need": need},
            size=CTRL_MSG_BYTES + 8 * len(need),
        )
        yield from self.node.copy_cost(self.system.space.page_size)
        self.mm.install_full_page(pid, reply.payload["content"])
        oracle = self.node.sim.oracle
        if oracle is not None:
            oracle.install(
                self.node.sim.now, self.node.id, pid, home, self.mm.pages[pid].data
            )

    def _handle_page_request(self, msg: Message) -> Generator:
        yield from self.node.compute(HANDLER_BASE_COST)
        pid = msg.payload["pid"]
        need = msg.payload.get("need") or []
        applied = self._applied.setdefault(pid, set())
        missing = [key for key in need if tuple(key) not in applied and key[0] != self.node.id]
        if missing:
            # the diffs this requester knows about have not arrived yet;
            # defer the reply until the pushes land
            self._waiting.setdefault(pid, []).append(msg)
            return
        # under round-robin placement the home may never have touched the
        # page itself: its initial content is zeros plus the applied pushes
        self.mm.page(pid).materialise()
        content = self.mm.snapshot_page(pid)
        self.node.reply_to(
            msg,
            MessageKind.PAGE_REPLY,
            {"content": content},
            size=CTRL_MSG_BYTES + len(content),
        )

    def _retry_waiting(self, pid: int) -> None:
        waiters = self._waiting.pop(pid, [])
        for msg in waiters:
            self.node.sim.spawn(
                self._handle_page_request(msg), name=f"hlrc-retry-{self.node.id}-{pid}"
            )
        tracer = self.node.sim.tracer
        for evt in self._home_events.pop(pid, []):
            if tracer is not None:
                # cause resolves via dispatch context: _retry_waiting runs
                # from the DIFF_PUSH / MERGE_VIEWS handler that made the
                # home copy current
                tracer.wake(self.node.id, self.node.sim.now)
            evt.set()
