"""VC_sd: the optimal VC implementation — diff integration + piggybacking.

Implements the paper's "View Oriented Update Protocol with Integrated Diff"
(reference [5]):

* **single diff per page** — a releaser merges all its interval's diffs of a
  page into one integrated diff before shipping;
* **diff piggybacking** — the view manager keeps a master copy of the view's
  pages; the grant message carries, for every page the acquirer is stale on,
  one diff integrated across *all* releases the acquirer missed (or the full
  page on first touch).  The acquirer is fully updated the moment it enters
  the view: **no page faults, no diff requests, no request/reply round
  trips** (paper Tables 1/2/4/6/8: "Diff Requests = 0").

Compared with VC_d this trades the invalidate protocol for an update
protocol scoped to exactly one view — which is why it can be "optimal": the
view boundary tells the DSM precisely which data the acquirer is about to
use.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional

import numpy as np

from repro.memory.diff import Diff, apply_diff, integrate_diffs
from repro.memory.page import PageState
from repro.protocols.timestamps import IntervalNotice
from repro.protocols.vc import VcProtocol, ViewState

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.message import Message
    from repro.protocols.system import DsmSystem
    from repro.net.cluster import Node

__all__ = ["VcSdProtocol"]

FULL_PAGE_HEADER = 8


class _SdViewStore:
    """Manager-side master copies and per-page diff logs for one view."""

    __slots__ = ("master", "page_log", "node_has")

    def __init__(self) -> None:
        self.master: dict[int, np.ndarray] = {}
        self.page_log: dict[int, list[tuple[int, Diff]]] = {}  # (log pos, diff)
        self.node_has: dict[int, set[int]] = {}


class VcSdProtocol(VcProtocol):
    """Per-node VC_sd instance."""

    name = "vc_sd"

    def __init__(self, system: "DsmSystem", node: "Node"):
        super().__init__(system, node)
        self._sd: dict[int, _SdViewStore] = {}
        # ablation switches (benchmarks flip these; production leaves them on)
        self.integration_enabled = True
        self.piggyback_enabled = True

    def _sd_store(self, view_id: int) -> _SdViewStore:
        store = self._sd.get(view_id)
        if store is None:
            store = _SdViewStore()
            self._sd[view_id] = store
        return store

    # -- releaser side: ship integrated diffs with the release ------------------------

    def _release_extra(self, view_id: int, notice: Optional[IntervalNotice]):
        if notice is None:
            return None, 0
        page_size = self.system.space.page_size
        diffs: dict[int, list[Diff]] = {}
        for pid in notice.pages:
            stored = self.diff_store[(pid, notice.idx)]
            if self.integration_enabled and len(stored) > 1:
                stored = [integrate_diffs(pid, stored, page_size)]
            elif self.integration_enabled:
                stored = list(stored)
            diffs[pid] = stored
        size = sum(d.wire_size for lst in diffs.values() for d in lst)
        return diffs, size

    # -- manager side ------------------------------------------------------------------

    def _manager_apply_release(
        self,
        view_id: int,
        mode: str,
        notice: Optional[IntervalNotice],
        extra,
        local: bool,
    ) -> Generator:
        state = self._view_state(view_id)
        if notice is not None:
            self.observe_lamport(notice.lamport)
            pos = len(state.log)
            state.log.append(notice)
            state.delivered[notice.node] = len(state.log)
            store = self._sd_store(view_id)
            page_size = self.system.space.page_size
            nbytes = 0
            for pid, diffs in extra.items():
                master = store.master.get(pid)
                if master is None:
                    master = np.zeros(page_size, dtype=np.uint8)
                    store.master[pid] = master
                for diff in diffs:
                    apply_diff(master, diff)
                    nbytes += diff.changed_bytes
                log = store.page_log.setdefault(pid, [])
                if self.integration_enabled:
                    merged = (
                        diffs[0]
                        if len(diffs) == 1
                        else integrate_diffs(pid, diffs, page_size)
                    )
                    log.append((pos, merged))
                else:
                    log.extend((pos, diff) for diff in diffs)
                store.node_has.setdefault(notice.node, set()).add(pid)
            if nbytes:
                yield from self.node.copy_cost(nbytes)
        return None

    def _grant_payload(self, state: ViewState, node_id: int, notices: list, pos: int) -> tuple:
        if not self.piggyback_enabled:
            # ablation: grants revert to notice-only (VC_d invalidate protocol)
            return super()._grant_payload(state, node_id, notices, pos)
        store = self._sd_store(state.view_id)
        has = store.node_has.setdefault(node_id, set())
        full_pages: dict[int, bytes] = {}
        diffs: dict[int, list[Diff]] = {}
        page_size = self.system.space.page_size
        bound = self.system.views.pages_of(
            state.view_id, self.node.id, self.node.sim.now
        )
        for pid in bound:
            master = store.master.get(pid)
            if master is None:
                continue  # bound page with no content yet (cannot happen in practice)
            if pid not in has:
                full_pages[pid] = master.tobytes()
                has.add(pid)
                continue
            entries = [d for (p, d) in store.page_log.get(pid, ()) if p >= pos]
            if not entries:
                continue
            if self.integration_enabled and len(entries) > 1:
                diffs[pid] = [integrate_diffs(pid, entries, page_size)]
            else:
                diffs[pid] = entries
        return (state.view_id, notices, full_pages, diffs)

    def _grant_size(self, payload: tuple) -> int:
        if len(payload) == 2:  # notice-only grant (piggybacking ablated off)
            return super()._grant_size(payload)
        return (
            sum(FULL_PAGE_HEADER + len(c) for c in payload[2].values())
            + sum(d.wire_size for lst in payload[3].values() for d in lst)
        )

    # -- acquirer side: grant updates everything, no invalidations ----------------------

    def _apply_grant(self, view_id: int, payload: tuple) -> Generator:
        if len(payload) == 2:
            # ablation fallback: notice-based invalidation (VC_d path)
            yield from super()._apply_grant(view_id, payload)
            return None
        _view, grant_notices, full_pages, grant_diffs = payload
        for notice in grant_notices:
            self.observe_lamport(notice.lamport)
        nbytes = 0
        for pid, content in full_pages.items():
            self.mm.install_full_page(pid, content)
            nbytes += len(content)
        for pid, diff_list in grant_diffs.items():
            copy = self.mm.pages.get(pid)
            if copy is None or copy.data is None:
                raise RuntimeError(
                    f"node {self.node.id}: grant diff for page {pid} but no base copy"
                )
            for diff in diff_list:
                apply_diff(copy.data, diff)
                nbytes += diff.changed_bytes
            copy.state = PageState.RO
        oracle = self.node.sim.oracle
        if oracle is not None:
            # recorded even when both maps are empty: the checker tracks the
            # acquirer's piggyback delivery horizon from these events
            pages = self.mm.pages
            oracle.update(
                self.node.sim.now, self.node.id, view_id,
                ((pid, pages[pid].data) for pid in sorted(full_pages)),
                ((pid, pages[pid].data) for pid in sorted(grant_diffs)),
            )
        metrics = self.node.sim.metrics
        if metrics is not None and nbytes:
            metrics.inc("piggyback_bytes", nbytes, view=view_id)
        if nbytes:
            yield from self.node.copy_cost(nbytes)
        return None
