"""VC_d: View-based Consistency with the LRC diff/invalidate machinery.

Views are acquired through a **per-view manager** (``view_id % nprocs``), so
consistency maintenance is *distributed* across the cluster instead of
centralised at a barrier manager.  The grant message carries only the write
notices of *that view's* past intervals that the acquirer hasn't received;
the acquirer invalidates those pages and pulls diffs from their writers on
fault — the same invalidate protocol as LRC_d (hence "same implementation
techniques", paper §5).

Barriers are **synchronisation only**: a tiny arrive/release exchange with
node 0, no notices, no consistency processing — the second defining
difference from LRC_d (paper §3.3: "Barriers in VOPP simply synchronize the
processors without any consistency maintenance").

View discipline is enforced where a simulator can see it: writes require a
held exclusive view, pages may only ever bind to one view
(:class:`ViewOverlapError` otherwise), and a read-only (Rview) holder must
not write.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional

from repro.net.message import Message, MessageKind
from repro.protocols.base import (
    CTRL_MSG_BYTES,
    HANDLER_BASE_COST,
    NOTICE_PROC_COST,
    BaseDsmProtocol,
    ViewOverlapError,
    VoppDisciplineError,
)
from repro.protocols.timestamps import IntervalNotice, notices_wire_size
from repro.sim import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.protocols.system import DsmSystem
    from repro.net.cluster import Node

__all__ = ["VcProtocol", "ViewState"]


class ViewState:
    """Manager-side state of one view."""

    __slots__ = ("view_id", "writer", "readers", "queue", "log", "delivered")

    def __init__(self, view_id: int):
        self.view_id = view_id
        self.writer: Optional[int] = None  # node holding exclusively
        self.readers: set[int] = set()  # nodes holding read-only
        self.queue: list[tuple[int, str, Optional[Message]]] = []  # (node, mode, msg)
        self.log: list[IntervalNotice] = []  # release history, in order
        self.delivered: dict[int, int] = {}  # node -> log position delivered

    def grantable(self, mode: str) -> bool:
        if self.writer is not None:
            return False
        if mode == "w":
            return not self.readers
        return True  # readers may share


class VcProtocol(BaseDsmProtocol):
    """Per-node VC_d instance."""

    name = "vc_d"

    def __init__(self, system: "DsmSystem", node: "Node"):
        super().__init__(system, node)
        self._views: dict[int, ViewState] = {}  # manager-side
        self._grant_events: dict[int, Event] = {}
        self.held_excl: Optional[int] = None
        self.held_r: list[int] = []
        # barrier client/manager state (sync-only barrier at node 0)
        self._barrier_arrivals: list[tuple[int, int]] = []  # (node, gen)
        self._barrier_arrival_t: list[float] = []  # metrics-only skew samples
        self._barrier_events: dict[int, Event] = {}
        self._barrier_gen = 0
        node.register_handler(MessageKind.VIEW_ACQUIRE, self._handle_view_acquire)
        node.register_handler(MessageKind.VIEW_GRANT, self._handle_view_grant)
        node.register_handler(MessageKind.VIEW_RELEASE, self._handle_view_release)
        node.register_handler(MessageKind.BARRIER_ARRIVE, self._handle_barrier_arrive)
        node.register_handler(MessageKind.BARRIER_RELEASE, self._handle_barrier_release)

    # -- access discipline --------------------------------------------------------------

    def check_write_allowed(self, pids: list[int]) -> None:
        if self.held_excl is None:
            raise VoppDisciplineError(
                f"node {self.node.id}: write to shared memory without holding an "
                "exclusive view (VOPP requires acquire_view before writes)"
            )
        views = self.system.views
        now = self.node.sim.now
        for pid in pids:
            bound = views.view_of(pid, self.node.id, now)
            if bound is not None and bound != self.held_excl:
                raise ViewOverlapError(
                    f"node {self.node.id}: page {pid} belongs to view {bound} but "
                    f"is written under view {self.held_excl} (views must not overlap)"
                )

    def check_read_allowed(self, pids: list[int]) -> None:
        held = set(self.held_r)
        if self.held_excl is not None:
            held.add(self.held_excl)
        if not held:
            raise VoppDisciplineError(
                f"node {self.node.id}: read of shared memory without holding any view"
            )
        views = self.system.views
        now = self.node.sim.now
        for pid in pids:
            bound = views.view_of(pid, self.node.id, now)
            if bound is not None and bound not in held:
                raise VoppDisciplineError(
                    f"node {self.node.id}: page {pid} belongs to view {bound}, which "
                    f"is not held (held: excl={self.held_excl}, r={self.held_r})"
                )

    # -- client API -----------------------------------------------------------------------

    def view_manager(self, view_id: int) -> int:
        return self.system.view_manager(view_id)

    def acquire_view(self, view_id: int) -> Generator:
        """Exclusive acquire (``yield from``); VOPP forbids nesting these."""
        if self.held_excl is not None:
            raise VoppDisciplineError(
                f"node {self.node.id}: acquire_view({view_id}) while holding view "
                f"{self.held_excl} (acquire_view must not be nested)"
            )
        yield from self._acquire(view_id, "w")
        self.held_excl = view_id

    def acquire_rview(self, view_id: int) -> Generator:
        """Read-only acquire (``yield from``); nestable."""
        yield from self._acquire(view_id, "r")
        self.held_r.append(view_id)

    def _acquire(self, view_id: int, mode: str) -> Generator:
        t0 = self.node.sim.now
        tracer = self.node.sim.tracer
        if tracer is not None:
            tracer.begin(
                self.node.id, "app", "acquire-wait", f"view {view_id} ({mode})",
                t0, {"view": view_id, "mode": mode},
            )
        manager = self.view_manager(view_id)
        evt = Event(self.node.sim)
        self._grant_events[view_id] = evt
        if manager == self.node.id:
            self._manager_acquire(view_id, mode, self.node.id, None)
        else:
            self.stats.count_acquire_msg()
            yield from self.node.send_reliable(
                manager,
                MessageKind.VIEW_ACQUIRE,
                (view_id, mode, self.node.id),
                size=CTRL_MSG_BYTES,
            )
        payload = yield evt.wait()
        yield from self._apply_grant(view_id, payload)
        oracle = self.node.sim.oracle
        if oracle is not None:
            oracle.acquire(self.node.sim.now, self.node.id, "view", view_id, mode)
        if tracer is not None:
            tracer.end(self.node.id, "app", "acquire-wait", self.node.sim.now)
        self.stats.add_acquire_time(self.node.sim.now - t0)
        metrics = self.node.sim.metrics
        if metrics is not None:
            metrics.observe(
                "acquire_wait_seconds",
                self.node.sim.now - t0,
                view=view_id,
                mode=mode,
            )
        self.system.trace(
            kind="acquire",
            node=self.node.id,
            view=view_id,
            mode=mode,
            wait=self.node.sim.now - t0,
            t=self.node.sim.now,
        )

    def _apply_grant(self, view_id: int, payload: tuple) -> Generator:
        notices = payload[1]
        yield from self.node.compute(NOTICE_PROC_COST * len(notices))
        self.apply_notices(notices)
        return None

    def release_view(self, view_id: int) -> Generator:
        """Release an exclusive view (``yield from``)."""
        if self.held_excl != view_id:
            raise VoppDisciplineError(
                f"node {self.node.id}: release_view({view_id}) but holding "
                f"{self.held_excl}"
            )
        notice = yield from self.end_interval()
        if notice is not None:
            self._bind_pages(view_id, notice.pages)
        oracle = self.node.sim.oracle
        if oracle is not None:
            oracle.release(self.node.sim.now, self.node.id, "view", view_id, "w")
        self.held_excl = None
        yield from self._send_release(view_id, "w", notice)

    def release_rview(self, view_id: int) -> Generator:
        """Release a read-only view (``yield from``)."""
        if view_id not in self.held_r:
            raise VoppDisciplineError(
                f"node {self.node.id}: release_rview({view_id}) not held"
            )
        if self.mm.write_set and self.held_excl is None:
            raise VoppDisciplineError(
                f"node {self.node.id}: wrote shared data while holding only "
                f"read views ({sorted(self.mm.write_set)})"
            )
        self.held_r.remove(view_id)
        oracle = self.node.sim.oracle
        if oracle is not None:
            oracle.release(self.node.sim.now, self.node.id, "view", view_id, "r")
        yield from self._send_release(view_id, "r", None)

    def _send_release(self, view_id: int, mode: str, notice: Optional[IntervalNotice]) -> Generator:
        manager = self.view_manager(view_id)
        extra_payload, extra_size = self._release_extra(view_id, notice)
        if manager == self.node.id:
            yield from self._manager_apply_release(view_id, mode, notice, extra_payload, local=True)
            self._manager_release(view_id, mode, self.node.id)
        else:
            size = CTRL_MSG_BYTES + (notice.wire_size if notice else 0) + extra_size
            yield from self.node.send_reliable(
                manager,
                MessageKind.VIEW_RELEASE,
                (view_id, mode, self.node.id, notice, extra_payload),
                size=size,
            )

    def _release_extra(self, view_id: int, notice: Optional[IntervalNotice]):
        """Hook for VC_sd: attach integrated diffs to the release. VC_d: none."""
        return None, 0

    def _bind_pages(self, view_id: int, pages: tuple[int, ...]) -> None:
        views = self.system.views
        now = self.node.sim.now
        for pid in pages:
            views.bind(pid, view_id, self.node.id, now)

    # -- manager side ---------------------------------------------------------------------

    def _view_state(self, view_id: int) -> ViewState:
        state = self._views.get(view_id)
        if state is None:
            state = ViewState(view_id)
            self._views[view_id] = state
        return state

    def _manager_acquire(
        self, view_id: int, mode: str, node_id: int, msg: Optional[Message]
    ) -> None:
        state = self._view_state(view_id)
        if state.grantable(mode) and not (mode == "r" and self._writer_waiting(state)):
            self._grant(state, mode, node_id)
        else:
            state.queue.append((node_id, mode, msg))

    @staticmethod
    def _writer_waiting(state: ViewState) -> bool:
        """Readers don't overtake queued writers (prevents writer starvation)."""
        return any(m == "w" for _, m, _ in state.queue)

    def _grant(self, state: ViewState, mode: str, node_id: int) -> None:
        if mode == "w":
            state.writer = node_id
        else:
            state.readers.add(node_id)
        pos = state.delivered.get(node_id, 0)
        notices = state.log[pos:]
        state.delivered[node_id] = len(state.log)
        payload = self._grant_payload(state, node_id, notices, pos)
        self.system.trace(
            kind="grant",
            node=node_id,
            view=state.view_id,
            mode=mode,
            size=self._grant_size(payload),
            t=self.node.sim.now,
        )
        if node_id == self.node.id:
            evt = self._grant_events.pop(state.view_id)
            tracer = self.node.sim.tracer
            if tracer is not None:
                tracer.wake(self.node.id, self.node.sim.now)
            evt.set(payload)
        else:
            kind = MessageKind.VIEW_GRANT if mode == "w" else MessageKind.RVIEW_GRANT
            size = CTRL_MSG_BYTES + self._grant_size(payload)
            self.node.sim.spawn(
                self.node.send_reliable(node_id, MessageKind.VIEW_GRANT, payload, size),
                name=f"view-grant-{state.view_id}-{node_id}",
            )

    def _grant_payload(self, state: ViewState, node_id: int, notices: list, pos: int) -> tuple:
        """Hook for VC_sd (appends piggybacked full pages + diffs).

        Grant payloads are tuples, not dicts — one is built per grant on the
        protocol's hottest path.  VC_d grants are ``(view, notices)``; VC_sd
        piggyback grants are ``(view, notices, full_pages, diffs)``
        (discriminated by length).
        """
        return (state.view_id, notices)

    def _grant_size(self, payload: tuple) -> int:
        return notices_wire_size(payload[1])

    def _manager_release(self, view_id: int, mode: str, node_id: int) -> None:
        state = self._view_state(view_id)
        if mode == "w":
            if state.writer != node_id:
                raise RuntimeError(
                    f"view {view_id}: release from {node_id} but writer is {state.writer}"
                )
            state.writer = None
        else:
            state.readers.discard(node_id)
        self._grant_waiters(state)

    def _grant_waiters(self, state: ViewState) -> None:
        while state.queue:
            node_id, mode, _msg = state.queue[0]
            if not state.grantable(mode):
                break
            state.queue.pop(0)
            self._grant(state, mode, node_id)
            if mode == "w":
                break

    def _manager_apply_release(
        self,
        view_id: int,
        mode: str,
        notice: Optional[IntervalNotice],
        extra,
        local: bool,
    ) -> Generator:
        """Record a release's notice in the view log (VC_sd also applies diffs)."""
        state = self._view_state(view_id)
        if notice is not None:
            self.observe_lamport(notice.lamport)
            state.log.append(notice)
            state.delivered[notice.node] = len(state.log)
        return
        yield  # pragma: no cover

    # -- message handlers --------------------------------------------------------------------

    def _handle_view_acquire(self, msg: Message) -> Generator:
        yield from self.node.compute(HANDLER_BASE_COST)
        view_id, mode, node_id = msg.payload
        self._manager_acquire(view_id, mode, node_id, msg)

    def _handle_view_grant(self, msg: Message) -> Generator:
        yield from self.node.compute(HANDLER_BASE_COST)
        evt = self._grant_events.pop(msg.payload[0])
        tracer = self.node.sim.tracer
        if tracer is not None:
            tracer.wake(self.node.id, self.node.sim.now)
        evt.set(msg.payload)

    def _handle_view_release(self, msg: Message) -> Generator:
        yield from self.node.compute(HANDLER_BASE_COST)
        view_id, mode, node_id, notice, extra = msg.payload
        yield from self._manager_apply_release(view_id, mode, notice, extra, local=False)
        self._manager_release(view_id, mode, node_id)

    # -- synchronisation-only barrier ------------------------------------------------------------

    BARRIER_MANAGER = 0

    def barrier(self, bid: int = 0) -> Generator:
        """Barrier with no consistency action (VOPP semantics)."""
        t0 = self.node.sim.now
        tracer = self.node.sim.tracer
        if tracer is not None:
            tracer.begin(
                self.node.id, "app", "barrier-wait", f"barrier {bid}", t0, {"bid": bid}
            )
        gen = self._barrier_gen
        self._barrier_gen += 1
        oracle = self.node.sim.oracle
        if oracle is not None:
            oracle.barrier_arrive(self.node.sim.now, self.node.id, gen)
        evt = Event(self.node.sim)
        self._barrier_events[gen] = evt
        if self.node.id == self.BARRIER_MANAGER:
            self._manager_note_arrival((self.node.id, gen))
        else:
            yield from self.node.send_reliable(
                self.BARRIER_MANAGER,
                MessageKind.BARRIER_ARRIVE,
                (self.node.id, gen),
                size=CTRL_MSG_BYTES,
            )
        yield evt.wait()
        if oracle is not None:
            oracle.barrier_exit(self.node.sim.now, self.node.id, gen)
        if tracer is not None:
            tracer.end(self.node.id, "app", "barrier-wait", self.node.sim.now)
        self.stats.add_barrier_time(self.node.sim.now - t0)
        metrics = self.node.sim.metrics
        if metrics is not None:
            metrics.observe(
                "barrier_wait_seconds", self.node.sim.now - t0, node=self.node.id
            )

    def _handle_barrier_arrive(self, msg: Message) -> Generator:
        assert self.node.id == self.BARRIER_MANAGER
        yield from self.node.compute(HANDLER_BASE_COST)
        self._manager_note_arrival(msg.payload)

    def _manager_note_arrival(self, payload: tuple) -> None:
        self._barrier_arrivals.append(payload)
        metrics = self.node.sim.metrics
        if metrics is not None:
            # record-only arrival timestamps for the per-epoch skew metric
            self._barrier_arrival_t.append(self.node.sim.now)
        if len(self._barrier_arrivals) == self.nprocs:
            arrivals, self._barrier_arrivals = self._barrier_arrivals, []
            self.stats.count_barrier_episode()
            if metrics is not None:
                ts, self._barrier_arrival_t = self._barrier_arrival_t, []
                metrics.observe("barrier_skew_seconds", max(ts) - min(ts))
                metrics.inc("barrier_episodes")
            tracer = self.node.sim.tracer
            for node_id, gen in arrivals:
                if node_id == self.node.id:
                    if tracer is not None:
                        tracer.wake(self.node.id, self.node.sim.now)
                    self._barrier_events.pop(gen).set(None)
                else:
                    self.node.sim.spawn(
                        self.node.send_reliable(
                            node_id,
                            MessageKind.BARRIER_RELEASE,
                            gen,
                            size=CTRL_MSG_BYTES,
                        ),
                        name=f"vc-barrier-release-{node_id}",
                    )

    def _handle_barrier_release(self, msg: Message) -> Generator:
        yield from self.node.compute(HANDLER_BASE_COST)
        tracer = self.node.sim.tracer
        if tracer is not None:
            tracer.wake(self.node.id, self.node.sim.now)
        self._barrier_events.pop(msg.payload).set(None)
