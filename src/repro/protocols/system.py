"""DsmSystem: one simulated DSM deployment (cluster + protocol instances).

Composes everything below the programming-model layer: the simulator, the
cluster/network, the shared address space, the page directory, per-node
protocol instances, and the run statistics.  The VOPP runtime and the
traditional lock/barrier runtime (:mod:`repro.core`) sit on top.
"""

from __future__ import annotations

from typing import Optional, Type

from repro.memory.address_space import AddressSpace
from repro.net.cluster import Cluster
from repro.net.config import NetConfig, NodeConfig
from repro.protocols.base import BaseDsmProtocol
from repro.protocols.directory import PageDirectory
from repro.protocols.runstats import RunStats
from repro.protocols.versioned import ViewRegistry

__all__ = ["DsmSystem"]


class DsmSystem:
    """A cluster running one DSM protocol.

    Parameters
    ----------
    nprocs:
        Number of nodes (= application processes; one process per node, as in
        the paper's experiments).
    protocol:
        Protocol class (``LrcProtocol``, ``VcProtocol``, ``VcSdProtocol``) or
        one of the names ``"lrc_d"``, ``"vc_d"``, ``"vc_sd"``.
    """

    def __init__(
        self,
        nprocs: int,
        protocol: "Type[BaseDsmProtocol] | str" = "lrc_d",
        netcfg: Optional[NetConfig] = None,
        nodecfg: Optional[NodeConfig] = None,
        page_size: Optional[int] = None,
        manager_offset: int = 0,
        sim=None,
    ):
        if isinstance(protocol, str):
            from repro.protocols import PROTOCOLS

            try:
                protocol = PROTOCOLS[protocol]
            except KeyError:
                raise ValueError(
                    f"unknown protocol {protocol!r}; expected one of "
                    f"{sorted(PROTOCOLS)}"
                ) from None
        self.protocol_cls = protocol
        self.cluster = Cluster(nprocs, netcfg=netcfg, nodecfg=nodecfg, sim=sim)
        if page_size is None:
            page_size = self.cluster.nodecfg.page_size
        self.space = AddressSpace(page_size=page_size)
        # shared oracles (directory + view metadata) read through the
        # lookahead-visibility rule, so serial and partitioned runs see
        # identical metadata (see repro.protocols.versioned)
        lam = self.cluster.netcfg.switch_latency
        self.directory = PageDirectory(lookahead=lam)
        # view metadata shared across nodes (discovered dynamically; a real
        # implementation distributes this through the view managers — here it
        # is zero-cost routing metadata, like the page directory)
        self.views = ViewRegistry(lookahead=lam)
        # per-rank statistics shards; merged on demand by the stats property
        self._rank_stats = [RunStats() for _ in range(nprocs)]
        self.run_time = 0.0
        # manager placement: 0 co-locates view v's manager with node v%n
        # (per-processor views get owner-local managers); the ablation
        # benches shift it to measure the cost of remote managers
        self.manager_offset = manager_offset
        # optional view tracer (repro.tools.tracer.ViewTracer)
        self.tracer = None
        self.protocols: list[BaseDsmProtocol] = [
            protocol(self, node) for node in self.cluster.nodes
        ]

    @property
    def stats(self) -> RunStats:
        """Run statistics: the per-rank shards merged in rank order, with the
        merged network counters attached.  A fresh snapshot per access —
        record into ``stats_for(rank)``, not into this."""
        merged = RunStats.merged(self._rank_stats, net=self.cluster.stats)
        merged.time = self.run_time
        return merged

    def stats_for(self, rank: int) -> RunStats:
        """The mutable statistics shard of one rank."""
        return self._rank_stats[rank]

    @property
    def nprocs(self) -> int:
        return self.cluster.n

    @property
    def sim(self):
        return self.cluster.sim

    def trace(self, **event) -> None:
        """Forward a protocol event to the installed tracer, if any."""
        if self.tracer is not None:
            self.tracer.record(**event)

    def view_manager(self, view_id: int) -> int:
        """Static manager assignment distributes view traffic over nodes."""
        return (view_id + self.manager_offset) % self.nprocs

    def alloc(self, name: str, size: int, page_aligned: bool = False):
        return self.space.alloc(name, size, page_aligned=page_aligned)

    def run(self, until: Optional[float] = None) -> float:
        final = self.cluster.run(until=until)
        self.run_time = final
        return final
