"""Shared protocol machinery: intervals, diff store, fault handling.

Every protocol instance lives on one node and implements the
:class:`repro.memory.manager.FaultHandler` interface.  The base class
provides what LRC_d and VC_d share verbatim (the paper: "V C_d ... uses the
same implementation techniques (e.g. the invalidation protocol) as the
LRC_d"):

* interval bookkeeping — ending an interval diffs all written pages against
  their twins and publishes an :class:`IntervalNotice`;
* the **invalidate protocol** — applying a notice invalidates the named
  pages; the faulting access later pulls diffs from the writers
  (``DIFF_REQUEST``/``DIFF_REPLY``) and applies them in Lamport order;
* first-touch handling — a fault on a page nobody holds zero-fills locally;
  a fault on a page someone else created fetches a full base copy
  (``PAGE_REQUEST``/``PAGE_REPLY``) before applying pending diffs.

VC_sd overrides the fault path: its grants piggyback integrated diffs, so it
never sends diff requests.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Iterable, Optional

from repro.memory.diff import Diff
from repro.memory.manager import MemoryManager
from repro.memory.page import PageState
from repro.net.message import Message, MessageKind
from repro.protocols.timestamps import IntervalNotice
from repro.sim import Timeout

# shared zero-delay hop effect (stateless: apply() only reads it)
_HOP = Timeout(0)

if TYPE_CHECKING:  # pragma: no cover
    from repro.protocols.system import DsmSystem
    from repro.net.cluster import Node

__all__ = ["BaseDsmProtocol", "VoppDisciplineError", "ViewOverlapError"]

# fixed CPU cost of running one protocol handler (dispatch, lookups)
HANDLER_BASE_COST = 5e-6
# CPU cost of processing one write-notice record
NOTICE_PROC_COST = 1e-6
# wire overhead of small control messages
CTRL_MSG_BYTES = 16


class VoppDisciplineError(RuntimeError):
    """A VOPP program accessed shared data outside the required view."""


class ViewOverlapError(RuntimeError):
    """Two views were found to contain the same page (views must not overlap)."""


class BaseDsmProtocol:
    """Per-node protocol instance (see module docstring)."""

    name = "base"

    def __init__(self, system: "DsmSystem", node: "Node"):
        self.system = system
        self.node = node
        self.mm = MemoryManager(node, system.space)
        self.mm.fault_handler = self
        self.stats = system.stats_for(node.id)
        self.directory = system.directory
        # interval machinery
        self.interval_seq = 0  # index of the last *completed* own interval
        self.lamport = 0  # scalar clock, max over everything seen
        self.diff_store: dict[tuple[int, int], list[Diff]] = {}  # (pid, idx) -> diffs
        self._early_flush: dict[int, list[Diff]] = {}  # current interval's flushes
        # invalidation bookkeeping
        self.pending: dict[int, list[IntervalNotice]] = {}  # pid -> unapplied notices
        self.seen_keys: set[tuple[int, int]] = set()  # applied (node, idx)
        self._register_handlers()

    # -- wiring ---------------------------------------------------------------

    def _register_handlers(self) -> None:
        self.node.register_handler(MessageKind.DIFF_REQUEST, self._handle_diff_request)
        self.node.register_handler(MessageKind.PAGE_REQUEST, self._handle_page_request)

    @property
    def nprocs(self) -> int:
        return self.system.nprocs

    def peer(self, i: int) -> "BaseDsmProtocol":
        return self.system.protocols[i]

    # -- interval lifecycle -----------------------------------------------------

    def end_interval(self) -> Generator:
        """Close the current interval (``yield from``).

        Diffs every written page against its twin (charging the scan cost),
        stores the diffs locally for later diff requests, and returns the
        :class:`IntervalNotice` — or ``None`` if nothing was written.
        """
        dirty_pages = len(self.mm.write_set)
        if dirty_pages:
            # diffing scans each written page against its twin
            yield from self.node.copy_cost(dirty_pages * self.system.space.page_size)
        end_diffs = self.mm.end_interval()
        pages: dict[int, list[Diff]] = {}
        for pid, flushed in self._early_flush.items():
            pages.setdefault(pid, []).extend(flushed)
        self._early_flush = {}
        for pid, diff in end_diffs.items():
            pages.setdefault(pid, []).append(diff)
        if not pages:
            return None
        self.interval_seq += 1
        self.lamport += 1
        idx = self.interval_seq
        now = self.node.sim.now
        for pid, diffs in pages.items():
            self.diff_store[(pid, idx)] = diffs
            self.directory.note_writer(pid, self.node.id, now)
        notice = IntervalNotice(
            node=self.node.id,
            idx=idx,
            lamport=self.lamport,
            pages=tuple(sorted(pages)),
        )
        oracle = self.node.sim.oracle
        if oracle is not None:
            oracle.interval(now, self.node.id, idx, notice.pages)
        return notice

    # -- notice handling -----------------------------------------------------------

    def observe_lamport(self, stamp: int) -> None:
        if stamp > self.lamport:
            self.lamport = stamp

    def apply_notices(self, notices: Iterable[IntervalNotice]) -> None:
        """Invalidate pages named by unseen notices and queue them as pending."""
        for notice in notices:
            self.observe_lamport(notice.lamport)
            if notice.node == self.node.id:
                continue
            key = notice.key()
            if key in self.seen_keys:
                continue
            self.seen_keys.add(key)
            for pid in notice.pages:
                self.pending.setdefault(pid, []).append(notice)
                self._invalidate_page(pid)

    def _invalidate_page(self, pid: int) -> None:
        copy = self.mm.pages.get(pid)
        if copy is None or copy.state is PageState.NO_COPY:
            return
        if copy.state is PageState.RW:
            # our own modifications must survive the invalidation: flush them
            # as an early diff of the current interval (TreadMarks does the
            # same when a write notice hits a twinned page)
            diff = self.mm.flush_page(pid)
            if diff is not None:
                self._early_flush.setdefault(pid, []).append(diff)
        self.mm.invalidate([pid])

    # -- fault handling (invalidate protocol: LRC_d and VC_d) ------------------------

    def read_fault(self, pids: list[int]) -> Generator:
        self.check_read_allowed(pids)
        tracer = self.node.sim.tracer
        if tracer is None:
            yield from self._make_valid(pids)
            return
        tracer.begin(
            self.node.id, "app", "page-fault", f"read fault x{len(pids)}",
            self.node.sim.now, {"pages": list(pids), "mode": "read"},
        )
        yield from self._make_valid(pids)
        tracer.end(self.node.id, "app", "page-fault", self.node.sim.now)

    def write_fault(self, pids: list[int]) -> Generator:
        self.check_write_allowed(pids)
        tracer = self.node.sim.tracer
        if tracer is not None:
            tracer.begin(
                self.node.id, "app", "page-fault", f"write fault x{len(pids)}",
                self.node.sim.now, {"pages": list(pids), "mode": "write"},
            )
        yield from self._make_valid(pids)
        for pid in pids:
            copy = self.mm.page(pid)
            if copy.state is not PageState.RW:
                # twin creation copies the page
                yield from self.node.copy_cost(self.system.space.page_size)
                self.mm.start_writing(pid)
                self.directory.claim_origin(pid, self.node.id, self.node.sim.now)
        if tracer is not None:
            tracer.end(self.node.id, "app", "page-fault", self.node.sim.now)

    def check_read_allowed(self, pids: list[int]) -> None:
        """Protocol-specific access discipline hook (VC enforces views)."""

    def check_write_allowed(self, pids: list[int]) -> None:
        """Protocol-specific access discipline hook (VC enforces views)."""

    def _make_valid(self, pids: list[int]) -> Generator:
        """Bring every page in ``pids`` to a readable state.

        Pages of one block access are fetched **concurrently** (the block
        read/write API knows all faulting pages up front, like a block
        transfer); their replies can therefore burst into this node — which
        is exactly how centralised consumers (the LRC barrier manager reading
        everyone's data) congest their receive buffer.
        """
        faulting = [
            pid for pid in pids if self.mm.state(pid) in (PageState.NO_COPY, PageState.INVALID)
        ]
        if not faulting:
            return
        if len(faulting) == 1:
            # inline fetch runs on the faulting process's own ("app") timeline
            yield from self._make_one_valid(faulting[0], "app")
            return
        fetchers = [
            self.node.sim.spawn(
                self._make_one_valid(pid, f"fetch-{pid}"),
                name=f"fault-{self.node.id}-{pid}",
            )
            for pid in faulting
        ]
        yield from self.node.sim.all_of(fetchers)

    def _make_one_valid(self, pid: int, lane: str = "app") -> Generator:
        if self.mm.state(pid) is PageState.NO_COPY:
            yield from self._fetch_base_copy(pid)
        yield from self._fetch_pending_diffs(pid, lane)

    def _fetch_base_copy(self, pid: int) -> Generator:
        """First touch: zero-fill if nobody has the page, else fetch it."""
        now = self.node.sim.now
        src = self.directory.fetch_source(pid, self.node.id, now)
        if src is None:
            self.mm.zero_fill(pid)
            self.directory.claim_origin(pid, self.node.id, now)
            oracle = self.node.sim.oracle
            if oracle is not None:
                oracle.zero_fill(now, self.node.id, pid, self.mm.pages[pid].data)
            return
        reply = yield from self.node.request(
            src, MessageKind.PAGE_REQUEST, pid, size=CTRL_MSG_BYTES
        )
        yield from self.node.copy_cost(self.system.space.page_size)
        self.mm.install_full_page(pid, reply.payload)
        oracle = self.node.sim.oracle
        if oracle is not None:
            oracle.install(self.node.sim.now, self.node.id, pid, src, self.mm.pages[pid].data)

    # when a page's pending diff chain from a single writer exceeds this many
    # intervals, fetch the full page instead (TreadMarks' diff-accumulation
    # heuristic); only safe for single-writer chains — a multi-writer page
    # still needs its diffs merged
    FULL_PAGE_FETCH_THRESHOLD = 4

    def _fetch_pending_diffs(self, pid: int, lane: str = "app") -> Generator:
        """Pull and apply every pending diff for ``pid`` (in Lamport order)."""
        notices = self.pending.pop(pid, [])
        if not notices:
            copy = self.mm.pages.get(pid)
            if copy is not None and copy.state is PageState.INVALID:
                copy.state = PageState.RO
            return
        tracer = self.node.sim.tracer
        if tracer is None:
            yield from self._pull_diffs(pid, notices)
            return
        tracer.begin(
            self.node.id, lane, "diff-wait", f"page {pid}",
            self.node.sim.now, {"page": pid, "notices": len(notices)},
        )
        try:
            yield from self._pull_diffs(pid, notices)
        finally:
            tracer.end(self.node.id, lane, "diff-wait", self.node.sim.now)

    def _pull_diffs(self, pid: int, notices: list[IntervalNotice]) -> Generator:
        by_writer: dict[int, list[int]] = {}
        for notice in notices:
            by_writer.setdefault(notice.node, []).append(notice.idx)
        if len(by_writer) == 1:
            (writer,) = by_writer
            if writer != self.node.id and len(by_writer[writer]) > self.FULL_PAGE_FETCH_THRESHOLD:
                reply = yield from self.node.request(
                    writer, MessageKind.PAGE_REQUEST, pid, size=CTRL_MSG_BYTES
                )
                yield from self.node.copy_cost(self.system.space.page_size)
                self.mm.install_full_page(pid, reply.payload)
                oracle = self.node.sim.oracle
                if oracle is not None:
                    oracle.install(
                        self.node.sim.now, self.node.id, pid, writer,
                        self.mm.pages[pid].data,
                    )
                return
        # fetch from all writers concurrently (TreadMarks issues parallel
        # diff requests), then apply in Lamport order.  The overwhelmingly
        # common single-writer case runs inline instead of through a spawned
        # fetcher process; the two Timeout(0) hops stand in for the spawn
        # hand-off and the join wake-up so the engine's event order (and with
        # it every same-instant tie-break) is unchanged.
        if len(by_writer) == 1:
            ((writer, idxs),) = by_writer.items()
            yield _HOP
            reply = yield from self._request_diffs(writer, pid, sorted(idxs))
            yield _HOP
            replies = [reply]
        else:
            fetchers = []
            for writer, idxs in sorted(by_writer.items()):
                fetchers.append(
                    self.node.sim.spawn(
                        self._request_diffs(writer, pid, sorted(idxs)),
                        name=f"difffetch-{self.node.id}-{pid}-{writer}",
                    )
                )
            replies = yield from self.node.sim.all_of(fetchers)
        if len(by_writer) == 1:
            # one writer's intervals are already in its Lamport order
            diffs_by_idx = replies[0]
            ordered = [d for idx in sorted(diffs_by_idx) for d in diffs_by_idx[idx]]
        else:
            collected: list[tuple[tuple[int, int], Diff]] = []
            for (writer, idxs), diffs_by_idx in zip(sorted(by_writer.items()), replies):
                lamport_of = {n.idx: n.lamport for n in notices if n.node == writer}
                for idx, diffs in diffs_by_idx.items():
                    for k, diff in enumerate(diffs):
                        collected.append(((lamport_of[idx], writer, k), diff))
            collected.sort(key=lambda item: item[0])
            ordered = [diff for _, diff in collected]
        nbytes = sum(d.changed_bytes for d in ordered)
        metrics = self.node.sim.metrics
        if metrics is not None:
            metrics.inc("diff_bytes", nbytes, page=pid)
        if nbytes:
            yield from self.node.copy_cost(nbytes)
        self.mm.apply_diffs(pid, ordered)
        oracle = self.node.sim.oracle
        if oracle is not None:
            oracle.apply(
                self.node.sim.now, self.node.id, pid,
                tuple(sorted(n.key() for n in notices)),
                self.mm.pages[pid].data,
            )

    def _request_diffs(self, writer: int, pid: int, idxs: list[int]) -> Generator:
        """RPC one writer for its diffs of ``pid`` at intervals ``idxs``."""
        self.stats.count_diff_request()
        metrics = self.node.sim.metrics
        if metrics is not None:
            metrics.inc("diff_requests", 1, page=pid, writer=writer)
        reply = yield from self.node.request(
            writer,
            MessageKind.DIFF_REQUEST,
            (pid, idxs),
            size=CTRL_MSG_BYTES + 4 * len(idxs),
        )
        return reply.payload

    # -- remote handlers ---------------------------------------------------------------

    def _handle_diff_request(self, msg: Message) -> Generator:
        yield from self.node.compute(HANDLER_BASE_COST)
        pid, idxs = msg.payload
        diffs_by_idx: dict[int, list[Diff]] = {}
        size = CTRL_MSG_BYTES
        for idx in idxs:
            diffs = self.diff_store.get((pid, idx))
            if diffs is None:
                raise RuntimeError(
                    f"node {self.node.id}: no stored diff for page {pid} "
                    f"interval {idx} (requested by node {msg.src})"
                )
            diffs_by_idx[idx] = diffs
            size += sum(d.wire_size for d in diffs)
        self.node.reply_to(msg, MessageKind.DIFF_REPLY, diffs_by_idx, size)

    def _handle_page_request(self, msg: Message) -> Generator:
        yield from self.node.compute(HANDLER_BASE_COST)
        content = self.mm.snapshot_page(msg.payload)
        self.node.reply_to(
            msg,
            MessageKind.PAGE_REPLY,
            content,
            size=CTRL_MSG_BYTES + len(content),
        )

    # -- synchronisation API (implemented by subclasses) ------------------------------

    def barrier(self, bid: int = 0) -> Generator:  # pragma: no cover - abstract
        raise NotImplementedError

    def finish(self) -> Generator:
        """Hook run by the program runner when a worker finishes (no-op)."""
        return
        yield  # pragma: no cover
