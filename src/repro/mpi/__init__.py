"""Simulated message-passing library (the paper's MPICH baseline).

Runs over the same cluster/network model as the DSM protocols, so the NN
MPI-vs-VOPP comparison (paper Table 9) is apples-to-apples: identical link
rate, latencies, software overheads and loss behaviour — only the
programming model and its message pattern differ.
"""

from repro.mpi.comm import MpiComm, MpiSystem

__all__ = ["MpiComm", "MpiSystem"]
