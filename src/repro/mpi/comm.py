"""MPI-style communicator over the simulated cluster.

Point-to-point ``send``/``recv`` with ``(source, tag)`` matching, plus the
collectives the applications need (``bcast``, ``reduce``, ``allreduce``,
``gather``, ``allgather``, ``scatter``, ``barrier``), implemented with the
binomial-tree algorithms of MPICH's era.  Payloads are numpy arrays (the
accounted size is ``arr.nbytes``) or small picklable objects with an explicit
size.

All calls are generators (``yield from``), like everything else in the
simulator.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Generator, Optional

import numpy as np

from repro.net.cluster import Cluster, Node
from repro.net.config import NetConfig, NodeConfig
from repro.net.message import Message, MessageKind
from repro.sim import Event

__all__ = ["MpiComm", "MpiSystem"]

MPI_HEADER_BYTES = 16


def _payload_size(data: Any, size: Optional[int]) -> int:
    if size is not None:
        return size + MPI_HEADER_BYTES
    if isinstance(data, np.ndarray):
        return int(data.nbytes) + MPI_HEADER_BYTES
    if isinstance(data, (int, float, np.integer, np.floating)):
        return 8 + MPI_HEADER_BYTES
    if isinstance(data, (list, tuple)):
        return sum(_payload_size(item, None) for item in data) + MPI_HEADER_BYTES
    if data is None:
        return MPI_HEADER_BYTES
    raise TypeError(
        f"cannot infer wire size of {type(data).__name__}; pass size= explicitly"
    )


class MpiComm:
    """Per-rank communicator endpoint."""

    def __init__(self, node: Node, size: int):
        self.node = node
        self.rank = node.id
        self.size = size
        self._queues: dict[tuple[int, int], deque] = {}
        self._waiters: dict[tuple[int, int], deque] = {}
        node.register_handler(MessageKind.MPI_DATA, self._on_data)

    # -- point to point -----------------------------------------------------------

    def send(self, data: Any, dest: int, tag: int = 0, size: Optional[int] = None) -> Generator:
        """Blocking-ish send (completes when the transport acks)."""
        if dest == self.rank:
            raise ValueError("MPI self-sends are not supported in the simulator")
        nbytes = _payload_size(data, size)
        yield from self.node.send_reliable(
            dest, MessageKind.MPI_DATA, {"tag": tag, "data": data, "src": self.rank}, nbytes
        )
        return None

    def recv(self, source: int, tag: int = 0) -> Generator:
        """Blocking receive matched on ``(source, tag)``."""
        key = (source, tag)
        queue = self._queues.get(key)
        if queue:
            return queue.popleft()
        evt = Event(self.node.sim)
        self._waiters.setdefault(key, deque()).append(evt)
        tracer = self.node.sim.tracer
        if tracer is None:
            data = yield evt.wait()
            return data
        tracer.begin(
            self.rank, "app", "recv-wait", f"recv {source}:{tag}",
            self.node.sim.now, {"src": source, "tag": tag},
        )
        data = yield evt.wait()
        tracer.end(self.rank, "app", "recv-wait", self.node.sim.now)
        return data

    def _on_data(self, msg: Message) -> Generator:
        key = (msg.payload["src"], msg.payload["tag"])
        waiters = self._waiters.get(key)
        if waiters:
            tracer = self.node.sim.tracer
            if tracer is not None:
                tracer.wake(self.rank, self.node.sim.now)
            waiters.popleft().set(msg.payload["data"])
        else:
            self._queues.setdefault(key, deque()).append(msg.payload["data"])
        return
        yield  # pragma: no cover

    # -- collectives (binomial trees rooted at ``root``) ------------------------------

    def _vrank(self, rank: int, root: int) -> int:
        return (rank - root) % self.size

    def _rrank(self, vrank: int, root: int) -> int:
        return (vrank + root) % self.size

    def bcast(self, data: Any, root: int = 0, tag: int = -1, size: Optional[int] = None) -> Generator:
        """Binomial-tree broadcast; every rank returns the data."""
        v = self._vrank(self.rank, root)
        mask = 1
        while mask < self.size:
            if v & mask:
                parent = self._rrank(v & ~mask, root)
                data = yield from self.recv(parent, tag)
                break
            mask <<= 1
        # forward down the tree: children are v | m for m below our recv bit
        mask >>= 1
        while mask > 0:
            child_v = v | mask
            if child_v != v and child_v < self.size:
                yield from self.send(data, self._rrank(child_v, root), tag, size=size)
            mask >>= 1
        return data

    def reduce(
        self,
        data: np.ndarray,
        op: Callable[[np.ndarray, np.ndarray], np.ndarray] = np.add,
        root: int = 0,
        tag: int = -2,
    ) -> Generator:
        """Binomial-tree reduction; ``root`` returns the result, others None."""
        v = self._vrank(self.rank, root)
        acc = np.asarray(data)
        mask = 1
        while mask < self.size:
            if v & mask:
                parent = self._rrank(v & ~mask, root)
                yield from self.send(acc, parent, tag)
                return None
            peer_v = v | mask
            if peer_v < self.size:
                child = self._rrank(peer_v, root)
                other = yield from self.recv(child, tag)
                acc = op(acc, other)
            mask <<= 1
        return acc

    def allreduce(self, data: np.ndarray, op=np.add, tag: int = -3) -> Generator:
        """reduce-to-0 followed by bcast (the classic MPICH composition)."""
        result = yield from self.reduce(data, op=op, root=0, tag=tag)
        result = yield from self.bcast(result, root=0, tag=tag - 100)
        return result

    def gather(self, data: Any, root: int = 0, tag: int = -4, size: Optional[int] = None) -> Generator:
        """Linear gather; ``root`` returns the rank-ordered list, others None."""
        if self.rank == root:
            out: list[Any] = [None] * self.size
            out[root] = data
            for src in range(self.size):
                if src != root:
                    out[src] = yield from self.recv(src, tag)
            return out
        yield from self.send(data, root, tag, size=size)
        return None

    def allgather(self, data: Any, tag: int = -5, size: Optional[int] = None) -> Generator:
        gathered = yield from self.gather(data, root=0, tag=tag, size=size)
        gathered = yield from self.bcast(gathered, root=0, tag=tag - 100, size=size)
        return gathered

    def scatter(self, chunks: Optional[list], root: int = 0, tag: int = -6, size: Optional[int] = None) -> Generator:
        """Linear scatter of a rank-indexed list from ``root``."""
        if self.rank == root:
            assert chunks is not None and len(chunks) == self.size
            for dst in range(self.size):
                if dst != root:
                    yield from self.send(chunks[dst], dst, tag, size=size)
            return chunks[root]
        data = yield from self.recv(root, tag)
        return data

    def barrier(self, tag: int = -7) -> Generator:
        """Reduce + bcast of an empty token."""
        token = np.zeros(1, dtype=np.int8)
        tracer = self.node.sim.tracer
        if tracer is not None:
            tracer.begin(
                self.rank, "app", "barrier-wait", "mpi barrier",
                self.node.sim.now, {"tag": tag},
            )
        t0 = self.node.sim.now
        yield from self.allreduce(token, op=np.add, tag=tag)
        if tracer is not None:
            tracer.end(self.rank, "app", "barrier-wait", self.node.sim.now)
        metrics = self.node.sim.metrics
        if metrics is not None:
            metrics.observe(
                "barrier_wait_seconds", self.node.sim.now - t0, node=self.rank
            )
        return None

    def compute(self, seconds: float) -> Generator:
        if self.node.sim.tracer is None:
            return self.node.compute(seconds)
        return self._traced_compute(seconds)

    def _traced_compute(self, seconds: float) -> Generator:
        tracer = self.node.sim.tracer
        tracer.begin(
            self.rank, "app", "compute", f"compute {seconds:g}s",
            self.node.sim.now, {"seconds": seconds},
        )
        yield from self.node.compute(seconds)
        tracer.end(self.rank, "app", "compute", self.node.sim.now)


class MpiSystem:
    """A cluster running a message-passing program (no DSM layer)."""

    def __init__(
        self,
        nprocs: int,
        netcfg: Optional[NetConfig] = None,
        nodecfg: Optional[NodeConfig] = None,
        sim=None,
    ):
        self.cluster = Cluster(nprocs, netcfg=netcfg, nodecfg=nodecfg, sim=sim)
        self.comms = [MpiComm(node, nprocs) for node in self.cluster.nodes]
        self.app_output = None  # rank 0 stashes the program read-out here

    @property
    def nprocs(self) -> int:
        return self.cluster.n

    @property
    def stats(self):
        return self.cluster.stats

    def start_program(
        self, body: Callable[..., Generator], *args, ranks=None, **kwargs
    ):
        """Spawn ``body(comm, ...)`` for ``ranks`` (default all) without
        driving the simulation; see :class:`repro.core.program.PendingRun`."""
        from repro.core.program import PendingRun

        start = self.cluster.sim.now
        finish_times: list[float] = []

        def timed(comm: MpiComm) -> Generator:
            tracer = self.cluster.sim.tracer
            if tracer is not None:
                tracer.begin(comm.rank, "app", "run", f"rank {comm.rank}", self.cluster.sim.now)
            result = yield from body(comm, *args, **kwargs)
            if tracer is not None:
                tracer.end(comm.rank, "app", "run", self.cluster.sim.now)
            finish_times.append(self.cluster.sim.now)
            return result

        if ranks is None:
            ranks = range(self.nprocs)
        procs = [
            (rank, self.cluster.sim.spawn(timed(self.comms[rank]), name=f"mpi-{rank}"))
            for rank in ranks
        ]
        return PendingRun(start, procs, finish_times)

    def run_program(self, body: Callable[..., Generator], *args, **kwargs) -> list:
        pending = self.start_program(body, *args, **kwargs)
        self.cluster.run()
        results = pending.finish()
        # measure to the last rank's finish, not to event-heap drain (which
        # includes cancelled retransmission timers)
        self.time = max(pending.finish_times) - pending.start
        return [results[rank] for rank in range(self.nprocs)]
