"""Trace exporters: Chrome trace-event JSON, JSONL, terminal flame summary.

The Chrome trace-event document (``chrome_trace``/``write_chrome_trace``)
loads directly into Perfetto (https://ui.perfetto.dev) or
``chrome://tracing``: each simulated node becomes a process, each lane a
thread, spans render as slices, drops/retransmissions as instants and
``live_processes`` as a counter track.  Timestamps are simulated
microseconds.

Everything here is a pure function of the recorded event list, so for a
deterministic simulation the exported bytes are identical across runs —
``validate_chrome_trace`` is the schema check the CI trace-smoke step runs.
"""

from __future__ import annotations

import json
from typing import IO, Mapping

from repro.obs.tracer import EventTracer

__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "merged_chrome_trace",
    "write_merged_chrome_trace",
    "host_trace_events",
    "iter_jsonl_lines",
    "write_jsonl",
    "flame_summary",
    "validate_chrome_trace",
]

# engine-global events (pid -1) get their own Perfetto "process"
GLOBAL_PID = -1

#: host-clock processes (coordinator, partition workers, sweep pool) occupy
#: pids at and above this base, far away from simulated node ids — the two
#: streams share one Perfetto timeline but are distinct clock domains
#: (simulated μs vs host μs since profile start)
HOST_PID_BASE = 1_000_000

_PHASES = frozenset("BEiCM")


def _events_of(trace: "EventTracer | list") -> list:
    return trace.events if isinstance(trace, EventTracer) else list(trace)


def chrome_trace(trace: "EventTracer | list",
                 process_names: "Mapping[int, str] | None" = None) -> dict:
    """Convert a recorded trace to a Chrome trace-event JSON document.

    ``process_names`` overrides the default ``node-{pid}`` labels — the
    merged host+simulated export uses it to label host-clock processes.
    """
    events = _events_of(trace)
    out: list[dict] = []
    tids: dict[tuple[int, str], int] = {}
    next_tid: dict[int, int] = {}

    def tid_of(pid: int, lane: str) -> int:
        tid = tids.get((pid, lane))
        if tid is None:
            tid = next_tid.get(pid, 0)
            next_tid[pid] = tid + 1
            tids[(pid, lane)] = tid
            out.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": pid,
                    "tid": tid,
                    "ts": 0,
                    "args": {"name": lane},
                }
            )
        return tid

    seen_pids: set[int] = set()
    for ph, t, pid, lane, cat, name, args in events:
        if pid not in seen_pids:
            seen_pids.add(pid)
            if process_names is not None and pid in process_names:
                pname = process_names[pid]
            else:
                pname = "simulator" if pid == GLOBAL_PID else f"node-{pid}"
            out.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": pid,
                    "tid": 0,
                    "ts": 0,
                    "args": {"name": pname},
                }
            )
        tid = tid_of(pid, lane)
        ts = t * 1e6  # simulated seconds -> microseconds
        if ph == "B":
            ev = {"ph": "B", "name": name, "cat": cat, "pid": pid, "tid": tid, "ts": ts}
            if args:
                ev["args"] = args
        elif ph == "E":
            ev = {"ph": "E", "cat": cat, "pid": pid, "tid": tid, "ts": ts}
        elif ph == "i":
            ev = {
                "ph": "i",
                "name": name,
                "cat": cat,
                "pid": pid,
                "tid": tid,
                "ts": ts,
                "s": "t",
            }
            if args:
                ev["args"] = args
        else:  # "C"
            ev = {
                "ph": "C",
                "name": name,
                "pid": pid,
                "tid": tid,
                "ts": ts,
                "args": {"value": args},
            }
        out.append(ev)
    return {"traceEvents": out, "displayTimeUnit": "ms"}


def write_chrome_trace(trace: "EventTracer | list", path: str) -> None:
    doc = chrome_trace(trace)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=None, separators=(",", ":"), sort_keys=False)
        fh.write("\n")


# -- host-clock stream (second Perfetto process group) -----------------------------


def host_trace_events(host, base_pid: int = HOST_PID_BASE,
                      t0: "float | None" = None):
    """Convert a :class:`repro.obs.host.HostProfiler` into tracer tuples.

    Returns ``(events, process_names)``: the same ``(ph, t, pid, lane, cat,
    name, args)`` tuple stream :func:`chrome_trace` consumes, plus the pid →
    ``host:<proc>`` label map.  Each host process gets a pid at or above
    ``base_pid`` (first-appearance order); timestamps are rebased to ``t0``
    (default: the earliest span start) so the host stream starts near zero —
    it shares the Perfetto timeline with the simulated stream but is a
    distinct clock domain.

    Spans within one ``(proc, lane)`` are emitted as properly nested
    ``B``/``E`` pairs; the profiler's instrumentation sites guarantee they
    nest or are disjoint.
    """
    spans = host.spans
    if not spans:
        return [], {}
    if t0 is None:
        t0 = min(s[4] for s in spans)
    pid_of: dict[str, int] = {}
    process_names: dict[int, str] = {}
    lanes: dict[tuple, list] = {}
    for s in spans:
        proc = s[0]
        pid = pid_of.get(proc)
        if pid is None:
            pid = pid_of[proc] = base_pid + len(pid_of)
            process_names[pid] = f"host:{proc}"
        lanes.setdefault((pid, s[1]), []).append(s)
    events: list[tuple] = []
    for (pid, lane), group in lanes.items():
        # outermost-first at equal starts, so enclosing spans open first
        group.sort(key=lambda s: (s[4], -s[5]))
        open_ends: list[float] = []
        for proc, _lane, cat, name, s0, s1, args in group:
            while open_ends and open_ends[-1] <= s0:
                events.append(("E", open_ends.pop() - t0, pid, lane, cat, None, None))
            events.append(("B", s0 - t0, pid, lane, cat, name, args or None))
            open_ends.append(s1)
        while open_ends:
            events.append(("E", open_ends.pop() - t0, pid, lane, "", None, None))
    return events, process_names


def merged_chrome_trace(trace: "EventTracer | list | None", host) -> dict:
    """One Chrome trace document: simulated stream + host-clock stream.

    The simulated events keep their node pids; the host profiler's spans
    appear as additional ``host:*`` processes (pids from
    :data:`HOST_PID_BASE`).  The two streams are distinct clock domains —
    simulated microseconds vs host microseconds since profile start — which
    Perfetto renders side by side on one timeline.  Either side may be
    absent (``trace=None`` exports host-only).
    """
    sim_events = _events_of(trace) if trace is not None else []
    host_events, process_names = host_trace_events(host) if host is not None \
        else ([], {})
    return chrome_trace(sim_events + host_events, process_names=process_names)


def write_merged_chrome_trace(trace: "EventTracer | list | None", host,
                              path: str) -> None:
    doc = merged_chrome_trace(trace, host)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=None, separators=(",", ":"), sort_keys=False)
        fh.write("\n")


def iter_jsonl_lines(trace: "EventTracer | list"):
    """Yield the JSONL export one line at a time (newline included).

    A generator so exporting never materialises a second copy of the event
    list: large partitioned traces stream straight from the tracer's storage
    to the file.
    """
    dumps = json.dumps
    events = trace.events if isinstance(trace, EventTracer) else trace
    for ph, t, pid, lane, cat, name, args in events:
        yield dumps(
            {
                "ph": ph,
                "t": t,
                "pid": pid,
                "lane": lane,
                "cat": cat,
                "name": name,
                "args": args,
            },
            sort_keys=False,
        ) + "\n"


def write_jsonl(trace: "EventTracer | list", fh_or_path: "IO[str] | str") -> None:
    """Flat one-object-per-line event log (easy to grep/pandas).

    Streams incrementally via :func:`iter_jsonl_lines` — memory stays
    bounded by one line regardless of trace size.
    """
    if isinstance(fh_or_path, str):
        with open(fh_or_path, "w") as fh:
            fh.writelines(iter_jsonl_lines(trace))
    else:
        fh_or_path.writelines(iter_jsonl_lines(trace))


def flame_summary(trace: "EventTracer | list", width: int = 40) -> str:
    """Terminal flame-style view: per-category share of total process time."""
    from repro.obs.breakdown import compute_breakdown, format_breakdown

    events = _events_of(trace)
    breakdown = compute_breakdown(events)
    if not breakdown:
        return "trace is empty (no run spans recorded)"
    totals: dict[str, float] = {}
    for row in breakdown.values():
        for cat, sec in row["seconds"].items():
            totals[cat] = totals.get(cat, 0.0) + sec
    grand = sum(totals.values())
    lines = ["Where the time went (all processes)"]
    for cat, sec in sorted(totals.items(), key=lambda kv: -kv[1]):
        share = sec / grand if grand > 0 else 0.0
        bar = "#" * max(1, round(share * width)) if sec > 0 else ""
        lines.append(f"  {cat:<14} {100 * share:5.1f}%  {bar}")
    lines.append("")
    lines.append(format_breakdown(breakdown))
    lines.append("")
    n_spans = sum(1 for ev in events if ev[0] == "B")
    lines.append(f"({len(events)} events, {n_spans} spans)")
    return "\n".join(lines)


def validate_chrome_trace(doc: Mapping) -> dict:
    """Schema-check a Chrome trace-event document; raise ValueError if bad.

    Verifies the envelope, per-event required fields, and that every
    ``B``/``E`` pair balances per ``(pid, tid)`` lane.  Returns a small
    summary dict (event/span/process counts) for smoke-test output.
    """
    if not isinstance(doc, Mapping) or "traceEvents" not in doc:
        raise ValueError("not a Chrome trace: missing 'traceEvents'")
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        raise ValueError("'traceEvents' must be a non-empty list")
    stacks: dict[tuple[int, int], int] = {}
    spans = 0
    pids: set[int] = set()
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            raise ValueError(f"event {i}: not an object")
        ph = ev.get("ph")
        if ph not in _PHASES:
            raise ValueError(f"event {i}: bad phase {ph!r}")
        for key in ("pid", "tid"):
            if not isinstance(ev.get(key), int):
                raise ValueError(f"event {i}: missing/non-int {key!r}")
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            raise ValueError(f"event {i}: bad ts {ts!r}")
        if ph in ("B", "i", "C", "M") and not ev.get("name"):
            raise ValueError(f"event {i}: phase {ph!r} requires a name")
        pids.add(ev["pid"])
        key = (ev["pid"], ev["tid"])
        if ph == "B":
            stacks[key] = stacks.get(key, 0) + 1
            spans += 1
        elif ph == "E":
            depth = stacks.get(key, 0)
            if depth <= 0:
                raise ValueError(f"event {i}: 'E' without open 'B' on {key}")
            stacks[key] = depth - 1
    open_lanes = {k: d for k, d in stacks.items() if d}
    if open_lanes:
        raise ValueError(f"unclosed spans at end of trace: {open_lanes}")
    return {"events": len(events), "spans": spans, "processes": len(pids)}
