"""Per-process time-breakdown attribution.

Answers the question the paper's analysis keeps asking — *where did the time
go?* — by decomposing each application process's simulated run time into the
trace categories.  The input is the event list of an
:class:`repro.obs.tracer.EventTracer`; only ``"app"``-lane span events are
used, because those are the process's own sequential timeline (NIC lanes and
fault-fetcher lanes run concurrently with it and would double-count).

Attribution rule: every instant between a process's ``run`` begin and the
run's *global* end belongs to exactly one category —

* the **innermost open wait span** at that instant (``barrier-wait`` under
  which a ``page-fault`` is open counts as ``page-fault``; a ``diff-wait``
  inside the fault counts as ``diff-wait``), or
* ``compute`` when no wait span is open (explicit application compute spans
  are also attributed here), or
* ``idle`` between this process's own finish and the last process's finish.

Because the rule is a partition of the window, each process's category
seconds sum *exactly* to the run's simulated time and the percentages sum to
100 — the invariant ``tests/obs/test_breakdown.py`` asserts for every
app/protocol cell.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.obs.tracer import COMPUTE, IDLE, RUN

__all__ = ["app_intervals", "compute_breakdown", "format_breakdown"]


def app_intervals(events: Iterable[tuple]) -> dict:
    """Per-process innermost-attributed interval timeline of the run window.

    Returns ``{pid: {"start": s, "end": e, "pieces": [(t0, t1, cat), ...]}}``
    where the pieces are chronological, contiguous and partition
    ``[start, end]`` exactly (zero-length pieces are kept — a category that
    was open for zero simulated time still shows up).  This is the one sweep
    both the time breakdown and the critical-path walker are built on, so
    the two always agree on what every instant of a rank's timeline was.
    """
    # per-pid app-lane span events, preserving simulator order
    per_pid: dict[int, list[tuple[str, float, str]]] = {}
    for ph, t, pid, lane, cat, _name, _args in events:
        if lane == "app" and (ph == "B" or ph == "E"):
            per_pid.setdefault(pid, []).append((ph, t, cat))

    out: dict[int, dict] = {}
    for pid, evs in per_pid.items():
        run_start = run_end = None
        stack: list[str] = []
        pieces: list[tuple[float, float, str]] = []
        cur = 0.0
        for ph, t, cat in evs:
            if cat == RUN:
                if ph == "B":
                    run_start = cur = t
                else:
                    pieces.append((cur, t, stack[-1] if stack else COMPUTE))
                    cur = t
                    run_end = t
                continue
            if run_start is None or run_end is not None:
                continue  # outside the run window (nothing emits there today)
            pieces.append((cur, t, stack[-1] if stack else COMPUTE))
            cur = t
            if ph == "B":
                stack.append(cat)
            elif stack:
                stack.pop()
        if run_start is None:
            continue
        if run_end is None:
            raise ValueError(f"pid {pid}: run span never closed (crashed run?)")
        if stack:
            raise ValueError(f"pid {pid}: unclosed spans at run end: {stack}")
        out[pid] = {"start": run_start, "end": run_end, "pieces": pieces}
    return out


def compute_breakdown(events: Iterable[tuple]) -> dict:
    """Attribute each process's run window to categories.

    Returns ``{pid: {"start": s, "end": e, "total": t, "seconds": {...},
    "percent": {...}}}`` where ``total`` is the whole run's window (identical
    for every pid) and both inner dicts include every category the process
    spent time in (always at least ``compute``).
    """
    sweeps = app_intervals(events)
    if not sweeps:
        return {}
    global_end = max(info["end"] for info in sweeps.values())
    out: dict = {}
    for pid in sorted(sweeps):
        info = sweeps[pid]
        start, end = info["start"], info["end"]
        acc: dict[str, float] = {}
        for t0, t1, cat in info["pieces"]:
            acc[cat] = acc.get(cat, 0.0) + (t1 - t0)
        acc.setdefault(COMPUTE, 0.0)
        if global_end > end:
            acc[IDLE] = global_end - end
        total = global_end - start
        percent = {
            cat: (100.0 * sec / total if total > 0 else 0.0)
            for cat, sec in acc.items()
        }
        out[pid] = {
            "start": start,
            "end": end,
            "total": total,
            "seconds": acc,
            "percent": percent,
        }
    return out


# display order: compute first, then waits by typical interest, idle last
_CATEGORY_ORDER = (
    COMPUTE,
    "barrier-wait",
    "acquire-wait",
    "page-fault",
    "diff-wait",
    "recv-wait",
    IDLE,
)


def _ordered_categories(breakdown: Mapping) -> list[str]:
    present: set[str] = set()
    for row in breakdown.values():
        present.update(row["seconds"])
    ordered = [c for c in _CATEGORY_ORDER if c in present]
    ordered.extend(sorted(present - set(ordered)))
    return ordered


def format_breakdown(breakdown: Mapping, title: str = "Breakdown") -> str:
    """Render the attribution as a per-process percentage table.

    One row per application process, one column per category, each cell the
    percentage of the run's simulated time; a ``mean`` row closes the table.
    Rows sum to 100.0 by construction.
    """
    if not breakdown:
        return f"{title}: no traced processes"
    cats = _ordered_categories(breakdown)
    width = max(12, *(len(c) + 3 for c in cats))
    lines = [title, "-" * len(title)]
    lines.append(f"{'proc':>6}" + "".join(f"{c:>{width}}" for c in cats) + f"{'sum':>8}")
    means = {c: 0.0 for c in cats}
    for pid in sorted(breakdown):
        pct = breakdown[pid]["percent"]
        cells = []
        for c in cats:
            v = pct.get(c, 0.0)
            means[c] += v
            cells.append(f"{v:>{width - 1}.1f}%")
        total_pct = sum(pct.values())
        lines.append(f"{pid:>6}" + "".join(cells) + f"{total_pct:>7.1f}%")
    n = len(breakdown)
    lines.append(
        f"{'mean':>6}"
        + "".join(f"{means[c] / n:>{width - 1}.1f}%" for c in cats)
        + f"{sum(means.values()) / n:>7.1f}%"
    )
    total = next(iter(breakdown.values()))["total"]
    lines.append(f"(percent of the run's simulated time, {total:.6f} s)")
    return "\n".join(lines)
