"""Host-time observatory: wall-clock span profiling of the real work.

Every other observer in :mod:`repro.obs` lives in *simulated* time.  This
one answers the complementary question the PDES scaling work needs: where
does the **host** wall clock go — coordinator barrier waits, frame
encode/decode, pipe I/O, pre-fork setup, per-partition window execution,
sweep-pool queueing?

:class:`HostProfiler` follows the same contract as the tracer:

* **None-default, zero overhead when off.**  Every instrumentation site
  guards with ``if host is not None``; an unprofiled run executes the exact
  pre-observability instruction stream.
* **Observational purity.**  Spans are read from ``time.perf_counter()``
  and recorded in plain Python lists; nothing ever touches the simulator,
  so a profiled run's *simulated* statistics stay bit-identical
  (``tests/obs/test_host.py`` pins this against the committed
  ``BENCH_sweep.json`` fingerprints).

Span model
----------

A span is ``(proc, lane, cat, name, t0, t1, args)``: a host-clock interval
``[t0, t1)`` on a named process (``"main"``, ``"partition-3"``,
``"sweep"``) and lane, with a category that feeds the breakdown.  Spans in
one ``(proc, lane)`` must nest or be disjoint — the Chrome exporter
(:func:`repro.obs.export.merged_chrome_trace`) emits them as ``B``/``E``
pairs on one thread track.  ``perf_counter`` is CLOCK_MONOTONIC-based and
system-wide on Linux, so spans recorded in forked partition workers are
directly comparable to the coordinator's: :meth:`HostProfiler.absorb`
merges a worker's spans (shipped back through the PDES result pipe) into
the coordinator's profiler without any clock translation.

The breakdown (:func:`host_breakdown`) sums each process's categorised
spans against its ``total`` span (or, when none was recorded, the envelope
from first span start to last span end) and charges the unattributed
remainder to ``other`` — so the reported categories always sum *exactly*
to the reported total, and the total is the measured wall time.
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter
from typing import Any, Optional

__all__ = [
    "HostProfiler",
    "TOTAL",
    "host_breakdown",
    "format_host_breakdown",
]

#: the category whose spans define a process's measured wall time
TOTAL = "total"


class HostProfiler:
    """Wall-clock span recorder on the observer (None-default) contract.

    ``proc`` names the process identity new spans are recorded under; a
    worker creates its own profiler (``HostProfiler("partition-2")``) and
    the coordinator ``absorb``s it, so one profiler object can end up
    holding a whole process tree's spans.
    """

    __slots__ = ("proc", "spans", "_open")

    def __init__(self, proc: str = "main") -> None:
        self.proc = proc
        #: completed spans: ``(proc, lane, cat, name, t0, t1, args)``
        self.spans: list[tuple] = []
        self._open: list[tuple] = []

    # -- recording ---------------------------------------------------------------

    def begin(self, lane: str, cat: str, name: Optional[str] = None,
              **args: Any) -> None:
        """Open a span; close it with the matching :meth:`end`."""
        self._open.append((lane, cat, name, perf_counter(), args))

    def end(self) -> None:
        """Close the innermost open span."""
        if not self._open:
            raise RuntimeError("end() without a matching begin()")
        lane, cat, name, t0, args = self._open.pop()
        self.spans.append(
            (self.proc, lane, cat, name or cat, t0, perf_counter(), args)
        )

    @contextmanager
    def span(self, lane: str, cat: str, name: Optional[str] = None,
             **args: Any):
        """``with host.span("run", "route"): ...``"""
        self.begin(lane, cat, name, **args)
        try:
            yield
        finally:
            self.end()

    def add_span(self, lane: str, cat: str, name: str, t0: float, t1: float,
                 proc: Optional[str] = None, **args: Any) -> None:
        """Record a completed interval directly (parent-synthesised spans:
        e.g. the sweep pool's queue-wait, measured from submit to start)."""
        self.spans.append((proc or self.proc, lane, cat, name, t0, t1, args))

    def absorb(self, other: "HostProfiler") -> None:
        """Merge another profiler's spans (same host clock, no translation)."""
        self.spans.extend(other.spans)

    # -- queries -----------------------------------------------------------------

    def procs(self) -> list[str]:
        """Process identities present, in first-appearance order."""
        seen: dict[str, None] = {}
        for s in self.spans:
            seen.setdefault(s[0])
        return list(seen)

    def seconds(self, cat: str, proc: Optional[str] = None) -> float:
        """Total recorded seconds of one category (optionally one process)."""
        return sum(
            s[5] - s[4] for s in self.spans
            if s[2] == cat and (proc is None or s[0] == proc)
        )


# -- breakdown ---------------------------------------------------------------------


def host_breakdown(host: HostProfiler) -> dict:
    """Per-process wall-time attribution whose categories sum to the total.

    Returns ``{proc: {"total": sec, "seconds": {cat: sec}, "other": sec}}``.
    ``total`` is the sum of the process's ``total``-category spans; when a
    process recorded none (e.g. :func:`repro.sim.pdes.run_partitioned`
    called directly, without ``run_app``'s enclosing span), the envelope
    from its first span start to its last span end stands in — either way
    the invariant ``sum(seconds.values()) + other == total`` holds exactly,
    and the test suite pins ``total`` against externally measured wall time.
    """
    out: dict[str, dict] = {}
    for proc, lane, cat, name, t0, t1, args in sorted(
        host.spans, key=lambda s: (s[0], s[4])
    ):
        row = out.get(proc)
        if row is None:
            row = out[proc] = {
                "total": 0.0, "seconds": {}, "other": 0.0,
                "_lo": t0, "_hi": t1, "_has_total": False,
            }
        row["_lo"] = min(row["_lo"], t0)
        row["_hi"] = max(row["_hi"], t1)
        if cat == TOTAL:
            row["total"] += t1 - t0
            row["_has_total"] = True
        else:
            row["seconds"][cat] = row["seconds"].get(cat, 0.0) + (t1 - t0)
    for row in out.values():
        if not row.pop("_has_total"):
            row["total"] = row.pop("_hi") - row.pop("_lo")
        else:
            row.pop("_hi"), row.pop("_lo")
        attributed = sum(row["seconds"].values())
        # categories + other == total by construction; a (tiny, nested-span)
        # over-attribution clamps to zero rather than going negative
        row["other"] = max(row["total"] - attributed, 0.0)
        if attributed > row["total"]:
            row["total"] = attributed
    return out


def format_host_breakdown(breakdown: dict,
                          title: str = "Host-time breakdown") -> str:
    """Terminal table: one block per process, categories summing to total."""
    if not breakdown:
        return f"{title}: no host spans recorded"
    lines = [title, "=" * len(title)]
    for proc in breakdown:
        row = breakdown[proc]
        total = row["total"]
        lines.append(f"{proc}  (wall {total:.4f}s)")
        cats = sorted(row["seconds"].items(), key=lambda kv: -kv[1])
        for cat, sec in cats + [("other", row["other"])]:
            share = sec / total if total > 0 else 0.0
            bar = "#" * max(1, round(share * 30)) if sec > 0 else ""
            lines.append(f"  {cat:<14} {sec:>9.4f}s {100 * share:5.1f}%  {bar}")
    return "\n".join(lines)
