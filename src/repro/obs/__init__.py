"""Structured observability for the simulator: tracing, attribution, export.

The paper explains its tables through *where time goes* — barrier time,
acquire time, diff traffic — so the reproduction carries a first-class
event-tracing layer threaded through the engine, the NIC/transport, the
protocol implementations and the runtimes:

* :class:`EventTracer` records span (begin/end), instant and counter events
  carrying simulated time, node id and a category (``compute``,
  ``barrier-wait``, ``acquire-wait``, ``diff-wait``, ``page-fault``, ``tx``,
  ``rx``);
* :mod:`repro.obs.breakdown` decomposes each application process's simulated
  run time into those categories (the "Breakdown" report sections);
* :mod:`repro.obs.export` renders a trace as Chrome trace-event JSON
  (loadable in Perfetto / ``chrome://tracing``), a flat JSONL event log, or a
  terminal flame-style summary.

Tracing is **opt-in and zero-overhead when off**: every emission site guards
on ``sim.tracer is not None`` (the default), so an untraced run executes the
exact pre-observability instruction stream and stays bit-identical.  When a
tracer *is* installed it only records — it never charges simulated time — so
traced runs produce the same statistics rows as untraced ones, and two
identical traced runs produce byte-identical exports.  See
``docs/observability.md``.
"""

from repro.obs.tracer import (
    ACQUIRE_WAIT,
    BARRIER_WAIT,
    COMPUTE,
    DIFF_WAIT,
    IDLE,
    PAGE_FAULT,
    RECV_WAIT,
    RUN,
    RX,
    TX,
    WAIT_CATEGORIES,
    EventTracer,
)
from repro.obs.breakdown import compute_breakdown, format_breakdown
from repro.obs.export import (
    chrome_trace,
    flame_summary,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)

__all__ = [
    "EventTracer",
    "COMPUTE",
    "BARRIER_WAIT",
    "ACQUIRE_WAIT",
    "DIFF_WAIT",
    "PAGE_FAULT",
    "RECV_WAIT",
    "TX",
    "RX",
    "RUN",
    "IDLE",
    "WAIT_CATEGORIES",
    "compute_breakdown",
    "format_breakdown",
    "chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
    "flame_summary",
    "validate_chrome_trace",
]
