"""Structured observability for the simulator: tracing, attribution, export.

The paper explains its tables through *where time goes* — barrier time,
acquire time, diff traffic — so the reproduction carries a first-class
event-tracing layer threaded through the engine, the NIC/transport, the
protocol implementations and the runtimes:

* :class:`EventTracer` records span (begin/end), instant and counter events
  carrying simulated time, node id and a category (``compute``,
  ``barrier-wait``, ``acquire-wait``, ``diff-wait``, ``page-fault``, ``tx``,
  ``rx``);
* :mod:`repro.obs.breakdown` decomposes each application process's simulated
  run time into those categories (the "Breakdown" report sections);
* :mod:`repro.obs.export` renders a trace as Chrome trace-event JSON
  (loadable in Perfetto / ``chrome://tracing``), a flat JSONL event log, or a
  terminal flame-style summary;
* :mod:`repro.obs.critical_path` walks the causal send/wake edges backwards
  from the last rank's finish to the simulated critical path — the chain of
  segments that actually determined the run's length — with per-category
  attribution and per-wait slack;
* :mod:`repro.obs.metrics` is the contention-metrics registry (counters,
  gauges, histograms keyed by view/page/lock labels) the protocol layers
  feed, rendered as per-view contention tables;
* :mod:`repro.obs.oracle` is the trace-based consistency oracle: an opt-in
  access-history recorder (:class:`AccessRecorder`) plus a checker
  (:func:`check_history`) that machine-verifies recorded read/write
  histories against the protocol family's memory model;
* :mod:`repro.obs.report` compares two bench baselines (files or git
  revisions), tracks N-revision trends (``repro report --trend``) and gates
  CI on regressions;
* :mod:`repro.obs.host` is the host-time observatory: wall-clock span
  profiling (:class:`HostProfiler`) of the PDES coordinator/workers, the
  sweep pool and the perf harness, with a breakdown whose categories sum to
  measured wall time and a merged host+simulated Perfetto export.

Tracing is **opt-in and zero-overhead when off**: every emission site guards
on ``sim.tracer is not None`` (the default), so an untraced run executes the
exact pre-observability instruction stream and stays bit-identical.  When a
tracer *is* installed it only records — it never charges simulated time — so
traced runs produce the same statistics rows as untraced ones, and two
identical traced runs produce byte-identical exports.  See
``docs/observability.md``.
"""

from repro.obs.tracer import (
    ACQUIRE_WAIT,
    BARRIER_WAIT,
    COMPUTE,
    DIFF_WAIT,
    IDLE,
    PAGE_FAULT,
    RECV_WAIT,
    RUN,
    RX,
    TX,
    WAIT_CATEGORIES,
    EventTracer,
)
from repro.obs.breakdown import app_intervals, compute_breakdown, format_breakdown
from repro.obs.critical_path import (
    CriticalPath,
    Segment,
    WaitSlack,
    compute_critical_path,
    format_critical_path,
)
from repro.obs.export import (
    chrome_trace,
    flame_summary,
    host_trace_events,
    iter_jsonl_lines,
    merged_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
    write_merged_chrome_trace,
)
from repro.obs.host import (
    HostProfiler,
    format_host_breakdown,
    host_breakdown,
)
from repro.obs.metrics import Histogram, Metrics, format_contention
from repro.obs.oracle import (
    EXIT_CONSISTENCY,
    AccessRecorder,
    Finding,
    OracleReport,
    check_history,
    format_oracle_report,
    page_digest,
)
from repro.obs.report import (
    DEFAULT_THROUGHPUT_TOLERANCE,
    GATE_EXACT,
    GATE_INFO,
    GATE_THROUGHPUT,
    Comparison,
    MetricDelta,
    Trend,
    TrendSeries,
    compare_reports,
    compute_trend,
    format_html,
    format_report,
    format_trend,
    format_trend_html,
    load_report,
)

__all__ = [
    "EventTracer",
    "COMPUTE",
    "BARRIER_WAIT",
    "ACQUIRE_WAIT",
    "DIFF_WAIT",
    "PAGE_FAULT",
    "RECV_WAIT",
    "TX",
    "RX",
    "RUN",
    "IDLE",
    "WAIT_CATEGORIES",
    "app_intervals",
    "compute_breakdown",
    "format_breakdown",
    "chrome_trace",
    "write_chrome_trace",
    "merged_chrome_trace",
    "write_merged_chrome_trace",
    "host_trace_events",
    "iter_jsonl_lines",
    "write_jsonl",
    "flame_summary",
    "validate_chrome_trace",
    "HostProfiler",
    "host_breakdown",
    "format_host_breakdown",
    "AccessRecorder",
    "OracleReport",
    "Finding",
    "check_history",
    "format_oracle_report",
    "page_digest",
    "EXIT_CONSISTENCY",
    "CriticalPath",
    "Segment",
    "WaitSlack",
    "compute_critical_path",
    "format_critical_path",
    "Histogram",
    "Metrics",
    "format_contention",
    "Comparison",
    "DEFAULT_THROUGHPUT_TOLERANCE",
    "MetricDelta",
    "compare_reports",
    "load_report",
    "format_report",
    "format_html",
    "Trend",
    "TrendSeries",
    "compute_trend",
    "format_trend",
    "format_trend_html",
    "GATE_EXACT",
    "GATE_THROUGHPUT",
    "GATE_INFO",
]
