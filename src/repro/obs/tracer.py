"""The event tracer: categories, the event tuple, and the recording API.

Design constraints, in order of importance:

1. **Zero overhead when disabled.**  There is no null-object tracer on the
   hot paths: the simulator's ``tracer`` attribute is simply ``None`` by
   default and every emission site guards with ``if tracer is not None``.
   The engine's event loop itself is never instrumented — only operation
   boundaries (faults, acquires, barriers, NIC frames, process lifecycle)
   are, so the per-event cost of tracing-off is literally nothing.
2. **Observational purity.**  Recording never charges simulated time,
   schedules events, or perturbs any tie-break, so a traced run's simulated
   statistics are bit-identical to an untraced run's.
3. **Determinism.**  Events are appended in simulator execution order, which
   is deterministic; two identical runs produce identical event lists (and
   therefore byte-identical exports).

Event representation
--------------------

Events are plain tuples (allocation-light, trivially picklable)::

    (ph, t, pid, lane, cat, name, args)

``ph`` is the phase, borrowed from the Chrome trace-event format: ``"B"``
(span begin), ``"E"`` (span end), ``"i"`` (instant), ``"C"`` (counter).
``t`` is simulated seconds.  ``pid`` is the node id (``-1`` for
engine-global events).  ``lane`` names the execution context within the node
— ``"app"`` for the application process, ``"nic-tx"``/``"nic-rx"`` for the
NIC sides, ``"dispatch"`` for the node's serial message-handler daemon,
``"fetch-*"`` for concurrent fault fetchers — and maps to a Perfetto thread.
Spans on one lane are properly nested (each lane is a sequential context),
which is what makes both the Chrome ``B``/``E`` encoding and the stack-based
time attribution in :mod:`repro.obs.breakdown` exact.  ``args`` is an
optional dict of JSON-serialisable details.

Causal edges
------------

Alongside the flat event list the tracer records the **causal graph** the
critical-path analysis (:mod:`repro.obs.critical_path`) walks:

* ``sends[msg_id] = (src, t, kind)`` — one entry per *logical* message send
  (recorded at the transport's three entry points; retransmissions reuse the
  original edge, so wire segments naturally absorb retransmission delay);
* ``wakes = [(pid, t, cause_msg_id), ...]`` — a blocked process on ``pid``
  was resumed at ``t`` because message ``cause_msg_id`` was delivered.

Wake sites inside protocol message handlers call :meth:`wake` without an
explicit cause: the dispatcher brackets every handler with
:meth:`begin_dispatch`/:meth:`end_dispatch`, so the tracer knows which
message a node is currently handling and attributes the wake to it.  A wake
with no known cause (a purely local ``Event.set``) records nothing — the
walker then stays on the same rank, which is the right causal answer.

Causal edges live *outside* ``events`` so every exporter and the
``validate_chrome_trace`` schema are unchanged by their presence.
"""

from __future__ import annotations

from typing import Any, Optional

__all__ = [
    "EventTracer",
    "COMPUTE",
    "BARRIER_WAIT",
    "ACQUIRE_WAIT",
    "DIFF_WAIT",
    "PAGE_FAULT",
    "RECV_WAIT",
    "TX",
    "RX",
    "RUN",
    "IDLE",
    "WAIT_CATEGORIES",
]

# -- categories --------------------------------------------------------------------

COMPUTE = "compute"  # application CPU time (and any unattributed remainder)
BARRIER_WAIT = "barrier-wait"  # inside barrier(), arrival to release
ACQUIRE_WAIT = "acquire-wait"  # inside acquire_view/acquire_lock
DIFF_WAIT = "diff-wait"  # waiting on DIFF_REQUEST/DIFF_REPLY round trips
PAGE_FAULT = "page-fault"  # fault handling (base-copy fetch + validation)
RECV_WAIT = "recv-wait"  # MPI blocking receive
TX = "tx"  # NIC transmit occupancy
RX = "rx"  # NIC receive occupancy
RUN = "run"  # one application process, start to finish
IDLE = "idle"  # after this process finished, before the run's last one did

# wait categories that may appear (nested) on a process's "app" lane; the
# breakdown attributes each instant to the innermost open one
WAIT_CATEGORIES = (BARRIER_WAIT, ACQUIRE_WAIT, PAGE_FAULT, DIFF_WAIT, RECV_WAIT)


class EventTracer:
    """Collects trace events from one simulated run.

    Install by assigning to the simulator *before* running::

        tracer = EventTracer()
        system.sim.tracer = tracer
        system.run_program(body)
        print(tracer.summary())

    (or pass ``tracer=`` to :func:`repro.apps.common.run_app`, which does
    this and attaches the computed breakdown to the result).
    """

    __slots__ = ("events", "sends", "wakes", "_dispatch", "_mid")

    def __init__(self) -> None:
        self.events: list[tuple] = []
        # causal edges (see module docstring)
        self.sends: dict[int, tuple[int, float, str]] = {}
        self.wakes: list[tuple[int, float, int]] = []
        self._dispatch: dict[int, int] = {}  # pid -> msg_id being handled
        self._mid: dict[int, int] = {}  # raw msg_id -> per-run dense id

    # -- recording (called from instrumentation sites) ----------------------------

    def begin(
        self,
        pid: int,
        lane: str,
        cat: str,
        name: str,
        t: float,
        args: Optional[dict] = None,
    ) -> None:
        """Open a span on ``(pid, lane)``; must be closed by :meth:`end`."""
        self.events.append(("B", t, pid, lane, cat, name, args))

    def end(self, pid: int, lane: str, cat: str, t: float) -> None:
        """Close the innermost open span on ``(pid, lane)``."""
        self.events.append(("E", t, pid, lane, cat, None, None))

    def instant(
        self,
        pid: int,
        lane: str,
        cat: str,
        name: str,
        t: float,
        args: Optional[dict] = None,
    ) -> None:
        """Record a point event (drops, retransmissions, merges)."""
        self.events.append(("i", t, pid, lane, cat, name, args))

    def counter(self, pid: int, name: str, t: float, value: Any) -> None:
        """Record a counter sample (rendered as a track in Perfetto)."""
        self.events.append(("C", t, pid, "counters", None, name, value))

    # -- causal edges (critical-path analysis) ------------------------------------

    def norm(self, msg_id: int) -> int:
        """Intern a raw message id into this run's dense id namespace.

        The global :class:`~repro.net.message.Message` counter never resets,
        so raw ids differ between two identical runs in one process; interned
        ids are assigned in first-sight order (deterministic), which keeps
        traces and causal edges run-invariant.  ``wire_copy`` preserves the
        raw id, so every copy of a logical message interns identically.
        """
        m = self._mid.get(msg_id)
        if m is None:
            m = self._mid[msg_id] = len(self._mid)
        return m

    def causal_send(self, msg_id: int, src: int, t: float, kind: str) -> None:
        """Record the logical send of message ``msg_id`` (once per message)."""
        self.sends[self.norm(msg_id)] = (src, t, kind)

    def wake(self, pid: int, t: float, msg_id: Optional[int] = None) -> None:
        """A blocked process on ``pid`` is being resumed at ``t``.

        ``msg_id`` names the causing message explicitly (transport reply/ack
        matching); without it, the message the node's dispatcher is currently
        handling is the cause.  Purely local wake-ups record nothing.
        """
        cause = self.norm(msg_id) if msg_id is not None else self._dispatch.get(pid)
        if cause is not None:
            self.wakes.append((pid, t, cause))

    def begin_dispatch(self, pid: int, msg_id: int, kind: str, src: int, t: float) -> None:
        """The node's dispatcher starts running the handler for ``msg_id``."""
        mid = self.norm(msg_id)
        self._dispatch[pid] = mid
        self.events.append(
            ("B", t, pid, "dispatch", "handler", kind, {"msg": mid, "src": src})
        )

    def end_dispatch(self, pid: int, t: float) -> None:
        """The handler the dispatcher was running finished."""
        self._dispatch.pop(pid, None)
        self.events.append(("E", t, pid, "dispatch", "handler", None, None))

    # -- PDES trace merging --------------------------------------------------------

    @classmethod
    def merged(cls, parts: "list[EventTracer]") -> "EventTracer":
        """Merge per-partition tracers from a partitioned (PDES) run.

        Each partition traces only its own nodes, so the event streams are
        disjoint by pid; they are k-way merged by timestamp (stable in
        partition order for ties), which keeps every ``(pid, lane)`` span
        stack properly nested — Perfetto export and the breakdown
        attribution work on the merged trace unchanged.

        Interned message ids are re-interned through the merged tracer via
        each partition's raw-id inverse map.  Raw ids are globally unique
        across partitions (one shared counter inline; disjoint per-process
        bases under fork, see :func:`repro.net.message.set_msg_id_base`), so
        the two sides of a cross-partition message — send/tx spans on the
        source partition, rx/dispatch spans and wake edges on the
        destination partition — unify to a single merged id and the causal
        graph stays connected.  Engine-global events (``pid == -1``, e.g.
        the live-process counter) are kept from the first partition only;
        the others would interleave partial counts into one nonsense track.
        """
        import heapq

        out = cls()
        invs = [{dense: raw for raw, dense in tp._mid.items()} for tp in parts]
        streams = []
        for idx, tp in enumerate(parts):
            events = tp.events if idx == 0 else [e for e in tp.events if e[2] != -1]
            streams.append([(ev, idx) for ev in events])
        for ev, idx in heapq.merge(*streams, key=lambda item: item[0][1]):
            args = ev[6]
            if isinstance(args, dict) and "msg" in args:
                args = dict(args)
                args["msg"] = out.norm(invs[idx][args["msg"]])
                ev = ev[:6] + (args,)
            out.events.append(ev)
        for idx, tp in enumerate(parts):
            for mid, edge in tp.sends.items():
                out.sends[out.norm(invs[idx][mid])] = edge
        wake_streams = [
            [(pid, t, out.norm(invs[idx][cause])) for pid, t, cause in tp.wakes]
            for idx, tp in enumerate(parts)
        ]
        out.wakes.extend(heapq.merge(*wake_streams, key=lambda w: w[1]))
        return out

    # -- convenience --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def breakdown(self) -> dict:
        """Per-process time attribution (see :mod:`repro.obs.breakdown`)."""
        from repro.obs.breakdown import compute_breakdown

        return compute_breakdown(self.events)

    def summary(self) -> str:
        """Terminal flame-style summary (see :mod:`repro.obs.export`)."""
        from repro.obs.export import flame_summary

        return flame_summary(self)
