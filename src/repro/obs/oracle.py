"""Trace-based consistency oracle: recorder + memory-model checker.

The repo's other gates prove runs are *bit-identical to a baseline*
(``repro report``, the PDES conformance suite); this module proves a run is
*correct by the memory model*.  It has two halves:

:class:`AccessRecorder`
    An opt-in access-history recorder on the ``Simulator.tracer`` contract:
    the simulator's ``oracle`` attribute is ``None`` by default, every
    emission site guards with ``if oracle is not None``, recording never
    charges simulated time and never perturbs scheduling — a recorded run's
    statistics are bit-identical to an unrecorded run's.  It logs per-rank
    read/write operations on shared pages (as whole-page **value digests**,
    never payloads, so large runs stay tractable) plus every synchronisation
    edge the protocols emit: lock acquire/release, view entry/exit, barrier
    arrive/exit, interval publication, diff application, full-page installs
    and VC_sd piggyback updates.

:func:`check_history`
    Replays the merged history and verifies the protocol family's contract:

    * **coverage / causal visibility** — every interval in a reader's
      happens-before past that wrote the page must have been incorporated
      into the reader's copy before the read (``stale-read``).  For the
      barrier/lock protocols (``lrc_d``/``hlrc_d``) happens-before is built
      from the recorded lock release→acquire chains and barrier episodes
      (PRAM/causal ordering); for the view protocols (``vc_d``/``vc_sd``)
      from each view's release log and the reader's acquire position
      (reads-see-most-recent-write within a view critical section).  A
      skipped diff application surfaces here — this is the
      diff-integration-completeness check.
    * **value consistency** — a read's page digest must equal the digest
      left by the node's latest content event (``value-mismatch``), and two
      clean copies that incorporated the same interval set must agree
      (``value-divergence``).
    * **synchronisation structure** — exclusive sections must not overlap
      (``overlapping-critical-section``) and barrier episodes must collect
      all ranks before releasing anyone (``broken-barrier``).

Violations are structured :class:`Finding` s carrying the rank, simulated
time, page/view, the racing write and the causal path that should have
delivered it, plus a Perfetto-linkable span reference (``pid`` + ``ts_us``
match the Chrome-trace export of the same run).

Event tuples (first element is the kind, then ``t``, then the node id)::

    ("r",  t, n, page, digest)           read   (one per page touched)
    ("w",  t, n, page, digest)           write  (digest after the write)
    ("iv", t, n, idx, pages)             interval published
    ("acq", t, n, kind, obj, mode)       lock/view acquired ("lock"/"view")
    ("rel", t, n, kind, obj, mode)       lock/view released
    ("ba", t, n, episode)                barrier arrival
    ("bx", t, n, episode)                barrier exit
    ("ap", t, n, page, keys, digest)     diffs applied; keys=((writer,idx),…)
    ("in", t, n, page, src, digest)      full-page install from ``src``
    ("zf", t, n, page, digest)           first-touch zero-fill
    ("up", t, n, view, fulls, diffs)     VC_sd piggyback grant applied;
                                         fulls/diffs = ((page, digest), …)

Under PDES each partition records its own nodes (all of a node's handler
events run in its owner's partition); :meth:`AccessRecorder.merged` k-way
merges the shards by timestamp, stable in partition order — the same scheme
:meth:`repro.obs.tracer.EventTracer.merged` uses.

The checker is deliberately *lenient where delivery order is concurrent*: a
full-page install credits the union of the source's incorporated set (the
source may have applied further diffs between its reply and the install),
so the oracle never reports a false positive on a correct run; every rule
only fires on a read that provably misses a causally-required write.
See docs/observability.md ("Consistency oracle") for the worked example.
"""

from __future__ import annotations

import hashlib
import heapq
import json
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

__all__ = [
    "AccessRecorder",
    "Finding",
    "OracleReport",
    "PROTOCOL_FAMILY",
    "EXIT_CONSISTENCY",
    "page_digest",
    "check_history",
    "format_oracle_report",
]

#: pinned CLI exit code: the run completed but the checker found violations
EXIT_CONSISTENCY = 4

#: which contract each protocol is checked against ("lrc": causal vector
#: clocks over lock chains + barrier episodes; "vc": per-view release logs;
#: None: no shared memory — the oracle does not apply)
PROTOCOL_FAMILY = {
    "lrc_d": "lrc",
    "hlrc_d": "lrc",
    "vc_d": "vc",
    "vc_sd": "vc",
    "mpi": None,
}

# findings are capped (a single systemic break floods every later read);
# the suppressed remainder is counted in the report
MAX_FINDINGS = 50


def page_digest(data) -> str:
    """Short content digest of one page (numpy uint8 array or bytes)."""
    buf = data if isinstance(data, (bytes, bytearray, memoryview)) else data.tobytes()
    return hashlib.blake2b(buf, digest_size=8).hexdigest()


class AccessRecorder:
    """Collects the access/synchronisation history of one simulated run.

    Install like a tracer (or pass ``oracle=`` to ``run_app``)::

        recorder = AccessRecorder()
        system.sim.oracle = recorder
        system.run_program(body)
        report = check_history(recorder, nprocs, protocol)
    """

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: list[tuple] = []

    # -- recording (called from ``if oracle is not None`` guarded sites) --------

    def read(self, t: float, node: int, pid: int, data) -> None:
        self.events.append(("r", t, node, pid, page_digest(data)))

    def write(self, t: float, node: int, pid: int, data) -> None:
        self.events.append(("w", t, node, pid, page_digest(data)))

    def interval(self, t: float, node: int, idx: int, pages: tuple) -> None:
        self.events.append(("iv", t, node, idx, pages))

    def acquire(self, t: float, node: int, kind: str, obj: int, mode: str) -> None:
        self.events.append(("acq", t, node, kind, obj, mode))

    def release(self, t: float, node: int, kind: str, obj: int, mode: str) -> None:
        self.events.append(("rel", t, node, kind, obj, mode))

    def barrier_arrive(self, t: float, node: int, episode: int) -> None:
        self.events.append(("ba", t, node, episode))

    def barrier_exit(self, t: float, node: int, episode: int) -> None:
        self.events.append(("bx", t, node, episode))

    def apply(self, t: float, node: int, pid: int, keys: tuple, data) -> None:
        self.events.append(("ap", t, node, pid, keys, page_digest(data)))

    def install(self, t: float, node: int, pid: int, src: int, data) -> None:
        self.events.append(("in", t, node, pid, src, page_digest(data)))

    def zero_fill(self, t: float, node: int, pid: int, data) -> None:
        self.events.append(("zf", t, node, pid, page_digest(data)))

    def update(self, t: float, node: int, view: int, fulls, diffs) -> None:
        """VC_sd piggyback grant applied; fulls/diffs are ``(pid, data)`` pairs."""
        self.events.append(
            ("up", t, node, view,
             tuple((pid, page_digest(data)) for pid, data in fulls),
             tuple((pid, page_digest(data)) for pid, data in diffs))
        )

    # -- PDES history merging ---------------------------------------------------

    @classmethod
    def merged(cls, parts: "list[AccessRecorder]") -> "AccessRecorder":
        """K-way merge per-partition histories by timestamp.

        Each partition records only its own nodes' events (a node's handler
        events all run in its owner's partition), so the streams are
        disjoint by node; ``heapq.merge`` is stable, so ties keep partition
        order — the same discipline :meth:`EventTracer.merged` uses, and
        sufficient here because every cross-node rule in the checker spans
        at least one network latency.
        """
        out = cls()
        out.events.extend(
            heapq.merge(*(p.events for p in parts), key=lambda ev: ev[1])
        )
        return out

    def __len__(self) -> int:
        return len(self.events)


# -- findings ---------------------------------------------------------------------


@dataclass
class Finding:
    """One detected consistency violation."""

    kind: str  # stale-read | value-mismatch | value-divergence |
    #            overlapping-critical-section | broken-barrier
    node: int
    t: float
    detail: str
    page: Optional[int] = None
    view: Optional[int] = None
    missing: Optional[tuple] = None  # the racing (writer, interval) key
    path: list = field(default_factory=list)  # causal chain that should deliver it

    @property
    def span(self) -> dict:
        """Perfetto-linkable reference into the same run's Chrome trace."""
        return {"pid": self.node, "ts_us": round(self.t * 1e6, 3)}

    def to_json(self) -> dict:
        out = {
            "kind": self.kind,
            "node": self.node,
            "t": self.t,
            "detail": self.detail,
            "span": self.span,
        }
        if self.page is not None:
            out["page"] = self.page
        if self.view is not None:
            out["view"] = self.view
        if self.missing is not None:
            out["missing"] = list(self.missing)
        if self.path:
            out["path"] = list(self.path)
        return out


@dataclass
class OracleReport:
    """Outcome of one :func:`check_history` pass."""

    protocol: str
    family: Optional[str]
    nprocs: int
    findings: list
    counts: dict
    aborted: bool = False  # history truncated by a RunAborted (fault plans)

    @property
    def verdict(self) -> str:
        if self.family is None:
            return "not-applicable"
        return "violations" if self.findings else "clean"

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_json(self) -> dict:
        return {
            "protocol": self.protocol,
            "family": self.family,
            "nprocs": self.nprocs,
            "verdict": self.verdict,
            "aborted": self.aborted,
            "counts": dict(self.counts),
            "findings": [f.to_json() for f in self.findings],
        }

    def write_json(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_json(), fh, indent=1, sort_keys=True)
            fh.write("\n")


def format_oracle_report(report: OracleReport) -> str:
    """Terminal rendering of one oracle report."""
    head = (
        f"Consistency oracle — {report.protocol}, {report.nprocs} processors: "
        f"{report.verdict.upper()}"
    )
    lines = [head]
    if report.family is None:
        lines.append("  mpi has no shared pages; nothing for the oracle to verify")
        return "\n".join(lines)
    c = report.counts
    lines.append(
        f"  checked {c.get('reads', 0)} reads, {c.get('writes', 0)} writes, "
        f"{c.get('intervals', 0)} intervals, {c.get('acquires', 0)} acquires, "
        f"{c.get('barriers', 0)} barrier arrivals "
        f"({c.get('events', 0)} recorded events)"
    )
    if report.aborted:
        lines.append("  history truncated by a run abort; verdict covers what executed")
    for f in report.findings:
        where = f" page {f.page}" if f.page is not None else ""
        where += f" view {f.view}" if f.view is not None else ""
        lines.append(
            f"  [{f.kind}] node {f.node} at t={f.t:.6f}{where}: {f.detail}"
        )
        for hop in f.path:
            lines.append(f"      via {hop}")
    if c.get("suppressed"):
        lines.append(f"  ({c['suppressed']} further findings suppressed)")
    return "\n".join(lines)


# -- the checker ------------------------------------------------------------------


def check_history(
    history: "AccessRecorder | Iterable[tuple]",
    nprocs: int,
    protocol: str,
    aborted: bool = False,
) -> OracleReport:
    """Replay a recorded history and verify the protocol family's contract.

    Accepts an :class:`AccessRecorder` (serial or PDES-merged) or a bare
    event list (the mutation tests edit recorded lists directly).  Returns
    an :class:`OracleReport`; ``report.ok`` is the pass/fail bit and
    ``report.findings`` the structured violations.
    """
    family = PROTOCOL_FAMILY.get(protocol)
    events = history.events if isinstance(history, AccessRecorder) else list(history)
    counts: dict[str, int] = {"events": len(events)}
    if family is None:
        return OracleReport(protocol, None, nprocs, [], counts, aborted)

    findings: list[Finding] = []
    seen_fk: set = set()
    suppressed = 0

    def add(finding: Finding, dedupe: Any = None) -> None:
        nonlocal suppressed
        if dedupe is not None:
            if dedupe in seen_fk:
                suppressed += 1
                return
            seen_fk.add(dedupe)
        if len(findings) >= MAX_FINDINGS:
            suppressed += 1
            return
        findings.append(finding)

    # interval catalogue
    key_pages: dict[tuple, tuple] = {}  # (node, idx) -> pages
    key_time: dict[tuple, float] = {}
    page_writers: dict[int, list] = {}  # page -> [(node, idx), ...] publish order
    # per-node copy state
    incorporated = [dict() for _ in range(nprocs)]  # n -> page -> set of keys
    dirty = [set() for _ in range(nprocs)]  # pages with unpublished local writes
    tainted = [set() for _ in range(nprocs)]  # install-sampled: skip divergence
    last_dig = [dict() for _ in range(nprocs)]  # n -> page -> digest
    div_map: dict[tuple, tuple] = {}  # (page, frozenset(keys)) -> (digest, node, t)
    clean_at: dict[tuple, int] = {}  # (n, page) -> horizon of last clean coverage scan
    # lrc family: causal vectors + provenance
    hb = [[0] * nprocs for _ in range(nprocs)]
    prov = [dict() for _ in range(nprocs)]  # n -> origin -> (kind, obj, t, carrier)
    lock_vec: dict[int, list] = {}  # lock -> join of releasers' vectors
    lock_prov: dict[int, dict] = {}  # lock -> origin -> (releaser, t_release)
    # vc family: per-view release logs
    view_log: dict[int, list] = {}  # view -> [(key, pages), ...]
    view_page_keys: dict[tuple, list] = {}  # (view, page) -> [(logpos, key), ...]
    bound: dict[int, int] = {}  # page -> view
    pending_iv: list = [None] * nprocs
    acq_pos = [dict() for _ in range(nprocs)]  # n -> view -> log position at acquire
    delivered = [dict() for _ in range(nprocs)]  # n -> view -> piggyback horizon
    held = [dict() for _ in range(nprocs)]  # n -> view -> hold count
    # synchronisation structure
    excl_holder: dict[tuple, int] = {}  # (kind, obj) -> node
    view_readers: dict[int, set] = {}  # view -> reader nodes
    arrivals: dict[int, dict] = {}  # episode -> node -> hb snapshot (lrc) / True

    n_reads = n_writes = n_ivs = n_acqs = n_bas = 0

    for ev in events:
        k = ev[0]
        t = ev[1]
        n = ev[2]
        if k == "r":
            p, dig = ev[3], ev[4]
            n_reads += 1
            ld = last_dig[n].get(p)
            if ld is not None and ld != dig:
                add(
                    Finding(
                        "value-mismatch", n, t, page=p,
                        detail=(
                            f"read digest {dig} does not match the copy's last "
                            f"recorded content digest {ld}"
                        ),
                    ),
                    dedupe=("vm", n, p),
                )
            last_dig[n][p] = dig
            have = incorporated[n].get(p)
            if family == "lrc":
                pw = page_writers.get(p)
                if pw and (have is None or len(have) < len(pw)):
                    vec = hb[n]
                    for key in pw:
                        m, i = key
                        if i <= vec[m] and (have is None or key not in have):
                            pr = prov[n].get(m)
                            path = [
                                f"interval {m}:{i} published at "
                                f"t={key_time.get(key, 0.0):.6f}"
                            ]
                            if pr is not None:
                                pk, pobj, pt, carrier = pr
                                if pk == "lock":
                                    path.append(
                                        f"knowledge carried by node "
                                        f"{carrier[0] if carrier else '?'}'s release "
                                        f"of lock {pobj}, delivered to node {n} at "
                                        f"acquire t={pt:.6f}"
                                    )
                                else:
                                    path.append(
                                        f"knowledge delivered by barrier episode "
                                        f"{pobj} (arrival of node {carrier}), exit "
                                        f"t={pt:.6f}"
                                    )
                            add(
                                Finding(
                                    "stale-read", n, t, page=p, missing=key,
                                    detail=(
                                        f"read of page {p} misses interval {m}:{i} "
                                        "(in the reader's happens-before past but "
                                        "never applied to its copy)"
                                    ),
                                    path=path,
                                ),
                                dedupe=("sr", n, p, key),
                            )
            else:  # vc family
                v = bound.get(p)
                if v is not None and held[n].get(v, 0) > 0:
                    pos = acq_pos[n].get(v, 0)
                    ck = (n, p)
                    if clean_at.get(ck, -1) < pos:
                        entries = view_page_keys.get((v, p), ())
                        clean = True
                        for logpos, key in entries:
                            if logpos >= pos:
                                break
                            if have is None or key not in have:
                                clean = False
                                m, i = key
                                add(
                                    Finding(
                                        "stale-read", n, t, page=p, view=v,
                                        missing=key,
                                        detail=(
                                            f"read of page {p} under view {v} "
                                            f"misses interval {m}:{i} (released "
                                            f"to the view at log position "
                                            f"{logpos}, before this holder's "
                                            f"acquire position {pos})"
                                        ),
                                        path=[
                                            f"interval {m}:{i} published at "
                                            f"t={key_time.get(key, 0.0):.6f}",
                                            f"released into view {v}'s log at "
                                            f"position {logpos}; node {n} acquired "
                                            f"the view with delivery position {pos}",
                                        ],
                                    ),
                                    dedupe=("sr", n, p, key),
                                )
                        if clean:
                            clean_at[ck] = pos
            # divergence: clean, untainted copies with equal interval sets agree
            if p not in dirty[n] and p not in tainted[n]:
                ks = frozenset(incorporated[n].get(p, ()))
                prior = div_map.get((p, ks))
                if prior is None:
                    div_map[(p, ks)] = (dig, n, t)
                elif prior[0] != dig:
                    add(
                        Finding(
                            "value-divergence", n, t, page=p,
                            detail=(
                                f"copy digest {dig} diverges from node "
                                f"{prior[1]}'s digest {prior[0]} at t={prior[2]:.6f} "
                                f"despite incorporating the same "
                                f"{len(ks)} interval(s)"
                            ),
                        ),
                        dedupe=("vd", p, ks),
                    )
        elif k == "w":
            p, dig = ev[3], ev[4]
            n_writes += 1
            dirty[n].add(p)
            last_dig[n][p] = dig
        elif k == "iv":
            idx, pages = ev[3], ev[4]
            n_ivs += 1
            key = (n, idx)
            key_pages[key] = pages
            key_time[key] = t
            inc = incorporated[n]
            dn = dirty[n]
            for p in pages:
                page_writers.setdefault(p, []).append(key)
                s = inc.get(p)
                if s is None:
                    s = inc[p] = set()
                s.add(key)
                dn.discard(p)
            if family == "lrc":
                if idx > hb[n][n]:
                    hb[n][n] = idx
            else:
                pending_iv[n] = (key, pages)
        elif k == "ap":
            p, keys, dig = ev[3], ev[4], ev[5]
            s = incorporated[n].get(p)
            if s is None:
                s = incorporated[n][p] = set()
            s.update(keys)
            last_dig[n][p] = dig
        elif k == "in":
            p, src, dig = ev[3], ev[4], ev[5]
            s = incorporated[n].get(p)
            if s is None:
                s = incorporated[n][p] = set()
            s.update(incorporated[src].get(p, ()))
            last_dig[n][p] = dig
            dirty[n].discard(p)
            # the source may have applied more diffs between its reply and
            # this install: the set is an upper bound, so exclude the copy
            # from the exact-divergence rule (coverage stays exact)
            tainted[n].add(p)
        elif k == "zf":
            p, dig = ev[3], ev[4]
            incorporated[n].setdefault(p, set())
            last_dig[n][p] = dig
            tainted[n].discard(p)
        elif k == "up":
            v, fulls, updates = ev[3], ev[4], ev[5]
            log = view_log.get(v, ())
            inc = incorporated[n]
            for p, dig in fulls:
                s = inc.get(p)
                if s is None:
                    s = inc[p] = set()
                s.update(key for lp, key in view_page_keys.get((v, p), ()))
                last_dig[n][p] = dig
                dirty[n].discard(p)
                tainted[n].discard(p)
            pos = delivered[n].get(v, 0)
            for p, dig in updates:
                s = inc.get(p)
                if s is None:
                    s = inc[p] = set()
                s.update(
                    key for lp, key in view_page_keys.get((v, p), ()) if lp >= pos
                )
                last_dig[n][p] = dig
            delivered[n][v] = len(log)
        elif k == "acq":
            kind, obj, mode = ev[3], ev[4], ev[5]
            n_acqs += 1
            ck = (kind, obj)
            holder = excl_holder.get(ck)
            if mode == "w":
                if holder is not None and holder != n:
                    add(
                        Finding(
                            "overlapping-critical-section", n, t,
                            view=obj if kind == "view" else None,
                            detail=(
                                f"{kind} {obj} acquired exclusively while node "
                                f"{holder} still holds it"
                            ),
                        )
                    )
                readers = view_readers.get(obj) if kind == "view" else None
                if readers:
                    others = sorted(r for r in readers if r != n)
                    if others:
                        add(
                            Finding(
                                "overlapping-critical-section", n, t, view=obj,
                                detail=(
                                    f"view {obj} acquired exclusively while "
                                    f"readers {others} still hold it"
                                ),
                            )
                        )
                excl_holder[ck] = n
            else:
                if holder is not None and holder != n:
                    add(
                        Finding(
                            "overlapping-critical-section", n, t,
                            view=obj if kind == "view" else None,
                            detail=(
                                f"{kind} {obj} acquired read-only while node "
                                f"{holder} holds it exclusively"
                            ),
                        )
                    )
                if kind == "view":
                    view_readers.setdefault(obj, set()).add(n)
            if family == "lrc" and kind == "lock":
                vec = lock_vec.get(obj)
                if vec is not None:
                    mine = hb[n]
                    lp = lock_prov.get(obj, {})
                    for m in range(nprocs):
                        if vec[m] > mine[m]:
                            mine[m] = vec[m]
                            prov[n][m] = ("lock", obj, t, lp.get(m))
            if kind == "view":
                pos = len(view_log.get(obj, ()))
                acq_pos[n][obj] = pos
                delivered[n][obj] = pos
                held[n][obj] = held[n].get(obj, 0) + 1
        elif k == "rel":
            kind, obj, mode = ev[3], ev[4], ev[5]
            ck = (kind, obj)
            if mode == "w":
                if excl_holder.get(ck) == n:
                    del excl_holder[ck]
            elif kind == "view":
                view_readers.get(obj, set()).discard(n)
            if family == "lrc" and kind == "lock":
                vec = lock_vec.get(obj)
                if vec is None:
                    vec = lock_vec[obj] = [0] * nprocs
                lp = lock_prov.setdefault(obj, {})
                mine = hb[n]
                for m in range(nprocs):
                    if mine[m] > vec[m]:
                        vec[m] = mine[m]
                        lp[m] = (n, t)
            if kind == "view":
                if mode == "w":
                    piv = pending_iv[n]
                    if piv is not None:
                        key, pages = piv
                        log = view_log.setdefault(obj, [])
                        pos = len(log)
                        log.append((key, pages))
                        for p in pages:
                            bound.setdefault(p, obj)
                            view_page_keys.setdefault((obj, p), []).append(
                                (pos, key)
                            )
                        pending_iv[n] = None
                        delivered[n][obj] = len(log)
                cnt = held[n].get(obj, 0)
                if cnt:
                    held[n][obj] = cnt - 1
        elif k == "ba":
            ep = ev[3]
            n_bas += 1
            d = arrivals.setdefault(ep, {})
            d[n] = list(hb[n]) if family == "lrc" else True
        elif k == "bx":
            ep = ev[3]
            d = arrivals.get(ep, {})
            if len(d) < nprocs:
                add(
                    Finding(
                        "broken-barrier", n, t,
                        detail=(
                            f"barrier episode {ep} released node {n} after only "
                            f"{len(d)}/{nprocs} recorded arrivals"
                        ),
                    ),
                    dedupe=("bb", ep),
                )
            if family == "lrc":
                mine = hb[n]
                pn = prov[n]
                for an, avec in d.items():
                    if avec is True:
                        continue
                    for m in range(nprocs):
                        if avec[m] > mine[m]:
                            mine[m] = avec[m]
                            pn[m] = ("barrier", ep, t, an)

    counts.update(
        reads=n_reads,
        writes=n_writes,
        intervals=n_ivs,
        acquires=n_acqs,
        barriers=n_bas,
        suppressed=suppressed,
    )
    return OracleReport(protocol, family, nprocs, findings, counts, aborted)
