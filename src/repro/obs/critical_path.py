"""Causal critical-path extraction from a traced run.

A flat time breakdown (:mod:`repro.obs.breakdown`) says how long each rank
waited, but not whether a wait *lengthened the run* — a barrier wait that is
fully overlapped by another rank's compute costs nothing.  The critical path
answers that: it is the single causally-connected chain of work whose
segment durations sum exactly to the run's simulated time, so a category's
share of the *path* (rather than of any one rank's timeline) is its true
contribution to the bottom line.  This is how the paper's §3 claims become
checkable: VC_sd's path must contain zero diff segments, while LRC_d's must
contain the barrier-time consistency work its centralised barrier performs.

Inputs
------

The walk consumes three things an :class:`~repro.obs.tracer.EventTracer`
records:

* the per-rank app-lane interval timeline (``app_intervals``, shared with
  the breakdown so the two attributions always agree on what every instant
  of a rank's timeline was);
* dispatch-lane handler spans (``B``/``E`` on lane ``"dispatch"``, one per
  delivered message, serial per node);
* the causal edges: ``sends[msg_id] = (src, t, kind)`` and
  ``wakes = [(pid, t, cause_msg_id)]``.

Walk
----

Start at ``(pid*, t*)`` — the rank whose run window ends last, at its end —
and repeat until the run start is reached.  At an **app point** ``(pid, t)``
find the app piece ``(i0, i1]`` containing ``t``:

* if the piece is a wait and a wake was recorded on ``pid`` in ``(i0, t]``
  whose causing message has a send edge strictly before ``t``, the rank was
  blocked until that message arrived: emit the wait tail ``[wt, t]``, emit
  an explicit ``wire`` segment ``[ts, wt]`` for the flight (for the
  transport's ack-wakes the cause is the *original* message, so the whole
  round trip lands here), and jump to the send point ``(src, ts)``;
* otherwise the rank was progressing on its own: emit ``[i0, t]`` under the
  piece's category and continue locally at ``i0``.

At a **send point** reached by a jump, if the message kind is one only
handlers and their spawned helpers send (grants, releases, replies,
forwards) and a dispatch-lane handler span ``(h0, h1]`` contains the send
time, the send was issued by that handler: emit a ``dispatch`` segment
``[h0, t]`` attributed by the *handler's* message kind, emit the trigger
message's flight as another ``wire`` segment, and jump to the trigger's
send point.  (Half-open on the left because a handler's spawned sends can
execute at exactly its end time while the dispatcher has already begun the
next handler there; ``(h0, h1]`` picks the spawning handler.)  Kinds the
application itself sends (acquires, arrivals, requests, data) never resolve
into a handler — the app and dispatch lanes of one node interleave in
simulated time, so naive containment would capture concurrent, causally
unrelated handlers.

``t`` strictly decreases every step, so termination is guaranteed; every
emitted segment starts exactly where the next jump or continuation lands,
so the chronological segments are contiguous (``seg[k].t1 == seg[k+1].t0``
as float equality, by construction) and their durations telescope to the
run's simulated time — ``tests/obs/test_critical_path.py`` asserts both for
every matrix cell.

Category mapping
----------------

App pieces map ``compute``/``run`` → ``compute``, ``barrier-wait`` →
``barrier``, ``acquire-wait`` → ``acquire``, ``diff-wait`` → ``diff``,
``recv-wait`` → ``wire``, and — deliberately — ``page-fault`` →
``compute``: VC_sd's first-touch base copies and twin bookkeeping are
memory-management work, not diff traffic, and counting them as ``diff``
would erase exactly the distinction the paper draws.  Handler segments map
by message kind: ``DIFF_*``/``PAGE_*`` → ``diff``,
``BARRIER_*``/``MPI_BARRIER_*`` → ``barrier``, lock/view/merge traffic →
``acquire``, everything else → ``wire``.  Wire time — NIC serialisation,
switch transfer, retransmission delay, dispatcher queueing — is the
explicit ``wire`` flight segments.

Known attribution limits (walk still terminates and telescopes): a wake
fired from app context while the same node's dispatcher is parked mid-yield
inside a handler inherits that handler's message as its cause, and HLRC's
deferred page-request retries run outside any dispatch span, so their
replies fall back to the home node's local timeline.

Slack
-----

For every wait piece on any rank, ``slack = duration − overlap with the
path's same-rank segments`` — a wait with slack equal to its duration was
fully overlapped by the critical chain elsewhere, and shortening it alone
cannot shorten the run.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field

from repro.obs.breakdown import app_intervals
from repro.obs.tracer import (
    ACQUIRE_WAIT,
    BARRIER_WAIT,
    COMPUTE,
    DIFF_WAIT,
    PAGE_FAULT,
    RECV_WAIT,
    RUN,
    WAIT_CATEGORIES,
)

__all__ = [
    "Segment",
    "WaitSlack",
    "CriticalPath",
    "compute_critical_path",
    "format_critical_path",
]

# path categories
PATH_COMPUTE = "compute"
PATH_ACQUIRE = "acquire"
PATH_DIFF = "diff"
PATH_BARRIER = "barrier"
PATH_WIRE = "wire"

# app-lane piece category -> path category
_APP_CAT = {
    COMPUTE: PATH_COMPUTE,
    RUN: PATH_COMPUTE,
    BARRIER_WAIT: PATH_BARRIER,
    ACQUIRE_WAIT: PATH_ACQUIRE,
    PAGE_FAULT: PATH_COMPUTE,  # base-copy/twin work, not diff traffic
    DIFF_WAIT: PATH_DIFF,
    RECV_WAIT: PATH_WIRE,
}

# message kinds only handlers (or processes they spawn) send — the only
# send points allowed to resolve into a dispatch-lane handler span
_HANDLER_ORIGIN_KINDS = frozenset(
    {
        "LOCK_GRANT",
        "LOCK_FORWARD",
        "BARRIER_RELEASE",
        "VIEW_GRANT",
        "RVIEW_GRANT",
        "VIEW_RELEASE_OK",
        "MERGE_VIEWS_REPLY",
        "DIFF_REPLY",
        "PAGE_REPLY",
        "MPI_BARRIER_RELEASE",
    }
)


def _handler_category(kind: str) -> str:
    """Path category for a dispatch-lane handler segment, by message kind."""
    if kind.startswith("DIFF_") or kind.startswith("PAGE_"):
        return PATH_DIFF
    if kind.startswith("BARRIER_") or kind.startswith("MPI_BARRIER_"):
        return PATH_BARRIER
    if (
        kind.startswith("LOCK_")
        or kind.startswith("VIEW_")
        or kind.startswith("RVIEW_")
        or kind.startswith("MERGE_VIEWS")
    ):
        return PATH_ACQUIRE
    return PATH_WIRE  # MPI_DATA, ACK, anything future


@dataclass(frozen=True)
class Segment:
    """One contiguous piece of the critical path."""

    rank: int
    lane: str  # "app", "dispatch" or "wire"
    t0: float
    t1: float
    category: str
    detail: str = ""  # piece category or message kind

    @property
    def duration(self) -> float:
        return self.t1 - self.t0


@dataclass(frozen=True)
class WaitSlack:
    """How much of one wait interval was off the critical path."""

    rank: int
    t0: float
    t1: float
    category: str  # path category of the wait
    on_path: float  # seconds overlapped by same-rank path segments

    @property
    def duration(self) -> float:
        return self.t1 - self.t0

    @property
    def slack(self) -> float:
        return self.duration - self.on_path


@dataclass
class CriticalPath:
    """The walked path plus derived attributions."""

    segments: list[Segment]  # chronological (earliest first)
    total: float  # run's simulated time (== telescoped sum of durations)
    start: float
    end: float
    by_category: dict[str, float] = field(default_factory=dict)
    waits: list[WaitSlack] = field(default_factory=list)

    @property
    def percent(self) -> dict[str, float]:
        if self.total <= 0:
            return {c: 0.0 for c in self.by_category}
        return {c: 100.0 * s / self.total for c, s in self.by_category.items()}


def _dispatch_spans(events) -> dict[int, list[tuple[float, float, str, int]]]:
    """Per-pid chronological handler spans ``(h0, h1, kind, msg_id)``.

    The dispatcher is serial per node, so B/E pairs close in order;
    unclosed trailing spans (crashed run) are dropped.
    """
    out: dict[int, list[tuple[float, float, str, int]]] = {}
    open_span: dict[int, tuple[float, str, int]] = {}
    for ph, t, pid, lane, _cat, name, args in events:
        if lane != "dispatch":
            continue
        if ph == "B":
            open_span[pid] = (t, name, args["msg"])
        elif ph == "E" and pid in open_span:
            h0, kind, msg_id = open_span.pop(pid)
            out.setdefault(pid, []).append((h0, t, kind, msg_id))
    return out


def _containing(handlers, handler_starts, pid, t):
    """The handler span on ``pid`` whose half-open interval ``(h0, h1]``
    contains ``t``, or ``None``."""
    spans = handlers.get(pid)
    if not spans:
        return None
    i = bisect_left(handler_starts[pid], t) - 1  # last span with h0 < t
    if i >= 0 and t <= spans[i][1]:
        return spans[i]
    return None


def compute_critical_path(tracer) -> CriticalPath:
    """Walk the causal chain backwards from the last rank's finish.

    ``tracer`` is an :class:`~repro.obs.tracer.EventTracer` from a completed
    run.  Returns a :class:`CriticalPath` whose chronological segments are
    exactly contiguous and cover ``[start, end]``.
    """
    intervals = app_intervals(tracer.events)
    if not intervals:
        return CriticalPath(segments=[], total=0.0, start=0.0, end=0.0)
    handlers = _dispatch_spans(tracer.events)
    handler_starts = {pid: [h[0] for h in spans] for pid, spans in handlers.items()}

    piece_starts = {
        pid: [p[0] for p in info["pieces"]] for pid, info in intervals.items()
    }
    wakes_by_pid: dict[int, list[tuple[float, int]]] = {}
    for pid, t, cause in tracer.wakes:
        wakes_by_pid.setdefault(pid, []).append((t, cause))
    wake_times = {pid: [w[0] for w in ws] for pid, ws in wakes_by_pid.items()}

    end_pid = max(intervals, key=lambda pid: (intervals[pid]["end"], pid))
    start = min(info["start"] for info in intervals.values())
    end = intervals[end_pid]["end"]

    segments: list[Segment] = []  # emitted latest-first, reversed at the end
    pid, t = end_pid, end
    pending_kind = None  # kind of the message whose send point we are at
    limit = 16 + 4 * (
        sum(len(i["pieces"]) for i in intervals.values())
        + len(tracer.wakes)
        + sum(len(h) for h in handlers.values())
    )
    steps = 0
    while t > start:
        steps += 1
        if steps > limit:  # pragma: no cover - structural safety net
            raise RuntimeError(
                f"critical-path walk did not terminate (at pid={pid} t={t})"
            )

        # send point of a handler-origin message: resolve the issuing handler
        if pending_kind in _HANDLER_ORIGIN_KINDS:
            span = _containing(handlers, handler_starts, pid, t)
            if span is not None:
                h0, _h1, kind, msg_id = span
                segments.append(
                    Segment(pid, "dispatch", h0, t, _handler_category(kind), kind)
                )
                trig = tracer.sends.get(msg_id)
                if trig is not None and trig[1] <= h0:
                    src, ts, tkind = trig
                    segments.append(Segment(pid, "wire", ts, h0, PATH_WIRE, tkind))
                    pid, t, pending_kind = src, ts, tkind
                else:  # no trigger edge — continue on this node's timeline
                    t, pending_kind = h0, None
                continue
        pending_kind = None

        # app point: find the piece (i0, i1] containing t
        info = intervals.get(pid)
        if info is None or t <= info["start"]:
            # walked onto a rank at/before its start — snap to the run start
            segments.append(Segment(pid, "app", start, t, PATH_COMPUTE, "pre-run"))
            t = start
            continue
        pieces = info["pieces"]
        idx = bisect_left(piece_starts[pid], t) - 1  # last piece with i0 < t
        i0, _i1, cat = pieces[idx]
        path_cat = _APP_CAT.get(cat, PATH_COMPUTE)

        # wake-jump: latest wake on this rank in (i0, t] with a usable edge
        jump = None
        if cat in WAIT_CATEGORIES and pid in wakes_by_pid:
            times = wake_times[pid]
            j = bisect_right(times, t) - 1
            while j >= 0 and times[j] > i0:
                wt, cause = wakes_by_pid[pid][j]
                send = tracer.sends.get(cause)
                if send is not None and send[1] <= wt and send[1] < t:
                    jump = (wt, cause, send)
                    break
                j -= 1
        if jump is not None:
            wt, cause, (src, ts, kind) = jump
            segments.append(Segment(pid, "app", wt, t, path_cat, cat))
            # a wake fired from inside the handler of its own causing message
            # (grants, releases, lock forwards): the handler's execution —
            # not the wire — delayed the wake, so walk through it.  The
            # msg-id equality check keeps concurrent unrelated handlers on
            # this node from being captured.
            span = _containing(handlers, handler_starts, pid, wt)
            link = wt
            if span is not None and span[3] == cause and ts <= span[0]:
                h0, _h1, hkind, _mid = span
                segments.append(
                    Segment(pid, "dispatch", h0, wt, _handler_category(hkind), hkind)
                )
                link = h0
            segments.append(Segment(pid, "wire", ts, link, PATH_WIRE, kind))
            pid, t, pending_kind = src, ts, kind
        else:
            segments.append(Segment(pid, "app", i0, t, path_cat, cat))
            t = i0

    segments.reverse()

    by_category: dict[str, float] = {}
    for seg in segments:
        by_category[seg.category] = by_category.get(seg.category, 0.0) + seg.duration

    # slack: per wait piece, overlap with same-rank path segments
    per_rank_path: dict[int, list[tuple[float, float]]] = {}
    for seg in segments:
        per_rank_path.setdefault(seg.rank, []).append((seg.t0, seg.t1))
    waits: list[WaitSlack] = []
    for w_pid in sorted(intervals):
        spans = per_rank_path.get(w_pid, ())
        for i0, i1, cat in intervals[w_pid]["pieces"]:
            if cat not in WAIT_CATEGORIES or i1 <= i0:
                continue
            on_path = 0.0
            for s0, s1 in spans:
                lo, hi = max(i0, s0), min(i1, s1)
                if hi > lo:
                    on_path += hi - lo
            waits.append(
                WaitSlack(w_pid, i0, i1, _APP_CAT.get(cat, PATH_COMPUTE), on_path)
            )

    return CriticalPath(
        segments=segments,
        total=end - start,
        start=start,
        end=end,
        by_category=by_category,
        waits=waits,
    )


def format_critical_path(cp: CriticalPath, max_segments: int = 12) -> str:
    """Terminal rendering: category shares, then the longest segments."""
    if not cp.segments:
        return "Critical path: no traced run"
    lines = ["Critical path", "-------------"]
    lines.append(
        f"simulated time {cp.total:.6f} s across {len(cp.segments)} segments"
    )
    pct = cp.percent
    for cat in sorted(cp.by_category, key=lambda c: -cp.by_category[c]):
        lines.append(
            f"  {cat:<8} {cp.by_category[cat]:>12.6f} s  {pct[cat]:>6.1f}%"
        )
    top = sorted(cp.segments, key=lambda s: -s.duration)[:max_segments]
    lines.append(f"longest segments (top {len(top)}):")
    for seg in top:
        lines.append(
            f"  rank {seg.rank:<3} {seg.lane:<9} {seg.category:<8} "
            f"{seg.duration:>12.6f} s  [{seg.t0:.6f}, {seg.t1:.6f}] {seg.detail}"
        )
    blocking = sum(1 for w in cp.waits if w.on_path > 0)
    overlapped = sum(1 for w in cp.waits if w.on_path == 0 and w.duration > 0)
    lines.append(
        f"waits: {blocking} on the path, "
        f"{overlapped} fully overlapped (slack == duration)"
    )
    return "\n".join(lines)
