"""Cross-run regression reporting over the committed bench baselines.

``BENCH_hotpath.json`` and ``BENCH_sweep.json`` record two different kinds
of number, and the comparison treats them differently:

* **Simulated statistics are exact.**  ``table_row``s, fingerprints, event
  counts, simulated seconds and the message mix are deterministic functions
  of (code, seed) — any difference between two runs of the same code is a
  real behaviour change, so they are compared for equality with *zero*
  tolerance.  A PR that legitimately changes simulated statistics must
  regenerate the baseline; that is the point of the gate.
* **Host-side numbers are noisy.**  ``wall_seconds``, ``events_per_sec``
  and ``peak_rss_kb`` vary run-to-run and host-to-host, so throughput is
  gated with a generous relative tolerance (default 25% — CI runners are
  shared; the gate exists to catch catastrophic slowdowns, not jitter) and
  RSS/wall are reported but never fail the check.

Inputs are file paths or ``git:REV[:path]`` specs (the latter read the file
out of a git revision, default path ``BENCH_hotpath.json``), so
``python -m repro report git:HEAD~1 BENCH_hotpath.json`` compares a fresh
run against the last commit's baseline.  ``--check`` exits non-zero iff a
regression was found; ``--html`` additionally writes a standalone
dashboard (inline CSS, no external assets).
"""

from __future__ import annotations

import hashlib
import html as _html
import json
import subprocess
import warnings
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = [
    "MetricDelta",
    "Comparison",
    "TrendSeries",
    "Trend",
    "load_report",
    "compare_reports",
    "compute_trend",
    "GATE_EXACT",
    "GATE_THROUGHPUT",
    "GATE_INFO",
    "format_report",
    "format_html",
    "format_trend",
    "format_trend_html",
]

DEFAULT_THROUGHPUT_TOLERANCE = 0.25  # relative; see module docstring

# statuses
OK = "ok"
CHANGED = "changed"  # differs, but not a gated failure (noise / additions)
IMPROVED = "improved"
REGRESSED = "regressed"  # fails --check


@dataclass(frozen=True)
class MetricDelta:
    key: str  # protocol label / "app/protocol/variant/nprocs/seed" / "(total)"
    metric: str
    old: Any
    new: Any
    status: str
    note: str = ""


@dataclass
class Comparison:
    kind: str  # "hotpath", "sweep", or "pdes"
    base_label: str
    new_label: str
    deltas: list[MetricDelta] = field(default_factory=list)

    @property
    def regressions(self) -> list[MetricDelta]:
        return [d for d in self.deltas if d.status == REGRESSED]

    @property
    def identical(self) -> bool:
        return all(d.status == OK for d in self.deltas)


# -- loading -----------------------------------------------------------------------


def load_report(spec: str) -> dict:
    """Load a bench JSON from a path or a ``git:REV[:path]`` spec.

    Files written before the run-manifest block existed (pre-schema-1) are
    backfilled with ``{"schema": 0}`` and a warning, so historical
    ``git:REV`` specs keep working in trend mode.
    """
    if spec.startswith("git:"):
        rest = spec[4:]
        rev, _, path = rest.partition(":")
        path = path or "BENCH_hotpath.json"
        blob = subprocess.run(
            ["git", "show", f"{rev}:{path}"],
            capture_output=True,
            check=True,
        ).stdout
        doc = json.loads(blob)
    else:
        with open(spec) as fh:
            doc = json.load(fh)
    if isinstance(doc, dict) and "manifest" not in doc:
        warnings.warn(
            f"{spec}: no run manifest (written before schema 1); "
            "assuming schema 0",
            stacklevel=2,
        )
        doc["manifest"] = {"schema": 0}
    return doc


def _report_kind(doc: dict) -> str:
    bench = doc.get("benchmark")
    if bench == "sweep":
        return "sweep"
    if bench == "pdes":
        return "pdes"
    if bench == "faults_degradation":
        return "degradation"
    if isinstance(doc.get("protocols"), dict):
        return "hotpath"
    raise ValueError(f"unrecognised bench report (benchmark={bench!r})")


# -- comparison --------------------------------------------------------------------


def _ratio_delta(
    key: str,
    metric: str,
    old: Optional[float],
    new: Optional[float],
    tolerance: Optional[float],
    higher_is_better: bool = True,
) -> MetricDelta:
    """Noisy-metric comparison; ``tolerance=None`` means report-only."""
    if not old or new is None:
        return MetricDelta(key, metric, old, new, CHANGED if old != new else OK)
    rel = (new - old) / old
    if not higher_is_better:
        rel = -rel
    if tolerance is not None and rel < -tolerance:
        return MetricDelta(
            key, metric, old, new, REGRESSED, f"{rel * 100:+.1f}% (tol ±{tolerance * 100:.0f}%)"
        )
    if abs(rel) < 1e-12:
        return MetricDelta(key, metric, old, new, OK)
    status = IMPROVED if rel > 0 else CHANGED
    return MetricDelta(key, metric, old, new, status, f"{rel * 100:+.1f}%")


def _exact_delta(key: str, metric: str, old: Any, new: Any) -> MetricDelta:
    if old == new:
        return MetricDelta(key, metric, old, new, OK)
    note = "simulated statistics changed — regenerate the baseline if intended"
    if isinstance(old, dict) and isinstance(new, dict):
        cols = sorted(
            set(old) | set(new), key=lambda c: (old.get(c) == new.get(c), str(c))
        )
        diff = [c for c in cols if old.get(c) != new.get(c)]
        note = f"differs in: {', '.join(map(str, diff[:6]))}" + (
            " …" if len(diff) > 6 else ""
        )
    return MetricDelta(key, metric, old, new, REGRESSED, note)


def _compare_entry(
    key: str,
    old: dict,
    new: dict,
    tolerance: float,
    exact_fields: tuple,
    deltas: list,
) -> None:
    for f in exact_fields:
        if f in old or f in new:
            if f == "message_mix" and (f not in old or f not in new):
                # schema evolution: only gate when both sides recorded it
                deltas.append(
                    MetricDelta(key, f, old.get(f) is not None, new.get(f) is not None, CHANGED, "recorded on one side only")
                )
                continue
            deltas.append(_exact_delta(key, f, old.get(f), new.get(f)))
    deltas.append(
        _ratio_delta(key, "events_per_sec", old.get("events_per_sec"), new.get("events_per_sec"), tolerance)
    )
    deltas.append(
        _ratio_delta(key, "wall_seconds", old.get("wall_seconds"), new.get("wall_seconds"), None, higher_is_better=False)
    )
    if "peak_rss_kb" in old or "peak_rss_kb" in new:
        deltas.append(
            _ratio_delta(key, "peak_rss_kb", old.get("peak_rss_kb"), new.get("peak_rss_kb"), None, higher_is_better=False)
        )


def compare_reports(
    base: dict,
    new: dict,
    tolerance: float = DEFAULT_THROUGHPUT_TOLERANCE,
    base_label: str = "base",
    new_label: str = "new",
) -> Comparison:
    """Compare two bench reports of the same kind.

    Exact (simulated) fields gate at zero tolerance; throughput gates at
    ``tolerance``; wall/RSS are report-only.  Cells present only in the
    baseline are regressions (coverage loss); cells only in the new report
    are additions.
    """
    kind = _report_kind(base)
    if _report_kind(new) != kind:
        raise ValueError(
            f"cannot compare a {kind} report against a {_report_kind(new)} report"
        )
    if kind == "degradation":
        raise ValueError(
            "degradation reports have no two-way comparison rules; "
            "use `repro report --trend` instead"
        )
    cmp = Comparison(kind=kind, base_label=base_label, new_label=new_label)
    deltas = cmp.deltas

    if kind == "pdes":
        _compare_pdes(base, new, tolerance, deltas)
    elif kind == "hotpath":
        exact = ("events", "sim_time_seconds", "verified", "table_row", "message_mix")
        old_entries = base.get("protocols", {})
        new_entries = new.get("protocols", {})
        for key in old_entries:
            if key not in new_entries:
                deltas.append(MetricDelta(key, "entry", "present", "missing", REGRESSED))
                continue
            _compare_entry(key, old_entries[key], new_entries[key], tolerance, exact, deltas)
        for key in new_entries:
            if key not in old_entries:
                deltas.append(MetricDelta(key, "entry", "missing", "present", CHANGED))
        deltas.append(
            _ratio_delta(
                "(total)", "vc_d_events_per_sec",
                base.get("vc_d_events_per_sec"), new.get("vc_d_events_per_sec"),
                tolerance,
            )
        )
    else:
        exact = ("events", "sim_time_seconds", "verified", "fingerprint", "table_row")
        def cell_key(c: dict) -> str:
            return "/".join(
                str(c.get(k)) for k in ("app", "protocol", "variant", "nprocs", "seed")
            )

        old_cells = {cell_key(c): c for c in base.get("cells", [])}
        new_cells = {cell_key(c): c for c in new.get("cells", [])}
        for key, old_cell in old_cells.items():
            if key not in new_cells:
                deltas.append(MetricDelta(key, "cell", "present", "missing", REGRESSED))
                continue
            _compare_entry(key, old_cell, new_cells[key], tolerance, exact, deltas)
        for key in new_cells:
            if key not in old_cells:
                deltas.append(MetricDelta(key, "cell", "missing", "present", CHANGED))
    return cmp


def _compare_pdes(base: dict, new: dict, tolerance: float, deltas: list) -> None:
    """BENCH_pdes.json: conformance is all-simulated (exact); scaling mixes
    deterministic window accounting (exact) with host throughput (gated).

    A quick (reduced-matrix) report on either side downgrades missing cells
    to CHANGED — quick runs deliberately cover a subset.  Differing
    ``batching`` settings make the window accounting incomparable, so those
    fields are skipped (with a CHANGED marker) rather than failed.
    """
    reduced = bool(new.get("quick")) != bool(base.get("quick"))
    miss_status = CHANGED if reduced else REGRESSED
    miss_note = "reduced (quick) matrix" if reduced else "coverage lost"
    comparable = base.get("batching", True) == new.get("batching", True)
    if not comparable:
        deltas.append(MetricDelta(
            "(config)", "batching", base.get("batching", True),
            new.get("batching", True), CHANGED,
            "window accounting not comparable across batching settings",
        ))

    def conf_key(c: dict) -> str:
        return "/".join(
            str(c.get(k)) for k in ("app", "protocol", "variant", "nprocs")
        )

    exact = ("fingerprint", "pdes_fingerprint", "sim_time_seconds",
             "events_serial", "events_pdes", "match")
    old_cells = {conf_key(c): c for c in base.get("conformance", {}).get("cells", [])}
    new_cells = {conf_key(c): c for c in new.get("conformance", {}).get("cells", [])}
    for key, old_cell in old_cells.items():
        new_cell = new_cells.get(key)
        if new_cell is None:
            deltas.append(MetricDelta(key, "cell", "present", "missing",
                                      miss_status, miss_note))
            continue
        for f in exact:
            deltas.append(_exact_delta(key, f, old_cell.get(f), new_cell.get(f)))
    for key in new_cells:
        if key not in old_cells:
            deltas.append(MetricDelta(key, "cell", "missing", "present", CHANGED))

    old_s, new_s = base.get("scaling", {}), new.get("scaling", {})
    skey = f"halo/{old_s.get('nprocs')}p"
    if old_s.get("nprocs") != new_s.get("nprocs"):
        deltas.append(MetricDelta(
            "halo", "nprocs", old_s.get("nprocs"), new_s.get("nprocs"),
            miss_status if not reduced else CHANGED, "scaling point differs",
        ))
        return
    deltas.append(_exact_delta(skey, "sim_time_seconds",
                               old_s.get("sim_time_seconds"),
                               new_s.get("sim_time_seconds")))
    old_serial = old_s.get("serial") or {}
    new_serial = new_s.get("serial") or {}
    deltas.append(_exact_delta(f"{skey}/serial", "events",
                               old_serial.get("events"), new_serial.get("events")))
    deltas.append(_ratio_delta(f"{skey}/serial", "events_per_sec",
                               old_serial.get("events_per_sec"),
                               new_serial.get("events_per_sec"), tolerance))
    window_fields = ("windows", "elided_windows", "leased_windows", "frame_bytes")
    old_parts = {p.get("workers"): p for p in old_s.get("partitioned", [])}
    new_parts = {p.get("workers"): p for p in new_s.get("partitioned", [])}
    for workers, old_p in old_parts.items():
        pkey = f"{skey}/x{workers}"
        new_p = new_parts.get(workers)
        if new_p is None:
            deltas.append(MetricDelta(pkey, "entry", "present", "missing",
                                      miss_status, miss_note))
            continue
        deltas.append(_exact_delta(pkey, "events",
                                   old_p.get("events"), new_p.get("events")))
        deltas.append(_exact_delta(pkey, "output_matches",
                                   old_p.get("output_matches"),
                                   new_p.get("output_matches")))
        if comparable:
            for f in window_fields:
                if f in old_p or f in new_p:
                    deltas.append(_exact_delta(pkey, f, old_p.get(f), new_p.get(f)))
        deltas.append(_ratio_delta(pkey, "events_per_sec",
                                   old_p.get("events_per_sec"),
                                   new_p.get("events_per_sec"), tolerance))
    for workers in new_parts:
        if workers not in old_parts:
            deltas.append(MetricDelta(f"{skey}/x{workers}", "entry",
                                      "missing", "present", CHANGED))


# -- trend tracking ----------------------------------------------------------------
#
# ``repro report --trend`` generalises the two-way comparison to N ordered
# revisions.  Each report flattens into (key, metric) -> (value, gate) and the
# gates reuse the two-way semantics over every *consecutive* pair:
#
#   exact       simulated statistics — any difference is REGRESSED
#   throughput  host events/sec — gated at the relative tolerance
#   info        wall/RSS/derived — reported, never fails --check

GATE_EXACT = "exact"
GATE_THROUGHPUT = "throughput"
GATE_INFO = "info"


@dataclass
class TrendSeries:
    """One metric tracked across every revision of a trend."""

    key: str
    metric: str
    gate: str
    values: list  # one per revision; None where the revision lacks the metric
    statuses: list[str] = field(default_factory=list)  # per consecutive pair
    notes: list[str] = field(default_factory=list)

    @property
    def worst(self) -> str:
        order = {REGRESSED: 0, CHANGED: 1, IMPROVED: 2, OK: 3}
        return min(self.statuses, key=lambda s: order.get(s, 4), default=OK)

    @property
    def regressed(self) -> bool:
        return REGRESSED in self.statuses


@dataclass
class Trend:
    """N-revision trend over same-kind bench reports (oldest first)."""

    kind: str
    labels: list[str]
    series: list[TrendSeries] = field(default_factory=list)
    manifests: list[dict] = field(default_factory=list)

    @property
    def regressions(self) -> list[TrendSeries]:
        return [s for s in self.series if s.regressed]


def _row_hash(row: Any) -> Optional[str]:
    if row is None:
        return None
    return hashlib.sha256(
        json.dumps(row, sort_keys=True).encode()
    ).hexdigest()[:16]


def _flatten(doc: dict, kind: str) -> dict:
    """One report -> ordered ``{(key, metric): (value, gate)}``."""
    out: dict = {}

    def put(key: str, metric: str, value: Any, gate: str) -> None:
        if value is not None:
            out[(key, metric)] = (value, gate)

    if kind == "hotpath":
        for label, entry in (doc.get("protocols") or {}).items():
            put(label, "events", entry.get("events"), GATE_EXACT)
            put(label, "sim_time_seconds", entry.get("sim_time_seconds"), GATE_EXACT)
            put(label, "table_row_hash", _row_hash(entry.get("table_row")), GATE_EXACT)
            put(label, "events_per_sec", entry.get("events_per_sec"), GATE_THROUGHPUT)
            put(label, "wall_seconds", entry.get("wall_seconds"), GATE_INFO)
        put("(total)", "vc_d_events_per_sec", doc.get("vc_d_events_per_sec"),
            GATE_THROUGHPUT)
        put("(total)", "events_per_sec", doc.get("events_per_sec"), GATE_THROUGHPUT)
        put("(total)", "wall_seconds", doc.get("wall_seconds"), GATE_INFO)
        put("(total)", "peak_rss_kb", doc.get("peak_rss_kb"), GATE_INFO)
    elif kind == "sweep":
        for cell in doc.get("cells", []):
            key = "/".join(str(cell.get(k)) for k in
                           ("app", "protocol", "variant", "nprocs", "seed"))
            put(key, "fingerprint", cell.get("fingerprint"), GATE_EXACT)
            put(key, "events", cell.get("events"), GATE_EXACT)
            put(key, "sim_time_seconds", cell.get("sim_time_seconds"), GATE_EXACT)
            put(key, "wall_seconds", cell.get("wall_seconds"), GATE_INFO)
        put("(total)", "wall_seconds", doc.get("wall_seconds"), GATE_INFO)
    elif kind == "pdes":
        for cell in (doc.get("conformance") or {}).get("cells", []):
            key = "/".join(str(cell.get(k)) for k in
                           ("app", "protocol", "variant", "nprocs"))
            put(key, "fingerprint", cell.get("fingerprint"), GATE_EXACT)
            put(key, "pdes_fingerprint", cell.get("pdes_fingerprint"), GATE_EXACT)
            put(key, "match", cell.get("match"), GATE_EXACT)
            # window accounting depends on the batching setting, which may
            # differ between revisions: informational in trend mode
            for f in ("windows", "elided_windows", "leased_windows"):
                put(key, f, cell.get(f), GATE_INFO)
        scaling = doc.get("scaling") or {}
        skey = f"halo/{scaling.get('nprocs')}p"
        put(skey, "sim_time_seconds", scaling.get("sim_time_seconds"), GATE_EXACT)
        serial = scaling.get("serial") or {}
        put(f"{skey}/serial", "events", serial.get("events"), GATE_EXACT)
        put(f"{skey}/serial", "events_per_sec", serial.get("events_per_sec"),
            GATE_THROUGHPUT)
        for part in scaling.get("partitioned", []):
            pkey = f"{skey}/x{part.get('workers')}"
            put(pkey, "events", part.get("events"), GATE_EXACT)
            put(pkey, "output_matches", part.get("output_matches"), GATE_EXACT)
            put(pkey, "events_per_sec", part.get("events_per_sec"),
                GATE_THROUGHPUT)
    elif kind == "degradation":
        for cell in doc.get("grid", []):
            key = f"{cell.get('protocol')}/loss={cell.get('loss_rate')}"
            put(key, "failed", cell.get("failed"), GATE_EXACT)
            put(key, "time", cell.get("time"), GATE_EXACT)
            put(key, "rexmit", cell.get("rexmit"), GATE_EXACT)
            put(key, "drops", cell.get("drops"), GATE_EXACT)
            put(key, "slowdown", cell.get("slowdown"), GATE_INFO)
    else:  # pragma: no cover - _report_kind rejects unknown docs first
        raise ValueError(f"no trend rules for kind {kind!r}")
    return out


def _pair_status(gate: str, old: Any, new: Any,
                 tolerance: float) -> tuple[str, str]:
    """Status + note for one consecutive revision pair of one series."""
    if old is None and new is None:
        return OK, ""
    if old is None:
        return CHANGED, "added"
    if new is None:
        if gate == GATE_EXACT:
            return REGRESSED, "metric disappeared (coverage lost)"
        return CHANGED, "missing"
    if gate == GATE_EXACT:
        if old == new:
            return OK, ""
        return REGRESSED, "simulated statistics changed"
    if gate == GATE_THROUGHPUT:
        d = _ratio_delta("", "", old, new, tolerance)
        return d.status, d.note
    d = _ratio_delta("", "", old, new, None,
                     higher_is_better=False)
    return d.status, d.note


def compute_trend(
    docs: list[dict],
    labels: list[str],
    tolerance: float = DEFAULT_THROUGHPUT_TOLERANCE,
) -> Trend:
    """Build the per-metric trend over ``docs`` (ordered oldest -> newest).

    All documents must be the same report kind.  Every metric is gated over
    each *consecutive* pair with the two-way semantics (exact simulated /
    tolerance-gated throughput / report-only host numbers); a series is a
    regression iff any pair regressed.
    """
    if len(docs) < 2:
        raise ValueError("a trend needs at least two reports")
    if len(docs) != len(labels):
        raise ValueError("one label per report, in the same order")
    kinds = [_report_kind(d) for d in docs]
    if len(set(kinds)) != 1:
        raise ValueError(
            f"cannot trend across report kinds: {', '.join(sorted(set(kinds)))}"
        )
    kind = kinds[0]
    flat = [_flatten(d, kind) for d in docs]
    keys: dict = {}  # ordered union of (key, metric), first-appearance order
    for f in flat:
        for km, (_v, gate) in f.items():
            keys.setdefault(km, gate)
    trend = Trend(kind=kind, labels=list(labels),
                  manifests=[d.get("manifest") or {"schema": 0} for d in docs])
    for (key, metric), gate in keys.items():
        values = [f[(key, metric)][0] if (key, metric) in f else None
                  for f in flat]
        series = TrendSeries(key=key, metric=metric, gate=gate, values=values)
        for old, new in zip(values, values[1:]):
            status, note = _pair_status(gate, old, new, tolerance)
            series.statuses.append(status)
            series.notes.append(note)
        trend.series.append(series)
    return trend


# -- rendering ---------------------------------------------------------------------


def _short(v: Any, width: int = 28) -> str:
    s = json.dumps(v, sort_keys=True) if isinstance(v, (dict, list)) else str(v)
    return s if len(s) <= width else s[: width - 1] + "…"


def format_report(cmp: Comparison, verbose: bool = False) -> str:
    """Terminal rendering: regressions first, then changes, then a verdict."""
    lines = [
        f"Regression report ({cmp.kind}): {cmp.base_label} -> {cmp.new_label}",
        "=" * 64,
    ]
    interesting = [d for d in cmp.deltas if d.status != OK]
    order = {REGRESSED: 0, CHANGED: 1, IMPROVED: 2}
    interesting.sort(key=lambda d: (order.get(d.status, 3), d.key, d.metric))
    shown = interesting if verbose else interesting[:40]
    for d in shown:
        mark = {REGRESSED: "FAIL", IMPROVED: "  up", CHANGED: "  ~ "}[d.status]
        lines.append(
            f"{mark}  {d.key:<28} {d.metric:<20} "
            f"{_short(d.old):>28} -> {_short(d.new):<28} {d.note}"
        )
    if len(interesting) > len(shown):
        lines.append(f"… {len(interesting) - len(shown)} more (use --verbose)")
    ok = sum(1 for d in cmp.deltas if d.status == OK)
    lines.append("-" * 64)
    lines.append(
        f"{len(cmp.regressions)} regression(s), "
        f"{sum(1 for d in cmp.deltas if d.status == CHANGED)} change(s), "
        f"{sum(1 for d in cmp.deltas if d.status == IMPROVED)} improvement(s), "
        f"{ok} identical metric(s)"
    )
    lines.append("verdict: " + ("REGRESSED" if cmp.regressions else ("identical" if cmp.identical else "ok")))
    return "\n".join(lines)


_HTML_STYLE = """
body { font: 14px/1.45 system-ui, sans-serif; margin: 2rem auto; max-width: 72rem; color: #1a1a2e; }
h1 { font-size: 1.3rem; } .verdict { font-weight: 700; padding: .4rem .8rem; border-radius: .4rem; display: inline-block; }
.verdict.fail { background: #fde8e8; color: #9b1c1c; } .verdict.pass { background: #e6f6ec; color: #14632e; }
table { border-collapse: collapse; width: 100%; margin-top: 1rem; }
th, td { text-align: left; padding: .35rem .6rem; border-bottom: 1px solid #e3e3ef; font-variant-numeric: tabular-nums; }
tr.regressed td { background: #fdf0f0; } tr.improved td { background: #f0faf3; }
td.status { font-weight: 600; } tr.regressed td.status { color: #9b1c1c; } tr.improved td.status { color: #14632e; }
code { background: #f4f4fb; padding: .05rem .3rem; border-radius: .25rem; }
"""


def format_html(cmp: Comparison) -> str:
    """Standalone single-file HTML dashboard for the comparison."""
    esc = _html.escape
    rows = []
    order = {REGRESSED: 0, CHANGED: 1, IMPROVED: 2, OK: 3}
    for d in sorted(cmp.deltas, key=lambda d: (order.get(d.status, 4), d.key, d.metric)):
        rows.append(
            f"<tr class='{esc(d.status)}'>"
            f"<td class='status'>{esc(d.status)}</td>"
            f"<td><code>{esc(d.key)}</code></td><td>{esc(d.metric)}</td>"
            f"<td>{esc(_short(d.old, 60))}</td><td>{esc(_short(d.new, 60))}</td>"
            f"<td>{esc(d.note)}</td></tr>"
        )
    verdict = "REGRESSED" if cmp.regressions else ("identical" if cmp.identical else "ok")
    cls = "fail" if cmp.regressions else "pass"
    return (
        "<!doctype html><html><head><meta charset='utf-8'>"
        f"<title>repro regression report</title><style>{_HTML_STYLE}</style></head><body>"
        f"<h1>Regression report ({esc(cmp.kind)}): "
        f"<code>{esc(cmp.base_label)}</code> &rarr; <code>{esc(cmp.new_label)}</code></h1>"
        f"<p><span class='verdict {cls}'>{verdict}</span> — "
        f"{len(cmp.regressions)} regression(s) over {len(cmp.deltas)} compared metric(s)</p>"
        "<table><thead><tr><th>status</th><th>key</th><th>metric</th>"
        f"<th>{esc(cmp.base_label)}</th><th>{esc(cmp.new_label)}</th><th>note</th></tr></thead>"
        f"<tbody>{''.join(rows)}</tbody></table></body></html>\n"
    )


# -- trend rendering ---------------------------------------------------------------


def _trend_note(series: TrendSeries) -> str:
    for status, note in zip(series.statuses, series.notes):
        if status == REGRESSED and note:
            return note
    for note in series.notes:
        if note:
            return note
    return ""


def format_trend(trend: Trend, verbose: bool = False) -> str:
    """Terminal trend table: one row per metric, one column per revision."""
    lines = [
        f"Trend report ({trend.kind}): {' -> '.join(trend.labels)}",
        "=" * 64,
    ]
    revs = []
    for label, manifest in zip(trend.labels, trend.manifests):
        rev = (manifest or {}).get("git_rev")
        revs.append(f"{label} [{rev[:10]}]" if rev else label)
    lines.append("revisions: " + " -> ".join(revs))
    interesting = [s for s in trend.series if s.worst != OK]
    order = {REGRESSED: 0, CHANGED: 1, IMPROVED: 2}
    interesting.sort(key=lambda s: (order.get(s.worst, 3), s.key, s.metric))
    shown = interesting if verbose else interesting[:40]
    for s in shown:
        mark = {REGRESSED: "FAIL", IMPROVED: "  up", CHANGED: "  ~ "}[s.worst]
        vals = " -> ".join(_short(v, 16) if v is not None else "·"
                           for v in s.values)
        lines.append(
            f"{mark}  {s.key:<28} {s.metric:<20} {vals}  {_trend_note(s)}"
        )
    if len(interesting) > len(shown):
        lines.append(f"… {len(interesting) - len(shown)} more (use --verbose)")
    n_reg = len(trend.regressions)
    steady = sum(1 for s in trend.series if s.worst == OK)
    lines.append("-" * 64)
    lines.append(
        f"{n_reg} regressing metric(s), "
        f"{sum(1 for s in trend.series if s.worst == CHANGED)} changed, "
        f"{sum(1 for s in trend.series if s.worst == IMPROVED)} improved, "
        f"{steady} steady over {len(trend.labels)} revision(s)"
    )
    lines.append("verdict: " + ("REGRESSED" if n_reg else "ok"))
    return "\n".join(lines)


def _sparkline(values: list, width: int = 120, height: int = 28) -> str:
    """Inline SVG polyline over the numeric values of one series."""
    nums = [(i, v) for i, v in enumerate(values)
            if isinstance(v, (int, float)) and not isinstance(v, bool)]
    if len(nums) < 2:
        return ""
    lo = min(v for _i, v in nums)
    hi = max(v for _i, v in nums)
    span = (hi - lo) or 1.0
    n = len(values) - 1
    pts = " ".join(
        f"{round(i / n * (width - 4) + 2, 1)},"
        f"{round((1 - (v - lo) / span) * (height - 6) + 3, 1)}"
        for i, v in nums
    )
    return (
        f"<svg class='spark' width='{width}' height='{height}' "
        f"viewBox='0 0 {width} {height}'>"
        f"<polyline points='{pts}' fill='none' stroke='currentColor' "
        "stroke-width='1.5'/></svg>"
    )


def format_trend_html(trend: Trend) -> str:
    """Standalone single-file HTML trend dashboard with sparklines."""
    esc = _html.escape
    rows = []
    order = {REGRESSED: 0, CHANGED: 1, IMPROVED: 2, OK: 3}
    for s in sorted(trend.series,
                    key=lambda s: (order.get(s.worst, 4), s.key, s.metric)):
        vals = " &rarr; ".join(
            esc(_short(v, 20)) if v is not None else "·" for v in s.values
        )
        rows.append(
            f"<tr class='{esc(s.worst)}'>"
            f"<td class='status'>{esc(s.worst)}</td>"
            f"<td>{esc(s.gate)}</td>"
            f"<td><code>{esc(s.key)}</code></td><td>{esc(s.metric)}</td>"
            f"<td>{vals}</td><td>{_sparkline(s.values)}</td>"
            f"<td>{esc(_trend_note(s))}</td></tr>"
        )
    n_reg = len(trend.regressions)
    verdict = "REGRESSED" if n_reg else "ok"
    cls = "fail" if n_reg else "pass"
    revs = []
    for label, manifest in zip(trend.labels, trend.manifests):
        rev = (manifest or {}).get("git_rev")
        schema = (manifest or {}).get("schema", 0)
        extra = f" [{esc(rev[:10])}]" if rev else (
            " [no manifest]" if not schema else "")
        revs.append(f"<code>{esc(label)}</code>{extra}")
    return (
        "<!doctype html><html><head><meta charset='utf-8'>"
        f"<title>repro trend report</title><style>{_HTML_STYLE}"
        ".spark { color: #4c51bf; vertical-align: middle; }"
        "</style></head><body>"
        f"<h1>Trend report ({esc(trend.kind)})</h1>"
        f"<p>{' &rarr; '.join(revs)}</p>"
        f"<p><span class='verdict {cls}'>{verdict}</span> — "
        f"{n_reg} regressing metric(s) over {len(trend.series)} tracked "
        f"across {len(trend.labels)} revision(s)</p>"
        "<table><thead><tr><th>status</th><th>gate</th><th>key</th>"
        "<th>metric</th><th>values</th><th>trend</th><th>note</th></tr></thead>"
        f"<tbody>{''.join(rows)}</tbody></table></body></html>\n"
    )
