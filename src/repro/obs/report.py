"""Cross-run regression reporting over the committed bench baselines.

``BENCH_hotpath.json`` and ``BENCH_sweep.json`` record two different kinds
of number, and the comparison treats them differently:

* **Simulated statistics are exact.**  ``table_row``s, fingerprints, event
  counts, simulated seconds and the message mix are deterministic functions
  of (code, seed) — any difference between two runs of the same code is a
  real behaviour change, so they are compared for equality with *zero*
  tolerance.  A PR that legitimately changes simulated statistics must
  regenerate the baseline; that is the point of the gate.
* **Host-side numbers are noisy.**  ``wall_seconds``, ``events_per_sec``
  and ``peak_rss_kb`` vary run-to-run and host-to-host, so throughput is
  gated with a generous relative tolerance (default 25% — CI runners are
  shared; the gate exists to catch catastrophic slowdowns, not jitter) and
  RSS/wall are reported but never fail the check.

Inputs are file paths or ``git:REV[:path]`` specs (the latter read the file
out of a git revision, default path ``BENCH_hotpath.json``), so
``python -m repro report git:HEAD~1 BENCH_hotpath.json`` compares a fresh
run against the last commit's baseline.  ``--check`` exits non-zero iff a
regression was found; ``--html`` additionally writes a standalone
dashboard (inline CSS, no external assets).
"""

from __future__ import annotations

import html as _html
import json
import subprocess
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = [
    "MetricDelta",
    "Comparison",
    "load_report",
    "compare_reports",
    "format_report",
    "format_html",
]

DEFAULT_THROUGHPUT_TOLERANCE = 0.25  # relative; see module docstring

# statuses
OK = "ok"
CHANGED = "changed"  # differs, but not a gated failure (noise / additions)
IMPROVED = "improved"
REGRESSED = "regressed"  # fails --check


@dataclass(frozen=True)
class MetricDelta:
    key: str  # protocol label / "app/protocol/variant/nprocs/seed" / "(total)"
    metric: str
    old: Any
    new: Any
    status: str
    note: str = ""


@dataclass
class Comparison:
    kind: str  # "hotpath", "sweep", or "pdes"
    base_label: str
    new_label: str
    deltas: list[MetricDelta] = field(default_factory=list)

    @property
    def regressions(self) -> list[MetricDelta]:
        return [d for d in self.deltas if d.status == REGRESSED]

    @property
    def identical(self) -> bool:
        return all(d.status == OK for d in self.deltas)


# -- loading -----------------------------------------------------------------------


def load_report(spec: str) -> dict:
    """Load a bench JSON from a path or a ``git:REV[:path]`` spec."""
    if spec.startswith("git:"):
        rest = spec[4:]
        rev, _, path = rest.partition(":")
        path = path or "BENCH_hotpath.json"
        blob = subprocess.run(
            ["git", "show", f"{rev}:{path}"],
            capture_output=True,
            check=True,
        ).stdout
        return json.loads(blob)
    with open(spec) as fh:
        return json.load(fh)


def _report_kind(doc: dict) -> str:
    bench = doc.get("benchmark")
    if bench == "sweep":
        return "sweep"
    if bench == "pdes":
        return "pdes"
    if isinstance(doc.get("protocols"), dict):
        return "hotpath"
    raise ValueError(f"unrecognised bench report (benchmark={bench!r})")


# -- comparison --------------------------------------------------------------------


def _ratio_delta(
    key: str,
    metric: str,
    old: Optional[float],
    new: Optional[float],
    tolerance: Optional[float],
    higher_is_better: bool = True,
) -> MetricDelta:
    """Noisy-metric comparison; ``tolerance=None`` means report-only."""
    if not old or new is None:
        return MetricDelta(key, metric, old, new, CHANGED if old != new else OK)
    rel = (new - old) / old
    if not higher_is_better:
        rel = -rel
    if tolerance is not None and rel < -tolerance:
        return MetricDelta(
            key, metric, old, new, REGRESSED, f"{rel * 100:+.1f}% (tol ±{tolerance * 100:.0f}%)"
        )
    if abs(rel) < 1e-12:
        return MetricDelta(key, metric, old, new, OK)
    status = IMPROVED if rel > 0 else CHANGED
    return MetricDelta(key, metric, old, new, status, f"{rel * 100:+.1f}%")


def _exact_delta(key: str, metric: str, old: Any, new: Any) -> MetricDelta:
    if old == new:
        return MetricDelta(key, metric, old, new, OK)
    note = "simulated statistics changed — regenerate the baseline if intended"
    if isinstance(old, dict) and isinstance(new, dict):
        cols = sorted(
            set(old) | set(new), key=lambda c: (old.get(c) == new.get(c), str(c))
        )
        diff = [c for c in cols if old.get(c) != new.get(c)]
        note = f"differs in: {', '.join(map(str, diff[:6]))}" + (
            " …" if len(diff) > 6 else ""
        )
    return MetricDelta(key, metric, old, new, REGRESSED, note)


def _compare_entry(
    key: str,
    old: dict,
    new: dict,
    tolerance: float,
    exact_fields: tuple,
    deltas: list,
) -> None:
    for f in exact_fields:
        if f in old or f in new:
            if f == "message_mix" and (f not in old or f not in new):
                # schema evolution: only gate when both sides recorded it
                deltas.append(
                    MetricDelta(key, f, old.get(f) is not None, new.get(f) is not None, CHANGED, "recorded on one side only")
                )
                continue
            deltas.append(_exact_delta(key, f, old.get(f), new.get(f)))
    deltas.append(
        _ratio_delta(key, "events_per_sec", old.get("events_per_sec"), new.get("events_per_sec"), tolerance)
    )
    deltas.append(
        _ratio_delta(key, "wall_seconds", old.get("wall_seconds"), new.get("wall_seconds"), None, higher_is_better=False)
    )
    if "peak_rss_kb" in old or "peak_rss_kb" in new:
        deltas.append(
            _ratio_delta(key, "peak_rss_kb", old.get("peak_rss_kb"), new.get("peak_rss_kb"), None, higher_is_better=False)
        )


def compare_reports(
    base: dict,
    new: dict,
    tolerance: float = DEFAULT_THROUGHPUT_TOLERANCE,
    base_label: str = "base",
    new_label: str = "new",
) -> Comparison:
    """Compare two bench reports of the same kind.

    Exact (simulated) fields gate at zero tolerance; throughput gates at
    ``tolerance``; wall/RSS are report-only.  Cells present only in the
    baseline are regressions (coverage loss); cells only in the new report
    are additions.
    """
    kind = _report_kind(base)
    if _report_kind(new) != kind:
        raise ValueError(
            f"cannot compare a {kind} report against a {_report_kind(new)} report"
        )
    cmp = Comparison(kind=kind, base_label=base_label, new_label=new_label)
    deltas = cmp.deltas

    if kind == "pdes":
        _compare_pdes(base, new, tolerance, deltas)
    elif kind == "hotpath":
        exact = ("events", "sim_time_seconds", "verified", "table_row", "message_mix")
        old_entries = base.get("protocols", {})
        new_entries = new.get("protocols", {})
        for key in old_entries:
            if key not in new_entries:
                deltas.append(MetricDelta(key, "entry", "present", "missing", REGRESSED))
                continue
            _compare_entry(key, old_entries[key], new_entries[key], tolerance, exact, deltas)
        for key in new_entries:
            if key not in old_entries:
                deltas.append(MetricDelta(key, "entry", "missing", "present", CHANGED))
        deltas.append(
            _ratio_delta(
                "(total)", "vc_d_events_per_sec",
                base.get("vc_d_events_per_sec"), new.get("vc_d_events_per_sec"),
                tolerance,
            )
        )
    else:
        exact = ("events", "sim_time_seconds", "verified", "fingerprint", "table_row")
        def cell_key(c: dict) -> str:
            return "/".join(
                str(c.get(k)) for k in ("app", "protocol", "variant", "nprocs", "seed")
            )

        old_cells = {cell_key(c): c for c in base.get("cells", [])}
        new_cells = {cell_key(c): c for c in new.get("cells", [])}
        for key, old_cell in old_cells.items():
            if key not in new_cells:
                deltas.append(MetricDelta(key, "cell", "present", "missing", REGRESSED))
                continue
            _compare_entry(key, old_cell, new_cells[key], tolerance, exact, deltas)
        for key in new_cells:
            if key not in old_cells:
                deltas.append(MetricDelta(key, "cell", "missing", "present", CHANGED))
    return cmp


def _compare_pdes(base: dict, new: dict, tolerance: float, deltas: list) -> None:
    """BENCH_pdes.json: conformance is all-simulated (exact); scaling mixes
    deterministic window accounting (exact) with host throughput (gated).

    A quick (reduced-matrix) report on either side downgrades missing cells
    to CHANGED — quick runs deliberately cover a subset.  Differing
    ``batching`` settings make the window accounting incomparable, so those
    fields are skipped (with a CHANGED marker) rather than failed.
    """
    reduced = bool(new.get("quick")) != bool(base.get("quick"))
    miss_status = CHANGED if reduced else REGRESSED
    miss_note = "reduced (quick) matrix" if reduced else "coverage lost"
    comparable = base.get("batching", True) == new.get("batching", True)
    if not comparable:
        deltas.append(MetricDelta(
            "(config)", "batching", base.get("batching", True),
            new.get("batching", True), CHANGED,
            "window accounting not comparable across batching settings",
        ))

    def conf_key(c: dict) -> str:
        return "/".join(
            str(c.get(k)) for k in ("app", "protocol", "variant", "nprocs")
        )

    exact = ("fingerprint", "pdes_fingerprint", "sim_time_seconds",
             "events_serial", "events_pdes", "match")
    old_cells = {conf_key(c): c for c in base.get("conformance", {}).get("cells", [])}
    new_cells = {conf_key(c): c for c in new.get("conformance", {}).get("cells", [])}
    for key, old_cell in old_cells.items():
        new_cell = new_cells.get(key)
        if new_cell is None:
            deltas.append(MetricDelta(key, "cell", "present", "missing",
                                      miss_status, miss_note))
            continue
        for f in exact:
            deltas.append(_exact_delta(key, f, old_cell.get(f), new_cell.get(f)))
    for key in new_cells:
        if key not in old_cells:
            deltas.append(MetricDelta(key, "cell", "missing", "present", CHANGED))

    old_s, new_s = base.get("scaling", {}), new.get("scaling", {})
    skey = f"halo/{old_s.get('nprocs')}p"
    if old_s.get("nprocs") != new_s.get("nprocs"):
        deltas.append(MetricDelta(
            "halo", "nprocs", old_s.get("nprocs"), new_s.get("nprocs"),
            miss_status if not reduced else CHANGED, "scaling point differs",
        ))
        return
    deltas.append(_exact_delta(skey, "sim_time_seconds",
                               old_s.get("sim_time_seconds"),
                               new_s.get("sim_time_seconds")))
    old_serial = old_s.get("serial") or {}
    new_serial = new_s.get("serial") or {}
    deltas.append(_exact_delta(f"{skey}/serial", "events",
                               old_serial.get("events"), new_serial.get("events")))
    deltas.append(_ratio_delta(f"{skey}/serial", "events_per_sec",
                               old_serial.get("events_per_sec"),
                               new_serial.get("events_per_sec"), tolerance))
    window_fields = ("windows", "elided_windows", "leased_windows", "frame_bytes")
    old_parts = {p.get("workers"): p for p in old_s.get("partitioned", [])}
    new_parts = {p.get("workers"): p for p in new_s.get("partitioned", [])}
    for workers, old_p in old_parts.items():
        pkey = f"{skey}/x{workers}"
        new_p = new_parts.get(workers)
        if new_p is None:
            deltas.append(MetricDelta(pkey, "entry", "present", "missing",
                                      miss_status, miss_note))
            continue
        deltas.append(_exact_delta(pkey, "events",
                                   old_p.get("events"), new_p.get("events")))
        deltas.append(_exact_delta(pkey, "output_matches",
                                   old_p.get("output_matches"),
                                   new_p.get("output_matches")))
        if comparable:
            for f in window_fields:
                if f in old_p or f in new_p:
                    deltas.append(_exact_delta(pkey, f, old_p.get(f), new_p.get(f)))
        deltas.append(_ratio_delta(pkey, "events_per_sec",
                                   old_p.get("events_per_sec"),
                                   new_p.get("events_per_sec"), tolerance))
    for workers in new_parts:
        if workers not in old_parts:
            deltas.append(MetricDelta(f"{skey}/x{workers}", "entry",
                                      "missing", "present", CHANGED))


# -- rendering ---------------------------------------------------------------------


def _short(v: Any, width: int = 28) -> str:
    s = json.dumps(v, sort_keys=True) if isinstance(v, (dict, list)) else str(v)
    return s if len(s) <= width else s[: width - 1] + "…"


def format_report(cmp: Comparison, verbose: bool = False) -> str:
    """Terminal rendering: regressions first, then changes, then a verdict."""
    lines = [
        f"Regression report ({cmp.kind}): {cmp.base_label} -> {cmp.new_label}",
        "=" * 64,
    ]
    interesting = [d for d in cmp.deltas if d.status != OK]
    order = {REGRESSED: 0, CHANGED: 1, IMPROVED: 2}
    interesting.sort(key=lambda d: (order.get(d.status, 3), d.key, d.metric))
    shown = interesting if verbose else interesting[:40]
    for d in shown:
        mark = {REGRESSED: "FAIL", IMPROVED: "  up", CHANGED: "  ~ "}[d.status]
        lines.append(
            f"{mark}  {d.key:<28} {d.metric:<20} "
            f"{_short(d.old):>28} -> {_short(d.new):<28} {d.note}"
        )
    if len(interesting) > len(shown):
        lines.append(f"… {len(interesting) - len(shown)} more (use --verbose)")
    ok = sum(1 for d in cmp.deltas if d.status == OK)
    lines.append("-" * 64)
    lines.append(
        f"{len(cmp.regressions)} regression(s), "
        f"{sum(1 for d in cmp.deltas if d.status == CHANGED)} change(s), "
        f"{sum(1 for d in cmp.deltas if d.status == IMPROVED)} improvement(s), "
        f"{ok} identical metric(s)"
    )
    lines.append("verdict: " + ("REGRESSED" if cmp.regressions else ("identical" if cmp.identical else "ok")))
    return "\n".join(lines)


_HTML_STYLE = """
body { font: 14px/1.45 system-ui, sans-serif; margin: 2rem auto; max-width: 72rem; color: #1a1a2e; }
h1 { font-size: 1.3rem; } .verdict { font-weight: 700; padding: .4rem .8rem; border-radius: .4rem; display: inline-block; }
.verdict.fail { background: #fde8e8; color: #9b1c1c; } .verdict.pass { background: #e6f6ec; color: #14632e; }
table { border-collapse: collapse; width: 100%; margin-top: 1rem; }
th, td { text-align: left; padding: .35rem .6rem; border-bottom: 1px solid #e3e3ef; font-variant-numeric: tabular-nums; }
tr.regressed td { background: #fdf0f0; } tr.improved td { background: #f0faf3; }
td.status { font-weight: 600; } tr.regressed td.status { color: #9b1c1c; } tr.improved td.status { color: #14632e; }
code { background: #f4f4fb; padding: .05rem .3rem; border-radius: .25rem; }
"""


def format_html(cmp: Comparison) -> str:
    """Standalone single-file HTML dashboard for the comparison."""
    esc = _html.escape
    rows = []
    order = {REGRESSED: 0, CHANGED: 1, IMPROVED: 2, OK: 3}
    for d in sorted(cmp.deltas, key=lambda d: (order.get(d.status, 4), d.key, d.metric)):
        rows.append(
            f"<tr class='{esc(d.status)}'>"
            f"<td class='status'>{esc(d.status)}</td>"
            f"<td><code>{esc(d.key)}</code></td><td>{esc(d.metric)}</td>"
            f"<td>{esc(_short(d.old, 60))}</td><td>{esc(_short(d.new, 60))}</td>"
            f"<td>{esc(d.note)}</td></tr>"
        )
    verdict = "REGRESSED" if cmp.regressions else ("identical" if cmp.identical else "ok")
    cls = "fail" if cmp.regressions else "pass"
    return (
        "<!doctype html><html><head><meta charset='utf-8'>"
        f"<title>repro regression report</title><style>{_HTML_STYLE}</style></head><body>"
        f"<h1>Regression report ({esc(cmp.kind)}): "
        f"<code>{esc(cmp.base_label)}</code> &rarr; <code>{esc(cmp.new_label)}</code></h1>"
        f"<p><span class='verdict {cls}'>{verdict}</span> — "
        f"{len(cmp.regressions)} regression(s) over {len(cmp.deltas)} compared metric(s)</p>"
        "<table><thead><tr><th>status</th><th>key</th><th>metric</th>"
        f"<th>{esc(cmp.base_label)}</th><th>{esc(cmp.new_label)}</th><th>note</th></tr></thead>"
        f"<tbody>{''.join(rows)}</tbody></table></body></html>\n"
    )
