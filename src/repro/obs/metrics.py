"""Lightweight contention-metrics registry.

The tracer answers *when* things happened; this registry answers *how much,
broken down by which resource* — acquire-wait seconds per view, diff bytes
per page, barrier skew per epoch.  It is the quantitative backing for the
paper's per-primitive arguments (Tables 1-9 reason about *counts of diff
requests* and *barrier-time consistency work*, both naturally per-view /
per-page quantities).

Design rules (mirroring the tracer's):

* **Zero overhead when disabled.**  The simulator's ``metrics`` attribute is
  ``None`` by default and every feed site guards with
  ``if metrics is not None``.
* **Observational purity.**  Recording never charges simulated time or
  perturbs scheduling; a metered run's simulated statistics are
  bit-identical to an unmetered run's.
* **Determinism.**  Feed sites run in simulator order, so two identical runs
  produce identical snapshots.

Instruments
-----------

* ``inc(name, value, **labels)`` — monotonic counter;
* ``gauge(name, value, **labels)`` — last-write-wins sample;
* ``observe(name, value, **labels)`` — histogram observation (count / sum /
  min / max plus fixed log-spaced buckets).

Every instrument is keyed by ``(name, sorted(labels))`` so one registry can
hold e.g. ``acquire_wait_seconds{view=3}`` next to
``acquire_wait_seconds{view=7}``.  ``snapshot()`` renders everything into
plain JSON-serialisable dicts for dumping alongside traces, and
:func:`format_contention` renders the per-view / per-page contention tables
the CLI prints.
"""

from __future__ import annotations

import json
from typing import Any, Optional

__all__ = ["Histogram", "Metrics", "format_contention"]

# log-spaced bucket upper bounds for time-like observations (seconds); the
# final +inf bucket is implicit
_BUCKET_BOUNDS = (
    1e-6,
    1e-5,
    1e-4,
    1e-3,
    1e-2,
    1e-1,
    1.0,
    10.0,
)


class Histogram:
    """Count/sum/min/max plus fixed log-spaced buckets."""

    __slots__ = ("count", "sum", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.buckets = [0] * (len(_BUCKET_BOUNDS) + 1)

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        for i, bound in enumerate(_BUCKET_BOUNDS):
            if value <= bound:
                self.buckets[i] += 1
                return
        self.buckets[-1] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "buckets": {
                **{f"le_{b:g}": n for b, n in zip(_BUCKET_BOUNDS, self.buckets)},
                "le_inf": self.buckets[-1],
            },
        }


def _key(name: str, labels: dict) -> tuple:
    return (name, tuple(sorted(labels.items())))


class Metrics:
    """A registry of counters, gauges and histograms keyed by labels.

    Install like a tracer::

        metrics = Metrics()
        system.sim.metrics = metrics
        system.run_program(body)
        print(metrics.format_contention())
    """

    __slots__ = ("counters", "gauges", "histograms", "_log", "_sim")

    def __init__(self, sim: Any = None) -> None:
        self.counters: dict[tuple, float] = {}
        self.gauges: dict[tuple, float] = {}
        self.histograms: dict[tuple, Histogram] = {}
        # log mode (PDES partition shards): every operation is also journaled
        # as (sim-time, op, key, value) so shards merge in serial event order
        self._log: Optional[list] = [] if sim is not None else None
        self._sim = sim

    # -- recording (called from guarded feed sites) --------------------------------

    def inc(self, name: str, value: float = 1.0, **labels: Any) -> None:
        k = _key(name, labels)
        self.counters[k] = self.counters.get(k, 0.0) + value
        if self._log is not None:
            self._log.append((self._sim.now, "c", k, value))

    def gauge(self, name: str, value: float, **labels: Any) -> None:
        self.gauges[_key(name, labels)] = value
        if self._log is not None:
            self._log.append((self._sim.now, "g", _key(name, labels), value))

    def observe(self, name: str, value: float, **labels: Any) -> None:
        k = _key(name, labels)
        h = self.histograms.get(k)
        if h is None:
            h = self.histograms[k] = Histogram()
        h.observe(value)
        if self._log is not None:
            self._log.append((self._sim.now, "o", k, value))

    def detach_clock(self) -> None:
        """Drop the simulator reference (shards must pickle across the pipe)."""
        self._sim = None

    @classmethod
    def merged(cls, shards: "list[Metrics]") -> "Metrics":
        """Replay per-partition logged shards in serial (timestamp) order.

        Every shard must have been created with ``Metrics(sim=...)``.  The
        k-way merge is by simulated time, stable in shard (partition) order
        for ties — the same discipline stats and tracers use — so a fork-run
        merge reproduces the serial registry: counters sum identically,
        last-write-wins gauges pick the serial winner, histogram min/max/
        buckets see the same stream.
        """
        import heapq

        logs = []
        for m in shards:
            if m._log is None:
                raise ValueError(
                    "Metrics.merged requires logged shards (Metrics(sim=...))"
                )
            logs.append(m._log)
        out = cls()
        for t, op, k, value in heapq.merge(*logs, key=lambda e: e[0]):
            if op == "c":
                out.counters[k] = out.counters.get(k, 0.0) + value
            elif op == "g":
                out.gauges[k] = value
            else:
                h = out.histograms.get(k)
                if h is None:
                    h = out.histograms[k] = Histogram()
                h.observe(value)
        return out

    # -- querying ------------------------------------------------------------------

    def counter_value(self, name: str, **labels: Any) -> float:
        return self.counters.get(_key(name, labels), 0.0)

    def histogram(self, name: str, **labels: Any) -> Optional[Histogram]:
        return self.histograms.get(_key(name, labels))

    def series(self, name: str) -> list[tuple[dict, Any]]:
        """All (labels, value-or-histogram) pairs recorded under ``name``."""
        out: list[tuple[dict, Any]] = []
        for (n, lab), v in self.counters.items():
            if n == name:
                out.append((dict(lab), v))
        for (n, lab), v in self.gauges.items():
            if n == name:
                out.append((dict(lab), v))
        for (n, lab), h in self.histograms.items():
            if n == name:
                out.append((dict(lab), h))
        return out

    # -- export --------------------------------------------------------------------

    def snapshot(self) -> dict:
        """Everything as plain JSON-serialisable dicts (deterministic order)."""

        def render(table: dict, value) -> list[dict]:
            rows = []
            for (name, lab) in sorted(table, key=lambda k: (k[0], repr(k[1]))):
                rows.append(
                    {
                        "name": name,
                        "labels": dict(lab),
                        "value": value(table[(name, lab)]),
                    }
                )
            return rows

        return {
            "counters": render(self.counters, lambda v: v),
            "gauges": render(self.gauges, lambda v: v),
            "histograms": render(self.histograms, lambda h: h.snapshot()),
        }

    def write_json(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.snapshot(), fh, indent=1, sort_keys=True)
            fh.write("\n")

    def format_contention(self) -> str:
        return format_contention(self)


# -- CLI rendering -----------------------------------------------------------------


def _fmt_val(v: float) -> str:
    if v == int(v) and abs(v) < 1e15:
        return str(int(v))
    return f"{v:.6g}"


def format_contention(metrics: Metrics, title: str = "Contention metrics") -> str:
    """Per-resource contention tables: one block per metric name.

    Histograms render count / mean / max per label set (the per-view
    acquire-wait table the paper's contention arguments need); counters and
    gauges render a single value column.
    """
    names: dict[str, list] = {}
    for (name, lab) in metrics.counters:
        names.setdefault(name, [])
    for (name, lab) in metrics.gauges:
        names.setdefault(name, [])
    for (name, lab) in metrics.histograms:
        names.setdefault(name, [])
    if not names:
        return f"{title}: none recorded"

    lines = [title, "-" * len(title)]
    for name in sorted(names):
        series = sorted(
            metrics.series(name), key=lambda pair: sorted(pair[0].items())
        )
        lines.append(f"{name}:")
        for labels, value in series:
            lab = (
                ", ".join(f"{k}={v}" for k, v in sorted(labels.items()))
                or "(total)"
            )
            if isinstance(value, Histogram):
                lines.append(
                    f"  {lab:<28} n={value.count:<7} "
                    f"sum={value.sum:.6g} mean={value.mean:.3g} "
                    f"max={value.max if value.max is not None else 0:.3g}"
                )
            else:
                lines.append(f"  {lab:<28} {_fmt_val(value)}")
    return "\n".join(lines)
