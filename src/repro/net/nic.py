"""Network interface model: rate-limited TX/RX with a finite receive buffer.

Each node owns one :class:`Nic`.  Two daemon processes run per NIC:

* the **TX pump** serialises outbound messages onto the wire at link rate
  (plus the fixed per-message send overhead), then hands them to the switch;
* the **RX pump** drains the inbound buffer at link rate (plus receive
  overhead) and delivers messages to the node's dispatcher.

Messages arriving while the inbound buffer is full are **dropped** — this is
the congestion-loss mechanism: a burst of n-1 simultaneous senders into one
port (the centralised LRC barrier pattern) overflows the buffer and the lost
messages each cost a ~1 s retransmission timeout.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Generator

import numpy as np

from repro.sim import Channel, Simulator, Timeout

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.config import NetConfig
    from repro.net.message import Message
    from repro.net.stats import NetStats

__all__ = ["Nic", "Switch"]


class Nic:
    """One full-duplex 100 Mbps port."""

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        cfg: "NetConfig",
        stats: "NetStats",
        deliver: Callable[["Message"], None],
    ):
        self.sim = sim
        self.node_id = node_id
        self.cfg = cfg
        self.stats = stats
        self._deliver = deliver  # hand a fully-received message to the node
        self._switch: "Switch | None" = None
        self.tx_queue: Channel = Channel(sim, name=f"tx[{node_id}]")
        self.rx_buffer: Channel = Channel(sim, name=f"rx[{node_id}]")
        self.rx_bytes = 0  # bytes currently held in the receive buffer
        # per-NIC deterministic stream: node id decorrelates ports, the
        # config seed makes whole runs reproducible
        self._rng = np.random.RandomState(cfg.drop_seed + 7919 * node_id)
        sim.spawn(self._tx_pump(), name=f"nic-tx-{node_id}")
        sim.spawn(self._rx_pump(), name=f"nic-rx-{node_id}")

    def attach(self, switch: "Switch") -> None:
        self._switch = switch

    # -- outbound --------------------------------------------------------------

    def send(self, msg: "Message") -> None:
        """Queue a message for transmission (never blocks the caller)."""
        self.tx_queue.put(msg)

    def _tx_pump(self) -> Generator:
        while True:
            msg = yield self.tx_queue.get()
            # software send overhead + wire serialisation at link rate
            yield Timeout(self.cfg.send_overhead + self.cfg.tx_time(msg.size))
            assert self._switch is not None, "NIC not attached to a switch"
            self._switch.transfer(msg)

    # -- inbound ---------------------------------------------------------------

    def on_arrival(self, msg: "Message") -> None:
        """Called by the switch when a frame reaches this port.

        RED-style congestion loss over *byte* occupancy: above the soft
        threshold, arrivals are dropped with probability rising linearly to 1
        at the hard buffer limit.  Bursts of large messages (diff/page
        replies converging on a central node) fill the buffer; bursts of tiny
        control messages never do.
        """
        wire = msg.size + self.cfg.header_bytes
        soft = self.cfg.red_threshold_bytes
        cap = self.cfg.recv_buffer_bytes
        if self.rx_bytes > 0 and self.rx_bytes + wire > cap:
            # an oversized message is only accepted into an empty buffer
            # (standing in for the fragmentation a real stack would do)
            self.stats.count_drop()
            return
        if self.rx_bytes > soft and cap > soft:
            p_drop = (self.rx_bytes - soft) / (cap - soft)
            if self._rng.random_sample() < p_drop:
                self.stats.count_drop()
                return
        self.rx_bytes += wire
        self.rx_buffer.put(msg)

    def _rx_pump(self) -> Generator:
        while True:
            msg = yield self.rx_buffer.get()
            # inbound wire time (the port is shared by all senders) + software
            # receive overhead
            yield Timeout(self.cfg.tx_time(msg.size) + self.cfg.recv_overhead)
            self.rx_bytes -= msg.size + self.cfg.header_bytes
            self._deliver(msg)


class Switch:
    """Store-and-forward switch connecting all NICs.

    The switch adds a fixed forwarding latency and optionally applies seeded
    uniform random loss (off by default; buffer overflow at the receiving NIC
    is the primary loss mechanism).
    """

    def __init__(self, sim: Simulator, cfg: "NetConfig", stats: "NetStats"):
        self.sim = sim
        self.cfg = cfg
        self.stats = stats
        self.ports: dict[int, Nic] = {}
        self._rng = np.random.RandomState(cfg.drop_seed)

    def register(self, nic: Nic) -> None:
        self.ports[nic.node_id] = nic
        nic.attach(self)

    def transfer(self, msg: "Message") -> None:
        if msg.dst not in self.ports:
            raise KeyError(f"message to unknown node {msg.dst}")
        if self.cfg.random_drop_prob > 0.0 and (
            self._rng.random_sample() < self.cfg.random_drop_prob
        ):
            self.stats.count_drop()
            return
        dst_nic = self.ports[msg.dst]
        self.sim.schedule(self.cfg.switch_latency, dst_nic.on_arrival, msg)
