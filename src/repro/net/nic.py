"""Network interface model: rate-limited TX/RX with a finite receive buffer.

Each node owns one :class:`Nic` modelling one full-duplex port:

* the **TX side** serialises outbound messages onto the wire at link rate
  (plus the fixed per-message send overhead), then hands them to the switch;
* the **RX side** drains the inbound buffer at link rate (plus receive
  overhead) and delivers messages to the node's dispatcher.

Both sides are modelled as *flattened* rate-limited queues: plain callback
chains instead of a daemon process blocking on a channel.  Each frame costs
the same two simulator events the pump formulation used — a zero-delay
hand-off followed by the timed completion — but without generator resumption,
effect dispatch or channel-object churn.  The hand-off hop is kept (rather
than scheduling the completion directly) because it is *order-bearing*: the
engine drains same-instant heap events before ready-deque events, so the
completion's tie-breaking sequence number must be allocated in the ready
phase exactly where the pump's channel resume used to run.  This keeps runs
event-for-event identical in simulated time to the daemon formulation —
same-instant frame ties resolve the same way, which the seeded RED drop
stream depends on.

Messages arriving while the inbound buffer is full are **dropped** — this is
the congestion-loss mechanism: a burst of n-1 simultaneous senders into one
port (the centralised LRC barrier pattern) overflows the buffer and the lost
messages each cost a ~1 s retransmission timeout.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.sim import Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.config import NetConfig
    from repro.net.message import Message
    from repro.net.stats import NetStats

__all__ = ["Nic", "Switch"]


class Nic:
    """One full-duplex 100 Mbps port."""

    __slots__ = (
        "sim", "node_id", "cfg", "stats", "_deliver", "_switch",
        "_tx_busy", "_rx_busy", "_tx_backlog", "_rx_backlog",
        "rx_bytes", "_rng", "tx_probe",
    )

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        cfg: "NetConfig",
        stats: "NetStats",
        deliver: Callable[["Message"], None],
    ):
        self.sim = sim
        self.node_id = node_id
        self.cfg = cfg
        self.stats = stats
        self._deliver = deliver  # hand a fully-received message to the node
        self._switch: "Switch | None" = None
        self._tx_busy = False  # a transmission completion event is in flight
        self._rx_busy = False  # a receive completion event is in flight
        self._tx_backlog: deque["Message"] = deque()
        self._rx_backlog: deque[tuple["Message", int]] = deque()
        self.rx_bytes = 0  # bytes currently held in the receive buffer
        # per-NIC deterministic stream: node id decorrelates ports, the
        # config seed makes whole runs reproducible.  Created lazily — the
        # stream is only drawn from on RED drops, and eagerly building 256+
        # RandomStates dominated cluster construction time.
        self._rng: "np.random.RandomState | None" = None
        # optional TX-start probe ``probe(msg, t_transfer)`` — the PDES
        # driver uses it to capture cross-partition frames the moment their
        # transmission starts (the hand-off instant is already determined
        # then); None (the default) is the zero-overhead fast path
        self.tx_probe = None

    def attach(self, switch: "Switch") -> None:
        self._switch = switch

    # -- outbound --------------------------------------------------------------

    def send(self, msg: "Message") -> None:
        """Queue a message for transmission (never blocks the caller).

        Serialises at link rate: transmission starts when the TX side is next
        idle and takes the software send overhead plus the wire time.
        """
        if self._tx_busy:
            self._tx_backlog.append(msg)
            return
        self._tx_busy = True
        self.sim.call_soon(self._tx_start, msg)

    def _tx_start(self, msg: "Message") -> None:
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.begin(
                self.node_id, "nic-tx", "tx", f"{msg.kind.name}->{msg.dst}",
                self.sim.now,
                {"bytes": msg.size, "dst": msg.dst, "msg": tracer.norm(msg.msg_id)},
            )
        # software send overhead + wire serialisation at link rate
        wire = self.cfg.tx_time(msg.size)
        faults = self.sim.faults
        if faults is not None:
            wire *= faults.bandwidth_factor(self.node_id)
        delay = self.cfg.send_overhead + wire
        probe = self.tx_probe
        if probe is not None:
            probe(msg, self.sim.now + delay)
        self.sim.schedule(delay, self._tx_done, msg)

    def _tx_done(self, msg: "Message") -> None:
        assert self._switch is not None, "NIC not attached to a switch"
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.end(self.node_id, "nic-tx", "tx", self.sim.now)
        self._switch.transfer(msg)
        if self._tx_backlog:
            self.sim.call_soon(self._tx_start, self._tx_backlog.popleft())
        else:
            self._tx_busy = False

    # -- inbound ---------------------------------------------------------------

    def on_arrival(self, msg: "Message") -> None:
        """Called by the switch when a frame reaches this port.

        RED-style congestion loss over *byte* occupancy: above the soft
        threshold, arrivals are dropped with probability rising linearly to 1
        at the hard buffer limit.  Bursts of large messages (diff/page
        replies converging on a central node) fill the buffer; bursts of tiny
        control messages never do.
        """
        wire = msg.size + self.cfg.header_bytes
        soft = self.cfg.red_threshold_bytes
        cap = self.cfg.recv_buffer_bytes
        faults = self.sim.faults
        if faults is not None:
            # receive-buffer shrink episodes scale both limits together
            factor = faults.buffer_factor(self.node_id)
            if factor != 1.0:
                soft *= factor
                cap *= factor
        if self.rx_bytes > 0 and self.rx_bytes + wire > cap:
            # an oversized message is only accepted into an empty buffer
            # (standing in for the fragmentation a real stack would do)
            self.stats.count_drop("overflow")
            self._trace_drop(msg, "overflow")
            return
        if self.rx_bytes > soft and cap > soft:
            p_drop = (self.rx_bytes - soft) / (cap - soft)
            rng = self._rng
            if rng is None:
                rng = self._rng = np.random.RandomState(
                    self.cfg.drop_seed + 7919 * self.node_id
                )
            if rng.random_sample() < p_drop:
                self.stats.count_drop("red")
                self._trace_drop(msg, "red")
                return
        self.rx_bytes += wire
        if self._rx_busy:
            self._rx_backlog.append(msg)
            return
        self._rx_busy = True
        self.sim.call_soon(self._rx_start, msg)

    def _trace_drop(self, msg: "Message", why: str) -> None:
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.instant(
                self.node_id, "nic-rx", "rx", f"drop {msg.kind.name} ({why})",
                self.sim.now, {"bytes": msg.size, "src": msg.src},
            )

    def _rx_start(self, msg: "Message") -> None:
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.begin(
                self.node_id, "nic-rx", "rx", f"{msg.kind.name}<-{msg.src}",
                self.sim.now,
                {"bytes": msg.size, "src": msg.src, "msg": tracer.norm(msg.msg_id)},
            )
        # inbound wire time (the port is shared by all senders) + software
        # receive overhead
        wire = self.cfg.tx_time(msg.size)
        faults = self.sim.faults
        if faults is not None:
            wire *= faults.bandwidth_factor(self.node_id)
        self.sim.schedule(wire + self.cfg.recv_overhead, self._rx_done, msg)

    def _rx_done(self, msg: "Message") -> None:
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.end(self.node_id, "nic-rx", "rx", self.sim.now)
        self.rx_bytes -= msg.size + self.cfg.header_bytes
        self._deliver(msg)
        if self._rx_backlog:
            self.sim.call_soon(self._rx_start, self._rx_backlog.popleft())
        else:
            self._rx_busy = False


class Switch:
    """Store-and-forward switch connecting all NICs.

    The switch adds a fixed forwarding latency and optionally applies seeded
    uniform random loss (off by default; buffer overflow at the receiving NIC
    is the primary loss mechanism).

    Frames for the same destination port arriving at the same instant are
    delivered through a single *arrival pump* event, in ``(source node,
    per-source departure number)`` order.  That order is canonical: it
    depends only on each source's own transmit history, never on how the
    simulator interleaved *other* nodes' events at the departure instant —
    which is what lets the partitioned (PDES) driver reproduce serial
    delivery order exactly when the sources live in different partitions.
    The pump event carries ordering class 1 (see
    :meth:`repro.sim.Simulator.schedule_keyed`), sorting after every
    ordinary event scheduled at the departure instant in both serial and
    partitioned runs.
    """

    def __init__(self, sim: Simulator, cfg: "NetConfig", node_stats: "list[NetStats]"):
        self.sim = sim
        self.cfg = cfg
        # per-node stat shards, indexed by node id; the switch attributes its
        # drops to the *sending* node, which is always a local node even in a
        # partitioned run (transfer is invoked by the source NIC)
        self.node_stats = node_stats
        self.ports: dict[int, Nic] = {}
        # lazy for the same reason as Nic._rng: only drawn when
        # random_drop_prob > 0, which the default model never sets
        self._rng: "np.random.RandomState | None" = None
        # (dst, arrival time) -> [(src, per-src departure seq, msg), ...]
        self._staged: dict[tuple[int, float], list] = {}
        self._dep_seq: dict[int, int] = {}

    def register(self, nic: Nic) -> None:
        self.ports[nic.node_id] = nic
        nic.attach(self)

    def transfer(self, msg: "Message") -> None:
        if self.cfg.random_drop_prob > 0.0:
            rng = self._rng
            if rng is None:
                rng = self._rng = np.random.RandomState(self.cfg.drop_seed)
            if rng.random_sample() < self.cfg.random_drop_prob:
                self.node_stats[msg.src].count_drop("random")
                return
        if msg.dst not in self.ports:
            self._remote_transfer(msg)
            return
        dst_nic = self.ports[msg.dst]
        faults = self.sim.faults
        if faults is not None:
            # scripted fault episodes: loss, extra latency / bounded
            # reordering, duplication (see repro.faults.injector).  Only an
            # actually *perturbed* delivery bypasses the pump (its arrival
            # time is the point; fault runs are serial-only) — an unperturbed
            # verdict falls through to normal staging, so an armed-but-idle
            # injector changes neither event counts nor delivery order.
            verdict = faults.on_transfer(msg)
            if verdict is None:
                return  # dropped; the injector counted and traced it
            extra, dup = verdict
            if dup is not None:
                self.sim.schedule(
                    self.cfg.switch_latency + dup, dst_nic.on_arrival, msg.wire_copy()
                )
            if extra > 0.0:
                self.sim.schedule(
                    self.cfg.switch_latency + extra, dst_nic.on_arrival, msg
                )
                return
        self._stage(msg, self.sim.now + self.cfg.switch_latency, self.sim.now)

    def _remote_transfer(self, msg: "Message") -> None:
        """Hook for partitioned switches; the flat switch knows every port."""
        raise KeyError(f"message to unknown node {msg.dst}")

    def next_departure(self, src: int) -> int:
        dep = self._dep_seq.get(src, 0)
        self._dep_seq[src] = dep + 1
        return dep

    def _stage(self, msg: "Message", t_arr: float, t_dep: float) -> None:
        """Queue ``msg`` for pumped delivery at ``t_arr``.

        All frames for one ``(dst, t_arr)`` slot left their NICs at the same
        instant ``t_arr - switch_latency`` (the latency is constant), so the
        slot's membership is complete before its pump fires.
        """
        key = (msg.dst, t_arr)
        slot = self._staged.get(key)
        entry = (msg.src, self.next_departure(msg.src), msg)
        if slot is None:
            self._staged[key] = [entry]
            self.sim.schedule_keyed(t_arr, t_dep, 1, self._pump, key)
        else:
            slot.append(entry)

    def _pump(self, key: tuple[int, float]) -> None:
        batch = self._staged.pop(key)
        if len(batch) > 1:
            batch.sort(key=_dep_order)
        on_arrival = self.ports[key[0]].on_arrival
        for _, _, msg in batch:
            on_arrival(msg)


def _dep_order(entry: tuple) -> tuple[int, int]:
    return (entry[0], entry[1])
