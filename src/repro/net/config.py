"""Configuration for the cluster model.

Defaults are calibrated to the paper's testbed: 350 MHz PCs, 100 Mbps
switched Ethernet, Linux 2.4 UDP stack, 4 KB virtual-memory pages.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["NetConfig", "NodeConfig"]


@dataclass
class NetConfig:
    """Network-level parameters.

    Attributes
    ----------
    bandwidth_bps:
        Link rate of every NIC port, bits per second (100 Mbps Ethernet).
    switch_latency:
        Store-and-forward latency through the switch, seconds.
    send_overhead / recv_overhead:
        Fixed per-message software cost (UDP/IP stack traversal, interrupt
        handling) on a 350 MHz CPU.  ~60 µs each way is typical for the era.
    header_bytes:
        Per-message framing added on the wire (Ethernet + IP + UDP headers).
    recv_buffer_bytes:
        Receiver socket buffer capacity in bytes (Linux 2.4 default UDP
        rcvbuf: 64 KB); arrivals beyond this are dropped — the congestion
        mechanism that penalises centralised traffic (many diff replies or
        page replies converging on one node, e.g. the LRC barrier manager /
        accumulator).
    red_threshold_bytes:
        Early-drop threshold.  When a receiver's buffered bytes exceed this,
        arrivals are dropped with probability growing linearly from 0 at the
        threshold to 1 at the hard limit (RED-style).  Bursts of *large*
        messages fill the buffer; the tiny VC barrier messages never do —
        the paper's "Rexmit" asymmetry between LRC_d and VC_d.
    drop_seed / random_drop_prob:
        Optional uniform random loss (seeded, deterministic).  Defaults to
        zero: loss in the default model comes from buffer congestion only,
        controlled by the same seed.
    rexmit_timeout:
        Base retransmission timeout, seconds.  The paper observes ~1 s of
        waiting per retransmission.
    max_retries:
        Retransmission attempts before the transport gives up.
    backoff_factor:
        Multiplier applied to the timeout after every retransmission
        (exponential backoff).  The default 1.0 keeps the paper's fixed
        schedule — every matrix cell stays bit-identical.
    backoff_max:
        Cap on any single backed-off timeout, seconds; 0 means uncapped.
    backoff_jitter:
        Maximum *fraction* of deterministic jitter added to each timeout
        (0.1 → each wait is stretched by up to 10%, derived from a run-local
        send sequence number and the attempt so runs stay reproducible).
        Desynchronises retransmission storms under congestion.
    ack_bytes:
        Size of a transport-level acknowledgement.
    """

    bandwidth_bps: float = 100e6
    switch_latency: float = 20e-6
    send_overhead: float = 60e-6
    recv_overhead: float = 60e-6
    header_bytes: int = 42
    recv_buffer_bytes: int = 128 * 1024
    red_threshold_bytes: int = 80 * 1024
    random_drop_prob: float = 0.0
    drop_seed: int = 12345
    rexmit_timeout: float = 1.0
    max_retries: int = 20
    backoff_factor: float = 1.0
    backoff_max: float = 0.0
    backoff_jitter: float = 0.0
    ack_bytes: int = 42

    def tx_time(self, payload_bytes: int) -> float:
        """Wire occupancy of a message of ``payload_bytes`` at link rate."""
        return (payload_bytes + self.header_bytes) * 8.0 / self.bandwidth_bps

    def retry_schedule(self) -> tuple:
        """Base ack/reply-wait timeout after each transmission attempt.

        ``max_retries + 1`` entries (the original send plus every
        retransmission each get a full timeout).  With the default
        ``backoff_factor`` of 1.0 every entry equals ``rexmit_timeout`` —
        the paper's fixed schedule.
        """
        if self.backoff_factor < 1.0:
            raise ValueError(f"backoff_factor must be >= 1, got {self.backoff_factor!r}")
        if not (0.0 <= self.backoff_jitter < 1.0):
            raise ValueError(
                f"backoff_jitter must be in [0, 1), got {self.backoff_jitter!r}"
            )
        out = []
        t = self.rexmit_timeout
        for _ in range(self.max_retries + 1):
            out.append(t if self.backoff_max <= 0.0 else min(t, self.backoff_max))
            t *= self.backoff_factor
        return tuple(out)

    def lookahead(self) -> float:
        """Conservative-PDES lookahead bound: the switch forwarding latency.

        Every cross-node interaction goes through the switch, so a message
        departing a NIC at time t cannot affect any other node before
        ``t + switch_latency``.  The partitioned driver uses this as the
        synchronization window width: a window ``[T, T + lookahead())`` can
        be executed by every partition independently, because no event
        inside it can generate a cross-partition arrival inside it.
        """
        if self.switch_latency <= 0.0:
            raise ValueError(
                "PDES needs a positive switch_latency for lookahead; "
                f"got {self.switch_latency!r}"
            )
        return self.switch_latency

    def min_send_delay(self) -> float:
        """Lower bound on (event executes → its message reaches the switch).

        Every send goes ``Nic.send → _tx_start → _tx_done``, costing at
        least the fixed send overhead plus the empty-payload wire time
        before ``Switch.transfer`` runs.  The PDES lease protocol uses this
        as δ_send: an event at time ``t`` cannot put a *new* frame on the
        switch before ``t + min_send_delay()``.
        """
        return self.send_overhead + self.tx_time(0)

    def min_deliver_delay(self) -> float:
        """Lower bound on (frame arrives at a NIC → payload handed over).

        Delivery goes ``on_arrival → _rx_start → _rx_done``, costing at
        least the empty-payload wire time plus the receive overhead.  The
        PDES lease protocol uses this as δ_recv when bounding how soon an
        injected frame can trigger further cross-partition influence.
        """
        return self.tx_time(0) + self.recv_overhead

    def worst_case_retry_window(self) -> float:
        """Longest interval after first receipt during which the sender can
        still retransmit: every timeout at full jitter stretch.  The
        transport derives its duplicate horizon from this."""
        return sum(self.retry_schedule()) * (1.0 + self.backoff_jitter)


@dataclass
class NodeConfig:
    """Per-node parameters.

    Attributes
    ----------
    cpu_hz:
        Processor clock (paper: 350 MHz Pentium-class).
    mem_copy_bps:
        Memory bandwidth for page/diff copies (twin creation, diff apply).
    page_size:
        Virtual-memory page size in bytes (paper: 4 KB).
    """

    cpu_hz: float = 350e6
    mem_copy_bps: float = 80e6  # ~80 MB/s copy bandwidth on a 350 MHz PC
    page_size: int = 4096

    def cycles(self, n: float) -> float:
        """Seconds taken by ``n`` cycles on this node."""
        return n / self.cpu_hz

    def copy_time(self, nbytes: int) -> float:
        """Seconds to memcpy ``nbytes`` locally."""
        return nbytes / self.mem_copy_bps
