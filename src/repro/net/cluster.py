"""Cluster: nodes, dispatcher daemons, and wiring.

A :class:`Node` is one simulated PC: a CPU (time charged through
:meth:`Node.compute`), a NIC, a reliable transport endpoint, and a
**dispatcher daemon** that processes incoming protocol messages *serially* —
exactly like a SIGIO handler in TreadMarks.  Serial handler execution is what
turns the LRC barrier manager into the bottleneck the paper measures: 2(n-1)
messages must be handled one after another at node 0.

Protocol layers register generator handlers per :class:`MessageKind`;
handlers may charge compute time and send messages but must never block on a
remote request (one-way sends only), which makes the system deadlock-free by
construction.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from repro.sim import Channel, Simulator, Timeout
from repro.net.config import NetConfig, NodeConfig
from repro.net.message import Message, MessageKind
from repro.net.nic import Nic, Switch
from repro.net.stats import NetStats
from repro.net.transport import Transport

__all__ = ["Cluster", "Node"]

Handler = Callable[[Message], Generator]


class Node:
    """One simulated cluster node."""

    def __init__(self, sim: Simulator, node_id: int, netcfg: NetConfig, nodecfg: NodeConfig, stats: NetStats):
        self.sim = sim
        self.id = node_id
        self.netcfg = netcfg
        self.cfg = nodecfg
        self.stats = stats
        self.nic = Nic(sim, node_id, netcfg, stats, self._on_frame)
        self.transport = Transport(sim, node_id, self.nic, netcfg, stats)
        self._handlers: dict[MessageKind, Handler] = {}
        self._mailbox: Channel = Channel(sim, name=f"dispatch[{node_id}]")
        sim.spawn(self._dispatcher(), name=f"dispatch-{node_id}")

    # -- protocol plumbing -------------------------------------------------------

    def register_handler(self, kind: MessageKind, handler: Handler) -> None:
        """Install ``handler`` for messages of ``kind`` (one per kind)."""
        if kind in self._handlers:
            raise ValueError(f"node {self.id}: handler for {kind} already registered")
        self._handlers[kind] = handler

    def _on_frame(self, msg: Message) -> None:
        filtered = self.transport.on_receive(msg)
        if filtered is not None:
            self._mailbox.put(filtered)

    def _dispatcher(self) -> Generator:
        while True:
            msg = yield self._mailbox.get()
            handler = self._handlers.get(msg.kind)
            if handler is None:
                raise LookupError(
                    f"node {self.id}: no handler for message kind {msg.kind!r}"
                )
            tracer = self.sim.tracer
            if tracer is None:
                yield from handler(msg)
            else:
                # dispatch-lane span + handler context for causal wake
                # attribution (see repro.obs.tracer, "Causal edges")
                tracer.begin_dispatch(
                    self.id, msg.msg_id, msg.kind.name, msg.src, self.sim.now
                )
                yield from handler(msg)
                tracer.end_dispatch(self.id, self.sim.now)

    # -- communication helpers -----------------------------------------------------

    def send_reliable(self, dst: int, kind: MessageKind, payload: Any, size: int) -> Generator:
        """Reliable one-way send (``yield from``)."""
        if dst == self.id:
            raise ValueError("use local calls, not network sends, to self")
        return self.transport.send_reliable(dst, kind, payload, size)

    def request(self, dst: int, kind: MessageKind, payload: Any, size: int) -> Generator:
        """RPC (``yield from``); resumes with the reply message."""
        if dst == self.id:
            raise ValueError("use local calls, not network requests, to self")
        return self.transport.request(dst, kind, payload, size)

    def reply_to(self, req: Message, kind: MessageKind, payload: Any, size: int) -> None:
        self.transport.reply_to(req, kind, payload, size)

    # -- local costs -----------------------------------------------------------------

    def compute(self, seconds: float) -> Generator:
        """Charge ``seconds`` of CPU time to simulated time (``yield from``)."""
        if seconds > 0:
            faults = self.sim.faults
            if faults is not None:
                # CPU slowdown / pause episodes stretch the charged slice
                seconds = faults.compute_seconds(self.id, seconds)
            yield Timeout(seconds)
        return None

    def compute_cycles(self, cycles: float) -> Generator:
        return self.compute(self.cfg.cycles(cycles))

    def copy_cost(self, nbytes: int) -> Generator:
        """Charge the local memcpy cost of moving ``nbytes``."""
        return self.compute(self.cfg.copy_time(nbytes))


class Cluster:
    """A simulated cluster of ``n`` nodes behind one switch.

    Also owns the simulator and the global statistics object.  Higher layers
    (DSM protocols, the VOPP runtime, MPI) attach themselves to the nodes.
    """

    def __init__(
        self,
        n: int,
        netcfg: Optional[NetConfig] = None,
        nodecfg: Optional[NodeConfig] = None,
        sim: Optional[Simulator] = None,
    ):
        if n < 1:
            raise ValueError("cluster needs at least one node")
        self.sim = sim or Simulator()
        self.netcfg = netcfg or NetConfig()
        self.nodecfg = nodecfg or NodeConfig()
        # one NetStats shard per node: every counter update is node-local,
        # which is what lets a partitioned (PDES) run reproduce serial
        # statistics exactly (see repro.net.stats)
        self.node_stats = [NetStats() for _ in range(n)]
        self.switch = Switch(self.sim, self.netcfg, self.node_stats)
        self.nodes = [
            Node(self.sim, i, self.netcfg, self.nodecfg, self.node_stats[i])
            for i in range(n)
        ]
        for node in self.nodes:
            self.switch.register(node.nic)

    @property
    def stats(self) -> NetStats:
        """Cluster-wide counters: the node shards merged in node order.

        A fresh snapshot per access — mutate the per-node shards, not this.
        """
        return NetStats.merged(self.node_stats)

    @property
    def n(self) -> int:
        return len(self.nodes)

    def __getitem__(self, i: int) -> Node:
        return self.nodes[i]

    def install_faults(self, plan):
        """Install a :class:`repro.faults.FaultPlan` (or injector) on this
        cluster; returns the installed :class:`~repro.faults.FaultInjector`."""
        from repro.faults.injector import install_faults

        return install_faults(self, plan)

    def run(self, until: Optional[float] = None) -> float:
        return self.sim.run(until=until)
