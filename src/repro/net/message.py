"""Message representation and the PDES frame codec.

Payloads are plain Python objects (dicts, dataclasses, numpy arrays); the
*accounted* size is carried explicitly in ``size`` because the simulator does
not serialise anything — protocol code computes the number of bytes the real
system would put on the wire (diff bytes, write-notice records, etc.).

The frame codec (:func:`encode_frames` / :func:`decode_frames` /
:func:`route_frames`) is the wire format of the partitioned (PDES) driver:
cross-partition frames are struct-packed — the canonical ``(dst, t_arr,
t_dep, src, departure#)`` ordering coordinates plus the fixed ``Message``
fields — with only the payload object pickled, per frame.  Packing the
coordinates lets the coordinator route a batch by destination partition
(:func:`route_frames`) by scanning fixed-offset headers and slicing payload
bytes through verbatim, without ever unpickling a payload it merely relays.
"""

from __future__ import annotations

import itertools
import math
import pickle
import struct
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Iterable

__all__ = [
    "Message",
    "MessageKind",
    "encode_frames",
    "decode_frames",
    "route_frames",
]


class MessageKind(str, Enum):
    """Protocol-level message kinds, shared by all DSM protocols and MPI.

    Using one enum keeps the dispatcher simple and lets the statistics layer
    break message counts down uniformly.
    """

    # transport
    ACK = "ack"
    # lock / barrier (LRC)
    LOCK_ACQUIRE = "lock_acquire"
    LOCK_GRANT = "lock_grant"
    LOCK_FORWARD = "lock_forward"
    BARRIER_ARRIVE = "barrier_arrive"
    BARRIER_RELEASE = "barrier_release"
    # view primitives (VC)
    VIEW_ACQUIRE = "view_acquire"
    VIEW_GRANT = "view_grant"
    RVIEW_ACQUIRE = "rview_acquire"
    RVIEW_GRANT = "rview_grant"
    VIEW_RELEASE = "view_release"
    VIEW_RELEASE_OK = "view_release_ok"
    MERGE_VIEWS = "merge_views"
    MERGE_VIEWS_REPLY = "merge_views_reply"
    # diff machinery
    DIFF_REQUEST = "diff_request"
    DIFF_REPLY = "diff_reply"
    PAGE_REQUEST = "page_request"
    PAGE_REPLY = "page_reply"
    # MPI
    MPI_DATA = "mpi_data"
    MPI_BARRIER_ARRIVE = "mpi_barrier_arrive"
    MPI_BARRIER_RELEASE = "mpi_barrier_release"
    # tests / generic
    TEST = "test"


_msg_ids = itertools.count(1)


def set_msg_id_base(base: int) -> None:
    """Restart the message-id counter at ``base``.

    The PDES fork driver calls this once in each freshly forked partition
    process with a disjoint base, so message ids stay globally unique across
    partitions even though every process has its own counter — duplicate
    suppression keys on ``(src, msg_id)`` and the trace merge unifies the two
    sides of a cross-partition message by raw id.  Never call this mid-run.
    """
    global _msg_ids
    _msg_ids = itertools.count(base)


@dataclass(slots=True)
class Message:
    """A single protocol message.

    ``size`` is the payload size in bytes as it would appear on the wire
    (headers are added by the network model).  ``msg_id`` is globally unique
    and used for ack matching and duplicate suppression; ``req_id`` links a
    reply to its request.
    """

    src: int
    dst: int
    kind: MessageKind
    payload: Any
    size: int
    need_ack: bool = False
    req_id: int | None = None
    is_reply: bool = False
    msg_id: int = field(default_factory=lambda: next(_msg_ids))
    attempt: int = 0

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError(f"negative message size: {self.size}")
        if self.src == self.dst:
            raise ValueError("loopback messages must not reach the network")

    def wire_copy(self) -> "Message":
        """Shallow copy representing one transmission attempt on the wire."""
        clone = Message.__new__(Message)
        clone.src = self.src
        clone.dst = self.dst
        clone.kind = self.kind
        clone.payload = self.payload
        clone.size = self.size
        clone.need_ack = self.need_ack
        clone.req_id = self.req_id
        clone.is_reply = self.is_reply
        clone.msg_id = self.msg_id
        clone.attempt = self.attempt
        return clone


# -- PDES frame codec --------------------------------------------------------------
#
# One record per frame:
#
#   dst:i32  t_arr:f64  t_dep:f64  src:i32  departure#:i64        (routing
#   kind:u8  size:i64  need_ack:u8  is_reply:u8  req_id:i64        coordinates)
#   msg_id:i64  attempt:i32  payload_len:u32                       (Message fields)
#
# followed by payload_len bytes of pickled payload.  req_id uses -1 for None.
# Kinds travel as their index in MessageKind declaration order, which is
# stable across fork (both sides import the same module).

_FRAME = struct.Struct("<iddiqBqBBqqiI")
_FRAME_HEAD = struct.Struct("<id")  # dst, t_arr — routing reads
_FRAME_SIZE = struct.Struct("<q")  # accounted wire size — induced-bound read
_SIZE_OFFSET = struct.calcsize("<iddiqB")
_FRAME_PLEN = struct.Struct("<I")
_PLEN_OFFSET = _FRAME.size - _FRAME_PLEN.size
_KIND_LIST = list(MessageKind)
_KIND_INDEX = {k: i for i, k in enumerate(_KIND_LIST)}
_PICKLE_PROTO = pickle.HIGHEST_PROTOCOL


def encode_frames(frames: Iterable[tuple]) -> bytes:
    """Pack ``(dst, t_arr, t_dep, src, departure#, msg)`` frames into bytes.

    Returns ``b""`` for an empty batch — the null-barrier sentinel.
    """
    parts = []
    pack = _FRAME.pack
    dumps = pickle.dumps
    kind_index = _KIND_INDEX
    for dst, t_arr, t_dep, src, dep, msg in frames:
        payload = dumps(msg.payload, _PICKLE_PROTO)
        parts.append(pack(
            dst, t_arr, t_dep, src, dep,
            kind_index[msg.kind], msg.size, msg.need_ack, msg.is_reply,
            -1 if msg.req_id is None else msg.req_id,
            msg.msg_id, msg.attempt, len(payload),
        ))
        parts.append(payload)
    return b"".join(parts)


def decode_frames(buf: bytes) -> list[tuple]:
    """Inverse of :func:`encode_frames`; rebuilds full ``Message`` objects."""
    out = []
    off = 0
    end = len(buf)
    unpack = _FRAME.unpack_from
    rec_size = _FRAME.size
    loads = pickle.loads
    kinds = _KIND_LIST
    while off < end:
        (dst, t_arr, t_dep, src, dep, kind, size, need_ack, is_reply,
         req_id, msg_id, attempt, plen) = unpack(buf, off)
        off += rec_size
        msg = Message.__new__(Message)
        msg.src = src
        msg.dst = dst
        msg.kind = kinds[kind]
        msg.payload = loads(buf[off:off + plen])
        msg.size = size
        msg.need_ack = bool(need_ack)
        msg.req_id = None if req_id == -1 else req_id
        msg.is_reply = bool(is_reply)
        msg.msg_id = msg_id
        msg.attempt = attempt
        off += plen
        out.append((dst, t_arr, t_dep, src, dep, msg))
    return out


def route_frames(
    buffers: Iterable[bytes], dest_of: dict, nparts: int,
    byte_seconds: float = 0.0,
) -> tuple[list[bytes], list[float], list[float]]:
    """Merge encoded frame buffers and split them by destination partition.

    Scans only the fixed-offset ``(dst, t_arr, size, payload_len)`` header
    of each record and slices the record through verbatim — relayed
    payloads are never unpickled.  Returns ``(per_partition_buffers,
    arrival_mins, load_mins)``: partition ``p`` gets ``b""`` and
    ``math.inf`` when nothing routes to it.  ``load_mins[p]`` is the
    minimum over routed frames of ``t_arr + byte_seconds * size`` — with
    ``byte_seconds`` the per-payload-byte receive wire time, this is when
    the earliest frame can clear its destination's receive wire, which the
    PDES coordinator uses to bound the influence the injected frames can
    induce (a 2 KiB frame cannot wake a handler until 100-odd µs after a
    zero-size one arriving at the same instant).
    """
    chunks: list[list[bytes]] = [[] for _ in range(nparts)]
    mins = [math.inf] * nparts
    loads = [math.inf] * nparts
    head = _FRAME_HEAD.unpack_from
    size_at = _FRAME_SIZE.unpack_from
    plen_at = _FRAME_PLEN.unpack_from
    rec_size = _FRAME.size
    size_off = _SIZE_OFFSET
    plen_off = _PLEN_OFFSET
    for buf in buffers:
        off = 0
        end = len(buf)
        while off < end:
            dst, t_arr = head(buf, off)
            nxt = off + rec_size + plen_at(buf, off + plen_off)[0]
            p = dest_of[dst]
            chunks[p].append(buf[off:nxt])
            if t_arr < mins[p]:
                mins[p] = t_arr
            load = t_arr + byte_seconds * size_at(buf, off + size_off)[0]
            if load < loads[p]:
                loads[p] = load
            off = nxt
    return [b"".join(c) for c in chunks], mins, loads
