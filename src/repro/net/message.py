"""Message representation.

Payloads are plain Python objects (dicts, dataclasses, numpy arrays); the
*accounted* size is carried explicitly in ``size`` because the simulator does
not serialise anything — protocol code computes the number of bytes the real
system would put on the wire (diff bytes, write-notice records, etc.).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any

__all__ = ["Message", "MessageKind"]


class MessageKind(str, Enum):
    """Protocol-level message kinds, shared by all DSM protocols and MPI.

    Using one enum keeps the dispatcher simple and lets the statistics layer
    break message counts down uniformly.
    """

    # transport
    ACK = "ack"
    # lock / barrier (LRC)
    LOCK_ACQUIRE = "lock_acquire"
    LOCK_GRANT = "lock_grant"
    LOCK_FORWARD = "lock_forward"
    BARRIER_ARRIVE = "barrier_arrive"
    BARRIER_RELEASE = "barrier_release"
    # view primitives (VC)
    VIEW_ACQUIRE = "view_acquire"
    VIEW_GRANT = "view_grant"
    RVIEW_ACQUIRE = "rview_acquire"
    RVIEW_GRANT = "rview_grant"
    VIEW_RELEASE = "view_release"
    VIEW_RELEASE_OK = "view_release_ok"
    MERGE_VIEWS = "merge_views"
    MERGE_VIEWS_REPLY = "merge_views_reply"
    # diff machinery
    DIFF_REQUEST = "diff_request"
    DIFF_REPLY = "diff_reply"
    PAGE_REQUEST = "page_request"
    PAGE_REPLY = "page_reply"
    # MPI
    MPI_DATA = "mpi_data"
    MPI_BARRIER_ARRIVE = "mpi_barrier_arrive"
    MPI_BARRIER_RELEASE = "mpi_barrier_release"
    # tests / generic
    TEST = "test"


_msg_ids = itertools.count(1)


def set_msg_id_base(base: int) -> None:
    """Restart the message-id counter at ``base``.

    The PDES fork driver calls this once in each freshly forked partition
    process with a disjoint base, so message ids stay globally unique across
    partitions even though every process has its own counter — duplicate
    suppression keys on ``(src, msg_id)`` and the trace merge unifies the two
    sides of a cross-partition message by raw id.  Never call this mid-run.
    """
    global _msg_ids
    _msg_ids = itertools.count(base)


@dataclass(slots=True)
class Message:
    """A single protocol message.

    ``size`` is the payload size in bytes as it would appear on the wire
    (headers are added by the network model).  ``msg_id`` is globally unique
    and used for ack matching and duplicate suppression; ``req_id`` links a
    reply to its request.
    """

    src: int
    dst: int
    kind: MessageKind
    payload: Any
    size: int
    need_ack: bool = False
    req_id: int | None = None
    is_reply: bool = False
    msg_id: int = field(default_factory=lambda: next(_msg_ids))
    attempt: int = 0

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError(f"negative message size: {self.size}")
        if self.src == self.dst:
            raise ValueError("loopback messages must not reach the network")

    def wire_copy(self) -> "Message":
        """Shallow copy representing one transmission attempt on the wire."""
        clone = Message.__new__(Message)
        clone.src = self.src
        clone.dst = self.dst
        clone.kind = self.kind
        clone.payload = self.payload
        clone.size = self.size
        clone.need_ack = self.need_ack
        clone.req_id = self.req_id
        clone.is_reply = self.is_reply
        clone.msg_id = self.msg_id
        clone.attempt = self.attempt
        return clone
