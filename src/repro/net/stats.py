"""Statistics counters matching the paper's table rows.

One :class:`NetStats` instance is shared by the whole cluster; protocol layers
add their own counters (diff requests, barrier time, acquire time) through
:class:`repro.core.stats.RunStats`, which embeds this object.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["NetStats"]


@dataclass
class NetStats:
    """Global network counters.

    ``num_msg``/``data_bytes`` mirror the paper's "Num. Msg" and "Data" rows:
    every protocol message (including replies, excluding pure transport acks)
    is counted once per *original* send; retransmissions are counted in
    ``rexmit`` (as in the paper's "Rexmit" row) and their bytes in
    ``rexmit_bytes``.
    """

    num_msg: int = 0
    data_bytes: int = 0
    acks: int = 0
    rexmit: int = 0
    rexmit_bytes: int = 0
    drops: int = 0
    # kind -> [count, bytes] (mutated in place on the send hot path)
    by_kind: dict = field(default_factory=dict)
    # cause ("overflow" | "red" | "random" | "fault") -> count
    drops_by_cause: dict = field(default_factory=dict)
    # kind -> count of retransmissions of that kind
    rexmit_by_kind: dict = field(default_factory=dict)
    # enum -> str(enum), memoised: str() on an Enum member is surprisingly
    # expensive and count_send runs once per protocol message
    _kind_names: dict = field(default_factory=dict, repr=False)

    def count_send(self, kind: str, size: int) -> None:
        self.num_msg += 1
        self.data_bytes += size
        k = self._kind_names.get(kind)
        if k is None:
            k = self._kind_names[kind] = str(kind)
        rec = self.by_kind.get(k)
        if rec is None:
            self.by_kind[k] = [1, size]
        else:
            rec[0] += 1
            rec[1] += size

    def count_ack(self) -> None:
        self.acks += 1

    def count_rexmit(self, size: int, kind=None) -> None:
        self.rexmit += 1
        self.rexmit_bytes += size
        if kind is not None:
            k = self._kind_names.get(kind)
            if k is None:
                k = self._kind_names[kind] = str(kind)
            self.rexmit_by_kind[k] = self.rexmit_by_kind.get(k, 0) + 1

    def count_drop(self, cause: str = "overflow") -> None:
        self.drops += 1
        self.drops_by_cause[cause] = self.drops_by_cause.get(cause, 0) + 1

    def snapshot(self) -> dict:
        """Plain-dict copy for reporting."""
        return {
            "num_msg": self.num_msg,
            "data_bytes": self.data_bytes,
            "acks": self.acks,
            "rexmit": self.rexmit,
            "rexmit_bytes": self.rexmit_bytes,
            "drops": self.drops,
            "drops_by_cause": dict(sorted(self.drops_by_cause.items())),
            "rexmit_by_kind": dict(sorted(self.rexmit_by_kind.items())),
            "by_kind": {
                k: {"count": v[0], "bytes": v[1]} for k, v in self.by_kind.items()
            },
        }
