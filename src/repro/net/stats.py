"""Statistics counters matching the paper's table rows.

Each cluster node accumulates into its **own** :class:`NetStats` shard;
``Cluster.stats`` merges the shards in node order on demand.  Sharding keeps
every counter update strictly node-local, so a partitioned (PDES) run — where
each OS process drives a subset of nodes — produces byte-identical statistics
to a serial run: the merge order (node 0, 1, 2, ...) fixes the floating-point
summation order independently of how events interleaved across nodes.
Protocol layers add their own counters (diff requests, barrier time, acquire
time) through :class:`repro.protocols.runstats.RunStats`, which embeds the
merged object.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["NetStats"]


@dataclass
class NetStats:
    """Global network counters.

    ``num_msg``/``data_bytes`` mirror the paper's "Num. Msg" and "Data" rows:
    every protocol message (including replies, excluding pure transport acks)
    is counted once per *original* send; retransmissions are counted in
    ``rexmit`` (as in the paper's "Rexmit" row) and their bytes in
    ``rexmit_bytes``.
    """

    num_msg: int = 0
    data_bytes: int = 0
    acks: int = 0
    rexmit: int = 0
    rexmit_bytes: int = 0
    drops: int = 0
    # kind -> [count, bytes] (mutated in place on the send hot path)
    by_kind: dict = field(default_factory=dict)
    # cause ("overflow" | "red" | "random" | "fault") -> count
    drops_by_cause: dict = field(default_factory=dict)
    # kind -> count of retransmissions of that kind
    rexmit_by_kind: dict = field(default_factory=dict)
    # enum -> str(enum), memoised: str() on an Enum member is surprisingly
    # expensive and count_send runs once per protocol message
    _kind_names: dict = field(default_factory=dict, repr=False)

    def count_send(self, kind: str, size: int) -> None:
        self.num_msg += 1
        self.data_bytes += size
        k = self._kind_names.get(kind)
        if k is None:
            k = self._kind_names[kind] = str(kind)
        rec = self.by_kind.get(k)
        if rec is None:
            self.by_kind[k] = [1, size]
        else:
            rec[0] += 1
            rec[1] += size

    def count_ack(self) -> None:
        self.acks += 1

    def count_rexmit(self, size: int, kind=None) -> None:
        self.rexmit += 1
        self.rexmit_bytes += size
        if kind is not None:
            k = self._kind_names.get(kind)
            if k is None:
                k = self._kind_names[kind] = str(kind)
            self.rexmit_by_kind[k] = self.rexmit_by_kind.get(k, 0) + 1

    def count_drop(self, cause: str = "overflow") -> None:
        self.drops += 1
        self.drops_by_cause[cause] = self.drops_by_cause.get(cause, 0) + 1

    @classmethod
    def merged(cls, shards) -> "NetStats":
        """Sum per-node shards (in the order given) into a fresh NetStats.

        Callers must pass shards in node order: dict key insertion order in
        the result (which reaches JSON reports) then depends only on each
        node's own history, never on cross-node event interleaving.
        """
        out = cls()
        for s in shards:
            out.num_msg += s.num_msg
            out.data_bytes += s.data_bytes
            out.acks += s.acks
            out.rexmit += s.rexmit
            out.rexmit_bytes += s.rexmit_bytes
            out.drops += s.drops
            for k, v in s.by_kind.items():
                rec = out.by_kind.get(k)
                if rec is None:
                    out.by_kind[k] = [v[0], v[1]]
                else:
                    rec[0] += v[0]
                    rec[1] += v[1]
            for k, n in s.drops_by_cause.items():
                out.drops_by_cause[k] = out.drops_by_cause.get(k, 0) + n
            for k, n in s.rexmit_by_kind.items():
                out.rexmit_by_kind[k] = out.rexmit_by_kind.get(k, 0) + n
        return out

    def snapshot(self) -> dict:
        """Plain-dict copy for reporting."""
        return {
            "num_msg": self.num_msg,
            "data_bytes": self.data_bytes,
            "acks": self.acks,
            "rexmit": self.rexmit,
            "rexmit_bytes": self.rexmit_bytes,
            "drops": self.drops,
            "drops_by_cause": dict(sorted(self.drops_by_cause.items())),
            "rexmit_by_kind": dict(sorted(self.rexmit_by_kind.items())),
            "by_kind": {
                k: {"count": v[0], "bytes": v[1]} for k, v in self.by_kind.items()
            },
        }
