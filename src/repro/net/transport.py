"""Reliable transport over the lossy NIC/switch layer.

Three communication idioms, mirroring what a TreadMarks-era DSM built over
UDP:

* :meth:`Transport.post` — unreliable one-way datagram (used for transport
  acks only);
* :meth:`Transport.send_reliable` — one-way message, acked by the receiver's
  transport, retransmitted on timeout (used for write-notice pushes, barrier
  arrivals, view releases);
* :meth:`Transport.request` — request/reply RPC; the reply is the implicit
  ack, the *requester* retransmits on timeout, and the receiver caches
  replies per request id so duplicated requests never re-run the handler
  (at-most-once execution).

Statistics: original sends are counted in ``NetStats.num_msg``/``data_bytes``
(replies too, acks not); every retransmission increments ``rexmit``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from repro.sim import Event, Simulator, Timeout
from repro.net.message import Message, MessageKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.config import NetConfig
    from repro.net.nic import Nic
    from repro.net.stats import NetStats

__all__ = ["Transport", "RequestError"]


class RequestError(RuntimeError):
    """A reliable send or request exhausted its retransmission budget."""


class Transport:
    """Per-node reliable messaging endpoint.

    The dispatcher (in :mod:`repro.net.cluster`) feeds every received message
    through :meth:`on_receive`; messages consumed by the transport (acks,
    duplicate suppressions, reply matching) return ``None``, everything else
    is returned for protocol-level dispatch.
    """

    def __init__(self, sim: Simulator, node_id: int, nic: "Nic", cfg: "NetConfig", stats: "NetStats"):
        self.sim = sim
        self.node_id = node_id
        self.nic = nic
        self.cfg = cfg
        self.stats = stats
        self._ack_events: dict[int, Event] = {}
        self._pending_replies: dict[int, Event] = {}
        self._seen_reliable: set[int] = set()
        self._reply_cache: dict[tuple[int, int], Message] = {}
        self._requests_in_progress: set[tuple[int, int]] = set()

    # -- send paths -------------------------------------------------------------

    def post(self, msg: Message) -> None:
        """Fire-and-forget, unreliable, uncounted except for acks."""
        self.nic.send(msg)

    def send_reliable(
        self,
        dst: int,
        kind: MessageKind,
        payload: Any,
        size: int,
    ) -> Generator:
        """One-way reliable send; completes when the receiver acked.

        Usage: ``yield from transport.send_reliable(...)``.
        """
        msg = Message(
            src=self.node_id, dst=dst, kind=kind, payload=payload, size=size, need_ack=True
        )
        self.stats.count_send(kind, size)
        acked = Event(self.sim)
        self._ack_events[msg.msg_id] = acked
        try:
            yield from self._retry_until(msg, acked)
        finally:
            self._ack_events.pop(msg.msg_id, None)

    def request(
        self,
        dst: int,
        kind: MessageKind,
        payload: Any,
        size: int,
    ) -> Generator:
        """Request/reply RPC; resumes with the reply :class:`Message`."""
        msg = Message(
            src=self.node_id, dst=dst, kind=kind, payload=payload, size=size, need_ack=False
        )
        msg.req_id = msg.msg_id
        self.stats.count_send(kind, size)
        replied = Event(self.sim)
        self._pending_replies[msg.req_id] = replied
        try:
            reply = yield from self._retry_until(msg, replied)
        finally:
            self._pending_replies.pop(msg.req_id, None)
        return reply

    def reply_to(self, req: Message, kind: MessageKind, payload: Any, size: int) -> None:
        """Send (and cache) the reply to a request message."""
        reply = Message(
            src=self.node_id,
            dst=req.src,
            kind=kind,
            payload=payload,
            size=size,
            req_id=req.req_id,
            is_reply=True,
        )
        self.stats.count_send(kind, size)
        key = (req.src, req.req_id)
        self._reply_cache[key] = reply
        self._requests_in_progress.discard(key)
        self.nic.send(reply)

    def _retry_until(self, msg: Message, done: Event) -> Generator:
        """Transmit ``msg``, retransmitting until ``done`` fires."""
        self.nic.send(msg.wire_copy())
        timeout = self.cfg.rexmit_timeout
        for attempt in range(self.cfg.max_retries):
            timer = _Timer(self.sim, timeout)
            result = yield from _first_of(self.sim, done, timer.event)
            if result is done:
                timer.cancel()
                return done._value
            # timed out: retransmit
            self.stats.count_rexmit(msg.size)
            retry = msg.wire_copy()
            retry.attempt = attempt + 1
            self.nic.send(retry)
        raise RequestError(
            f"node {self.node_id}: {msg.kind} to {msg.dst} lost after "
            f"{self.cfg.max_retries} retries"
        )

    # -- receive path -------------------------------------------------------------

    def on_receive(self, msg: Message) -> Message | None:
        """Filter a received message; return it iff the protocol should see it."""
        if msg.kind is MessageKind.ACK:
            evt = self._ack_events.get(msg.payload)
            if evt is not None:
                evt.set()
            return None
        if msg.need_ack:
            ack = Message(
                src=self.node_id,
                dst=msg.src,
                kind=MessageKind.ACK,
                payload=msg.msg_id,
                size=self.cfg.ack_bytes,
            )
            self.stats.count_ack()
            self.post(ack)
            if msg.msg_id in self._seen_reliable:
                return None  # duplicate of an already-delivered reliable send
            self._seen_reliable.add(msg.msg_id)
            return msg
        if msg.is_reply:
            evt = self._pending_replies.get(msg.req_id)
            if evt is not None:
                evt.set(msg)
            return None  # stale/duplicate reply
        if msg.req_id is not None:
            key = (msg.src, msg.req_id)
            cached = self._reply_cache.get(key)
            if cached is not None:
                # reply was lost: resend it without re-running the handler
                self.stats.count_rexmit(cached.size)
                self.nic.send(cached.wire_copy())
                return None
            if key in self._requests_in_progress:
                return None  # duplicate while the handler is still running
            self._requests_in_progress.add(key)
            return msg
        return msg


class _Timer:
    """Cancellable one-shot timer built on an :class:`Event`."""

    def __init__(self, sim: Simulator, delay: float):
        self.event = Event(sim)
        self._cancelled = False
        sim.schedule(delay, self._fire)

    def _fire(self) -> None:
        if not self._cancelled:
            self.event.set()

    def cancel(self) -> None:
        self._cancelled = True


def _first_of(sim: Simulator, a: Event, b: Event) -> Generator:
    """Block until either event fires; return the one that fired first."""
    if a.is_set:
        return a
    if b.is_set:
        return b
    winner = Event(sim)

    def chain(evt: Event) -> None:
        if not winner.is_set:
            winner.set(evt)

    a._waiters.append(_Thunk(sim, lambda _v: chain(a)))
    b._waiters.append(_Thunk(sim, lambda _v: chain(b)))
    result = yield winner.wait()
    return result


class _Thunk:
    """Adapter letting a callback sit on an Event wait queue like a process."""

    def __init__(self, sim: Simulator, fn):
        self.sim = sim
        self._fn = fn

    def _resume(self, value=None, exc=None):  # mimics Process._resume signature
        self._fn(value)
