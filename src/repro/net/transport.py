"""Reliable transport over the lossy NIC/switch layer.

Three communication idioms, mirroring what a TreadMarks-era DSM built over
UDP:

* :meth:`Transport.post` — unreliable one-way datagram (used for transport
  acks only);
* :meth:`Transport.send_reliable` — one-way message, acked by the receiver's
  transport, retransmitted on timeout (used for write-notice pushes, barrier
  arrivals, view releases);
* :meth:`Transport.request` — request/reply RPC; the reply is the implicit
  ack, the *requester* retransmits on timeout, and the receiver caches
  replies per request id so duplicated requests never re-run the handler
  (at-most-once execution).

Retransmission waits use :meth:`Event.wait_timeout` — the kernel's
cancellable wait primitive — so each ack/timeout race costs zero auxiliary
event or callback allocations and the losing wake-up is deregistered.

Retransmission timing follows :meth:`NetConfig.retry_schedule`: a fixed
1 s timeout by default (the paper's observed behaviour), optionally
exponential backoff (``backoff_factor``/``backoff_max``) with deterministic
per-message jitter (``backoff_jitter``) derived from a run-local send
sequence number and the attempt — no RNG state, so runs stay
bit-reproducible even when replayed inside one process.

Duplicate-suppression state (``_seen_reliable``, ``_reply_cache``) is
bounded: entries are evicted once they are older than the *duplicate
horizon* — derived from the configured worst-case retry window
(:meth:`NetConfig.worst_case_retry_window`, every timeout at full jitter
stretch) plus one base timeout of slack for delivery delays — which keeps
the at-most-once guarantee under any backoff schedule while holding table
sizes proportional to in-flight traffic rather than run length.

Statistics: original sends are counted in ``NetStats.num_msg``/``data_bytes``
(replies too, acks not); every retransmission increments ``rexmit``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from repro.sim import Event, Simulator, TIMED_OUT

from repro.net.message import Message, MessageKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.config import NetConfig
    from repro.net.nic import Nic
    from repro.net.stats import NetStats

__all__ = ["Transport", "RequestError"]


class RequestError(RuntimeError):
    """A reliable send or request exhausted its retransmission budget.

    Carries structured context (``node``, ``dst``, ``kind``, ``attempts``,
    ``sim_time``) so the run level can escalate it into a
    :class:`repro.faults.failure.RunFailure` diagnostic instead of a
    traceback.
    """

    def __init__(
        self,
        message: str,
        *,
        node: "int | None" = None,
        dst: "int | None" = None,
        kind: "str | None" = None,
        attempts: "int | None" = None,
        sim_time: "float | None" = None,
    ):
        super().__init__(message)
        self.node = node
        self.dst = dst
        self.kind = kind
        self.attempts = attempts
        self.sim_time = sim_time


def _jitter_unit(key: int, attempt: int) -> float:
    """Deterministic pseudo-random fraction in [0, 1) for retry jitter.

    A cheap integer hash of (send key, attempt): no RNG object, no global
    state, so jittered schedules replay identically and perturb nothing
    else.  The key is a *run-local* per-endpoint sequence number (not the
    process-global message id, which would differ between two runs executed
    in the same process and break in-process replay).
    """
    x = (key * 2654435761 + attempt * 40503) & 0xFFFFFFFF
    x ^= x >> 16
    x = (x * 2246822519) & 0xFFFFFFFF
    x ^= x >> 13
    return x / 4294967296.0


class Transport:
    """Per-node reliable messaging endpoint.

    The dispatcher (in :mod:`repro.net.cluster`) feeds every received message
    through :meth:`on_receive`; messages consumed by the transport (acks,
    duplicate suppressions, reply matching) return ``None``, everything else
    is returned for protocol-level dispatch.
    """

    def __init__(self, sim: Simulator, node_id: int, nic: "Nic", cfg: "NetConfig", stats: "NetStats"):
        self.sim = sim
        self.node_id = node_id
        self.nic = nic
        self.cfg = cfg
        self.stats = stats
        self._ack_events: dict[int, Event] = {}
        self._pending_replies: dict[int, Event] = {}
        # (src, id) -> simulated time of first receipt; insertion order ==
        # time order.  Keyed by source as well as id: message ids are only
        # unique per sender (each PDES partition allocates from its own
        # counter), so a bare-id table could suppress a fresh message that
        # happened to share an id with an earlier one from another node.
        self._seen_reliable: dict[tuple[int, int], float] = {}
        # (src, req_id) -> (time cached, reply); insertion order == time order
        self._reply_cache: dict[tuple[int, int], tuple[float, Message]] = {}
        self._requests_in_progress: set[tuple[int, int]] = set()
        # per-attempt ack/reply timeouts (fixed by default, backed-off when
        # configured); cached once — the config never changes mid-run
        self._schedule = cfg.retry_schedule()
        self._jitter = cfg.backoff_jitter
        self._send_seq = 0  # jitter key source; run-local, replay-stable
        # a duplicate of a message first received at t can arrive no later
        # than t + the worst-case retry window (every timeout at full jitter
        # stretch) plus delivery delays; one base timeout of slack absorbs
        # those delays.  Derived, not hard-coded: a backoff schedule widens
        # the window and the horizon must widen with it or at-most-once
        # silently breaks.
        self._dup_horizon = cfg.worst_case_retry_window() + cfg.rexmit_timeout

    # -- send paths -------------------------------------------------------------

    def post(self, msg: Message) -> None:
        """Fire-and-forget, unreliable, uncounted except for acks."""
        self.nic.send(msg)

    def send_reliable(
        self,
        dst: int,
        kind: MessageKind,
        payload: Any,
        size: int,
    ) -> Generator:
        """One-way reliable send; completes when the receiver acked.

        Usage: ``yield from transport.send_reliable(...)``.
        """
        msg = Message(
            src=self.node_id, dst=dst, kind=kind, payload=payload, size=size, need_ack=True
        )
        self.stats.count_send(kind, size)
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.causal_send(msg.msg_id, self.node_id, self.sim.now, kind.name)
        acked = Event(self.sim)
        self._ack_events[msg.msg_id] = acked
        try:
            yield from self._retry_until(msg, acked)
        finally:
            self._ack_events.pop(msg.msg_id, None)

    def request(
        self,
        dst: int,
        kind: MessageKind,
        payload: Any,
        size: int,
    ) -> Generator:
        """Request/reply RPC; resumes with the reply :class:`Message`."""
        msg = Message(
            src=self.node_id, dst=dst, kind=kind, payload=payload, size=size, need_ack=False
        )
        msg.req_id = msg.msg_id
        self.stats.count_send(kind, size)
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.causal_send(msg.msg_id, self.node_id, self.sim.now, kind.name)
        replied = Event(self.sim)
        self._pending_replies[msg.req_id] = replied
        try:
            reply = yield from self._retry_until(msg, replied)
        finally:
            self._pending_replies.pop(msg.req_id, None)
        return reply

    def reply_to(self, req: Message, kind: MessageKind, payload: Any, size: int) -> None:
        """Send (and cache) the reply to a request message."""
        reply = Message(
            src=self.node_id,
            dst=req.src,
            kind=kind,
            payload=payload,
            size=size,
            req_id=req.req_id,
            is_reply=True,
        )
        self.stats.count_send(kind, size)
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.causal_send(reply.msg_id, self.node_id, self.sim.now, kind.name)
        key = (req.src, req.req_id)
        self._reply_cache[key] = (self.sim.now, reply)
        self._requests_in_progress.discard(key)
        self.nic.send(reply)

    def _wait_for(self, key: int, attempt: int) -> float:
        """The (possibly backed-off, possibly jittered) timeout after
        transmission ``attempt`` (0 = the original send)."""
        base = self._schedule[attempt]
        if self._jitter:
            return base * (1.0 + self._jitter * _jitter_unit(key, attempt))
        return base

    def _retry_until(self, msg: Message, done: Event) -> Generator:
        """Transmit ``msg``, retransmitting until ``done`` fires.

        Every transmitted copy — including the final retransmission — gets a
        full schedule slot for its ack/reply to come back before
        :class:`RequestError` is raised, so ``max_retries + 1`` copies hit
        the wire in the worst case and each one can complete the send.
        """
        if self._jitter:
            self._send_seq += 1
            jkey = (self._send_seq << 6) + self.node_id
        else:
            jkey = 0  # unused: _wait_for skips the jitter term entirely
        self.nic.send(msg.wire_copy())
        for attempt in range(1, self.cfg.max_retries + 1):
            result = yield done.wait_timeout(self._wait_for(jkey, attempt - 1))
            if result is not TIMED_OUT:
                return result
            self.stats.count_rexmit(msg.size, msg.kind)
            tracer = self.sim.tracer
            if tracer is not None:
                tracer.instant(
                    self.node_id, "transport", "tx",
                    f"rexmit {msg.kind.name}->{msg.dst}", self.sim.now,
                    {"attempt": attempt, "bytes": msg.size},
                )
            retry = msg.wire_copy()
            retry.attempt = attempt
            self.nic.send(retry)
        result = yield done.wait_timeout(
            self._wait_for(jkey, self.cfg.max_retries)
        )
        if result is not TIMED_OUT:
            return result
        raise RequestError(
            f"node {self.node_id}: {msg.kind} to {msg.dst} lost after "
            f"{self.cfg.max_retries} retries",
            node=self.node_id,
            dst=msg.dst,
            kind=msg.kind.name,
            attempts=self.cfg.max_retries,
            sim_time=self.sim.now,
        )

    # -- receive path -------------------------------------------------------------

    def on_receive(self, msg: Message) -> Message | None:
        """Filter a received message; return it iff the protocol should see it."""
        if msg.kind is MessageKind.ACK:
            evt = self._ack_events.get(msg.payload)
            if evt is not None:
                tracer = self.sim.tracer
                if tracer is not None:
                    # the cause is the *original* message (acks have no send
                    # edge), whose edge points back at this very node — so
                    # the critical-path walk charges the whole round trip to
                    # wire and continues locally at the original send time
                    tracer.wake(self.node_id, self.sim.now, msg_id=msg.payload)
                evt.set()
            return None
        if msg.need_ack:
            ack = Message(
                src=self.node_id,
                dst=msg.src,
                kind=MessageKind.ACK,
                payload=msg.msg_id,
                size=self.cfg.ack_bytes,
            )
            self.stats.count_ack()
            self.post(ack)
            seen = self._seen_reliable
            if (msg.src, msg.msg_id) in seen:
                return None  # duplicate of an already-delivered reliable send
            now = self.sim.now
            seen[(msg.src, msg.msg_id)] = now
            self._evict_expired(now)
            return msg
        if msg.is_reply:
            evt = self._pending_replies.get(msg.req_id)
            if evt is not None:
                tracer = self.sim.tracer
                if tracer is not None:
                    tracer.wake(self.node_id, self.sim.now, msg_id=msg.msg_id)
                evt.set(msg)
            return None  # stale/duplicate reply
        if msg.req_id is not None:
            key = (msg.src, msg.req_id)
            cached = self._reply_cache.get(key)
            if cached is not None:
                # reply was lost: resend it without re-running the handler
                self.stats.count_rexmit(cached[1].size, cached[1].kind)
                self.nic.send(cached[1].wire_copy())
                return None
            if key in self._requests_in_progress:
                return None  # duplicate while the handler is still running
            self._requests_in_progress.add(key)
            self._evict_expired(self.sim.now)
            return msg
        return msg

    def _evict_expired(self, now: float) -> None:
        """Drop duplicate-suppression entries older than the horizon.

        Both tables are insertion-ordered dicts stamped with monotone
        simulated time, so expired entries sit at the front and eviction is
        O(evicted) amortised per receive.
        """
        cutoff = now - self._dup_horizon
        seen = self._seen_reliable
        while seen:
            msg_id = next(iter(seen))
            if seen[msg_id] >= cutoff:
                break
            del seen[msg_id]
        cache = self._reply_cache
        while cache:
            key = next(iter(cache))
            if cache[key][0] >= cutoff:
                break
            del cache[key]
