"""Cluster and network model.

Models the paper's testbed ("Godzilla"): 32 PCs with 350 MHz processors
connected by a 100 Mbps switched Ethernet.  The model captures exactly the
effects the paper's evaluation hinges on:

* **serialisation** — each NIC transmits and receives at link rate, so n-1
  nodes bursting at one receiver (the LRC barrier manager) share one 100 Mbps
  inbound link;
* **finite receive buffers** — burst congestion overflows the receiver buffer
  and drops messages (the paper's "message loss");
* **retransmission timeouts** — a lost message costs ~1 simulated second
  (the paper: "One message retransmission results in about 1 second waiting
  time");
* **per-message software overhead** — the fixed UDP/IP cost on a 350 MHz CPU.

All statistics the paper's tables report (message counts, bytes, rexmits) are
counted here.
"""

from repro.net.config import NetConfig, NodeConfig
from repro.net.message import Message, MessageKind
from repro.net.cluster import Cluster, Node
from repro.net.stats import NetStats
from repro.net.transport import Transport, RequestError

__all__ = [
    "NetConfig",
    "NodeConfig",
    "Message",
    "MessageKind",
    "Cluster",
    "Node",
    "NetStats",
    "Transport",
    "RequestError",
]
