"""Paged distributed-shared-memory substrate.

This package provides the machinery every protocol shares:

* a global :class:`AddressSpace` with a bump allocator (packed allocations can
  share pages — the source of *false sharing*; page-aligned allocations give
  each view its own pages),
* per-node page copies with the TreadMarks state machine
  (``NO_COPY → INVALID → RO → RW``),
* **twins** (pristine copies taken at the first write of an interval) and
  **run-length byte diffs** (created by comparing a page against its twin,
  applied at consumers, and *integrated* — merged into a single diff — by the
  VC_sd protocol).

Nothing here touches the network; protocols drive data movement.
"""

from repro.memory.address_space import AddressSpace, Region
from repro.memory.diff import Diff, make_diff, apply_diff, integrate_diffs, full_page_diff
from repro.memory.page import PageCopy, PageState
from repro.memory.manager import MemoryManager

__all__ = [
    "AddressSpace",
    "Region",
    "Diff",
    "make_diff",
    "apply_diff",
    "integrate_diffs",
    "full_page_diff",
    "PageCopy",
    "PageState",
    "MemoryManager",
]
