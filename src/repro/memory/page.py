"""Per-node page copies and the TreadMarks page state machine."""

from __future__ import annotations

from enum import Enum
from typing import Optional

import numpy as np

__all__ = ["PageState", "PageCopy"]


class PageState(Enum):
    """Access state of one node's copy of a page.

    ``NO_COPY``
        The node has never held this page; a fault fetches the full page.
    ``INVALID``
        The node holds a (stale) copy; a fault fetches and applies diffs.
    ``RO``
        Valid for reading; a write fault creates a twin and upgrades to RW.
    ``RW``
        Valid and being written in the current interval (twin exists).
    """

    NO_COPY = "no_copy"
    INVALID = "invalid"
    RO = "ro"
    RW = "rw"


class PageCopy:
    """One node's copy of one page, plus its twin while writable."""

    __slots__ = ("page_id", "size", "state", "data", "twin")

    def __init__(self, page_id: int, size: int):
        self.page_id = page_id
        self.size = size
        self.state = PageState.NO_COPY
        self.data: Optional[np.ndarray] = None
        self.twin: Optional[np.ndarray] = None

    def materialise(self) -> np.ndarray:
        """Allocate the backing array (zero-filled) if not present."""
        if self.data is None:
            self.data = np.zeros(self.size, dtype=np.uint8)
        return self.data

    def make_twin(self) -> None:
        if self.twin is not None:
            raise RuntimeError(f"page {self.page_id}: twin already exists")
        if self.data is None:
            raise RuntimeError(f"page {self.page_id}: cannot twin a page with no data")
        self.twin = self.data.copy()

    def drop_twin(self) -> None:
        self.twin = None

    @property
    def readable(self) -> bool:
        return self.state in (PageState.RO, PageState.RW)

    @property
    def writable(self) -> bool:
        return self.state is PageState.RW

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<PageCopy {self.page_id} {self.state.name}>"
