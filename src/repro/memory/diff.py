"""Run-length byte diffs, the unit of data movement in all three protocols.

A diff records the byte ranges of a page that changed relative to a *twin*
(the pristine copy captured at the first write fault of an interval), as a
list of ``(offset, bytes)`` runs.  Its wire size is what the paper's "Data"
row measures, so the accounting here (:attr:`Diff.wire_size`) matters:

``wire_size = DIFF_HEADER + sum(RUN_HEADER + len(run)) over runs``

which mirrors TreadMarks' (offset, length, data...) encoding.

Hot-path notes: one vectorised run-splitter (:func:`_extract_runs`) serves
both :func:`make_diff` and :func:`integrate_diffs`; a :class:`Diff` lazily
caches a flat ``(indices, values)`` view of its runs (built once per diff,
not once per application — the same diff object is applied at every
receiving node) along with its ``wire_size``/``changed_bytes`` sums.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = [
    "Diff",
    "make_diff",
    "apply_diff",
    "integrate_diffs",
    "full_page_diff",
    "DIFF_HEADER_BYTES",
    "RUN_HEADER_BYTES",
]

DIFF_HEADER_BYTES = 12  # page id + run count + timestamp
RUN_HEADER_BYTES = 4  # offset + length (2 shorts: pages are 4 KB)


@dataclass(frozen=True)
class Diff:
    """Immutable byte-level delta for one page."""

    page_id: int
    runs: tuple[tuple[int, bytes], ...]

    def __post_init__(self) -> None:
        last_end = -1
        for off, data in self.runs:
            if off < 0 or not data:
                raise ValueError(f"bad run (offset={off}, len={len(data)})")
            if off <= last_end:
                raise ValueError("runs must be sorted and non-overlapping")
            last_end = off + len(data) - 1

    @property
    def empty(self) -> bool:
        return not self.runs

    @property
    def changed_bytes(self) -> int:
        cached = self.__dict__.get("_changed_bytes")
        if cached is None:
            cached = sum(len(d) for _, d in self.runs)
            object.__setattr__(self, "_changed_bytes", cached)
        return cached

    @property
    def wire_size(self) -> int:
        cached = self.__dict__.get("_wire_size")
        if cached is None:
            cached = DIFF_HEADER_BYTES + RUN_HEADER_BYTES * len(self.runs) + self.changed_bytes
            object.__setattr__(self, "_wire_size", cached)
        return cached

    @property
    def flat(self) -> tuple[np.ndarray, np.ndarray]:
        """``(indices, values)`` covering every changed byte, cached.

        Lets a consumer touch all runs with two fancy-index operations
        instead of two numpy calls per run — the win that makes VC_sd's
        diff integration scale with diff *count* rather than run count.
        """
        cached = self.__dict__.get("_flat")
        if cached is None:
            values = np.frombuffer(b"".join(data for _, data in self.runs), dtype=np.uint8)
            offs = np.fromiter((off for off, _ in self.runs), dtype=np.intp, count=len(self.runs))
            lengths = np.fromiter(
                (len(data) for _, data in self.runs), dtype=np.intp, count=len(self.runs)
            )
            # vectorised multi-arange: ones everywhere, then fix up each
            # run's first index so the cumulative sum jumps to its offset
            idx = np.ones(values.size, dtype=np.intp)
            if idx.size:
                idx[0] = offs[0]
                jumps = np.cumsum(lengths[:-1])
                idx[jumps] = offs[1:] - (offs[:-1] + lengths[:-1] - 1)
                np.cumsum(idx, out=idx)
            cached = (idx, values)
            object.__setattr__(self, "_flat", cached)
        return cached

    def covers(self) -> list[tuple[int, int]]:
        """Half-open ``(start, end)`` intervals touched by this diff."""
        return [(off, off + len(d)) for off, d in self.runs]


_EMPTY_RUNS: tuple = ()


def _trusted_diff(page_id: int, runs: tuple[tuple[int, bytes], ...]) -> Diff:
    """Construct a :class:`Diff` from runs known to be sorted and disjoint.

    Skips ``__post_init__`` validation — only for runs produced by the
    vectorised mask splitter, whose output is valid by construction.
    """
    diff = object.__new__(Diff)
    object.__setattr__(diff, "page_id", page_id)
    object.__setattr__(diff, "runs", runs)
    return diff


def _extract_runs(data: np.ndarray, changed: np.ndarray) -> tuple[tuple[int, bytes], ...]:
    """Split a boolean change mask into maximal runs of bytes from ``data``.

    The run boundaries are found entirely in numpy; the payload bytes are
    sliced out of one ``tobytes()`` snapshot (a single C-level copy) instead
    of one numpy slice-and-copy per run.
    """
    return _diff_from_mask(0, data, changed).runs


def _diff_from_mask(page_id: int, data: np.ndarray, changed: np.ndarray) -> Diff:
    """Build a :class:`Diff` from a change mask with its lazy caches primed.

    The mask's nonzero indices *are* the flat index array and their count is
    ``changed_bytes``, so computing them here (vectorised) saves the
    per-run/per-byte Python generator passes the lazy properties would do.
    """
    idx = np.flatnonzero(changed)
    if idx.size == 0:
        return _trusted_diff(page_id, _EMPTY_RUNS)
    breaks = np.flatnonzero(np.diff(idx) > 1)
    starts = idx[np.concatenate(([0], breaks + 1))].tolist()
    stops = (idx[np.concatenate((breaks, [idx.size - 1]))] + 1).tolist()
    raw = data.tobytes()
    diff = _trusted_diff(page_id, tuple([(s, raw[s:e]) for s, e in zip(starts, stops)]))
    nbytes = int(idx.size)
    object.__setattr__(diff, "_changed_bytes", nbytes)
    object.__setattr__(
        diff, "_wire_size", DIFF_HEADER_BYTES + RUN_HEADER_BYTES * len(diff.runs) + nbytes
    )
    object.__setattr__(diff, "_flat", (idx, data[idx]))
    return diff


def make_diff(page_id: int, twin: np.ndarray, current: np.ndarray) -> Diff:
    """Diff ``current`` against ``twin``; both are uint8 arrays of page size."""
    if twin.shape != current.shape:
        raise ValueError("twin/current shape mismatch")
    return _diff_from_mask(page_id, current, twin != current)


def apply_diff(page: np.ndarray, diff: Diff) -> None:
    """Apply ``diff`` to ``page`` in place."""
    idx, values = diff.flat
    if idx.size:
        off, data = diff.runs[-1]  # runs are sorted: the last one ends highest
        end = off + len(data)
        if end > page.shape[0]:
            raise ValueError(f"diff run [{off}:{end}] exceeds page size {page.shape[0]}")
        page[idx] = values


def integrate_diffs(page_id: int, diffs: Sequence[Diff], page_size: int) -> Diff:
    """Merge ``diffs`` (applied in order) into one equivalent diff.

    This is VC_sd's *diff integration*: later runs overwrite earlier ones, and
    adjacent/overlapping runs coalesce, so the result's wire size is the size
    of the *union* of modified bytes — never the sum.
    """
    scratch = np.zeros(page_size, dtype=np.uint8)
    touched = np.zeros(page_size, dtype=bool)
    for diff in diffs:
        if diff.page_id != page_id:
            raise ValueError(
                f"cannot integrate diff for page {diff.page_id} into page {page_id}"
            )
        idx, values = diff.flat
        scratch[idx] = values
        touched[idx] = True
    return _diff_from_mask(page_id, scratch, touched)


def full_page_diff(page_id: int, page: np.ndarray) -> Diff:
    """A diff that replaces the whole page (used for first-touch transfers)."""
    return Diff(page_id, ((0, page.tobytes()),))
