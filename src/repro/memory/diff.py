"""Run-length byte diffs, the unit of data movement in all three protocols.

A diff records the byte ranges of a page that changed relative to a *twin*
(the pristine copy captured at the first write fault of an interval), as a
list of ``(offset, bytes)`` runs.  Its wire size is what the paper's "Data"
row measures, so the accounting here (:attr:`Diff.wire_size`) matters:

``wire_size = DIFF_HEADER + sum(RUN_HEADER + len(run)) over runs``

which mirrors TreadMarks' (offset, length, data...) encoding.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "Diff",
    "make_diff",
    "apply_diff",
    "integrate_diffs",
    "full_page_diff",
    "DIFF_HEADER_BYTES",
    "RUN_HEADER_BYTES",
]

DIFF_HEADER_BYTES = 12  # page id + run count + timestamp
RUN_HEADER_BYTES = 4  # offset + length (2 shorts: pages are 4 KB)


@dataclass(frozen=True)
class Diff:
    """Immutable byte-level delta for one page."""

    page_id: int
    runs: tuple[tuple[int, bytes], ...]

    def __post_init__(self) -> None:
        last_end = -1
        for off, data in self.runs:
            if off < 0 or not data:
                raise ValueError(f"bad run (offset={off}, len={len(data)})")
            if off <= last_end:
                raise ValueError("runs must be sorted and non-overlapping")
            last_end = off + len(data) - 1

    @property
    def empty(self) -> bool:
        return not self.runs

    @property
    def changed_bytes(self) -> int:
        return sum(len(d) for _, d in self.runs)

    @property
    def wire_size(self) -> int:
        return DIFF_HEADER_BYTES + sum(RUN_HEADER_BYTES + len(d) for _, d in self.runs)

    def covers(self) -> list[tuple[int, int]]:
        """Half-open ``(start, end)`` intervals touched by this diff."""
        return [(off, off + len(d)) for off, d in self.runs]


def make_diff(page_id: int, twin: np.ndarray, current: np.ndarray) -> Diff:
    """Diff ``current`` against ``twin``; both are uint8 arrays of page size."""
    if twin.shape != current.shape:
        raise ValueError("twin/current shape mismatch")
    changed = twin != current
    if not changed.any():
        return Diff(page_id, ())
    idx = np.flatnonzero(changed)
    # split indices into maximal consecutive runs
    breaks = np.flatnonzero(np.diff(idx) > 1)
    starts = np.concatenate(([0], breaks + 1))
    ends = np.concatenate((breaks, [len(idx) - 1]))
    runs = []
    for s, e in zip(starts, ends):
        off = int(idx[s])
        stop = int(idx[e]) + 1
        runs.append((off, current[off:stop].tobytes()))
    return Diff(page_id, tuple(runs))


def apply_diff(page: np.ndarray, diff: Diff) -> None:
    """Apply ``diff`` to ``page`` in place."""
    for off, data in diff.runs:
        end = off + len(data)
        if end > page.shape[0]:
            raise ValueError(f"diff run [{off}:{end}] exceeds page size {page.shape[0]}")
        page[off:end] = np.frombuffer(data, dtype=np.uint8)


def integrate_diffs(page_id: int, diffs: Sequence[Diff], page_size: int) -> Diff:
    """Merge ``diffs`` (applied in order) into one equivalent diff.

    This is VC_sd's *diff integration*: later runs overwrite earlier ones, and
    adjacent/overlapping runs coalesce, so the result's wire size is the size
    of the *union* of modified bytes — never the sum.
    """
    scratch = np.zeros(page_size, dtype=np.uint8)
    touched = np.zeros(page_size, dtype=bool)
    for diff in diffs:
        if diff.page_id != page_id:
            raise ValueError(
                f"cannot integrate diff for page {diff.page_id} into page {page_id}"
            )
        for off, data in diff.runs:
            end = off + len(data)
            scratch[off:end] = np.frombuffer(data, dtype=np.uint8)
            touched[off:end] = True
    if not touched.any():
        return Diff(page_id, ())
    idx = np.flatnonzero(touched)
    breaks = np.flatnonzero(np.diff(idx) > 1)
    starts = np.concatenate(([0], breaks + 1))
    ends = np.concatenate((breaks, [len(idx) - 1]))
    runs = []
    for s, e in zip(starts, ends):
        off = int(idx[s])
        stop = int(idx[e]) + 1
        runs.append((off, scratch[off:stop].tobytes()))
    return Diff(page_id, tuple(runs))


def full_page_diff(page_id: int, page: np.ndarray) -> Diff:
    """A diff that replaces the whole page (used for first-touch transfers)."""
    return Diff(page_id, ((0, page.tobytes()),))
