"""The global shared address space and its allocator.

All nodes agree on one address map (the paper's DSM exposes a single shared
segment).  The allocator is a bump allocator with two modes:

* **packed** (default) — consecutive allocations share pages, exactly like
  ``malloc`` inside one shared segment.  This is what makes the *traditional*
  programs suffer false sharing.
* **page-aligned** — the allocation starts on a fresh page and the remainder
  of its last page is never reused.  VOPP programs allocate each view this
  way, so views never share pages (views must not overlap, §2 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["AddressSpace", "Region"]


@dataclass(frozen=True)
class Region:
    """A named allocation ``[base, base+size)`` in the shared space."""

    name: str
    base: int
    size: int

    @property
    def end(self) -> int:
        return self.base + self.size

    def page_range(self, page_size: int) -> range:
        """Ids of all pages this region touches."""
        first = self.base // page_size
        last = (self.end - 1) // page_size
        return range(first, last + 1)


class AddressSpace:
    """Shared address map + allocator (identical on every node)."""

    def __init__(self, page_size: int = 4096):
        if page_size <= 0 or page_size & (page_size - 1):
            raise ValueError("page size must be a positive power of two")
        self.page_size = page_size
        self._brk = 0
        self._regions: dict[str, Region] = {}

    @property
    def size(self) -> int:
        return self._brk

    @property
    def num_pages(self) -> int:
        return (self._brk + self.page_size - 1) // self.page_size

    def alloc(self, name: str, size: int, page_aligned: bool = False) -> Region:
        """Allocate ``size`` bytes; see module docstring for the two modes."""
        if size <= 0:
            raise ValueError(f"allocation size must be positive, got {size}")
        if name in self._regions:
            raise ValueError(f"region name {name!r} already allocated")
        base = self._brk
        if page_aligned:
            base = -(-base // self.page_size) * self.page_size
        region = Region(name, base, size)
        self._brk = base + size
        if page_aligned:
            # burn the tail of the last page so the next packed allocation
            # cannot share it
            self._brk = -(-self._brk // self.page_size) * self.page_size
        self._regions[name] = region
        return region

    def region(self, name: str) -> Region:
        return self._regions[name]

    def regions(self) -> list[Region]:
        return list(self._regions.values())

    def page_of(self, addr: int) -> int:
        if not (0 <= addr < self._brk):
            raise IndexError(f"address {addr} outside shared space [0, {self._brk})")
        return addr // self.page_size

    def pages_of_range(self, addr: int, nbytes: int) -> range:
        """Page ids covering ``[addr, addr+nbytes)``."""
        if nbytes <= 0:
            raise ValueError("range must be non-empty")
        if addr < 0 or addr + nbytes > self._brk:
            raise IndexError(
                f"range [{addr}, {addr + nbytes}) outside shared space [0, {self._brk})"
            )
        return range(addr // self.page_size, (addr + nbytes - 1) // self.page_size + 1)
