"""Per-node memory manager: page copies, fault routing, interval bookkeeping.

The manager is the boundary between applications and the consistency
protocol.  Applications (through :class:`repro.core.shared_array.SharedArray`)
call :meth:`read_bytes`/:meth:`write_bytes`; the manager detects which pages
are not in the right state and hands them to the protocol's fault handlers —
the software analogue of an mprotect fault.

Interval bookkeeping (twins, write sets, diff creation at release time) also
lives here because every protocol shares it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Iterable, Optional, Protocol as TypingProtocol

import numpy as np

from repro.memory.address_space import AddressSpace
from repro.memory.diff import Diff, apply_diff, make_diff
from repro.memory.page import PageCopy, PageState

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.cluster import Node

__all__ = ["MemoryManager", "FaultHandler"]


class FaultHandler(TypingProtocol):
    """What a consistency protocol must provide to a memory manager."""

    def read_fault(self, pids: list[int]) -> Generator:  # pragma: no cover
        ...

    def write_fault(self, pids: list[int]) -> Generator:  # pragma: no cover
        ...


class MemoryManager:
    """One node's view of the shared address space."""

    def __init__(self, node: "Node", space: AddressSpace):
        self.node = node
        self.space = space
        self.pages: dict[int, PageCopy] = {}
        self.write_set: set[int] = set()
        self.fault_handler: Optional[FaultHandler] = None
        # optional access recorder: called as recorder(node_id, pids, mode)
        # for every block access ("r"/"w"); used by repro.tools.autoview
        self.recorder = None
        # (addr, nbytes) -> ((pid, page_off, out_off, take), ...): applications
        # re-read the same spans (rows, buckets) every iteration, so the page
        # translation + bounds validation is done once per distinct span
        self._span_cache: dict[tuple[int, int], tuple[tuple[int, int, int, int], ...]] = {}

    def _segments(self, addr: int, nbytes: int) -> tuple[tuple[int, int, int, int], ...]:
        """Cached page-segment decomposition of the byte range ``[addr, addr+nbytes)``."""
        key = (addr, nbytes)
        segs = self._span_cache.get(key)
        if segs is None:
            self.space.pages_of_range(addr, nbytes)  # bounds validation
            psz = self.space.page_size
            out = []
            pos = addr
            end = addr + nbytes
            while pos < end:
                off = pos % psz
                take = min(end - pos, psz - off)
                out.append((pos // psz, off, pos - addr, take))
                pos += take
            segs = self._span_cache[key] = tuple(out)
        return segs

    # -- page table ------------------------------------------------------------

    def page(self, pid: int) -> PageCopy:
        copy = self.pages.get(pid)
        if copy is None:
            copy = PageCopy(pid, self.space.page_size)
            self.pages[pid] = copy
        return copy

    def state(self, pid: int) -> PageState:
        copy = self.pages.get(pid)
        return copy.state if copy is not None else PageState.NO_COPY

    # -- application access path -------------------------------------------------

    def read_bytes(self, addr: int, nbytes: int) -> Generator:
        """Read ``nbytes`` at ``addr`` (``yield from``); returns a uint8 array."""
        segs = self._segments(addr, nbytes)
        page = self.page
        if self.recorder is not None:
            self.recorder(self.node.id, [s[0] for s in segs], "r")
        faulting = [s[0] for s in segs if not page(s[0]).readable]
        if faulting:
            if self.fault_handler is None:
                raise RuntimeError("no protocol attached to memory manager")
            yield from self.fault_handler.read_fault(faulting)
        oracle = self.node.sim.oracle
        if oracle is not None:
            now = self.node.sim.now
            nid = self.node.id
            pages = self.pages
            for pid in dict.fromkeys(s[0] for s in segs):
                oracle.read(now, nid, pid, pages[pid].data)
        return self._gather(segs, nbytes)

    def write_bytes(self, addr: int, data: np.ndarray) -> Generator:
        """Write ``data`` (uint8 array/bytes) at ``addr`` (``yield from``)."""
        data = np.asarray(data, dtype=np.uint8).ravel()
        nbytes = data.shape[0]
        segs = self._segments(addr, nbytes)
        page = self.page
        if self.recorder is not None:
            self.recorder(self.node.id, [s[0] for s in segs], "w")
        faulting = [s[0] for s in segs if not page(s[0]).writable]
        if faulting:
            if self.fault_handler is None:
                raise RuntimeError("no protocol attached to memory manager")
            yield from self.fault_handler.write_fault(faulting)
        self._scatter(segs, data)
        oracle = self.node.sim.oracle
        if oracle is not None:
            now = self.node.sim.now
            nid = self.node.id
            pages = self.pages
            for pid in dict.fromkeys(s[0] for s in segs):
                oracle.write(now, nid, pid, pages[pid].data)
        return None

    def _gather(self, segs: tuple[tuple[int, int, int, int], ...], nbytes: int) -> np.ndarray:
        pages = self.pages
        if len(segs) == 1:
            pid, off, _, take = segs[0]
            copy = pages[pid]
            if not copy.readable:
                raise RuntimeError(f"page {pid} not readable after fault handling")
            return copy.data[off : off + take].copy()
        out = np.empty(nbytes, dtype=np.uint8)
        for pid, off, out_off, take in segs:
            copy = pages[pid]
            if not copy.readable:
                raise RuntimeError(f"page {pid} not readable after fault handling")
            out[out_off : out_off + take] = copy.data[off : off + take]
        return out

    def _scatter(self, segs: tuple[tuple[int, int, int, int], ...], data: np.ndarray) -> None:
        pages = self.pages
        for pid, off, out_off, take in segs:
            copy = pages[pid]
            if not copy.writable:
                raise RuntimeError(f"page {pid} not writable after fault handling")
            copy.data[off : off + take] = data[out_off : out_off + take]

    # -- interval bookkeeping (used by protocols) ----------------------------------

    def start_writing(self, pid: int) -> None:
        """Twin the page and mark it RW + in the current write set."""
        copy = self.page(pid)
        copy.make_twin()
        copy.state = PageState.RW
        self.write_set.add(pid)

    def end_interval(self) -> dict[int, Diff]:
        """Close the current interval: diff every written page against its twin.

        Pages downgrade RW→RO and twins are dropped.  Returns only non-empty
        diffs (a twinned page that was never actually modified produces none).
        """
        diffs: dict[int, Diff] = {}
        for pid in sorted(self.write_set):
            copy = self.pages[pid]
            if copy.twin is None:
                raise RuntimeError(f"page {pid} in write set without twin")
            diff = make_diff(pid, copy.twin, copy.data)
            if not diff.empty:
                diffs[pid] = diff
            copy.drop_twin()
            copy.state = PageState.RO
        self.write_set.clear()
        return diffs

    def flush_page(self, pid: int) -> Optional[Diff]:
        """Early-flush one written page (invalidation arrived while RW).

        Diffs the page against its twin, drops the twin, removes the page
        from the write set and leaves it RO (the caller will invalidate it).
        Returns the diff, or ``None`` if nothing actually changed.
        """
        copy = self.pages[pid]
        if copy.twin is None:
            raise RuntimeError(f"page {pid}: flush without twin")
        diff = make_diff(pid, copy.twin, copy.data)
        copy.drop_twin()
        copy.state = PageState.RO
        self.write_set.discard(pid)
        return None if diff.empty else diff

    def interval_dirty_bytes(self) -> int:
        """Bytes the pending twins cover (cost accounting for diff creation)."""
        return len(self.write_set) * self.space.page_size

    # -- protocol data movement helpers ---------------------------------------------

    def invalidate(self, pids: Iterable[int]) -> None:
        """Mark pages stale; only pages with a copy transition (NO_COPY stays)."""
        for pid in pids:
            copy = self.pages.get(pid)
            if copy is None or copy.state is PageState.NO_COPY:
                continue
            if copy.state is PageState.RW:
                raise RuntimeError(
                    f"node {self.node.id}: invalidating page {pid} while writing it "
                    "(view overlap or missing release?)"
                )
            copy.state = PageState.INVALID

    def install_full_page(self, pid: int, content: bytes | np.ndarray, state: PageState = PageState.RO) -> None:
        copy = self.page(pid)
        copy.materialise()
        copy.data[:] = np.frombuffer(content, dtype=np.uint8) if isinstance(content, bytes) else content
        copy.state = state

    def apply_diffs(self, pid: int, diffs: Iterable[Diff], state: PageState = PageState.RO) -> None:
        copy = self.page(pid)
        copy.materialise()
        for diff in diffs:
            apply_diff(copy.data, diff)
        copy.state = state

    def zero_fill(self, pid: int, state: PageState = PageState.RO) -> None:
        """First-touch materialisation of an untouched (all-zero) page."""
        copy = self.page(pid)
        copy.materialise()
        copy.state = state

    def snapshot_page(self, pid: int) -> bytes:
        copy = self.pages.get(pid)
        if copy is None or copy.data is None:
            raise KeyError(f"node {self.node.id} has no copy of page {pid}")
        return copy.data.tobytes()
