#!/usr/bin/env python
"""Quickstart: View-Oriented Parallel Programming in five minutes.

Builds a simulated 8-node cluster running the VC_sd protocol, writes a
parallel sum in the VOPP style (paper §2's motivating "sum" example), runs
it, and prints the statistics the paper's tables report.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import VoppSystem

NPROCS = 8
PARTS_PER_PROC = 4


def main() -> None:
    # 1. A simulated cluster: 8 nodes, 350 MHz CPUs, 100 Mbps switched
    #    Ethernet, 4 KB pages — the paper's "Godzilla" testbed, in miniature.
    system = VoppSystem(nprocs=NPROCS, protocol="vc_sd")

    # 2. Shared data, partitioned into views.  Each view's data is allocated
    #    page-aligned so views never share pages (views must not overlap).
    total = system.alloc_array("total", 1, dtype="int64", page_aligned=True)
    TOTAL_VIEW = 0

    # 3. The program each processor runs.  Every access to a view is
    #    bracketed by acquire_view/release_view; barriers only synchronise.
    def body(rt):
        for k in range(PARTS_PER_PROC):
            contribution = rt.rank * 100 + k
            # charge some simulated compute for producing the contribution
            yield from rt.compute(0.001)
            yield from rt.acquire_view(TOTAL_VIEW)
            current = (yield from total.read(rt))[0]
            yield from total.write(rt, 0, [current + contribution])
            yield from rt.release_view(TOTAL_VIEW)
        yield from rt.barrier()
        # every processor reads the final total through a read-only view:
        # concurrent, no serialisation (paper §3.4)
        yield from rt.acquire_Rview(TOTAL_VIEW)
        result = (yield from total.read(rt))[0]
        yield from rt.release_Rview(TOTAL_VIEW)
        return int(result)

    results = system.run_program(body)

    expected = sum(r * 100 + k for r in range(NPROCS) for k in range(PARTS_PER_PROC))
    assert results == [expected] * NPROCS, (results, expected)

    print(f"parallel sum across {NPROCS} simulated nodes = {results[0]} (correct)")
    print()
    print("run statistics (the rows of the paper's tables):")
    for key, value in system.stats.table_row().items():
        print(f"  {key:<24} {value}")


if __name__ == "__main__":
    main()
