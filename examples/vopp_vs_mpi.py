#!/usr/bin/env python
"""VOPP vs MPI on the neural-network workload (paper Table 9 in small).

Trains the paper's back-propagation network with the VOPP program on VC_sd
and with the message-passing program on the simulated MPI library, on the
same simulated cluster model, and compares time and traffic.

Run:  python examples/vopp_vs_mpi.py
"""

from repro.apps import nn
from repro.apps.common import run_app

NPROCS = 8


def main() -> None:
    config = nn.NnConfig(n_samples=256, epochs=10, work_factor=32.0)

    vopp = run_app(nn, "vc_sd", NPROCS, config)
    mpi = run_app(nn, "mpi", NPROCS, config)

    print(f"NN training on {NPROCS} simulated processors ({config.epochs} epochs)")
    print()
    print(f"{'':<16}{'VOPP (VC_sd)':>16}{'MPI':>16}")
    print(f"{'Time (Sec.)':<16}{vopp.time:>16.3f}{mpi.time:>16.3f}")
    print(f"{'Messages':<16}{vopp.stats.net.num_msg:>16,}{mpi.stats.num_msg:>16,}")
    print(
        f"{'Data (MByte)':<16}{vopp.stats.net.data_bytes/1e6:>16.3f}"
        f"{mpi.stats.data_bytes/1e6:>16.3f}"
    )
    print()
    print(f"final training loss: VOPP {vopp.output['loss']:.6f}, MPI {mpi.output['loss']:.6f}")
    print()
    print("The paper's finding: VOPP on VC_sd is comparable with MPI at this")
    print("scale — the view primitives tell the DSM exactly what to update, so")
    print("shared-memory convenience no longer costs an order of magnitude.")
    ratio = vopp.time / mpi.time
    print(f"VOPP/MPI time ratio: {ratio:.2f}x")
    assert vopp.verified and mpi.verified


if __name__ == "__main__":
    main()
