#!/usr/bin/env python
"""Tuning a VOPP program with the view tracer (paper §1/§3.6).

VOPP's selling point is that the view structure gives the programmer a
channel for performance tuning.  This example shows the workflow:

1. write the obvious program — a shared histogram behind ONE view;
2. run it under :class:`repro.tools.ViewTracer`, read the report:
   the view is contended and every grant moves the whole histogram;
3. apply the advice — split the histogram into sub-views acquired in a
   staggered order — and measure the improvement.

Run:  python examples/view_tuning.py
"""

import numpy as np

from repro.core import VoppSystem
from repro.tools import ViewTracer

NPROCS = 8
BINS = 4096
ROUNDS = 6
SEED = 21


def make_samples(rank: int) -> np.ndarray:
    rng = np.random.RandomState(SEED + rank)
    return rng.randint(0, BINS, size=20_000)


def run_single_view():
    system = VoppSystem(NPROCS)
    hist = system.alloc_array("hist", BINS, dtype="int64", page_aligned=True)
    tracer = ViewTracer.install(system)

    def body(rt):
        counts = np.bincount(make_samples(rt.rank), minlength=BINS)
        for _ in range(ROUNDS):
            yield from rt.compute(0.004)  # produce this round's samples
            yield from rt.acquire_view(0)
            cur = yield from hist.read(rt)
            yield from hist.write(rt, 0, cur + counts)
            yield from rt.release_view(0)
        yield from rt.barrier()

    system.run_program(body)
    return system, tracer


def run_split_views(n_views=8):
    system = VoppSystem(NPROCS)
    seg = BINS // n_views
    segs = [
        system.alloc_array(f"hist{v}", seg, dtype="int64", page_aligned=True)
        for v in range(n_views)
    ]

    def body(rt):
        counts = np.bincount(make_samples(rt.rank), minlength=BINS)
        for _ in range(ROUNDS):
            yield from rt.compute(0.004)
            for i in range(n_views):
                v = (rt.rank + i) % n_views  # staggered: §3.6
                yield from rt.acquire_view(v)
                cur = yield from segs[v].read(rt)
                yield from segs[v].write(rt, 0, cur + counts[v * seg : (v + 1) * seg])
                yield from rt.release_view(v)
        yield from rt.barrier()

    system.run_program(body)
    return system


def main() -> None:
    system1, tracer = run_single_view()
    print("Step 1+2: the naive single-view histogram, traced")
    print()
    print(tracer.report())
    print()
    system2 = run_split_views()
    t1, t2 = system1.stats.time, system2.stats.time
    print("Step 3: after splitting into 8 staggered sub-views")
    print(f"  single view : {t1:.3f} s  ({system1.stats.net.data_bytes/1e6:.2f} MB moved)")
    print(f"  8 sub-views : {t2:.3f} s  ({system2.stats.net.data_bytes/1e6:.2f} MB moved)")
    print(f"  improvement : {t1/t2:.2f}x")
    assert t2 < t1


if __name__ == "__main__":
    main()
