#!/usr/bin/env python
"""Automating view insertion (the paper's §6 future work).

The paper closes with: "The insertion of view primitives can be automated by
compiling techniques, which will be investigated in our future research."
This example shows the dynamic-analysis route:

1. run the *traditional* (lock/barrier) Integer Sort once on LRC_d with an
   access recorder installed;
2. infer a view plan from the recorded page-access signatures;
3. compare the inferred plan with the hand-written VOPP IS program — the
   tool rediscovers its structure: per-processor key views read through
   Rviews, a multi-writer histogram that must be split, per-processor rank
   views, and a rank-0-owned prefix broadcast.

Run:  python examples/auto_views.py
"""

from repro.apps import is_sort
from repro.core import TraditionalSystem
from repro.tools import AccessRecorder, infer_views

NPROCS = 4


def main() -> None:
    config = is_sort.IsConfig(
        n_keys=4096, b_max=256, reps=3, bucket_views=4, work_factor=1.0
    )
    system = TraditionalSystem(NPROCS)
    body = is_sort.build(system, config)
    recorder = AccessRecorder.install(system)
    system.run_program(body)

    plan = infer_views(recorder, system.dsm.space, NPROCS)
    print("Recorded the traditional IS run; inferred plan:")
    print()
    print(plan.report())
    print()
    print("Compare with the hand-written VOPP IS (repro/apps/is_sort.py):")
    print("  * keys      -> per-processor views, local-buffered via Rview (§3.1)")
    print("  * partial   -> the tool flags concurrent page writers: the VOPP")
    print("                 version replaces it with page-aligned bucket")
    print("                 sub-views updated under exclusive acquires (§3.6)")
    print("  * prefix    -> single writer (rank 0), read by all: Rview (§3.4)")
    print("  * ranks     -> per-processor page-aligned rank views")

    # sanity: the tool found both a broadcast pattern and a false-sharing one
    advices = " ".join(v.advice for v in plan.views)
    assert "§3.4" in advices
    assert "repartition" in advices


if __name__ == "__main__":
    main()
