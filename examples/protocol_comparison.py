#!/usr/bin/env python
"""Compare the three DSM protocols on one workload (paper Table 1 in small).

Runs the Integer Sort application — traditional lock/barrier style on LRC_d,
VOPP style on VC_d and VC_sd — on a simulated 8-node cluster, verifies every
run against the sequential reference, and prints a paper-style statistics
table.

Run:  python examples/protocol_comparison.py
"""

from repro.apps import is_sort
from repro.bench import format_stats_table, stats_experiment

NPROCS = 16


def main() -> None:
    config = is_sort.IsConfig(
        n_keys=1 << 14, b_max=512, reps=12, bucket_views=8, work_factor=2048.0
    )
    results = stats_experiment(is_sort, nprocs=NPROCS, config=config)

    print(
        format_stats_table(
            f"Integer Sort on {NPROCS} simulated processors", results
        )
    )
    print()

    lrc, vc_d, vc_sd = (results[k].stats for k in ("LRC_d", "VC_d", "VC_sd"))
    print("What to notice (the paper's observations):")
    print(
        f"  * VC_d moves MORE data than LRC_d ({vc_d.net.data_bytes/1e6:.2f} vs "
        f"{lrc.net.data_bytes/1e6:.2f} MB) yet is FASTER "
        f"({vc_d.time:.2f} vs {lrc.time:.2f} s): consistency maintenance is"
    )
    print("    distributed through view primitives instead of centralised at barriers.")
    print(
        f"  * LRC_d's barriers maintain consistency: {lrc.barrier_time_avg*1e6:,.0f} us "
        f"per call vs {vc_d.barrier_time_avg*1e6:,.0f} us for VC's sync-only barriers."
    )
    print(
        f"  * VC_sd piggybacks integrated diffs on grants: {vc_sd.diff_requests} diff "
        f"requests (VC_d: {vc_d.diff_requests:,}) and the fewest messages "
        f"({vc_sd.net.num_msg:,} vs {vc_d.net.num_msg:,})."
    )


if __name__ == "__main__":
    main()
