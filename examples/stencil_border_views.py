#!/usr/bin/env python
"""Writing a stencil code in the VOPP style: border views (paper §3.3).

A compact, self-contained heat-diffusion stencil (Jacobi smoothing on a 1-D
rod) written two ways on the same VoppSystem:

1. *naive*: the whole rod is one view — every iteration, every processor
   serialises on the single view;
2. *border views* (the paper's recipe): each processor keeps its segment in
   a local buffer and publishes only the two boundary cells through small,
   page-aligned border views.

The example prints both versions' statistics so the rule of thumb of §3.6 is
visible: "the larger a view is, the more data traffic is caused in the system
when the view is acquired."

Run:  python examples/stencil_border_views.py
"""

import numpy as np

from repro.core import VoppSystem

NPROCS = 8
CELLS_PER_PROC = 1024  # 8 KB per segment: big enough that views matter
ITERATIONS = 10


def run_naive() -> dict:
    """One big view: correct, simple — and serialised."""
    system = VoppSystem(nprocs=NPROCS, protocol="vc_sd")
    n = NPROCS * CELLS_PER_PROC
    rod = system.alloc_array("rod", n, dtype="float64", page_aligned=True)
    ROD = 0

    def body(rt):
        lo = rt.rank * CELLS_PER_PROC
        hi = lo + CELLS_PER_PROC
        if rt.rank == 0:
            yield from rt.acquire_view(ROD)
            yield from rod.write(rt, 0, np.linspace(0.0, 1.0, n))
            yield from rt.release_view(ROD)
        yield from rt.barrier()
        for _ in range(ITERATIONS):
            yield from rt.acquire_view(ROD)
            values = np.array((yield from rod.read(rt)))
            smoothed = values.copy()
            smoothed[max(lo, 1) : min(hi, n - 1)] = 0.5 * (
                values[max(lo, 1) - 1 : min(hi, n - 1) - 1]
                + values[max(lo, 1) + 1 : min(hi, n - 1) + 1]
            )
            yield from rod.write(rt, lo, smoothed[lo:hi])
            yield from rt.release_view(ROD)
            yield from rt.barrier()
        return None

    system.run_program(body)
    return system.stats.table_row()


def run_border_views() -> dict:
    """The §3.3 recipe: local buffers + tiny border views (double-buffered)."""
    system = VoppSystem(nprocs=NPROCS, protocol="vc_sd")
    n = NPROCS * CELLS_PER_PROC
    segments = [
        system.alloc_array(f"seg{q}", CELLS_PER_PROC, dtype="float64", page_aligned=True)
        for q in range(NPROCS)
    ]
    # two boundary cells per processor per parity
    edges = [
        [system.alloc_array(f"edge{q}_{j}", 2, dtype="float64", page_aligned=True) for j in range(2)]
        for q in range(NPROCS)
    ]
    SEG, EDGE = 0, NPROCS  # view ids: EDGE + 2q + parity

    def body(rt):
        p = rt.rank
        lo = p * CELLS_PER_PROC
        if p == 0:
            init = np.linspace(0.0, 1.0, n)
            for q in range(NPROCS):
                yield from rt.acquire_view(SEG + q)
                yield from segments[q].write(rt, 0, init[q * CELLS_PER_PROC : (q + 1) * CELLS_PER_PROC])
                yield from rt.release_view(SEG + q)
        yield from rt.barrier()
        yield from rt.acquire_Rview(SEG + p)
        local = np.array((yield from segments[p].read(rt)))
        yield from rt.release_Rview(SEG + p)
        yield from rt.acquire_view(EDGE + 2 * p)
        yield from edges[p][0].write(rt, 0, [local[0], local[-1]])
        yield from rt.release_view(EDGE + 2 * p)
        yield from rt.barrier()
        for it in range(ITERATIONS):
            buf, nbuf = it % 2, (it + 1) % 2
            left = right = None
            if p > 0:
                yield from rt.acquire_Rview(EDGE + 2 * (p - 1) + buf)
                left = (yield from edges[p - 1][buf].read(rt))[1]
                yield from rt.release_Rview(EDGE + 2 * (p - 1) + buf)
            if p < NPROCS - 1:
                yield from rt.acquire_Rview(EDGE + 2 * (p + 1) + buf)
                right = (yield from edges[p + 1][buf].read(rt))[0]
                yield from rt.release_Rview(EDGE + 2 * (p + 1) + buf)
            ghosted = np.concatenate(
                [[left if left is not None else local[0]], local,
                 [right if right is not None else local[-1]]]
            )
            smoothed = 0.5 * (ghosted[:-2] + ghosted[2:])
            if p == 0:
                smoothed[0] = local[0]  # fixed physical boundary
            if p == NPROCS - 1:
                smoothed[-1] = local[-1]
            local = smoothed
            yield from rt.acquire_view(EDGE + 2 * p + nbuf)
            yield from edges[p][nbuf].write(rt, 0, [local[0], local[-1]])
            yield from rt.release_view(EDGE + 2 * p + nbuf)
            yield from rt.barrier()
        yield from rt.acquire_view(SEG + p)
        yield from segments[p].write(rt, 0, local)
        yield from rt.release_view(SEG + p)
        yield from rt.barrier()
        return None

    system.run_program(body)
    return system.stats.table_row()


def main() -> None:
    naive = run_naive()
    borders = run_border_views()
    print(f"{'':<24}{'one big view':>16}{'border views':>16}")
    for row in ("Time (Sec.)", "Acquires", "Data (MByte)", "Num. Msg"):
        print(f"{row:<24}{naive[row]:>16}{borders[row]:>16}")
    print()
    print("Rule of thumb (§3.6): the larger a view, the more data each acquire")
    print("moves — partitioning the rod into tiny border views transfers a")
    print("fraction of the data and lets iterations run concurrently.")
    assert borders["Data (MByte)"] < naive["Data (MByte)"]


if __name__ == "__main__":
    main()
