"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "is" in out and "gauss" in out and "sor" in out and "nn" in out
    assert "vc_sd" in out


def test_run_command_prints_stats(capsys):
    assert main(["run", "sor", "--protocol", "vc_sd", "--nprocs", "2"]) == 0
    out = capsys.readouterr().out
    assert "verified against sequential reference" in out
    assert "Time (Sec.)" in out
    assert "Num. Msg" in out


def test_run_with_variant(capsys):
    assert main(["run", "is", "--protocol", "vc_sd", "--nprocs", "2", "--variant", "lb"]) == 0
    assert "verified" in capsys.readouterr().out


def test_run_mpi_on_non_nn_rejected(capsys):
    assert main(["run", "is", "--protocol", "mpi", "--nprocs", "2"]) == 2
    assert "no MPI version" in capsys.readouterr().err


def test_sweep_command(capsys):
    assert main(["sweep", "sor", "--protocols", "vc_sd", "--procs", "2", "3"]) == 0
    out = capsys.readouterr().out
    assert "2-p" in out and "3-p" in out
    assert "vc_sd" in out


def test_sweep_mpi_on_non_nn_rejected(capsys):
    assert main(["sweep", "gauss", "--protocols", "mpi", "--procs", "2"]) == 2


def test_trace_command_prints_breakdown_and_mix(capsys, tmp_path):
    import json

    from repro.obs import validate_chrome_trace

    out_path = tmp_path / "t.json"
    assert main([
        "trace", "is", "--nprocs", "4", "--protocol", "vc_d",
        "--trace-out", str(out_path),
    ]) == 0
    out = capsys.readouterr().out
    assert "Where the time went" in out
    assert "Breakdown" in out
    assert "Message mix" in out
    assert "bytes" in out
    summary = validate_chrome_trace(json.loads(out_path.read_text()))
    assert summary["spans"] > 0


def test_trace_command_jsonl_output(capsys, tmp_path):
    import json

    path = tmp_path / "events.jsonl"
    assert main([
        "trace", "sor", "--nprocs", "2", "--jsonl-out", str(path),
    ]) == 0
    lines = path.read_text().splitlines()
    assert lines and all(json.loads(line)["ph"] in "BEiC" for line in lines)


def test_trace_command_critical_path_and_metrics(capsys, tmp_path):
    import json

    mpath = tmp_path / "metrics.json"
    assert main([
        "trace", "sor", "--protocol", "vc_sd", "--nprocs", "2",
        "--critical-path", "--metrics-out", str(mpath),
    ]) == 0
    out = capsys.readouterr().out
    assert "Critical path" in out
    assert "Contention metrics" in out
    assert "wrote metrics snapshot" in out
    snap = json.loads(mpath.read_text())
    assert snap["histograms"]


def test_run_with_metrics_flag(capsys):
    assert main([
        "run", "is", "--protocol", "vc_d", "--nprocs", "2", "--metrics",
    ]) == 0
    out = capsys.readouterr().out
    assert "Contention metrics" in out
    assert "acquire_wait_seconds" in out


def test_run_with_trace_flag(capsys):
    assert main([
        "run", "sor", "--protocol", "vc_sd", "--nprocs", "2", "--trace",
    ]) == 0
    out = capsys.readouterr().out
    assert "Time (Sec.)" in out
    assert "Breakdown" in out


def test_run_with_trace_views(capsys):
    assert main([
        "run", "is", "--protocol", "vc_d", "--nprocs", "2", "--trace-views",
    ]) == 0
    out = capsys.readouterr().out
    assert "View access report" in out
    assert "§3.6" in out


def test_run_trace_views_needs_vc(capsys):
    assert main([
        "run", "is", "--protocol", "lrc_d", "--nprocs", "2", "--trace-views",
    ]) == 2
    assert "vc_d or vc_sd" in capsys.readouterr().err


def test_sweep_faults_runs_degradation_grid(capsys, tmp_path):
    import json

    out = tmp_path / "BENCH_faults.json"
    assert main([
        "sweep", "is", "--procs", "2", "--protocols", "vc_sd",
        "--loss-rates", "0", "0.01", "--faults-out", str(out), "--faults",
    ]) == 0
    printed = capsys.readouterr().out
    assert "Degradation grid" in printed
    report = json.loads(out.read_text())
    assert report["benchmark"] == "faults_degradation"
    assert len(report["grid"]) == 2
    assert all(c["verified"] for c in report["grid"])


def test_sweep_faults_with_plan_file(capsys, tmp_path):
    import json

    from repro.faults import Episode, FaultPlan

    plan = tmp_path / "plan.json"
    FaultPlan((Episode(kind="duplicate", dup_prob=0.1),)).dump(str(plan))
    out = tmp_path / "BENCH_faults.json"
    assert main([
        "sweep", "is", "--procs", "2", "--protocols", "vc_sd",
        "--loss-rates", "0", "--faults-out", str(out), "--faults", str(plan),
    ]) == 0
    report = json.loads(out.read_text())
    assert report["base_plan"]["episodes"][0]["kind"] == "duplicate"


def test_check_command_reports_clean(capsys, tmp_path):
    import json

    findings = tmp_path / "findings.json"
    assert main([
        "check", "sor", "--protocol", "vc_sd", "--nprocs", "2",
        "--findings-out", str(findings),
    ]) == 0
    out = capsys.readouterr().out
    assert "Consistency oracle" in out and "CLEAN" in out
    doc = json.loads(findings.read_text())
    assert doc["verdict"] == "clean"
    assert doc["findings"] == []
    assert doc["counts"]["reads"] > 0


def test_check_command_mpi_not_applicable(capsys):
    assert main(["check", "nn", "--protocol", "mpi", "--nprocs", "2"]) == 0
    assert "NOT-APPLICABLE" in capsys.readouterr().out


def test_check_mpi_on_non_nn_rejected(capsys):
    assert main(["check", "is", "--protocol", "mpi", "--nprocs", "2"]) == 2
    assert "no MPI version" in capsys.readouterr().err


def test_run_with_check_consistency_flag(capsys):
    assert main([
        "run", "is", "--protocol", "vc_d", "--nprocs", "2",
        "--check-consistency",
    ]) == 0
    out = capsys.readouterr().out
    assert "Time (Sec.)" in out
    assert "Consistency oracle" in out and "CLEAN" in out


def test_check_command_under_pdes(capsys):
    assert main([
        "check", "is", "--protocol", "vc_sd", "--nprocs", "4",
        "--pdes-workers", "2", "--pdes-mode", "inline",
    ]) == 0
    assert "CLEAN" in capsys.readouterr().out


def test_sweep_faults_check_consistency(capsys, tmp_path):
    import json

    out = tmp_path / "BENCH_faults.json"
    assert main([
        "sweep", "is", "--procs", "2", "--protocols", "vc_sd",
        "--loss-rates", "0", "--faults-out", str(out), "--faults",
        "--check-consistency",
    ]) == 0
    printed = capsys.readouterr().out
    assert "grid cells clean" in printed
    report = json.loads(out.read_text())
    assert all(
        c["consistency"]["verdict"] == "clean" for c in report["grid"]
    )


def test_invalid_app_rejected():
    with pytest.raises(SystemExit):
        main(["run", "nosuchapp"])


def test_invalid_table_rejected():
    with pytest.raises(SystemExit):
        main(["table", "10"])


def test_parser_has_all_commands():
    parser = build_parser()
    text = parser.format_help()
    for cmd in ("run", "check", "table", "sweep", "trace", "list"):
        assert cmd in text


def test_run_pdes_prints_window_accounting(capsys):
    assert main(["run", "nn", "--protocol", "mpi", "--nprocs", "8",
                 "--pdes-workers", "2", "--pdes-mode", "inline"]) == 0
    out = capsys.readouterr().out
    assert "PDES:" in out and "windows" in out
    assert "elided" in out and "leased" in out and "frame bytes" in out


def test_profile_command_prints_hot_functions(capsys, tmp_path):
    pstats_path = tmp_path / "prof.pstats"
    assert main(["profile", "sor", "--protocol", "vc_sd", "--nprocs", "2",
                 "--top", "5", "--profile-out", str(pstats_path)]) == 0
    out = capsys.readouterr().out
    assert "cumulative" in out  # pstats header
    assert "run" in out
    assert pstats_path.exists()

    import pstats

    stats = pstats.Stats(str(pstats_path))
    assert stats.total_calls > 0


def test_profile_mpi_on_non_nn_rejected(capsys):
    assert main(["profile", "is", "--protocol", "mpi", "--nprocs", "2"]) == 2
    assert "no MPI version" in capsys.readouterr().err


# -- fault-plan plumbing: --faults-out, failure diagnostics, exit precedence -----


def _crash_plan(tmp_path):
    from repro.faults import Episode, FaultPlan

    path = tmp_path / "crash.json"
    FaultPlan((Episode(kind="crash", node=0, start=0.5),), seed=3).dump(str(path))
    return str(path)


def test_run_faults_out_round_trips_plan(capsys, tmp_path):
    import json

    from repro.faults import Episode, FaultPlan

    plan = tmp_path / "plan.json"
    FaultPlan((Episode(kind="duplicate", dup_prob=0.1),), seed=9).dump(str(plan))
    out = tmp_path / "active.json"
    assert main([
        "run", "sor", "--protocol", "vc_sd", "--nprocs", "2",
        "--faults", str(plan), "--faults-out", str(out),
    ]) == 0
    assert "wrote active fault plan" in capsys.readouterr().out
    assert json.loads(out.read_text()) == json.loads(plan.read_text())


def test_run_faults_out_without_plan_dumps_empty(capsys, tmp_path):
    import json

    out = tmp_path / "active.json"
    assert main([
        "run", "sor", "--protocol", "vc_sd", "--nprocs", "2",
        "--faults-out", str(out),
    ]) == 0
    assert json.loads(out.read_text())["episodes"] == []


def test_check_faults_out_written_even_when_run_aborts(capsys, tmp_path):
    # the dump happens *before* the run: an abort still leaves the artifact
    out = tmp_path / "active.json"
    code = main([
        "check", "sor", "--protocol", "vc_sd", "--nprocs", "2",
        "--faults", _crash_plan(tmp_path), "--faults-out", str(out),
    ])
    assert code == 3
    assert out.exists()
    err = capsys.readouterr().err
    assert "fault plan" in err  # diagnostic embeds the active plan summary
    assert "--faults-out" in err  # and points at the repro flags


def test_check_faults_crash_aborts_with_exit_3(capsys, tmp_path):
    assert main([
        "check", "sor", "--protocol", "vc_sd", "--nprocs", "2",
        "--faults", _crash_plan(tmp_path),
    ]) == 3
    # the partial history of an aborted run is still checked
    assert "Consistency oracle" in capsys.readouterr().out


def test_check_consistency_exit_4_beats_abort_exit_3(capsys, tmp_path, monkeypatch):
    # pinned precedence: a consistency violation (4) outranks a run
    # failure (3) — a protocol bug must never hide behind an abort
    import repro.cli as cli

    monkeypatch.setattr(
        cli, "_check_consistency",
        lambda oracle, protocol, nprocs, args, aborted=False: 4,
    )
    assert main([
        "check", "sor", "--protocol", "vc_sd", "--nprocs", "2",
        "--faults", _crash_plan(tmp_path),
    ]) == 4


def test_run_failure_diagnostic_embeds_plan_and_seeds(capsys, tmp_path):
    assert main([
        "run", "sor", "--protocol", "vc_sd", "--nprocs", "2",
        "--faults", _crash_plan(tmp_path),
    ]) == 3
    err = capsys.readouterr().err
    assert "fault plan" in err and "episode(s)" in err
    assert "faults_seed=3" in err


# -- adversary command ------------------------------------------------------------


def test_adversary_single_cell(capsys, tmp_path):
    import json

    plan_out = tmp_path / "winner.json"
    shrunk_out = tmp_path / "shrunk.json"
    assert main([
        "adversary", "is", "--protocol", "lrc_d", "--nprocs", "4",
        "--budget", "4", "--seed", "3", "--population", "4", "--no-cache",
        "--plan-out", str(plan_out), "--shrunk-out", str(shrunk_out),
    ]) == 0
    out = capsys.readouterr().out
    assert "baseline" in out and "winner class" in out
    assert "winning plan" in out and "shrunk" in out
    winner = json.loads(plan_out.read_text())
    assert winner["episodes"]
    shrunk = json.loads(shrunk_out.read_text())
    assert len(shrunk["episodes"]) <= len(winner["episodes"])

    from repro.faults import FaultPlan

    FaultPlan.from_json(winner).validate()
    FaultPlan.from_json(shrunk).validate()


def test_adversary_grid_writes_report(capsys, tmp_path):
    import json

    out = tmp_path / "BENCH_adversarial.json"
    assert main([
        "adversary", "is", "--nprocs", "4", "--grid", "--protocols", "lrc_d",
        "--budget", "3", "--seed", "3", "--population", "3", "--no-shrink",
        "--no-cache", "--bench-out", str(out),
    ]) == 0
    printed = capsys.readouterr().out
    assert "Adversarial grid" in printed
    report = json.loads(out.read_text())
    assert report["benchmark"] == "faults_adversarial"
    assert report["grid"][0]["protocol"] == "lrc_d"


def test_adversary_in_parser_help():
    assert "adversary" in build_parser().format_help()
