"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "is" in out and "gauss" in out and "sor" in out and "nn" in out
    assert "vc_sd" in out


def test_run_command_prints_stats(capsys):
    assert main(["run", "sor", "--protocol", "vc_sd", "--nprocs", "2"]) == 0
    out = capsys.readouterr().out
    assert "verified against sequential reference" in out
    assert "Time (Sec.)" in out
    assert "Num. Msg" in out


def test_run_with_variant(capsys):
    assert main(["run", "is", "--protocol", "vc_sd", "--nprocs", "2", "--variant", "lb"]) == 0
    assert "verified" in capsys.readouterr().out


def test_run_mpi_on_non_nn_rejected(capsys):
    assert main(["run", "is", "--protocol", "mpi", "--nprocs", "2"]) == 2
    assert "no MPI version" in capsys.readouterr().err


def test_sweep_command(capsys):
    assert main(["sweep", "sor", "--protocols", "vc_sd", "--procs", "2", "3"]) == 0
    out = capsys.readouterr().out
    assert "2-p" in out and "3-p" in out
    assert "vc_sd" in out


def test_sweep_mpi_on_non_nn_rejected(capsys):
    assert main(["sweep", "gauss", "--protocols", "mpi", "--procs", "2"]) == 2


def test_invalid_app_rejected():
    with pytest.raises(SystemExit):
        main(["run", "nosuchapp"])


def test_invalid_table_rejected():
    with pytest.raises(SystemExit):
        main(["table", "10"])


def test_parser_has_all_commands():
    parser = build_parser()
    text = parser.format_help()
    for cmd in ("run", "table", "sweep", "list"):
        assert cmd in text
