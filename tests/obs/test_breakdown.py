"""Tests for per-process time-breakdown attribution."""

import pytest

from repro.apps import APPS
from repro.apps.common import run_app
from repro.obs import (
    COMPUTE,
    IDLE,
    EventTracer,
    app_intervals,
    compute_breakdown,
    format_breakdown,
)


def span(pid, cat, t0, t1, lane="app"):
    return [
        ("B", t0, pid, lane, cat, cat, None),
        ("E", t1, pid, lane, cat, None, None),
    ]


def test_synthetic_partition_is_exact():
    events = [
        ("B", 0.0, 0, "app", "run", "rank 0", None),
        *span(0, "barrier-wait", 1.0, 3.0),
        ("E", 10.0, 0, "app", "run", None, None),
    ]
    out = compute_breakdown(events)
    row = out[0]
    assert row["seconds"]["barrier-wait"] == pytest.approx(2.0)
    assert row["seconds"][COMPUTE] == pytest.approx(8.0)
    assert row["total"] == pytest.approx(10.0)
    assert sum(row["percent"].values()) == pytest.approx(100.0)


def test_innermost_open_span_wins():
    events = [
        ("B", 0.0, 0, "app", "run", "rank 0", None),
        ("B", 1.0, 0, "app", "barrier-wait", "b", None),
        ("B", 2.0, 0, "app", "page-fault", "pf", None),
        ("E", 4.0, 0, "app", "page-fault", None, None),
        ("E", 5.0, 0, "app", "barrier-wait", None, None),
        ("E", 6.0, 0, "app", "run", None, None),
    ]
    row = compute_breakdown(events)[0]
    assert row["seconds"]["page-fault"] == pytest.approx(2.0)
    assert row["seconds"]["barrier-wait"] == pytest.approx(2.0)
    assert row["seconds"][COMPUTE] == pytest.approx(2.0)


def test_idle_fills_to_global_end():
    events = [
        ("B", 0.0, 0, "app", "run", "rank 0", None),
        ("E", 4.0, 0, "app", "run", None, None),
        ("B", 0.0, 1, "app", "run", "rank 1", None),
        ("E", 10.0, 1, "app", "run", None, None),
    ]
    out = compute_breakdown(events)
    assert out[0]["seconds"][IDLE] == pytest.approx(6.0)
    assert IDLE not in out[1]["seconds"]
    assert out[0]["total"] == out[1]["total"] == pytest.approx(10.0)


def test_non_app_lanes_are_ignored():
    events = [
        ("B", 0.0, 0, "app", "run", "rank 0", None),
        *span(0, "rx", 1.0, 9.0, lane="nic-rx"),
        ("E", 2.0, 0, "app", "run", None, None),
    ]
    row = compute_breakdown(events)[0]
    assert row["seconds"][COMPUTE] == pytest.approx(2.0)
    assert "rx" not in row["seconds"]


def test_unclosed_run_raises():
    events = [("B", 0.0, 0, "app", "run", "rank 0", None)]
    with pytest.raises(ValueError):
        compute_breakdown(events)


def test_empty_trace_gives_empty_breakdown():
    assert compute_breakdown([]) == {}
    assert "no traced processes" in format_breakdown({})


@pytest.mark.parametrize(
    "app,protocol",
    [("is", "vc_d"), ("is", "lrc_d"), ("is", "hlrc_d"),
     ("sor", "vc_sd"), ("nn", "mpi")],
)
def test_percentages_sum_to_100_across_protocols(app, protocol):
    tracer = EventTracer()
    result = run_app(APPS[app], protocol, 4, tracer=tracer)
    assert result.breakdown is not None
    assert sorted(result.breakdown) == list(range(4))
    for row in result.breakdown.values():
        assert sum(row["percent"].values()) == pytest.approx(100.0, abs=1e-9)
        assert sum(row["seconds"].values()) == pytest.approx(row["total"])


# -- degenerate runs ----------------------------------------------------------------


def test_single_rank_run():
    """nprocs=1: one row, no idle (it is its own last finisher), sums exact."""
    tracer = EventTracer()
    result = run_app(APPS["sor"], "vc_sd", 1, tracer=tracer)
    assert sorted(result.breakdown) == [0]
    row = result.breakdown[0]
    assert IDLE not in row["seconds"]
    assert sum(row["percent"].values()) == pytest.approx(100.0, abs=1e-9)
    assert sum(row["seconds"].values()) == pytest.approx(row["total"])


def test_zero_duration_spans_are_kept_but_weightless():
    events = [
        ("B", 0.0, 0, "app", "run", "rank 0", None),
        *span(0, "barrier-wait", 2.0, 2.0),  # instantaneous barrier
        *span(0, "acquire-wait", 2.0, 2.0),  # back-to-back at the same instant
        ("E", 4.0, 0, "app", "run", None, None),
    ]
    row = compute_breakdown(events)[0]
    assert row["seconds"][COMPUTE] == pytest.approx(4.0)
    assert row["seconds"].get("barrier-wait", 0.0) == 0.0
    assert row["total"] == pytest.approx(4.0)
    pieces = app_intervals(events)[0]["pieces"]
    assert (2.0, 2.0, "barrier-wait") in pieces  # kept for the path walker


def test_zero_duration_run():
    events = [
        ("B", 3.0, 0, "app", "run", "rank 0", None),
        ("E", 3.0, 0, "app", "run", None, None),
    ]
    row = compute_breakdown(events)[0]
    assert row["total"] == 0.0
    assert row["percent"] == {} or sum(row["percent"].values()) == 0.0


def test_rank_that_never_blocks_is_pure_compute():
    events = [
        ("B", 0.0, 0, "app", "run", "rank 0", None),
        ("E", 10.0, 0, "app", "run", None, None),
        ("B", 0.0, 1, "app", "run", "rank 1", None),
        *span(1, "barrier-wait", 1.0, 9.0),
        ("E", 10.0, 1, "app", "run", None, None),
    ]
    out = compute_breakdown(events)
    assert out[0]["seconds"] == {COMPUTE: pytest.approx(10.0)}
    assert out[0]["percent"][COMPUTE] == pytest.approx(100.0)
    # the never-blocking rank yields exactly one compute piece
    assert app_intervals(events)[0]["pieces"] == [(0.0, 10.0, COMPUTE)]


def test_app_intervals_matches_breakdown_pieces():
    tracer = EventTracer()
    run_app(APPS["is"], "vc_d", 2, tracer=tracer)
    intervals = app_intervals(tracer.events)
    breakdown = compute_breakdown(tracer.events)
    for pid, info in intervals.items():
        assert info["start"] <= info["end"]
        # pieces partition [start, end] contiguously
        assert info["pieces"][0][0] == info["start"]
        assert info["pieces"][-1][1] == info["end"]
        for a, b in zip(info["pieces"], info["pieces"][1:]):
            assert a[1] == b[0]
        total = sum(p[1] - p[0] for p in info["pieces"])
        own = sum(
            s for c, s in breakdown[pid]["seconds"].items() if c != IDLE
        )
        assert total == pytest.approx(own, abs=1e-9)


def test_format_breakdown_renders_all_processes():
    tracer = EventTracer()
    run_app(APPS["sor"], "vc_sd", 2, tracer=tracer)
    text = format_breakdown(tracer.breakdown())
    assert "compute" in text
    assert "mean" in text
    for pid in (0, 1):
        assert f"\n{pid:>6}" in text
