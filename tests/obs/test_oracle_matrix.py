"""Oracle clean-pass across the protocol/app matrix, and non-perturbation.

Two guarantees:

* every app x protocol combination checks CLEAN at a cheap size (the full
  committed 18-cell matrix at full size is re-verified by
  ``python -m repro sweep --check-consistency`` in the CI oracle-smoke job);
* recording the history perturbs **nothing**: a recorded run's statistics
  row and event count are bit-identical to the committed ``BENCH_sweep.json``
  fingerprints (mirroring ``tests/faults/test_nonperturbation.py``).
"""

import hashlib
import json
import pathlib

import pytest

from repro.apps import APPS
from repro.apps.common import run_app
from repro.obs.oracle import AccessRecorder, check_history, format_oracle_report

REPO = pathlib.Path(__file__).resolve().parents[2]

MATRIX = [
    (app, protocol)
    for app in ("is", "gauss", "sor", "nn")
    for protocol in ("lrc_d", "vc_d", "vc_sd")
]

# cheap-to-run subset of the committed 18-cell matrix (one per app, mixed
# protocols), same discipline as the fault non-perturbation tests
CHECKED_CELLS = [
    ("is", "lrc_d", 8),
    ("gauss", "vc_sd", 8),
    ("sor", "vc_d", 8),
    ("nn", "lrc_d", 8),
]


def _fingerprint(result) -> str:
    return hashlib.sha256(
        json.dumps(result.table_row(), sort_keys=True).encode()
    ).hexdigest()[:16]


def _committed():
    path = REPO / "BENCH_sweep.json"
    if not path.exists():
        pytest.skip("no committed BENCH_sweep.json in this checkout")
    cells = {}
    for cell in json.loads(path.read_text())["cells"]:
        cells[(cell["app"], cell["protocol"], cell["nprocs"], cell["variant"])] = cell
    return cells


@pytest.mark.parametrize("app,protocol", MATRIX)
def test_matrix_cell_checks_clean(app, protocol):
    oracle = AccessRecorder()
    result = run_app(APPS[app], protocol, 4, oracle=oracle)
    assert result.verified
    report = check_history(oracle, nprocs=4, protocol=protocol)
    assert report.verdict == "clean", format_oracle_report(report)
    assert report.counts["reads"] > 0


@pytest.mark.parametrize("app,protocol", [("is", "lrc_d"), ("is", "vc_sd")])
def test_lb_and_headline_variants_check_clean(app, protocol):
    oracle = AccessRecorder()
    variant = "lb" if protocol == "vc_sd" else "default"
    run_app(APPS[app], protocol, 8, variant=variant, oracle=oracle)
    report = check_history(oracle, nprocs=8, protocol=protocol)
    assert report.verdict == "clean", format_oracle_report(report)


@pytest.mark.parametrize("app,protocol,nprocs", CHECKED_CELLS)
def test_recording_does_not_perturb_the_simulation(app, protocol, nprocs):
    committed = _committed()
    reference = committed[(app, protocol, nprocs, "default")]
    oracle = AccessRecorder()
    result = run_app(APPS[app], protocol, nprocs, oracle=oracle)
    assert len(oracle.events) > 0
    assert _fingerprint(result) == reference["fingerprint"]
    assert result.events == reference["events"]
    assert result.table_row() == reference["table_row"]


def test_unrecorded_run_allocates_no_history():
    sentinel = AccessRecorder()
    run_app(APPS["sor"], "vc_sd", 2)  # no oracle passed anywhere
    assert sentinel.events == []


def test_simulator_has_no_oracle_by_default():
    from repro.sim import Simulator

    assert Simulator().oracle is None
