"""Tests for cross-run regression reporting (repro.obs.report)."""

import copy
import json

import pytest

from repro.cli import main
from repro.obs import compare_reports, format_html, format_report, load_report


def hotpath_doc():
    return {
        "benchmark": "hotpath_is",
        "nprocs": 3,
        "seed": 42,
        "protocols": {
            "LRC_d": {
                "wall_seconds": 0.5,
                "events": 1000,
                "events_per_sec": 2000,
                "sim_time_seconds": 1.25,
                "verified": True,
                "table_row": {"Num. Msg": 64, "Data": 4096},
                "message_mix": {
                    "num_msg": 64,
                    "data_bytes": 4096,
                    "rexmit": 0,
                    "drops": 0,
                    "by_kind": {"DIFF_REQUEST": {"count": 64, "bytes": 4096,
                                                 "pct_msgs": 100.0, "pct_bytes": 100.0}},
                },
            },
        },
        "wall_seconds": 0.5,
        "events": 1000,
        "events_per_sec": 2000,
        "vc_d_events_per_sec": 2000,
        "peak_rss_kb": 50000,
    }


def sweep_doc():
    return {
        "benchmark": "sweep",
        "cells": [
            {
                "app": "is", "protocol": "vc_sd", "variant": "default",
                "nprocs": 4, "seed": 42, "events": 500,
                "sim_time_seconds": 2.5, "verified": True,
                "fingerprint": "ab12cd34ef56ab12",
                "table_row": {"Time (Sec.)": 2.5},
                "wall_seconds": 0.2, "events_per_sec": 2500,
            },
        ],
    }


def test_identical_hotpath_reports_are_identical():
    cmp = compare_reports(hotpath_doc(), hotpath_doc())
    assert cmp.kind == "hotpath"
    assert cmp.identical and not cmp.regressions
    assert "verdict: identical" in format_report(cmp)


def test_changed_table_row_is_a_regression():
    new = hotpath_doc()
    new["protocols"]["LRC_d"]["table_row"]["Num. Msg"] = 65
    cmp = compare_reports(hotpath_doc(), new)
    assert cmp.regressions
    [d] = [d for d in cmp.regressions if d.metric == "table_row"]
    assert "Num. Msg" in d.note
    assert "verdict: REGRESSED" in format_report(cmp)


def test_throughput_within_tolerance_is_not_a_regression():
    new = hotpath_doc()
    new["protocols"]["LRC_d"]["events_per_sec"] = 1700  # -15%
    new["vc_d_events_per_sec"] = 1700
    cmp = compare_reports(hotpath_doc(), new, tolerance=0.25)
    assert not cmp.regressions and not cmp.identical


def test_throughput_beyond_tolerance_regresses():
    new = hotpath_doc()
    new["vc_d_events_per_sec"] = 1000  # -50%
    cmp = compare_reports(hotpath_doc(), new, tolerance=0.25)
    assert any(d.metric == "vc_d_events_per_sec" for d in cmp.regressions)


def test_missing_entry_regresses_added_entry_changes():
    base, new = hotpath_doc(), hotpath_doc()
    new["protocols"]["VC_d"] = copy.deepcopy(new["protocols"]["LRC_d"])
    cmp = compare_reports(base, new)
    assert [d.status for d in cmp.deltas if d.key == "VC_d"] == ["changed"]
    cmp = compare_reports(new, base)
    assert [d.status for d in cmp.deltas if d.key == "VC_d"] == ["regressed"]


def test_message_mix_on_one_side_only_is_not_a_regression():
    base = hotpath_doc()
    del base["protocols"]["LRC_d"]["message_mix"]
    cmp = compare_reports(base, hotpath_doc())
    assert not cmp.regressions
    [d] = [d for d in cmp.deltas if d.metric == "message_mix"]
    assert d.status == "changed"


def test_sweep_fingerprint_drift_regresses():
    new = sweep_doc()
    new["cells"][0]["fingerprint"] = "0000000000000000"
    cmp = compare_reports(sweep_doc(), new)
    assert cmp.kind == "sweep"
    assert any(d.metric == "fingerprint" for d in cmp.regressions)
    assert cmp.regressions[0].key == "is/vc_sd/default/4/42"


def test_mismatched_kinds_rejected():
    with pytest.raises(ValueError):
        compare_reports(hotpath_doc(), sweep_doc())
    with pytest.raises(ValueError):
        compare_reports({"benchmark": "mystery"}, hotpath_doc())


def test_format_html_is_standalone(tmp_path):
    new = hotpath_doc()
    new["protocols"]["LRC_d"]["events"] = 999
    html = format_html(compare_reports(hotpath_doc(), new))
    assert html.startswith("<!doctype html>")
    assert "REGRESSED" in html
    assert "<style>" in html and "http" not in html.split("</style>")[1]


def test_load_report_from_file_and_git(tmp_path):
    path = tmp_path / "r.json"
    path.write_text(json.dumps(hotpath_doc()))
    assert load_report(str(path))["benchmark"] == "hotpath_is"
    doc = load_report("git:HEAD:BENCH_hotpath.json")
    assert doc["benchmark"] == "hotpath_is"


# -- CLI exit codes (the CI gate contract) ------------------------------------------


def _write(tmp_path, name, doc):
    p = tmp_path / name
    p.write_text(json.dumps(doc))
    return str(p)


def test_cli_report_identical_inputs_exit_zero(tmp_path, capsys):
    a = _write(tmp_path, "a.json", hotpath_doc())
    assert main(["report", a, a, "--check"]) == 0
    assert "verdict: identical" in capsys.readouterr().out


def test_cli_report_injected_regression_exits_nonzero(tmp_path, capsys):
    base = _write(tmp_path, "base.json", hotpath_doc())
    bad = hotpath_doc()
    bad["protocols"]["LRC_d"]["sim_time_seconds"] = 9.99
    new = _write(tmp_path, "new.json", bad)
    assert main(["report", base, new, "--check"]) == 1
    out = capsys.readouterr()
    assert "FAIL" in out.out
    assert "regression" in out.err


def test_cli_report_regression_without_check_exits_zero(tmp_path):
    base = _write(tmp_path, "base.json", hotpath_doc())
    bad = hotpath_doc()
    bad["protocols"]["LRC_d"]["events"] = 1
    new = _write(tmp_path, "new.json", bad)
    assert main(["report", base, new]) == 0


def test_cli_report_writes_html(tmp_path, capsys):
    a = _write(tmp_path, "a.json", hotpath_doc())
    out_html = tmp_path / "report.html"
    assert main(["report", a, a, "--html", str(out_html)]) == 0
    assert out_html.read_text().startswith("<!doctype html>")


def test_cli_report_unreadable_input_exits_two(tmp_path, capsys):
    a = _write(tmp_path, "a.json", hotpath_doc())
    assert main(["report", a, str(tmp_path / "missing.json")]) == 2
    assert "error" in capsys.readouterr().err


# -- pdes reports ------------------------------------------------------------------


def pdes_doc():
    return {
        "benchmark": "pdes",
        "host_cpus": 4,
        "quick": False,
        "batching": True,
        "conformance": {
            "workers": 2, "mode": "fork", "batching": True, "all_match": True,
            "cells": [
                {"app": "is", "protocol": "lrc_d", "variant": "base",
                 "nprocs": 8, "fingerprint": "aa11", "pdes_fingerprint": "aa11",
                 "sim_time_seconds": 1.5, "events_serial": 100,
                 "events_pdes": 108, "match": True},
            ],
        },
        "scaling": {
            "app": "halo-ring", "nprocs": 256, "sim_time_seconds": 0.0135,
            "serial": {"wall_seconds": 0.2, "events": 59378,
                       "events_per_sec": 300000},
            "partitioned": [
                {"workers": 2, "workers_effective": 2, "mode": "fork",
                 "wall_seconds": 0.2, "events": 59634,
                 "events_per_sec": 290000, "windows": 75,
                 "elided_windows": 41, "leased_windows": 495,
                 "frame_bytes": 75670, "speedup_vs_serial": 1.0,
                 "output_matches": True},
            ],
        },
    }


def test_identical_pdes_reports_are_identical():
    cmp = compare_reports(pdes_doc(), pdes_doc())
    assert cmp.kind == "pdes"
    assert not cmp.regressions
    assert all(d.status == "ok" for d in cmp.deltas)


def test_pdes_window_accounting_drift_regresses():
    new = pdes_doc()
    new["scaling"]["partitioned"][0]["windows"] = 170
    new["scaling"]["partitioned"][0]["leased_windows"] = 0
    cmp = compare_reports(pdes_doc(), new)
    assert cmp.regressions
    bad = {d.metric for d in cmp.deltas if d.status == "regressed"}
    assert bad == {"windows", "leased_windows"}


def test_pdes_fingerprint_drift_regresses():
    new = pdes_doc()
    new["conformance"]["cells"][0]["pdes_fingerprint"] = "zz99"
    new["conformance"]["cells"][0]["match"] = False
    assert compare_reports(pdes_doc(), new).regressions


def test_pdes_throughput_gated_by_tolerance():
    new = pdes_doc()
    new["scaling"]["serial"]["events_per_sec"] = 250000  # −17%, inside 25%
    assert not compare_reports(pdes_doc(), new).regressions
    new["scaling"]["serial"]["events_per_sec"] = 100000  # −67%
    assert compare_reports(pdes_doc(), new).regressions


def test_pdes_quick_report_downgrades_missing_cells():
    new = pdes_doc()
    new["quick"] = True
    new["conformance"]["cells"] = []
    new["scaling"]["partitioned"] = []
    cmp = compare_reports(pdes_doc(), new)
    assert not cmp.regressions
    assert any(d.status == "changed" and d.new == "missing" for d in cmp.deltas)


def test_pdes_full_report_missing_cells_regress():
    new = pdes_doc()
    new["conformance"]["cells"] = []
    assert compare_reports(pdes_doc(), new).regressions


def test_pdes_batching_mismatch_skips_window_fields():
    new = pdes_doc()
    new["batching"] = False
    new["scaling"]["partitioned"][0]["windows"] = 170
    new["scaling"]["partitioned"][0]["elided_windows"] = 0
    cmp = compare_reports(pdes_doc(), new)
    assert not cmp.regressions
    assert any(d.metric == "batching" and d.status == "changed"
               for d in cmp.deltas)
