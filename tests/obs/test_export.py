"""Tests for the trace exporters and the Chrome-trace schema validator."""

import io
import json

import pytest

from repro.apps import APPS
from repro.apps.common import run_app
from repro.obs import (
    EventTracer,
    chrome_trace,
    flame_summary,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)


def small_trace():
    tracer = EventTracer()
    run_app(APPS["sor"], "vc_sd", 2, tracer=tracer)
    return tracer


def test_chrome_trace_validates(tmp_path):
    tracer = small_trace()
    path = tmp_path / "trace.json"
    write_chrome_trace(tracer, str(path))
    doc = json.loads(path.read_text())
    summary = validate_chrome_trace(doc)
    assert summary["events"] > 0
    assert summary["spans"] > 0
    # 2 app nodes + the engine-global pseudo-process
    assert summary["processes"] == 3


def test_chrome_trace_has_metadata_and_microseconds():
    tracer = small_trace()
    doc = chrome_trace(tracer)
    events = doc["traceEvents"]
    names = {e["args"]["name"] for e in events if e.get("name") == "process_name"}
    assert {"simulator", "node-0", "node-1"} <= names
    threads = {e["args"]["name"] for e in events if e.get("name") == "thread_name"}
    assert "app" in threads and "nic-tx" in threads
    # ts is simulated microseconds: the last app events land around the
    # simulated run time (seconds) * 1e6
    last_ts = max(e["ts"] for e in events)
    assert last_ts > 1.0  # anything sub-microsecond would mean wrong units


def test_write_chrome_trace_deterministic_bytes(tmp_path):
    p1, p2 = tmp_path / "a.json", tmp_path / "b.json"
    write_chrome_trace(small_trace(), str(p1))
    write_chrome_trace(small_trace(), str(p2))
    assert p1.read_bytes() == p2.read_bytes()


def test_jsonl_roundtrip():
    tracer = small_trace()
    buf = io.StringIO()
    write_jsonl(tracer, buf)
    lines = buf.getvalue().splitlines()
    assert len(lines) == len(tracer.events)
    first = json.loads(lines[0])
    assert set(first) == {"ph", "t", "pid", "lane", "cat", "name", "args"}


def test_jsonl_streaming_matches_batch(tmp_path):
    """File, handle and generator forms all produce identical bytes."""
    from repro.obs import iter_jsonl_lines

    tracer = small_trace()
    streamed = "".join(iter_jsonl_lines(tracer))
    buf = io.StringIO()
    write_jsonl(tracer, buf)
    assert buf.getvalue() == streamed
    path = tmp_path / "events.jsonl"
    write_jsonl(tracer, str(path))
    assert path.read_text() == streamed


def test_iter_jsonl_lines_is_lazy():
    """The export pulls events one at a time — no second copy of the list."""
    from repro.obs import iter_jsonl_lines

    pulled = []

    def events():
        for i in range(3):
            pulled.append(i)
            yield ("i", float(i), 0, "app", "compute", f"e{i}", None)

    lines = iter_jsonl_lines(events())
    assert pulled == []  # nothing consumed before iteration starts
    first = json.loads(next(lines))
    assert first["name"] == "e0"
    assert pulled == [0]  # exactly one event materialised per line
    assert [json.loads(line)["name"] for line in lines] == ["e1", "e2"]


def test_flame_summary_text():
    text = flame_summary(small_trace())
    assert "Where the time went" in text
    assert "compute" in text
    assert "Breakdown" in text


def test_validator_rejects_bad_documents():
    with pytest.raises(ValueError):
        validate_chrome_trace({})
    with pytest.raises(ValueError):
        validate_chrome_trace({"traceEvents": []})
    with pytest.raises(ValueError):
        validate_chrome_trace(
            {"traceEvents": [{"ph": "Z", "pid": 0, "tid": 0, "ts": 0.0}]}
        )
    # unbalanced B/E
    with pytest.raises(ValueError):
        validate_chrome_trace(
            {
                "traceEvents": [
                    {"ph": "B", "name": "x", "pid": 0, "tid": 0, "ts": 0.0}
                ]
            }
        )
    # E without B
    with pytest.raises(ValueError):
        validate_chrome_trace(
            {"traceEvents": [{"ph": "E", "pid": 0, "tid": 0, "ts": 0.0}]}
        )
