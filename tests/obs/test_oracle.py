"""Consistency-oracle tests: clean passes, seeded mutations, report shape.

The oracle's value rests on two properties, and both are pinned here:

* **no false positives** — a correct run of every app/protocol combination
  checks CLEAN (the full 18-cell matrix is covered by
  ``tests/obs/test_oracle_matrix.py`` and the CI oracle-smoke job);
* **no silent false negatives** — seeded mutations of a recorded history
  (drop a diff application, drop a barrier arrival, reorder an acquire,
  corrupt a digest, drop a piggyback update) are each detected as the
  expected finding kind.
"""

import collections

import numpy as np
import pytest

from repro.apps import APPS
from repro.apps.common import run_app
from repro.obs.oracle import (
    EXIT_CONSISTENCY,
    MAX_FINDINGS,
    AccessRecorder,
    check_history,
    format_oracle_report,
    page_digest,
)


def _record(app, protocol, nprocs):
    oracle = AccessRecorder()
    run_app(APPS[app], protocol, nprocs, oracle=oracle)
    return oracle.events


@pytest.fixture(scope="module")
def lrc_history():
    return _record("is", "lrc_d", 4)


@pytest.fixture(scope="module")
def vc_history():
    return _record("is", "vc_d", 4)


@pytest.fixture(scope="module")
def vc_sd_history():
    return _record("is", "vc_sd", 4)


def _kinds(report):
    return {f.kind for f in report.findings}


# -- clean passes ------------------------------------------------------------------


@pytest.mark.parametrize(
    "app,protocol",
    [("gauss", "vc_sd"), ("sor", "vc_d"), ("nn", "lrc_d"), ("is", "hlrc_d")],
)
def test_clean_run_checks_clean(app, protocol):
    report = check_history(_record(app, protocol, 4), nprocs=4, protocol=protocol)
    assert report.verdict == "clean"
    assert report.ok
    assert report.counts["reads"] > 0 and report.counts["writes"] > 0


def test_fixture_histories_check_clean(lrc_history, vc_history, vc_sd_history):
    for history, protocol in (
        (lrc_history, "lrc_d"),
        (vc_history, "vc_d"),
        (vc_sd_history, "vc_sd"),
    ):
        report = check_history(history, nprocs=4, protocol=protocol)
        assert report.verdict == "clean", format_oracle_report(report)


def test_mpi_is_not_applicable():
    oracle = AccessRecorder()
    run_app(APPS["nn"], "mpi", 4, oracle=oracle)
    report = check_history(oracle, nprocs=4, protocol="mpi")
    assert report.verdict == "not-applicable"
    assert report.family is None
    assert report.ok
    assert oracle.events == []  # MPI has no shared pages: nothing recorded


# -- seeded mutations: every one must be detected ----------------------------------


@pytest.mark.parametrize("proto_fixture", ["lrc_history", "vc_history"])
def test_dropped_diff_apply_is_a_stale_read(proto_fixture, request):
    """Deleting a diff application leaves a causally-required write missing.

    Not every "ap" deletion is detectable: the checker's happens-before is a
    conservative lower bound, and the protocols deliver notices *eagerly*
    beyond it — an apply that precedes the horizon leaves no provable gap.
    At least one deletion must be caught, and no deletion may crash.
    """
    history = request.getfixturevalue(proto_fixture)
    protocol = {"lrc_history": "lrc_d", "vc_history": "vc_d"}[proto_fixture]
    ap_indices = [i for i, ev in enumerate(history) if ev[0] == "ap"]
    assert ap_indices, "history records no diff applications"
    detected = 0
    for i in ap_indices:
        mutated = history[:i] + history[i + 1 :]
        report = check_history(mutated, nprocs=4, protocol=protocol)
        if not report.ok:
            assert "stale-read" in _kinds(report), format_oracle_report(report)
            finding = next(f for f in report.findings if f.kind == "stale-read")
            assert finding.missing is not None  # names the racing (writer, idx)
            assert finding.page is not None
            detected += 1
            break
    assert detected, "no ap deletion was detected as a stale read"


def test_dropped_piggyback_update_is_detected(vc_sd_history):
    """VC_sd delivers consistency data on the grant; dropping one must show."""
    up_indices = [
        i
        for i, ev in enumerate(vc_sd_history)
        if ev[0] == "up" and (ev[4] or ev[5])  # non-empty fulls or diffs
    ]
    assert up_indices, "history records no piggyback updates with payload"
    detected = 0
    for i in up_indices:
        mutated = vc_sd_history[:i] + vc_sd_history[i + 1 :]
        report = check_history(mutated, nprocs=4, protocol="vc_sd")
        if not report.ok:
            detected += 1
            break
    assert detected, "no up deletion was detected"


def test_dropped_barrier_arrival_is_a_broken_barrier(lrc_history):
    i = next(i for i, ev in enumerate(lrc_history) if ev[0] == "ba")
    mutated = lrc_history[:i] + lrc_history[i + 1 :]
    report = check_history(mutated, nprocs=4, protocol="lrc_d")
    assert "broken-barrier" in _kinds(report)
    assert report.verdict == "violations"


def test_dropped_barrier_arrival_vc_family(vc_history):
    i = next(i for i, ev in enumerate(vc_history) if ev[0] == "ba")
    mutated = vc_history[:i] + vc_history[i + 1 :]
    report = check_history(mutated, nprocs=4, protocol="vc_d")
    assert "broken-barrier" in _kinds(report)


def test_reordered_acquire_is_an_overlapping_critical_section(vc_history):
    """Moving an exclusive acquire before the prior holder's release."""
    held = {}  # (kind, obj) -> releasing index of current exclusive holder
    mutation = None
    for j, ev in enumerate(vc_history):
        if ev[0] == "rel" and ev[5] == "w":
            held[(ev[3], ev[4])] = j
        elif ev[0] == "acq" and ev[5] == "w":
            i = held.get((ev[3], ev[4]))
            if i is not None and vc_history[i][2] != ev[2]:
                mutation = (i, j)
                break
    assert mutation is not None, "no release->acquire handoff found"
    i, j = mutation
    acq = vc_history[j]
    mutated = (
        vc_history[:i] + [acq] + vc_history[i:j] + vc_history[j + 1 :]
    )
    report = check_history(mutated, nprocs=4, protocol="vc_d")
    assert "overlapping-critical-section" in _kinds(report)


def test_corrupted_read_digest_is_a_value_mismatch(lrc_history):
    # pick a read whose node already produced a content event on the page,
    # so the checker has a reference digest to compare against
    content = set()
    target = None
    for i, ev in enumerate(lrc_history):
        if ev[0] in ("w", "ap", "in", "zf"):
            content.add((ev[2], ev[3]))
        elif ev[0] == "r" and (ev[2], ev[3]) in content:
            target = i
            break
    assert target is not None
    ev = lrc_history[target]
    mutated = list(lrc_history)
    mutated[target] = ("r", ev[1], ev[2], ev[3], "f" * 16)
    report = check_history(mutated, nprocs=4, protocol="lrc_d")
    assert "value-mismatch" in _kinds(report)
    finding = next(f for f in report.findings if f.kind == "value-mismatch")
    assert finding.node == ev[2] and finding.page == ev[3]


# -- report shape ------------------------------------------------------------------


def test_findings_are_capped_and_suppressed_counted():
    t = 0.0
    history = []
    for p in range(MAX_FINDINGS + 20):
        history.append(("w", t, 0, p, "aa" * 8))
        t += 1.0
        history.append(("r", t, 0, p, "bb" * 8))
        t += 1.0
    report = check_history(history, nprocs=1, protocol="lrc_d")
    assert len(report.findings) == MAX_FINDINGS
    assert report.counts["suppressed"] == 20


def test_report_json_and_span_shape(lrc_history):
    i = next(i for i, ev in enumerate(lrc_history) if ev[0] == "ba")
    report = check_history(
        lrc_history[:i] + lrc_history[i + 1 :], nprocs=4, protocol="lrc_d"
    )
    doc = report.to_json()
    assert doc["verdict"] == "violations"
    assert doc["protocol"] == "lrc_d" and doc["family"] == "lrc"
    assert doc["counts"]["events"] == len(lrc_history) - 1
    f = doc["findings"][0]
    assert set(f) >= {"kind", "node", "t", "detail", "span"}
    # the span reference matches the Chrome-trace export convention:
    # pid = node, ts = simulated microseconds
    assert f["span"]["pid"] == f["node"]
    assert f["span"]["ts_us"] == pytest.approx(f["t"] * 1e6)


def test_aborted_history_is_checkable_and_flagged(lrc_history):
    report = check_history(
        lrc_history[: len(lrc_history) // 2],
        nprocs=4,
        protocol="lrc_d",
        aborted=True,
    )
    assert report.aborted
    assert report.verdict == "clean"  # a truncated prefix of a correct run
    assert "truncated" in format_oracle_report(report)


def test_exit_code_is_pinned():
    assert EXIT_CONSISTENCY == 4


# -- recorder mechanics ------------------------------------------------------------


def test_page_digest_accepts_arrays_and_bytes():
    arr = np.arange(16, dtype=np.uint8)
    assert page_digest(arr) == page_digest(arr.tobytes())
    assert page_digest(arr) != page_digest(b"\x00" * 16)
    assert len(page_digest(arr)) == 16  # blake2b, digest_size=8, hex


def test_merged_shards_reproduce_the_serial_history(lrc_history):
    """Splitting by node and re-merging is multiset-identical and clean."""
    even, odd = AccessRecorder(), AccessRecorder()
    for ev in lrc_history:
        (even if ev[2] % 2 == 0 else odd).events.append(ev)
    merged = AccessRecorder.merged([even, odd])
    assert len(merged) == len(lrc_history)
    assert collections.Counter(merged.events) == collections.Counter(lrc_history)
    # timestamps are non-decreasing after the k-way merge
    times = [ev[1] for ev in merged.events]
    assert times == sorted(times)
    report = check_history(merged, nprocs=4, protocol="lrc_d")
    assert report.verdict == "clean"
