"""Tier-1 perf guard: tracing disabled must equal current behaviour exactly.

The null-tracer fast path is ``sim.tracer is None`` checked at each
instrumentation site; with no tracer installed a run must execute the same
simulator events, produce bit-identical statistics rows, and allocate no
trace events.  (Wall-clock overhead is covered by the committed
``BENCH_hotpath.json`` harness; these tests pin the *behavioural* half of
the zero-overhead guarantee, which is what the hot path's event count and
table rows measure.)
"""

from repro.apps import APPS
from repro.apps.common import run_app
from repro.obs import EventTracer
from repro.sim import Simulator


def test_simulator_has_no_tracer_by_default():
    assert Simulator().tracer is None


def test_traced_run_does_not_perturb_the_simulation():
    base = run_app(APPS["is"], "vc_d", 4)
    tracer = EventTracer()
    traced = run_app(APPS["is"], "vc_d", 4, tracer=tracer)
    # identical simulated outcome, event for event
    assert traced.events == base.events
    assert traced.time == base.time
    assert traced.table_row() == base.table_row()
    assert len(tracer.events) > 0


def test_untraced_run_allocates_no_events():
    """An untraced run must leave a fresh tracer completely empty."""
    sentinel = EventTracer()
    run_app(APPS["sor"], "vc_sd", 2)  # no tracer passed anywhere
    assert sentinel.events == []


def test_untraced_result_has_no_breakdown():
    result = run_app(APPS["sor"], "vc_sd", 2)
    assert result.breakdown is None


def test_tracer_and_metrics_together_stay_bit_identical():
    from repro.obs import Metrics

    base = run_app(APPS["is"], "lrc_d", 4)
    tracer, metrics = EventTracer(), Metrics()
    observed = run_app(APPS["is"], "lrc_d", 4, tracer=tracer, metrics=metrics)
    assert observed.events == base.events
    assert observed.time == base.time
    assert observed.table_row() == base.table_row()
    assert tracer.events and metrics.histograms


def test_untraced_run_records_no_causal_edges():
    sentinel = EventTracer()
    run_app(APPS["sor"], "vc_sd", 2)
    assert not sentinel.sends and not sentinel.wakes


def test_view_tracer_and_event_tracer_compose():
    from repro.tools.tracer import ViewTracer

    tracer, views = EventTracer(), ViewTracer()
    result = run_app(
        APPS["is"], "vc_d", 2, tracer=tracer, view_tracer=views
    )
    base = run_app(APPS["is"], "vc_d", 2)
    assert result.table_row() == base.table_row()
    assert views.profiles  # view events recorded
    assert tracer.events  # structured events recorded
