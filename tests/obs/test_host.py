"""The host-time observatory: wall-clock spans, breakdown, purity.

:mod:`repro.obs.host` profiles *host* time (``time.perf_counter``, i.e.
CLOCK_MONOTONIC) around the real work the simulated clock cannot see: the
PDES coordinator's barrier waits and pipe I/O, the partition workers'
execute/sync split, the sweep pool's queue waits.  The load-bearing claims:

* **accounting closes** — for every process in a breakdown, the attributed
  category seconds plus ``other`` equal the process's wall time exactly
  (it's computed as the remainder), and the ``main`` total tracks the
  externally measured wall clock within a tolerance;
* **purity** — a profiled run's simulated observables are bit-identical to
  an unprofiled run's (the profiler is an observer on the None-default
  contract, like the tracer and metrics);
* **export merges** — host spans render as extra Perfetto processes beside
  the simulated trace and the merged document passes schema validation.
"""

import time

import pytest

from repro.obs.host import (
    HostProfiler,
    TOTAL,
    format_host_breakdown,
    host_breakdown,
)


# -- span mechanics ---------------------------------------------------------------


def test_begin_end_records_span():
    host = HostProfiler("t")
    host.begin("lane", "work", "step")
    host.end()
    assert len(host.spans) == 1
    proc, lane, cat, name, t0, t1, args = host.spans[0]
    assert (proc, lane, cat, name) == ("t", "lane", "work", "step")
    assert t1 >= t0


def test_nested_spans_pop_innermost():
    host = HostProfiler("t")
    host.begin("lane", "outer")
    host.begin("lane", "inner")
    host.end()
    host.end()
    cats = sorted(s[2] for s in host.spans)
    assert cats == ["inner", "outer"]
    inner = next(s for s in host.spans if s[2] == "inner")
    outer = next(s for s in host.spans if s[2] == "outer")
    assert outer[4] <= inner[4] and inner[5] <= outer[5]


def test_span_contextmanager_closes_on_error():
    host = HostProfiler("t")
    with pytest.raises(RuntimeError):
        with host.span("lane", "work"):
            raise RuntimeError("boom")
    assert len(host.spans) == 1


def test_end_without_begin_raises():
    host = HostProfiler("t")
    with pytest.raises(RuntimeError):
        host.end()


def test_add_span_and_absorb_cross_process():
    parent = HostProfiler("main")
    child = HostProfiler("worker")
    child.begin("serve", "execute")
    child.end()
    parent.add_span("pool", "queue-wait", "cell", 1.0, 2.5, proc="sweep")
    parent.absorb(child)
    # procs() lists processes that recorded spans, sorted
    assert parent.procs() == ["sweep", "worker"]
    assert parent.seconds("queue-wait", proc="sweep") == pytest.approx(1.5)
    assert parent.seconds("execute", proc="worker") >= 0.0


# -- the breakdown invariant ------------------------------------------------------


def test_breakdown_categories_sum_to_total_exactly():
    host = HostProfiler("main")
    host.add_span("run", TOTAL, TOTAL, 0.0, 10.0)
    host.add_span("run", "barrier-wait", "w", 0.0, 6.0)
    host.add_span("run", "route", "r", 6.0, 7.0)
    down = host_breakdown(host)
    b = down["main"]
    assert b["total"] == pytest.approx(10.0)
    assert b["seconds"]["barrier-wait"] == pytest.approx(6.0)
    assert b["seconds"]["route"] == pytest.approx(1.0)
    # the invariant: attributed + other == total, with no slack
    assert sum(b["seconds"].values()) + b["other"] == pytest.approx(b["total"])
    assert b["other"] == pytest.approx(3.0)


def test_breakdown_envelope_fallback_without_total_span():
    host = HostProfiler("main")
    host.add_span("run", "execute", "e", 2.0, 5.0)
    host.add_span("run", "verify", "v", 5.0, 6.0)
    b = host_breakdown(host)["main"]
    # no "total" span: wall is the envelope first-start..last-end
    assert b["total"] == pytest.approx(4.0)
    assert b["other"] == pytest.approx(0.0)


def test_format_breakdown_renders_every_process():
    host = HostProfiler("main")
    host.add_span("run", TOTAL, TOTAL, 0.0, 2.0)
    host.add_span("run", "execute", "e", 0.0, 1.0)
    child = HostProfiler("partition-0")
    child.add_span("serve", TOTAL, TOTAL, 0.0, 1.0)
    host.absorb(child)
    text = format_host_breakdown(host_breakdown(host))
    assert "main" in text and "partition-0" in text
    assert "execute" in text and "wall" in text


# -- fork-mode accounting closes against the measured wall clock ------------------


def test_fork_halo_ring_breakdown_accounts_for_wall_time():
    """The ISSUE's worked example: the 256-rank halo ring under 2 forked
    partitions.  The main process's breakdown total must track the wall
    clock measured *outside* the profiler, and every process's categories
    must sum to its own wall exactly."""
    from repro.bench.pdes import HaloConfig, halo_app
    from repro.sim.pdes import run_partitioned

    host = HostProfiler("main")
    config = HaloConfig(steps=4, halo_words=32, compute_seconds=50e-6)
    t0 = time.perf_counter()
    host.begin("run", TOTAL)
    outcome = run_partitioned(
        halo_app, protocol="mpi", nprocs=256, config=config,
        workers=2, mode="fork", host=host,
    )
    host.end()
    wall = time.perf_counter() - t0
    assert outcome.workers == 2

    down = host_breakdown(host)
    assert "main" in down
    assert {"partition-0", "partition-1"} <= set(down)
    # the profiled total may only miss the perf_counter calls themselves
    assert down["main"]["total"] == pytest.approx(wall, rel=0.05)
    for proc, b in down.items():
        assert sum(b["seconds"].values()) + b["other"] == pytest.approx(
            b["total"], rel=1e-9
        ), proc
    # the coordinator's real work must be visible, not lumped into other
    assert "barrier-wait" in down["main"]["seconds"]
    assert down["main"]["other"] < down["main"]["total"] * 0.5
    for p in ("partition-0", "partition-1"):
        assert {"execute", "sync-wait"} <= set(down[p]["seconds"])


def test_fork_profiled_run_is_bit_identical():
    from repro.apps import APPS
    from repro.apps.common import run_app

    import hashlib
    import json

    def fp(result):
        return hashlib.sha256(
            json.dumps(result.table_row(), sort_keys=True).encode()
        ).hexdigest()

    plain = run_app(APPS["is"], "vc_sd", 8, pdes_workers=2, pdes_mode="fork")
    host = HostProfiler("main")
    profiled = run_app(
        APPS["is"], "vc_sd", 8, pdes_workers=2, pdes_mode="fork", host=host,
    )
    assert fp(profiled) == fp(plain)
    assert profiled.time == plain.time
    assert host.spans  # and it actually recorded something


# -- merged export ----------------------------------------------------------------


def test_merged_chrome_trace_validates_and_separates_clock_domains():
    from repro.apps import APPS
    from repro.apps.common import run_app
    from repro.obs import (
        EventTracer,
        merged_chrome_trace,
        validate_chrome_trace,
    )
    from repro.obs.export import HOST_PID_BASE

    tracer = EventTracer()
    host = HostProfiler("main")
    run_app(
        APPS["is"], "vc_sd", 8, tracer=tracer, host=host,
        pdes_workers=2, pdes_mode="inline",
    )
    doc = merged_chrome_trace(tracer, host)
    validate_chrome_trace(doc)
    pids = {e["pid"] for e in doc["traceEvents"] if "pid" in e}
    sim_pids = {p for p in pids if p < HOST_PID_BASE}
    host_pids = {p for p in pids if p >= HOST_PID_BASE}
    assert sim_pids and host_pids  # both clock domains present, disjoint
    names = {
        e["args"]["name"]
        for e in doc["traceEvents"]
        if e.get("ph") == "M" and e.get("name") == "process_name"
        and e["pid"] >= HOST_PID_BASE
    }
    assert any(n.startswith("host:") for n in names)


# -- sweep purity against the committed matrix ------------------------------------


def test_host_traced_sweep_matches_committed_fingerprints():
    """--host-trace is non-perturbing across the whole 18-cell matrix: a
    profiled, uncached sweep reproduces the committed BENCH_sweep.json
    fingerprints bit for bit."""
    import json as _json
    import os

    from repro.bench.sweep import default_cells, run_sweep

    bench_path = os.path.join(os.path.dirname(__file__), "..", "..",
                              "BENCH_sweep.json")
    if not os.path.exists(bench_path):
        pytest.skip("no committed BENCH_sweep.json in this checkout")
    with open(bench_path) as fh:
        committed = _json.load(fh)
    want = {
        (c["app"], c["protocol"], c["nprocs"], c["variant"]): c["fingerprint"]
        for c in committed["cells"]
    }

    host = HostProfiler("main")
    report = run_sweep(default_cells(), jobs=1, cache_dir=None,
                       verify=False, host=host)
    got = {
        (c.cell.app, c.cell.protocol, c.cell.nprocs, c.cell.variant):
            c.fingerprint()
        for c in report.cells
    }
    assert got == want
    # and the profiler saw one run span per executed cell
    runs = [s for s in host.spans if s[2] == "run"]
    assert len(runs) == len(report.cells)
