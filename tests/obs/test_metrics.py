"""Tests for the contention-metrics registry."""

import json

import pytest

from repro.apps import APPS
from repro.apps.common import run_app
from repro.obs import Histogram, Metrics, format_contention
from repro.sim import Simulator


def test_simulator_has_no_metrics_by_default():
    assert Simulator().metrics is None


def test_counters_and_gauges_are_label_keyed():
    m = Metrics()
    m.inc("diff_bytes", 100, page=3)
    m.inc("diff_bytes", 50, page=3)
    m.inc("diff_bytes", 7, page=4)
    m.gauge("queue_depth", 5, node=0)
    m.gauge("queue_depth", 2, node=0)  # gauges overwrite
    assert m.counter_value("diff_bytes", page=3) == 150
    assert m.counter_value("diff_bytes", page=4) == 7
    assert m.counter_value("diff_bytes", page=99) == 0
    snap = m.snapshot()
    assert snap["gauges"][0]["value"] == 2


def test_histogram_observations():
    h = Histogram()
    for v in (0.001, 0.01, 0.1):
        h.observe(v)
    assert h.count == 3
    assert h.sum == pytest.approx(0.111)
    assert h.min == pytest.approx(0.001)
    assert h.max == pytest.approx(0.1)
    assert h.mean == pytest.approx(0.037)
    snap = h.snapshot()
    assert sum(snap["buckets"].values()) == 3


def test_observe_routes_to_labelled_histograms():
    m = Metrics()
    m.observe("acquire_wait_seconds", 0.5, view=1, mode="w")
    m.observe("acquire_wait_seconds", 1.5, view=1, mode="w")
    m.observe("acquire_wait_seconds", 0.1, view=2, mode="r")
    h = m.histogram("acquire_wait_seconds", view=1, mode="w")
    assert h.count == 2 and h.sum == pytest.approx(2.0)
    assert len(m.series("acquire_wait_seconds")) == 2


def test_snapshot_is_deterministic_and_json_clean(tmp_path):
    def build():
        m = Metrics()
        m.inc("diff_bytes", 10, page=2)
        m.inc("diff_bytes", 1, page=1)
        m.observe("barrier_wait_seconds", 0.25, node=1)
        m.gauge("g", 3)
        return m

    a, b = build().snapshot(), build().snapshot()
    assert a == b
    path = tmp_path / "m.json"
    build().write_json(str(path))
    assert json.loads(path.read_text()) == a


def test_format_contention_renders_tables_and_empty_case():
    m = Metrics()
    assert "none recorded" in format_contention(m)
    m.inc("diff_bytes", 64, page=0)
    m.observe("acquire_wait_seconds", 0.5, view=3, mode="w")
    text = format_contention(m)
    assert "diff_bytes" in text
    assert "acquire_wait_seconds" in text
    assert "view=3" in text


def test_metered_dsm_run_records_expected_metrics():
    m = Metrics()
    run_app(APPS["is"], "vc_d", 4, metrics=m)
    names = {k[0] for k in m.histograms} | {k[0] for k in m.counters}
    assert "acquire_wait_seconds" in names
    assert "barrier_wait_seconds" in names
    assert "barrier_skew_seconds" in names
    assert "diff_bytes" in names
    assert "diff_requests" in names
    assert m.counter_value("barrier_episodes") > 0


def test_vc_sd_records_piggyback_not_diff_traffic():
    m = Metrics()
    run_app(APPS["is"], "vc_sd", 4, metrics=m)
    names = {k[0] for k in m.counters}
    assert "piggyback_bytes" in names
    assert "diff_requests" not in names


def test_metered_run_is_observationally_pure():
    base = run_app(APPS["is"], "vc_d", 4)
    m = Metrics()
    metered = run_app(APPS["is"], "vc_d", 4, metrics=m)
    assert metered.events == base.events
    assert metered.time == base.time
    assert metered.table_row() == base.table_row()
    assert metered.metrics is m and base.metrics is None


def test_unmetered_run_records_nothing():
    sentinel = Metrics()
    run_app(APPS["sor"], "vc_sd", 2)
    assert not sentinel.counters and not sentinel.histograms
