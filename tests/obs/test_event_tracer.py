"""Tests for the structured event tracer: coverage and determinism."""

import json

import pytest

from repro.apps import APPS
from repro.apps.common import run_app
from repro.obs import EventTracer, chrome_trace


def traced_run(app="is", protocol="vc_d", nprocs=4):
    tracer = EventTracer()
    result = run_app(APPS[app], protocol, nprocs, tracer=tracer)
    return tracer, result


def test_tracer_records_all_expected_categories():
    tracer, _ = traced_run()
    cats = {ev[4] for ev in tracer.events}
    for expected in (
        "run", "compute", "barrier-wait", "acquire-wait",
        "page-fault", "diff-wait", "tx", "rx",
    ):
        assert expected in cats, f"missing category {expected}"


def test_tracer_records_engine_counter():
    tracer, _ = traced_run(app="sor", protocol="vc_sd", nprocs=2)
    counters = [ev for ev in tracer.events if ev[0] == "C"]
    assert counters, "no counter events"
    assert all(ev[5] == "live_processes" for ev in counters)
    assert all(ev[2] == -1 for ev in counters)  # engine-global pid


def test_tracer_spans_balance_per_lane():
    tracer, _ = traced_run()
    depth: dict[tuple, int] = {}
    for ph, _t, pid, lane, _cat, _name, _args in tracer.events:
        key = (pid, lane)
        if ph == "B":
            depth[key] = depth.get(key, 0) + 1
        elif ph == "E":
            assert depth.get(key, 0) > 0, f"E without B on {key}"
            depth[key] -= 1
    assert not any(depth.values()), f"unclosed spans: {depth}"


def test_tracer_timestamps_monotone():
    tracer, _ = traced_run(app="sor", protocol="vc_sd", nprocs=2)
    times = [ev[1] for ev in tracer.events]
    assert all(a <= b for a, b in zip(times, times[1:]))


def test_two_identical_runs_trace_identically():
    t1, _ = traced_run()
    t2, _ = traced_run()
    assert t1.events == t2.events
    doc1 = json.dumps(chrome_trace(t1), sort_keys=True)
    doc2 = json.dumps(chrome_trace(t2), sort_keys=True)
    assert doc1 == doc2


def test_mpi_run_traces_recv_wait():
    tracer, _ = traced_run(app="nn", protocol="mpi", nprocs=4)
    cats = {ev[4] for ev in tracer.events}
    assert "recv-wait" in cats
    assert "run" in cats


def test_mpi_rejects_view_tracer():
    from repro.tools.tracer import ViewTracer

    with pytest.raises(ValueError):
        run_app(APPS["nn"], "mpi", 2, view_tracer=ViewTracer())
