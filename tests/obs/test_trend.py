"""N-revision trend tracking (``repro report --trend``) and run manifests.

The two-way regression report generalises to a trend: the same flattening
and gating semantics (exact simulated metrics, tolerance-gated throughput,
report-only host numbers) applied over every *consecutive* pair of N
reports, rendered as per-metric trend tables and standalone HTML with
inline SVG sparklines.  Legacy BENCH files written before the run-manifest
block loads with a warning and a backfilled ``schema: 0`` manifest.
"""

import json
import subprocess
import sys

import pytest

from repro.cli import main
from repro.obs import (
    GATE_EXACT,
    GATE_INFO,
    GATE_THROUGHPUT,
    compare_reports,
    compute_trend,
    format_trend,
    format_trend_html,
    load_report,
)
from repro.obs.report import OK, REGRESSED

from tests.obs.test_report import hotpath_doc, sweep_doc


def degradation_doc():
    return {
        "benchmark": "faults_degradation",
        "app": "is", "nprocs": 4, "seed": 7,
        "loss_rates": [0.0, 0.01], "protocols": ["vc_sd"],
        "base_plan": None,
        "grid": [
            {"app": "is", "protocol": "vc_sd", "nprocs": 4, "loss_rate": 0.0,
             "seed": 7, "failed": False, "time": 1.5, "rexmit": 0,
             "drops": 0, "slowdown": 1.0},
            {"app": "is", "protocol": "vc_sd", "nprocs": 4, "loss_rate": 0.01,
             "seed": 7, "failed": False, "time": 1.8, "rexmit": 4,
             "drops": 2, "slowdown": 1.2},
        ],
    }


# -- compute_trend ----------------------------------------------------------------


def test_steady_trend_has_no_regressions():
    docs = [hotpath_doc(), hotpath_doc(), hotpath_doc()]
    trend = compute_trend(docs, ["r1", "r2", "r3"])
    assert trend.kind == "hotpath"
    assert trend.labels == ["r1", "r2", "r3"]
    assert trend.regressions == []
    assert all(s.worst == OK for s in trend.series)
    # every series carries one value per revision, one status per pair
    for s in trend.series:
        assert len(s.values) == 3
        assert len(s.statuses) == 2


def test_throughput_drop_beyond_tolerance_regresses_last_pair():
    old, mid, new = hotpath_doc(), hotpath_doc(), hotpath_doc()
    new["events_per_sec"] = 1000  # -50% vs 2000
    trend = compute_trend([old, mid, new], ["a", "b", "c"], tolerance=0.25)
    bad = [s for s in trend.regressions
           if s.key == "(total)" and s.metric == "events_per_sec"]
    assert len(bad) == 1
    assert bad[0].gate == GATE_THROUGHPUT
    assert bad[0].statuses == [OK, REGRESSED]


def test_throughput_drop_within_tolerance_is_ok():
    old, new = hotpath_doc(), hotpath_doc()
    new["events_per_sec"] = 1800  # -10%
    trend = compute_trend([old, new], ["a", "b"], tolerance=0.25)
    assert trend.regressions == []


def test_any_exact_simulated_change_regresses():
    old, new = hotpath_doc(), hotpath_doc()
    new["protocols"]["LRC_d"]["sim_time_seconds"] = 1.2500001
    trend = compute_trend([old, new], ["a", "b"])
    bad = [s for s in trend.regressions if s.metric == "sim_time_seconds"]
    assert bad and bad[0].gate == GATE_EXACT


def test_info_metrics_never_gate():
    old, new = hotpath_doc(), hotpath_doc()
    new["wall_seconds"] = 50.0  # 100x slower host — report-only
    trend = compute_trend([old, new], ["a", "b"])
    assert trend.regressions == []
    walls = [s for s in trend.series
             if s.key == "(total)" and s.metric == "wall_seconds"]
    assert walls[0].gate == GATE_INFO


def test_mixed_kinds_refused():
    with pytest.raises(ValueError, match="kind"):
        compute_trend([hotpath_doc(), sweep_doc()], ["a", "b"])


def test_trend_needs_two_reports():
    with pytest.raises(ValueError, match="two"):
        compute_trend([hotpath_doc()], ["a"])


def test_degradation_trends_but_refuses_two_way():
    docs = [degradation_doc(), degradation_doc()]
    trend = compute_trend(docs, ["a", "b"])
    assert trend.kind == "degradation"
    assert trend.regressions == []
    with pytest.raises(ValueError, match="trend"):
        compare_reports(degradation_doc(), degradation_doc())


def test_degradation_exact_metrics_gate():
    old, new = degradation_doc(), degradation_doc()
    new["grid"][1]["rexmit"] = 9
    trend = compute_trend([old, new], ["a", "b"])
    assert any(s.metric == "rexmit" for s in trend.regressions)


# -- rendering --------------------------------------------------------------------


def test_format_trend_terminal():
    old, new = hotpath_doc(), hotpath_doc()
    new["events_per_sec"] = 100
    trend = compute_trend([old, new], ["base.json", "cand.json"])
    text = format_trend(trend)
    assert "base.json -> cand.json" in text
    assert "REGRESSED" in text
    assert "events_per_sec" in text
    steady = compute_trend([hotpath_doc(), hotpath_doc()], ["a", "b"])
    assert "verdict: ok" in format_trend(steady)


def test_format_trend_html_has_sparklines():
    docs = [hotpath_doc(), hotpath_doc(), hotpath_doc()]
    html = format_trend_html(compute_trend(docs, ["a", "b", "c"]))
    assert html.lower().startswith("<!doctype html>")
    assert "<svg" in html and "polyline" in html


def test_trend_collects_manifests():
    old, new = hotpath_doc(), hotpath_doc()
    old["manifest"] = {"schema": 1, "git_rev": "a" * 40}
    trend = compute_trend([old, new], ["a", "b"])
    assert trend.manifests[0]["git_rev"] == "a" * 40
    assert trend.manifests[1] == {"schema": 0}  # backfilled placeholder


# -- manifest backfill on load ----------------------------------------------------


def test_load_report_backfills_legacy_manifest(tmp_path):
    doc = hotpath_doc()
    assert "manifest" not in doc
    path = tmp_path / "old.json"
    path.write_text(json.dumps(doc))
    with pytest.warns(UserWarning, match="schema 0"):
        loaded = load_report(str(path))
    assert loaded["manifest"] == {"schema": 0}


def test_load_report_keeps_real_manifest(tmp_path):
    doc = hotpath_doc()
    doc["manifest"] = {"schema": 1, "git_rev": "f" * 40}
    path = tmp_path / "new.json"
    path.write_text(json.dumps(doc))
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("error")
        loaded = load_report(str(path))
    assert loaded["manifest"]["schema"] == 1


def test_load_report_git_spec():
    """git:REV[:path] specs drive trend inputs straight from history."""
    try:
        subprocess.run(
            ["git", "rev-parse", "HEAD"], capture_output=True, check=True,
            cwd=".",
        )
    except (OSError, subprocess.CalledProcessError):
        pytest.skip("not a git checkout")
    doc = load_report("git:HEAD:BENCH_hotpath.json")
    assert doc["benchmark"].startswith("hotpath")


# -- the CLI ----------------------------------------------------------------------


def _write(tmp_path, name, doc):
    p = tmp_path / name
    p.write_text(json.dumps(doc))
    return str(p)


def test_cli_trend_check_exits_1_on_regression(tmp_path, capsys):
    old = _write(tmp_path, "a.json", hotpath_doc())
    mid = _write(tmp_path, "b.json", hotpath_doc())
    bad_doc = hotpath_doc()
    bad_doc["events_per_sec"] = 100
    bad = _write(tmp_path, "c.json", bad_doc)
    code = main(["report", old, mid, bad, "--trend", "--check"])
    out = capsys.readouterr().out
    assert code == 1
    assert "verdict: REGRESSED" in out


def test_cli_trend_ok_exits_0_and_writes_html(tmp_path, capsys):
    a = _write(tmp_path, "a.json", hotpath_doc())
    b = _write(tmp_path, "b.json", hotpath_doc())
    html = tmp_path / "trend.html"
    code = main(["report", a, b, "--trend", "--check", "--html", str(html)])
    assert code == 0
    assert "<svg" in html.read_text()


def test_cli_trend_needs_two_specs(tmp_path, capsys):
    a = _write(tmp_path, "a.json", hotpath_doc())
    code = main(["report", a, "--trend"])
    assert code == 2
    assert "at least two" in capsys.readouterr().err


def test_cli_two_way_needs_exactly_two_specs(tmp_path, capsys):
    a = _write(tmp_path, "a.json", hotpath_doc())
    b = _write(tmp_path, "b.json", hotpath_doc())
    c = _write(tmp_path, "c.json", hotpath_doc())
    code = main(["report", a, b, c])
    assert code == 2
    assert "exactly two" in capsys.readouterr().err


def test_cli_two_way_degradation_suggests_trend(tmp_path, capsys):
    a = _write(tmp_path, "a.json", degradation_doc())
    b = _write(tmp_path, "b.json", degradation_doc())
    code = main(["report", a, b])
    assert code == 2
    assert "--trend" in capsys.readouterr().err
    code = main(["report", a, b, "--trend", "--check"])
    assert code == 0
