"""Tests for the causal critical-path analysis.

The load-bearing invariant is the *exact partition*: the walked segments
are contiguous with float equality and their durations telescope to the
run's total simulated time, for every (app, protocol, nprocs) cell — no
epsilon slop hiding double-counted or dropped time.
"""

import math

import pytest

from repro.apps import APPS
from repro.apps.common import run_app
from repro.obs import EventTracer, compute_critical_path, format_critical_path


def _assert_exact_partition(cp):
    assert cp.segments, "empty path for a traced run"
    assert cp.segments[0].t0 == cp.start
    assert cp.segments[-1].t1 == cp.end
    for a, b in zip(cp.segments, cp.segments[1:]):
        assert a.t1 == b.t0, f"gap between {a} and {b}"
    assert math.fsum(s.duration for s in cp.segments) == pytest.approx(
        cp.total, abs=1e-9
    )
    assert math.fsum(cp.by_category.values()) == pytest.approx(cp.total, abs=1e-9)


# -- synthetic walk -----------------------------------------------------------------


def _synthetic_tracer():
    """Two ranks: rank 1 blocks on a lock rank 0 grants from a handler.

    Timeline: rank 1 computes [0,4], sends LOCK_ACQUIRE at 4; rank 0's
    handler runs (4.5, 5.5] and sends LOCK_GRANT at 5.0; the grant wakes
    rank 1 at 9.0; rank 1 computes [9,10] and finishes last.
    """
    tr = EventTracer()
    tr.begin(0, "app", "run", "rank 0", 0.0)
    tr.end(0, "app", "run", 8.0)
    tr.begin(1, "app", "run", "rank 1", 0.0)
    tr.begin(1, "app", "acquire-wait", "lock 7", 4.0)
    tr.causal_send(3, 1, 4.0, "LOCK_ACQUIRE")
    tr.begin_dispatch(0, 3, "LOCK_ACQUIRE", 1, 4.5)
    tr.causal_send(5, 0, 5.0, "LOCK_GRANT")
    tr.end_dispatch(0, 5.5)
    tr.wake(1, 9.0, msg_id=5)
    tr.end(1, "app", "acquire-wait", 9.0)
    tr.end(1, "app", "run", 10.0)
    return tr


def test_synthetic_walk_crosses_ranks_through_the_handler():
    cp = compute_critical_path(_synthetic_tracer())
    assert cp.total == 10.0
    _assert_exact_partition(cp)
    shape = [(s.rank, s.lane, s.t0, s.t1, s.category) for s in cp.segments]
    assert shape == [
        (1, "app", 0.0, 4.0, "compute"),
        (0, "wire", 4.0, 4.5, "wire"),  # LOCK_ACQUIRE flight
        (0, "dispatch", 4.5, 5.0, "acquire"),  # handler until the grant send
        (1, "wire", 5.0, 9.0, "wire"),  # LOCK_GRANT flight
        (1, "app", 9.0, 9.0, "acquire"),  # zero-length wait tail
        (1, "app", 9.0, 10.0, "compute"),
    ]


def test_synthetic_wait_slack():
    cp = compute_critical_path(_synthetic_tracer())
    assert len(cp.waits) == 1
    w = cp.waits[0]
    assert (w.rank, w.t0, w.t1, w.category) == (1, 4.0, 9.0, "acquire")
    # same-rank path coverage: only the grant flight [5, 9] lands on rank 1;
    # the request flight and the handler belong to rank 0's timeline
    assert w.on_path == pytest.approx(4.0)
    assert w.slack == pytest.approx(1.0)


def test_wake_without_edge_stays_local():
    tr = EventTracer()
    tr.begin(0, "app", "run", "rank 0", 0.0)
    tr.begin(0, "app", "barrier-wait", "b", 2.0)
    tr.wake(0, 5.0)  # no dispatch context, no explicit cause: no edge
    tr.end(0, "app", "barrier-wait", 5.0)
    tr.end(0, "app", "run", 6.0)
    cp = compute_critical_path(tr)
    _assert_exact_partition(cp)
    assert all(s.rank == 0 for s in cp.segments)
    assert cp.by_category["barrier"] == pytest.approx(3.0)


def test_empty_tracer_gives_empty_path():
    cp = compute_critical_path(EventTracer())
    assert cp.segments == [] and cp.total == 0.0
    assert "no traced run" in format_critical_path(cp)


# -- real runs ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "app,protocol",
    [("is", "lrc_d"), ("is", "vc_d"), ("is", "vc_sd"), ("is", "hlrc_d"),
     ("sor", "vc_sd"), ("nn", "mpi")],
)
def test_partition_is_exact_across_matrix(app, protocol):
    tracer = EventTracer()
    run_app(APPS[app], protocol, 4, tracer=tracer)
    cp = compute_critical_path(tracer)
    _assert_exact_partition(cp)
    for w in cp.waits:
        assert 0.0 <= w.on_path <= w.duration + 1e-12
        assert w.slack >= -1e-12


def test_vc_sd_path_has_no_diff_segments():
    """Single-writer piggybacking keeps diff traffic off VC_sd's path."""
    tracer = EventTracer()
    run_app(APPS["is"], "vc_sd", 4, tracer=tracer)
    cp = compute_critical_path(tracer)
    assert cp.by_category.get("diff", 0.0) == 0.0
    assert not any(s.category == "diff" for s in cp.segments)


def test_lrc_d_path_shows_barrier_consistency_handlers():
    """LRC's centralised barrier work appears as dispatch-lane segments."""
    tracer = EventTracer()
    run_app(APPS["is"], "lrc_d", 4, tracer=tracer)
    cp = compute_critical_path(tracer)
    barrier_handlers = [
        s for s in cp.segments if s.lane == "dispatch" and s.category == "barrier"
    ]
    assert barrier_handlers, "no barrier consistency segments on LRC_d's path"


def test_critical_path_is_deterministic():
    def path():
        tracer = EventTracer()
        run_app(APPS["is"], "vc_d", 4, tracer=tracer)
        return compute_critical_path(tracer)

    a, b = path(), path()
    assert a.segments == b.segments
    assert a.by_category == b.by_category
    assert a.waits == b.waits


def test_format_critical_path_renders():
    tracer = EventTracer()
    run_app(APPS["sor"], "vc_sd", 2, tracer=tracer)
    text = format_critical_path(compute_critical_path(tracer))
    assert "Critical path" in text
    assert "compute" in text
    assert "waits:" in text
