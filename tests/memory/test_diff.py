"""Unit + property tests for the diff machinery."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.memory.diff import (
    DIFF_HEADER_BYTES,
    RUN_HEADER_BYTES,
    Diff,
    apply_diff,
    full_page_diff,
    integrate_diffs,
    make_diff,
)

PAGE = 256  # small page for tests


def page(vals=0):
    arr = np.zeros(PAGE, dtype=np.uint8)
    if np.ndim(vals) or vals:
        arr[:] = vals
    return arr


def test_identical_pages_give_empty_diff():
    twin = page()
    cur = page()
    d = make_diff(1, twin, cur)
    assert d.empty
    assert d.changed_bytes == 0
    assert d.wire_size == DIFF_HEADER_BYTES


def test_single_byte_change():
    twin = page()
    cur = page()
    cur[10] = 7
    d = make_diff(1, twin, cur)
    assert d.runs == ((10, bytes([7])),)
    assert d.changed_bytes == 1
    assert d.wire_size == DIFF_HEADER_BYTES + RUN_HEADER_BYTES + 1


def test_adjacent_changes_coalesce_into_one_run():
    twin = page()
    cur = page()
    cur[20:25] = [1, 2, 3, 4, 5]
    d = make_diff(1, twin, cur)
    assert len(d.runs) == 1
    assert d.runs[0] == (20, bytes([1, 2, 3, 4, 5]))


def test_separate_changes_make_separate_runs():
    twin = page()
    cur = page()
    cur[0] = 1
    cur[100] = 2
    cur[255] = 3
    d = make_diff(1, twin, cur)
    assert [off for off, _ in d.runs] == [0, 100, 255]


def test_apply_diff_reconstructs_page():
    rng = np.random.RandomState(0)
    twin = rng.randint(0, 256, PAGE).astype(np.uint8)
    cur = twin.copy()
    cur[rng.choice(PAGE, 40, replace=False)] ^= 0xFF
    d = make_diff(3, twin, cur)
    rebuilt = twin.copy()
    apply_diff(rebuilt, d)
    assert np.array_equal(rebuilt, cur)


def test_diff_validation_rejects_bad_runs():
    with pytest.raises(ValueError):
        Diff(1, ((-1, b"x"),))
    with pytest.raises(ValueError):
        Diff(1, ((0, b""),))
    with pytest.raises(ValueError):
        Diff(1, ((0, b"ab"), (1, b"c")))  # overlap
    with pytest.raises(ValueError):
        Diff(1, ((5, b"a"), (2, b"b")))  # out of order


def test_apply_out_of_range_run_raises():
    d = Diff(1, ((250, b"0123456789"),))
    with pytest.raises(ValueError):
        apply_diff(page(), d)


def test_mismatched_shapes_raise():
    with pytest.raises(ValueError):
        make_diff(1, np.zeros(10, np.uint8), np.zeros(12, np.uint8))


def test_integrate_mismatched_page_ids_raises():
    d = Diff(1, ((0, b"x"),))
    with pytest.raises(ValueError):
        integrate_diffs(2, [d], PAGE)


def test_integration_result_equals_sequential_application():
    rng = np.random.RandomState(1)
    base = rng.randint(0, 256, PAGE).astype(np.uint8)
    seq = base.copy()
    diffs = []
    for step in range(5):
        twin = seq.copy()
        seq[rng.choice(PAGE, 30, replace=False)] = rng.randint(0, 256, 30)
        diffs.append(make_diff(9, twin, seq))
    integrated = integrate_diffs(9, diffs, PAGE)
    rebuilt = base.copy()
    apply_diff(rebuilt, integrated)
    assert np.array_equal(rebuilt, seq)


def test_integration_never_larger_than_sum_of_parts():
    rng = np.random.RandomState(2)
    base = rng.randint(0, 256, PAGE).astype(np.uint8)
    seq = base.copy()
    diffs = []
    for step in range(4):
        twin = seq.copy()
        seq[10:50] = rng.randint(0, 256, 40)  # same region modified repeatedly
        # guarantee at least one changed byte so diffs are non-trivial
        seq[10] = twin[10] ^ 0xFF
        diffs.append(make_diff(4, twin, seq))
    integrated = integrate_diffs(4, diffs, PAGE)
    assert integrated.wire_size <= sum(d.wire_size for d in diffs)
    # repeated writes to the same 40 bytes integrate to ~40 bytes, not 160
    assert integrated.changed_bytes <= 40


def test_full_page_diff_roundtrip():
    rng = np.random.RandomState(3)
    src = rng.randint(0, 256, PAGE).astype(np.uint8)
    d = full_page_diff(7, src)
    dst = page()
    apply_diff(dst, d)
    assert np.array_equal(dst, src)
    assert d.changed_bytes == PAGE


# -- property-based tests -------------------------------------------------------

page_strategy = st.binary(min_size=PAGE, max_size=PAGE).map(
    lambda b: np.frombuffer(b, dtype=np.uint8).copy()
)


@given(twin=page_strategy, cur=page_strategy)
@settings(max_examples=60)
def test_prop_make_apply_roundtrip(twin, cur):
    """apply(twin, make_diff(twin, cur)) == cur for arbitrary pages."""
    d = make_diff(0, twin, cur)
    rebuilt = twin.copy()
    apply_diff(rebuilt, d)
    assert np.array_equal(rebuilt, cur)


@given(twin=page_strategy, cur=page_strategy)
@settings(max_examples=60)
def test_prop_diff_is_minimal(twin, cur):
    """Every byte in a run differs at its boundaries (runs are maximal)."""
    d = make_diff(0, twin, cur)
    assert d.changed_bytes == int(np.count_nonzero(twin != cur))
    for off, data in d.runs:
        # boundaries: byte before/after each run is unchanged
        if off > 0:
            assert twin[off - 1] == cur[off - 1]
        end = off + len(data)
        if end < PAGE:
            assert twin[end] == cur[end]


@given(
    base=page_strategy,
    edits=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=PAGE - 1),
            st.binary(min_size=1, max_size=32),
        ),
        min_size=0,
        max_size=6,
    ),
)
@settings(max_examples=60)
def test_prop_integration_equals_sequential(base, edits):
    """Integrating per-edit diffs equals applying them in order."""
    seq = base.copy()
    diffs = []
    for off, data in edits:
        data = data[: PAGE - off]
        if not data:
            continue
        twin = seq.copy()
        seq[off : off + len(data)] = np.frombuffer(data, dtype=np.uint8)
        diffs.append(make_diff(0, twin, seq))
    integrated = integrate_diffs(0, diffs, PAGE)
    rebuilt = base.copy()
    apply_diff(rebuilt, integrated)
    assert np.array_equal(rebuilt, seq)


@given(twin=page_strategy, cur=page_strategy)
@settings(max_examples=60)
def test_prop_wire_size_accounting(twin, cur):
    d = make_diff(0, twin, cur)
    expected = DIFF_HEADER_BYTES + sum(RUN_HEADER_BYTES + len(r) for _, r in d.runs)
    assert d.wire_size == expected
    assert d.changed_bytes <= PAGE


# runs for multi-writer integration tests: arbitrary offsets and lengths, so
# runs from different "writers" freely overlap; adjacent runs within one diff
# are merged before construction to satisfy Diff's run invariants
def _runs_to_diff(page_id, run_list):
    merged = []
    for off, data in sorted(run_list, key=lambda r: r[0]):
        data = data[: PAGE - off]
        if not data:
            continue
        if merged and off <= merged[-1][0] + len(merged[-1][1]):
            prev_off, prev_data = merged[-1]
            keep = off - prev_off
            merged[-1] = (prev_off, prev_data[:keep] + data)
        else:
            merged.append((off, data))
    return Diff(page_id, tuple(merged))


runs_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=PAGE - 1),
        st.binary(min_size=1, max_size=48),
    ),
    min_size=1,
    max_size=5,
)


@given(base=page_strategy, writers=st.lists(runs_strategy, min_size=1, max_size=4))
@settings(max_examples=80)
def test_prop_integration_with_overlapping_writers(base, writers):
    """integrate_diffs == sequential apply_diff for overlapping multi-writer
    diffs (later writers overwrite earlier ones byte-for-byte)."""
    diffs = [_runs_to_diff(7, run_list) for run_list in writers]
    diffs = [d for d in diffs if not d.empty]
    sequential = base.copy()
    for d in diffs:
        apply_diff(sequential, d)
    integrated = integrate_diffs(7, diffs, PAGE)
    via_integrated = base.copy()
    apply_diff(via_integrated, integrated)
    assert np.array_equal(via_integrated, sequential)
    # the integrated diff is one write per touched byte, never more
    touched = set()
    for d in diffs:
        for off, data in d.runs:
            touched.update(range(off, off + len(data)))
    assert integrated.changed_bytes == len(touched)
