"""Property-based tests: the memory manager behaves like a flat buffer."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.memory import AddressSpace, MemoryManager, PageState
from repro.net import Cluster

SIZE = 512
PAGE = 64


class LocalProtocol:
    """Single-node fault handler: everything materialises locally."""

    def __init__(self, mm):
        self.mm = mm

    def read_fault(self, pids):
        for pid in pids:
            if self.mm.page(pid).state is PageState.NO_COPY:
                self.mm.zero_fill(pid)
            else:
                self.mm.page(pid).state = PageState.RO
        return
        yield  # pragma: no cover

    def write_fault(self, pids):
        for pid in pids:
            copy = self.mm.page(pid)
            if copy.state is PageState.NO_COPY:
                self.mm.zero_fill(pid)
            if copy.state is not PageState.RW:
                self.mm.start_writing(pid)
        return
        yield  # pragma: no cover


ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(["r", "w", "interval"]),
        st.integers(0, SIZE - 1),
        st.integers(1, 64),
        st.integers(0, 255),
    ),
    min_size=1,
    max_size=40,
)


@given(ops=ops_strategy)
@settings(max_examples=60, deadline=None)
def test_prop_manager_equals_flat_buffer(ops):
    """Any interleaving of block reads/writes/interval-ends matches numpy."""
    cluster = Cluster(1)
    space = AddressSpace(page_size=PAGE)
    space.alloc("buf", SIZE)
    mm = MemoryManager(cluster[0], space)
    mm.fault_handler = LocalProtocol(mm)
    reference = np.zeros(SIZE, dtype=np.uint8)
    failures = []

    def driver():
        for op, addr, length, value in ops:
            length = min(length, SIZE - addr)
            if length <= 0:
                continue
            if op == "w":
                data = np.full(length, value, dtype=np.uint8)
                yield from mm.write_bytes(addr, data)
                reference[addr : addr + length] = value
            elif op == "r":
                got = yield from mm.read_bytes(addr, length)
                if not np.array_equal(got, reference[addr : addr + length]):
                    failures.append((addr, length))
            else:
                diffs = mm.end_interval()
                # every diff must reproduce reality when applied to a twin:
                # validated implicitly by later reads
        # final full scan
        got = yield from mm.read_bytes(0, SIZE)
        if not np.array_equal(got, reference):
            failures.append(("final", None))

    cluster.sim.spawn(driver())
    cluster.run()
    assert not failures


@given(ops=ops_strategy)
@settings(max_examples=40, deadline=None)
def test_prop_interval_diffs_capture_exact_changes(ops):
    """end_interval's diffs, replayed onto a snapshot, give current memory."""
    cluster = Cluster(1)
    space = AddressSpace(page_size=PAGE)
    space.alloc("buf", SIZE)
    mm = MemoryManager(cluster[0], space)
    mm.fault_handler = LocalProtocol(mm)

    from repro.memory.diff import apply_diff

    def driver():
        snapshot = {}
        collected = {}
        for op, addr, length, value in ops:
            length = min(length, SIZE - addr)
            if length <= 0:
                continue
            if op == "w":
                # snapshot pages the first time they get twinned
                data = np.full(length, value, dtype=np.uint8)
                pids = space.pages_of_range(addr, length)
                for pid in pids:
                    if pid not in snapshot and mm.state(pid) is not PageState.RW:
                        copy = mm.pages.get(pid)
                        snapshot[pid] = (
                            copy.data.copy() if copy is not None and copy.data is not None
                            else np.zeros(PAGE, dtype=np.uint8)
                        )
                yield from mm.write_bytes(addr, data)
            elif op == "interval":
                for pid, diff in mm.end_interval().items():
                    collected.setdefault(pid, []).append(diff)
        for pid, diff in mm.end_interval().items():
            collected.setdefault(pid, []).append(diff)
        # replay: snapshot + diffs == live page
        for pid, diffs in collected.items():
            base = snapshot[pid].copy()
            for diff in diffs:
                apply_diff(base, diff)
            live = mm.pages[pid].data
            assert np.array_equal(base, live), f"page {pid} replay mismatch"

    cluster.sim.spawn(driver())
    cluster.run()
