"""Unit tests for the per-node memory manager (with a fake protocol)."""

import numpy as np
import pytest

from repro.memory import AddressSpace, MemoryManager, PageState
from repro.net import Cluster


class FakeProtocol:
    """Grants every fault locally: zero-fill reads, twin+RW writes."""

    def __init__(self, mm):
        self.mm = mm
        self.read_faults = []
        self.write_faults = []

    def read_fault(self, pids):
        self.read_faults.append(list(pids))
        for pid in pids:
            if self.mm.page(pid).state is PageState.NO_COPY:
                self.mm.zero_fill(pid)
            else:
                self.mm.page(pid).state = PageState.RO
        return
        yield  # pragma: no cover

    def write_fault(self, pids):
        self.write_faults.append(list(pids))
        for pid in pids:
            copy = self.mm.page(pid)
            if copy.state is PageState.NO_COPY:
                self.mm.zero_fill(pid)
            if copy.state is not PageState.RW:
                self.mm.start_writing(pid)
        return
        yield  # pragma: no cover


@pytest.fixture()
def setup():
    cluster = Cluster(1)
    space = AddressSpace(page_size=64)
    space.alloc("buf", 256)  # 4 pages
    mm = MemoryManager(cluster[0], space)
    proto = FakeProtocol(mm)
    mm.fault_handler = proto
    return cluster, mm, proto


def drive(cluster, gen):
    box = []

    def runner():
        box.append((yield from gen))

    cluster.sim.spawn(runner())
    cluster.run()
    return box[0]


def test_write_then_read_roundtrip(setup):
    cluster, mm, proto = setup
    payload = np.arange(100, dtype=np.uint8)
    drive(cluster, mm.write_bytes(30, payload))
    out = drive(cluster, mm.read_bytes(30, 100))
    assert np.array_equal(out, payload)


def test_faults_only_for_missing_pages(setup):
    cluster, mm, proto = setup
    drive(cluster, mm.write_bytes(0, np.zeros(64, np.uint8)))
    assert proto.write_faults == [[0]]
    drive(cluster, mm.write_bytes(10, np.ones(10, np.uint8)))
    assert proto.write_faults == [[0]]  # page already RW, no new fault
    drive(cluster, mm.read_bytes(0, 64))
    assert proto.read_faults == []  # RW is readable


def test_cross_page_access_faults_all_pages(setup):
    cluster, mm, proto = setup
    drive(cluster, mm.read_bytes(60, 10))  # spans pages 0 and 1
    assert proto.read_faults == [[0, 1]]
    out = drive(cluster, mm.read_bytes(60, 10))
    assert np.array_equal(out, np.zeros(10, np.uint8))


def test_end_interval_produces_diffs_and_downgrades(setup):
    cluster, mm, proto = setup
    drive(cluster, mm.write_bytes(5, np.array([9, 8, 7], np.uint8)))
    diffs = mm.end_interval()
    assert list(diffs) == [0]
    assert diffs[0].runs == ((5, bytes([9, 8, 7])),)
    assert mm.page(0).state is PageState.RO
    assert mm.page(0).twin is None
    assert mm.write_set == set()


def test_end_interval_skips_clean_twins(setup):
    cluster, mm, proto = setup
    drive(cluster, mm.write_bytes(0, np.zeros(4, np.uint8)))  # writes zeros over zeros
    diffs = mm.end_interval()
    assert diffs == {}


def test_invalidate_rules(setup):
    cluster, mm, proto = setup
    drive(cluster, mm.read_bytes(0, 4))
    mm.invalidate([0, 1])  # page 1 has NO_COPY: stays that way
    assert mm.page(0).state is PageState.INVALID
    assert mm.page(1).state is PageState.NO_COPY
    drive(cluster, mm.write_bytes(64, np.ones(4, np.uint8)))
    with pytest.raises(RuntimeError):
        mm.invalidate([1])  # invalidating a page being written is a bug


def test_install_and_apply_diffs(setup):
    cluster, mm, proto = setup
    content = np.arange(64, dtype=np.uint8)
    mm.install_full_page(2, content.tobytes())
    assert mm.page(2).state is PageState.RO
    out = drive(cluster, mm.read_bytes(128, 64))
    assert np.array_equal(out, content)

    from repro.memory.diff import Diff

    mm.apply_diffs(2, [Diff(2, ((0, bytes([255])),))])
    out = drive(cluster, mm.read_bytes(128, 1))
    assert out[0] == 255


def test_read_without_protocol_raises():
    cluster = Cluster(1)
    space = AddressSpace(page_size=64)
    space.alloc("buf", 64)
    mm = MemoryManager(cluster[0], space)

    def runner():
        with pytest.raises(RuntimeError):
            yield from mm.read_bytes(0, 4)

    cluster.sim.spawn(runner())
    cluster.run()


def test_snapshot_page(setup):
    cluster, mm, proto = setup
    drive(cluster, mm.write_bytes(0, np.array([1, 2, 3], np.uint8)))
    snap = mm.snapshot_page(0)
    assert snap[:3] == bytes([1, 2, 3])
    with pytest.raises(KeyError):
        mm.snapshot_page(3)


def test_interval_dirty_bytes(setup):
    cluster, mm, proto = setup
    drive(cluster, mm.write_bytes(0, np.ones(1, np.uint8)))
    drive(cluster, mm.write_bytes(64, np.ones(1, np.uint8)))
    assert mm.interval_dirty_bytes() == 2 * 64
