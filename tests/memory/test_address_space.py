"""Unit + property tests for the address space/allocator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.memory import AddressSpace


def test_packed_allocations_can_share_a_page():
    space = AddressSpace(page_size=4096)
    a = space.alloc("a", 100)
    b = space.alloc("b", 100)
    assert a.base == 0 and b.base == 100
    assert set(a.page_range(4096)) == set(b.page_range(4096)) == {0}


def test_page_aligned_allocations_never_share_pages():
    space = AddressSpace(page_size=4096)
    space.alloc("pad", 10)
    a = space.alloc("a", 100, page_aligned=True)
    b = space.alloc("b", 5000, page_aligned=True)
    c = space.alloc("c", 1)  # packed after aligned still gets a fresh page
    assert a.base % 4096 == 0
    assert b.base % 4096 == 0
    pages_a = set(a.page_range(4096))
    pages_b = set(b.page_range(4096))
    pages_c = set(c.page_range(4096))
    assert pages_a.isdisjoint(pages_b)
    assert pages_b.isdisjoint(pages_c)
    assert len(pages_b) == 2  # 5000 bytes spans two pages


def test_region_lookup_and_listing():
    space = AddressSpace()
    r = space.alloc("matrix", 1234)
    assert space.region("matrix") is r
    assert space.regions() == [r]
    with pytest.raises(KeyError):
        space.region("nope")


def test_duplicate_name_rejected():
    space = AddressSpace()
    space.alloc("x", 10)
    with pytest.raises(ValueError):
        space.alloc("x", 10)


def test_bad_sizes_rejected():
    space = AddressSpace()
    with pytest.raises(ValueError):
        space.alloc("x", 0)
    with pytest.raises(ValueError):
        AddressSpace(page_size=1000)  # not a power of two
    with pytest.raises(ValueError):
        AddressSpace(page_size=0)


def test_page_of_and_range_bounds():
    space = AddressSpace(page_size=16)
    space.alloc("x", 40)
    assert space.page_of(0) == 0
    assert space.page_of(39) == 2
    assert list(space.pages_of_range(10, 10)) == [0, 1]
    with pytest.raises(IndexError):
        space.page_of(40)
    with pytest.raises(IndexError):
        space.pages_of_range(30, 20)
    with pytest.raises(ValueError):
        space.pages_of_range(0, 0)


def test_num_pages_rounds_up():
    space = AddressSpace(page_size=16)
    assert space.num_pages == 0
    space.alloc("x", 17)
    assert space.num_pages == 2


@given(
    sizes=st.lists(
        st.tuples(st.integers(min_value=1, max_value=10_000), st.booleans()),
        min_size=1,
        max_size=30,
    )
)
@settings(max_examples=50)
def test_prop_allocations_are_disjoint_and_ordered(sizes):
    space = AddressSpace(page_size=256)
    regions = []
    for i, (size, aligned) in enumerate(sizes):
        regions.append(space.alloc(f"r{i}", size, page_aligned=aligned))
    # strictly increasing, non-overlapping
    for earlier, later in zip(regions, regions[1:]):
        assert earlier.end <= later.base
    # aligned regions start on page boundaries and own their pages
    for i, (size, aligned) in enumerate(sizes):
        if aligned:
            assert regions[i].base % 256 == 0
            own = set(regions[i].page_range(256))
            for j, other in enumerate(regions):
                if j != i:
                    assert own.isdisjoint(other.page_range(256))
