"""Tests for the LRC_d protocol: locks, barriers, invalidate/diff machinery."""

import numpy as np
import pytest

from repro.net.config import NetConfig
from repro.protocols.system import DsmSystem
from tests.protocols.conftest import as_u8, from_u8, run_workers


def make(n, **kw):
    return DsmSystem(n, protocol="lrc_d", page_size=kw.pop("page_size", 256), **kw)


def test_single_node_runs_locally():
    system = make(1)
    system.alloc("x", 8)

    def worker(proto, rank):
        yield from proto.acquire_lock(0)
        yield from proto.mm.write_bytes(0, as_u8([42]))
        yield from proto.release_lock(0)
        yield from proto.barrier()
        raw = yield from proto.mm.read_bytes(0, 8)
        return from_u8(raw)[0]

    assert run_workers(system, worker) == [42]
    assert system.stats.net.num_msg == 0  # everything local


def test_lock_transfers_data_between_nodes():
    system = make(2)
    system.alloc("x", 8)

    def worker(proto, rank):
        if rank == 0:
            yield from proto.acquire_lock(0)
            yield from proto.mm.write_bytes(0, as_u8([7]))
            yield from proto.release_lock(0)
        yield from proto.barrier()
        yield from proto.acquire_lock(0)
        raw = yield from proto.mm.read_bytes(0, 8)
        value = from_u8(raw)[0]
        yield from proto.mm.write_bytes(0, as_u8([value + 1]))
        yield from proto.release_lock(0)
        yield from proto.barrier()
        yield from proto.acquire_lock(0)
        raw = yield from proto.mm.read_bytes(0, 8)
        yield from proto.release_lock(0)
        return from_u8(raw)[0]

    results = run_workers(system, worker)
    # both increments landed: 7 + 1 + 1
    assert results == [9, 9]


def test_lock_mutual_exclusion_counter():
    """Classic lock-protected counter: no lost updates across 4 nodes."""
    system = make(4)
    system.alloc("counter", 8)
    increments = 5

    def worker(proto, rank):
        for _ in range(increments):
            yield from proto.acquire_lock(3)  # manager is node 3
            raw = yield from proto.mm.read_bytes(0, 8)
            value = from_u8(raw)[0]
            yield from proto.mm.write_bytes(0, as_u8([value + 1]))
            yield from proto.release_lock(3)
        yield from proto.barrier()
        yield from proto.acquire_lock(3)
        raw = yield from proto.mm.read_bytes(0, 8)
        yield from proto.release_lock(3)
        return from_u8(raw)[0]

    results = run_workers(system, worker)
    assert results == [20, 20, 20, 20]


def test_barrier_propagates_writes_of_all_nodes():
    """Each node writes its slot; after the barrier everyone reads all slots."""
    n = 4
    system = make(n)
    system.alloc("slots", 8 * n)

    def worker(proto, rank):
        yield from proto.mm.write_bytes(8 * rank, as_u8([rank * 10]))
        yield from proto.barrier()
        raw = yield from proto.mm.read_bytes(0, 8 * n)
        return list(from_u8(raw))

    results = run_workers(system, worker)
    for r in results:
        assert r == [0, 10, 20, 30]


def test_false_sharing_multiple_writers_one_page():
    """All slots land on ONE page: the multiple-writer protocol must merge
    concurrent diffs of the same page correctly."""
    n = 4
    system = make(n)
    region = system.alloc("slots", 8 * n)
    pids = set(region.page_range(system.space.page_size))
    assert len(pids) == 1  # precondition: genuine false sharing

    def worker(proto, rank):
        yield from proto.mm.write_bytes(8 * rank, as_u8([rank + 1]))
        yield from proto.barrier()
        raw = yield from proto.mm.read_bytes(0, 8 * n)
        yield from proto.barrier()
        return list(from_u8(raw))

    results = run_workers(system, worker)
    for r in results:
        assert r == [1, 2, 3, 4]
    # merging required diff requests
    assert system.stats.diff_requests > 0


def test_repeated_barrier_rounds_accumulate_correctly():
    """SOR-like pattern: each round reads a neighbour's value, writes own."""
    n = 3
    rounds = 4
    system = make(n)
    system.alloc("cells", 8 * n)

    def worker(proto, rank):
        left = (rank - 1) % n
        yield from proto.mm.write_bytes(8 * rank, as_u8([rank]))
        yield from proto.barrier()
        for _ in range(rounds):
            # race-free phasing: read everything, barrier, then write
            raw = yield from proto.mm.read_bytes(8 * left, 8)
            neighbour = from_u8(raw)[0]
            raw = yield from proto.mm.read_bytes(8 * rank, 8)
            mine = from_u8(raw)[0]
            yield from proto.barrier()
            yield from proto.mm.write_bytes(8 * rank, as_u8([mine + neighbour]))
            yield from proto.barrier()
        raw = yield from proto.mm.read_bytes(8 * rank, 8)
        return from_u8(raw)[0]

    expected = [0, 1, 2]
    for _ in range(rounds):
        expected = [expected[i] + expected[(i - 1) % n] for i in range(n)]
    assert run_workers(system, worker) == expected


def test_barrier_counts_and_times_recorded():
    system = make(3)
    system.alloc("x", 8)

    def worker(proto, rank):
        yield from proto.barrier()
        yield from proto.barrier()

    run_workers(system, worker)
    assert system.stats.barriers == 2
    assert system.stats.barrier_time_n == 6  # 2 barriers x 3 nodes
    assert system.stats.barrier_time_avg > 0


def test_acquires_counted_as_messages_only():
    system = make(2)
    system.alloc("x", 8)

    def worker(proto, rank):
        # lock 0 is managed by node 0: node 0's acquires are local
        yield from proto.acquire_lock(0)
        yield from proto.mm.write_bytes(0, as_u8([rank]))
        yield from proto.release_lock(0)
        yield from proto.barrier()

    run_workers(system, worker)
    assert system.stats.acquires == 1  # only node 1 sent an acquire message


def test_first_touch_zero_fill_without_network():
    system = make(2)
    system.alloc("a", 256)
    system.alloc("b", 256)

    def worker(proto, rank):
        # each node touches a page nobody else ever uses
        addr = 0 if rank == 0 else 256
        raw = yield from proto.mm.read_bytes(addr, 8)
        yield from proto.barrier()
        return from_u8(raw)[0]

    assert run_workers(system, worker) == [0, 0]
    # no diff/page traffic, only barrier messages
    assert system.stats.diff_requests == 0


def test_unknown_protocol_name_rejected():
    with pytest.raises(ValueError):
        DsmSystem(2, protocol="nope")


def test_stats_table_row_shape():
    system = make(2)
    system.alloc("x", 8)

    def worker(proto, rank):
        yield from proto.barrier()

    run_workers(system, worker)
    row = system.stats.table_row()
    for key in ("Time (Sec.)", "Barriers", "Acquires", "Data (MByte)",
                "Num. Msg", "Diff Requests", "Barrier Time (usec.)", "Rexmit"):
        assert key in row
