"""Protocol edge cases: queue fairness, reader/writer interaction, stress."""

import numpy as np
import pytest

from repro.protocols.system import DsmSystem
from tests.protocols.conftest import as_u8, from_u8, run_workers


def test_lock_grants_are_fifo():
    """LRC lock waiters are served in arrival order."""
    system = DsmSystem(4, protocol="lrc_d", page_size=256)
    system.alloc("order", 8 * 10)
    grant_order = []

    def worker(p, rank):
        # stagger requests so arrival order at the manager is rank order
        yield from p.node.compute(0.001 * rank)
        yield from p.acquire_lock(0)
        grant_order.append(rank)
        yield from p.node.compute(0.01)
        yield from p.release_lock(0)
        yield from p.barrier()

    run_workers(system, worker)
    assert grant_order == [0, 1, 2, 3]


def test_writer_does_not_starve_behind_reader_stream():
    """VC: queued writers block later readers (no writer starvation)."""
    system = DsmSystem(4, protocol="vc_sd", page_size=256)
    system.alloc("x", 8, page_aligned=True)
    events = []

    def worker(p, rank):
        if rank == 0:
            yield from p.acquire_view(0)
            yield from p.mm.write_bytes(0, as_u8([1]))
            yield from p.release_view(0)
        yield from p.barrier()
        if rank in (1, 3):
            # readers holding the view for a while
            yield from p.acquire_rview(0)
            events.append(("r-in", rank, p.node.sim.now))
            yield from p.node.compute(0.02)
            yield from p.release_rview(0)
        elif rank == 2:
            yield from p.node.compute(0.005)  # arrive while readers hold
            yield from p.acquire_view(0)
            events.append(("w-in", rank, p.node.sim.now))
            yield from p.mm.write_bytes(0, as_u8([2]))
            yield from p.release_view(0)
        yield from p.barrier()

    run_workers(system, worker)
    # the writer got in after the readers drained
    w_time = next(t for kind, r, t in events if kind == "w-in")
    r_times = [t for kind, r, t in events if kind == "r-in"]
    assert w_time > max(r_times)


def test_reader_after_queued_writer_waits():
    """A read acquire arriving after a queued writer does not overtake it."""
    system = DsmSystem(4, protocol="vc_sd", page_size=256)
    system.alloc("x", 8, page_aligned=True)
    values = {}

    def worker(p, rank):
        if rank == 0:
            yield from p.acquire_view(0)
            yield from p.mm.write_bytes(0, as_u8([1]))
            yield from p.node.compute(0.02)  # hold while others queue
            yield from p.release_view(0)
        elif rank == 1:
            yield from p.node.compute(0.005)
            yield from p.acquire_view(0)  # writer queues first
            yield from p.mm.write_bytes(0, as_u8([2]))
            yield from p.release_view(0)
        elif rank == 2:
            yield from p.node.compute(0.010)
            yield from p.acquire_rview(0)  # reader queues after the writer
            raw = yield from p.mm.read_bytes(0, 8)
            values[rank] = from_u8(raw)[0]
            yield from p.release_rview(0)
        yield from p.barrier()

    run_workers(system, worker)
    # the reader saw the queued writer's value, not the first one
    assert values[2] == 2


def test_many_views_many_nodes_stress():
    """Randomised-but-deterministic stress: 8 nodes x 12 views, interleaved
    increments; every counter must equal the number of increments."""
    n, v_count, rounds = 8, 12, 5
    system = DsmSystem(n, protocol="vc_sd", page_size=256)
    arrays = [system.alloc(f"c{v}", 8, page_aligned=True) for v in range(v_count)]

    def worker(p, rank):
        for r in range(rounds):
            v = (rank * 7 + r * 3) % v_count
            yield from p.acquire_view(v)
            base = arrays[v].base
            raw = yield from p.mm.read_bytes(base, 8)
            yield from p.mm.write_bytes(base, as_u8([from_u8(raw)[0] + 1]))
            yield from p.release_view(v)
        yield from p.barrier()
        if rank == 0:
            totals = []
            for v in range(v_count):
                yield from p.acquire_rview(v)
                raw = yield from p.mm.read_bytes(arrays[v].base, 8)
                totals.append(int(from_u8(raw)[0]))
                yield from p.release_rview(v)
            return totals

    results = run_workers(system, worker)
    expected = [0] * v_count
    for rank in range(n):
        for r in range(rounds):
            expected[(rank * 7 + r * 3) % v_count] += 1
    assert results[0] == expected


def test_interleaved_locks_and_barriers_on_lrc():
    """Locks protecting different data interleaved with barriers."""
    n = 4
    system = DsmSystem(n, protocol="lrc_d", page_size=256)
    system.alloc("a", 8)
    system.alloc("b", 8, page_aligned=True)

    def worker(p, rank):
        for _ in range(3):
            yield from p.acquire_lock(0)
            raw = yield from p.mm.read_bytes(0, 8)
            yield from p.mm.write_bytes(0, as_u8([from_u8(raw)[0] + 1]))
            yield from p.release_lock(0)
            yield from p.acquire_lock(1)
            base = system.space.region("b").base
            raw = yield from p.mm.read_bytes(base, 8)
            yield from p.mm.write_bytes(base, as_u8([from_u8(raw)[0] + 2]))
            yield from p.release_lock(1)
            yield from p.barrier()
        yield from p.acquire_lock(0)
        raw_a = yield from p.mm.read_bytes(0, 8)
        yield from p.release_lock(0)
        yield from p.acquire_lock(1)
        raw_b = yield from p.mm.read_bytes(system.space.region("b").base, 8)
        yield from p.release_lock(1)
        return (from_u8(raw_a)[0], from_u8(raw_b)[0])

    results = run_workers(system, worker)
    assert all(r == (12, 24) for r in results)


def test_empty_interval_release_is_cheap():
    """Releasing a view without writing produces no notice traffic growth."""
    system = DsmSystem(2, protocol="vc_sd", page_size=256)
    system.alloc("x", 8, page_aligned=True)

    def worker(p, rank):
        if rank == 0:
            yield from p.acquire_view(0)
            yield from p.mm.write_bytes(0, as_u8([1]))
            yield from p.release_view(0)
        yield from p.barrier()
        before = len(p.diff_store)
        yield from p.acquire_view(0)
        yield from p.mm.read_bytes(0, 8)  # read-only use of exclusive view
        yield from p.release_view(0)
        assert len(p.diff_store) == before  # no new diffs
        yield from p.barrier()

    run_workers(system, worker)


def test_lamport_stamps_strictly_order_view_chain():
    """Each successive holder's interval gets a larger Lamport stamp."""
    system = DsmSystem(4, protocol="vc_d", page_size=256)
    system.alloc("x", 8, page_aligned=True)
    stamps = []

    def worker(p, rank):
        yield from p.node.compute(0.001 * rank)
        yield from p.acquire_view(0)
        raw_ok = True
        if p.mm.state(0).name != "NO_COPY":
            yield from p.mm.read_bytes(0, 8)
        yield from p.mm.write_bytes(0, as_u8([rank]))
        yield from p.release_view(0)
        stamps.append((rank, p.lamport))
        yield from p.barrier()

    run_workers(system, worker)
    ordered = [s for _, s in sorted(stamps)]
    assert ordered == sorted(ordered)
    assert len(set(ordered)) == len(ordered)  # strictly increasing
