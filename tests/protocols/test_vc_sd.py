"""VC_sd-specific tests: master copies, piggybacked grants, integration."""

import numpy as np
import pytest

from repro.net.message import MessageKind
from repro.protocols.system import DsmSystem
from tests.protocols.conftest import as_u8, from_u8, run_workers


def make(n, **kw):
    return DsmSystem(n, protocol="vc_sd", page_size=kw.pop("page_size", 256), **kw)


def test_manager_master_copy_tracks_view_content():
    system = make(3)
    system.alloc("x", 16, page_aligned=True)
    manager = system.view_manager(0)

    def worker(p, rank):
        if rank == 1:
            yield from p.acquire_view(0)
            yield from p.mm.write_bytes(0, as_u8([11, 22], dtype=np.int64))
            yield from p.release_view(0)
        yield from p.barrier()

    run_workers(system, worker)
    store = system.protocols[manager]._sd[0]
    pid = 0
    master = store.master[pid]
    assert from_u8(np.asarray(master[:16]))[0] == 11
    assert from_u8(np.asarray(master[:16]))[1] == 22


def test_grant_sends_full_page_only_on_first_touch():
    """Second acquire by the same node gets diffs, not full pages."""
    system = make(2)
    system.alloc("x", 8, page_aligned=True)
    grants = []

    # wrap the grant payload builder to observe what is sent
    proto_mgr = system.protocols[system.view_manager(0)]
    orig = proto_mgr._grant_payload

    def spy(state, node_id, notices, pos):
        payload = orig(state, node_id, notices, pos)
        _view, _notices, full_pages, diffs = payload
        grants.append((node_id, set(full_pages), set(diffs)))
        return payload

    proto_mgr._grant_payload = spy

    def worker(p, rank):
        for _ in range(3):
            yield from p.acquire_view(0)
            raw = yield from p.mm.read_bytes(0, 8)
            value = from_u8(raw)[0]
            yield from p.mm.write_bytes(0, as_u8([value + 1]))
            yield from p.release_view(0)
        yield from p.barrier()

    run_workers(system, worker)
    # for each node, the first grant after the view exists carries the full
    # page; subsequent ones carry only diffs
    by_node = {}
    for node_id, fulls, diffs in grants:
        by_node.setdefault(node_id, []).append((fulls, diffs))
    for node_id, seq in by_node.items():
        full_page_grants = [fulls for fulls, _ in seq if fulls]
        assert len(full_page_grants) <= 1, f"node {node_id} got repeated full pages"


def test_no_page_or_diff_requests_ever():
    system = make(4)
    system.alloc("x", 64, page_aligned=True)

    def worker(p, rank):
        for _ in range(5):
            yield from p.acquire_view(0)
            raw = yield from p.mm.read_bytes(0, 8)
            value = from_u8(raw)[0]
            yield from p.mm.write_bytes(0, as_u8([value + 1]))
            yield from p.release_view(0)
        yield from p.barrier()

    run_workers(system, worker)
    by_kind = system.stats.net.by_kind
    assert str(MessageKind.DIFF_REQUEST) not in by_kind
    assert str(MessageKind.PAGE_REQUEST) not in by_kind


def test_releaser_keeps_valid_copy():
    """After releasing, the writer's pages stay readable without traffic."""
    system = make(2)
    system.alloc("x", 8, page_aligned=True)
    msg_counts = []

    def worker(p, rank):
        if rank == 0:
            yield from p.acquire_view(0)
            yield from p.mm.write_bytes(0, as_u8([5]))
            yield from p.release_view(0)
            before = system.stats.net.num_msg
            yield from p.acquire_view(0)  # local manager: re-acquire is free
            raw = yield from p.mm.read_bytes(0, 8)
            yield from p.release_view(0)
            msg_counts.append(system.stats.net.num_msg - before)
            assert from_u8(raw)[0] == 5
        yield from p.barrier()

    run_workers(system, worker)
    assert msg_counts == [0]


def test_integration_flag_controls_grant_size():
    """With integration off, a node that missed k releases receives k diffs
    instead of one merged diff."""

    def run(integration):
        system = make(3)
        system.alloc("x", 8, page_aligned=True)
        for proto in system.protocols:
            proto.integration_enabled = integration

        def worker(p, rank):
            # everyone makes a real modification once, so the manager knows
            # each node holds the page and later grants carry diffs, not
            # first-touch full pages
            yield from p.acquire_view(1)
            raw = yield from p.mm.read_bytes(0, 8)
            yield from p.mm.write_bytes(0, as_u8([from_u8(raw)[0] + 10]))
            yield from p.release_view(1)
            yield from p.barrier()
            # ranks 1 and 2 alternate increments; rank 0 reads only at the end
            if rank > 0:
                for _ in range(4):
                    yield from p.acquire_view(1)
                    raw = yield from p.mm.read_bytes(0, 8)
                    value = from_u8(raw)[0]
                    yield from p.mm.write_bytes(0, as_u8([value + 1]))
                    yield from p.release_view(1)
            yield from p.barrier()
            if rank == 0:
                yield from p.acquire_rview(1)
                raw = yield from p.mm.read_bytes(0, 8)
                yield from p.release_rview(1)
                return from_u8(raw)[0]

        results = run_workers(system, worker)
        assert results[0] == 38  # 3 x (+10) at the start, then 8 increments
        return system.stats.net.data_bytes

    integrated = run(True)
    raw = run(False)
    assert integrated < raw


def test_view_state_consistency_under_rview_storm():
    """Many readers + one writer; final value must include the write."""
    system = make(5)
    system.alloc("x", 8, page_aligned=True)

    def worker(p, rank):
        if rank == 0:
            yield from p.acquire_view(0)
            yield from p.mm.write_bytes(0, as_u8([77]))
            yield from p.release_view(0)
        yield from p.barrier()
        values = []
        for _ in range(3):
            yield from p.acquire_rview(0)
            raw = yield from p.mm.read_bytes(0, 8)
            values.append(from_u8(raw)[0])
            yield from p.release_rview(0)
        return values

    results = run_workers(system, worker)
    for values in results:
        assert values == [77, 77, 77]
