"""Tests for VC_d and VC_sd: view acquire/release, Rviews, discipline checks."""

import numpy as np
import pytest

from repro.protocols.base import ViewOverlapError, VoppDisciplineError
from repro.protocols.system import DsmSystem
from repro.sim.engine import SimError
from tests.protocols.conftest import as_u8, from_u8, run_workers

PROTOS = ["vc_d", "vc_sd"]


def make(n, proto, **kw):
    return DsmSystem(n, protocol=proto, page_size=kw.pop("page_size", 256), **kw)


@pytest.mark.parametrize("proto", PROTOS)
def test_view_transfers_data(proto):
    system = make(2, proto)
    system.alloc("x", 8, page_aligned=True)

    def worker(p, rank):
        if rank == 0:
            yield from p.acquire_view(5)
            yield from p.mm.write_bytes(0, as_u8([123]))
            yield from p.release_view(5)
        yield from p.barrier()
        yield from p.acquire_view(5)
        raw = yield from p.mm.read_bytes(0, 8)
        yield from p.release_view(5)
        yield from p.barrier()
        return from_u8(raw)[0]

    assert run_workers(system, worker) == [123, 123]


@pytest.mark.parametrize("proto", PROTOS)
def test_view_counter_no_lost_updates(proto):
    n = 4
    system = make(n, proto)
    system.alloc("counter", 8, page_aligned=True)
    increments = 6

    def worker(p, rank):
        for _ in range(increments):
            yield from p.acquire_view(1)
            raw = yield from p.mm.read_bytes(0, 8)
            value = from_u8(raw)[0]
            yield from p.mm.write_bytes(0, as_u8([value + 1]))
            yield from p.release_view(1)
        yield from p.barrier()
        yield from p.acquire_view(1)
        raw = yield from p.mm.read_bytes(0, 8)
        yield from p.release_view(1)
        return from_u8(raw)[0]

    assert run_workers(system, worker) == [n * increments] * n


@pytest.mark.parametrize("proto", PROTOS)
def test_per_processor_views(proto):
    """The Gauss §3.1 pattern: one view per processor + read-all at the end."""
    n = 3
    system = make(n, proto)
    for i in range(n):
        system.alloc(f"v{i}", 16, page_aligned=True)

    def worker(p, rank):
        base = system.space.region(f"v{rank}").base
        yield from p.acquire_view(rank)
        yield from p.mm.write_bytes(base, as_u8([rank * 11, rank * 22], dtype=np.int64))
        yield from p.release_view(rank)
        yield from p.barrier()
        collected = []
        if rank == 0:
            for j in range(n):
                yield from p.acquire_rview(j)
            for j in range(n):
                base_j = system.space.region(f"v{j}").base
                raw = yield from p.mm.read_bytes(base_j, 16)
                collected.extend(from_u8(raw))
            for j in range(n):
                yield from p.release_rview(j)
        yield from p.barrier()
        return collected

    results = run_workers(system, worker)
    assert results[0] == [0, 0, 11, 22, 22, 44]


@pytest.mark.parametrize("proto", PROTOS)
def test_rviews_grant_concurrently(proto):
    """All nodes hold the Rview at the same time (readers don't serialise)."""
    n = 4
    system = make(n, proto)
    system.alloc("shared", 8, page_aligned=True)
    hold_times = {}

    def worker(p, rank):
        if rank == 0:
            yield from p.acquire_view(0)
            yield from p.mm.write_bytes(0, as_u8([5]))
            yield from p.release_view(0)
        yield from p.barrier()
        yield from p.acquire_rview(0)
        t_in = p.node.sim.now
        raw = yield from p.mm.read_bytes(0, 8)
        # hold the view for a while: readers must overlap
        yield from p.node.compute(1.0)
        t_out = p.node.sim.now
        yield from p.release_rview(0)
        hold_times[rank] = (t_in, t_out)
        yield from p.barrier()
        return from_u8(raw)[0]

    results = run_workers(system, worker)
    assert results == [5] * n
    # overlap check: the intersection of all hold windows is non-empty
    latest_in = max(t for t, _ in hold_times.values())
    earliest_out = min(t for _, t in hold_times.values())
    assert latest_in < earliest_out


@pytest.mark.parametrize("proto", PROTOS)
def test_write_without_view_raises(proto):
    system = make(2, proto)
    system.alloc("x", 8, page_aligned=True)

    def worker(p, rank):
        if rank == 0:
            yield from p.mm.write_bytes(0, as_u8([1]))
        yield from p.barrier()

    with pytest.raises(SimError) as excinfo:
        run_workers(system, worker)
    assert isinstance(excinfo.value.__cause__, VoppDisciplineError)


@pytest.mark.parametrize("proto", PROTOS)
def test_read_without_view_raises(proto):
    system = make(2, proto)
    system.alloc("x", 8, page_aligned=True)

    def worker(p, rank):
        if rank == 0:
            yield from p.mm.read_bytes(0, 8)
        yield from p.barrier()

    with pytest.raises(SimError) as excinfo:
        run_workers(system, worker)
    assert isinstance(excinfo.value.__cause__, VoppDisciplineError)


@pytest.mark.parametrize("proto", PROTOS)
def test_nested_exclusive_acquire_raises(proto):
    system = make(1, proto)
    system.alloc("x", 8, page_aligned=True)

    def worker(p, rank):
        yield from p.acquire_view(0)
        yield from p.acquire_view(1)

    with pytest.raises(SimError) as excinfo:
        run_workers(system, worker)
    assert isinstance(excinfo.value.__cause__, VoppDisciplineError)


@pytest.mark.parametrize("proto", PROTOS)
def test_view_overlap_detected(proto):
    """Writing one page under two different views must raise."""
    system = make(1, proto)
    system.alloc("x", 8)  # packed: same page reachable from both views

    def worker(p, rank):
        yield from p.acquire_view(0)
        yield from p.mm.write_bytes(0, as_u8([1]))
        yield from p.release_view(0)
        yield from p.acquire_view(1)
        yield from p.mm.write_bytes(0, as_u8([2]))
        yield from p.release_view(1)

    with pytest.raises(SimError) as excinfo:
        run_workers(system, worker)
    assert isinstance(excinfo.value.__cause__, ViewOverlapError)


@pytest.mark.parametrize("proto", PROTOS)
def test_write_under_rview_only_raises(proto):
    system = make(1, proto)
    system.alloc("x", 8, page_aligned=True)

    def worker(p, rank):
        yield from p.acquire_rview(0)
        yield from p.mm.write_bytes(0, as_u8([1]))
        yield from p.release_rview(0)

    with pytest.raises(SimError) as excinfo:
        run_workers(system, worker)
    assert isinstance(excinfo.value.__cause__, VoppDisciplineError)


@pytest.mark.parametrize("proto", PROTOS)
def test_release_unheld_view_raises(proto):
    system = make(1, proto)

    def worker(p, rank):
        yield from p.release_view(0)

    with pytest.raises(SimError) as excinfo:
        run_workers(system, worker)
    assert isinstance(excinfo.value.__cause__, VoppDisciplineError)


def test_vc_sd_has_zero_diff_requests_where_vc_d_does_not():
    """The headline mechanism: same program, diff requests only under VC_d."""

    def program(system):
        system.alloc("acc", 8, page_aligned=True)

        def worker(p, rank):
            for _ in range(4):
                yield from p.acquire_view(0)
                raw = yield from p.mm.read_bytes(0, 8)
                value = from_u8(raw)[0]
                yield from p.mm.write_bytes(0, as_u8([value + 1]))
                yield from p.release_view(0)
            yield from p.barrier()

        run_workers(system, worker)
        return system.stats

    stats_d = program(make(4, "vc_d"))
    stats_sd = program(make(4, "vc_sd"))
    assert stats_d.diff_requests > 0
    assert stats_sd.diff_requests == 0
    assert stats_sd.net.num_msg < stats_d.net.num_msg


def test_vc_barrier_carries_no_notices():
    """VC barrier messages are tiny control messages regardless of writes."""
    system = make(4, "vc_d")
    system.alloc("x", 2048, page_aligned=True)

    def worker(p, rank):
        yield from p.acquire_view(0)
        if rank == 0:
            yield from p.mm.write_bytes(0, np.arange(2048, dtype=np.uint8))
        else:
            yield from p.mm.read_bytes(0, 8)
        yield from p.release_view(0)
        yield from p.barrier()

    run_workers(system, worker)
    from repro.net.message import MessageKind

    by_kind = system.stats.net.by_kind
    # 3 arrivals + 3 releases, each 16 bytes of control payload
    assert by_kind[str(MessageKind.BARRIER_ARRIVE)] == [3, 3 * 16]
    assert by_kind[str(MessageKind.BARRIER_RELEASE)] == [3, 3 * 16]


@pytest.mark.parametrize("proto", PROTOS)
def test_view_manager_distribution(proto):
    system = make(4, proto)
    assert [system.view_manager(v) for v in range(6)] == [0, 1, 2, 3, 0, 1]


def test_vc_sd_ablation_piggyback_off_behaves_like_vc_d():
    system = make(2, "vc_sd")
    for p in system.protocols:
        p.piggyback_enabled = False
    system.alloc("x", 8, page_aligned=True)

    def worker(p, rank):
        for _ in range(3):
            yield from p.acquire_view(0)
            raw = yield from p.mm.read_bytes(0, 8)
            value = from_u8(raw)[0]
            yield from p.mm.write_bytes(0, as_u8([value + 1]))
            yield from p.release_view(0)
        yield from p.barrier()
        return None

    run_workers(system, worker)
    assert system.stats.diff_requests > 0  # invalidate protocol re-enabled
