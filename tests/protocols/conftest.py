"""Shared helpers for protocol tests."""

import numpy as np
import pytest

from repro.protocols.system import DsmSystem


def spawn_workers(system, worker_fn, nprocs=None):
    """Spawn one worker generator per node; worker_fn(proto, rank)."""
    n = nprocs if nprocs is not None else system.nprocs
    procs = []
    for rank in range(n):
        proto = system.protocols[rank]
        procs.append(system.sim.spawn(worker_fn(proto, rank), name=f"worker-{rank}"))
    return procs


def run_workers(system, worker_fn, nprocs=None):
    """Spawn, run to completion, return worker results in rank order."""
    procs = spawn_workers(system, worker_fn, nprocs)
    system.run()
    for p in procs:
        assert p.finished, f"{p.name} did not finish (deadlock?)"
    return [p.result for p in procs]


def as_u8(values, dtype=np.int64):
    """Encode scalars/arrays into the uint8 wire form used by write_bytes."""
    return np.asarray(values, dtype=dtype).view(np.uint8).ravel()


def from_u8(raw, dtype=np.int64):
    return np.frombuffer(raw.tobytes(), dtype=dtype)
