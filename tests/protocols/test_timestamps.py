"""Unit + property tests for vector clocks and interval notices."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.protocols.timestamps import (
    NOTICE_BASE_BYTES,
    NOTICE_PER_PAGE_BYTES,
    IntervalNotice,
    VectorClock,
    notices_wire_size,
)


def test_vector_clock_initial_state():
    vc = VectorClock(4)
    assert len(vc) == 4
    assert all(vc[i] == 0 for i in range(4))
    assert vc.wire_size == 16


def test_advance_is_monotone():
    vc = VectorClock(2)
    vc.advance(0, 5)
    vc.advance(0, 3)  # lower index must not regress
    assert vc[0] == 5


def test_merge_takes_elementwise_max():
    vc = VectorClock(3)
    vc.advance(0, 2)
    vc.merge([1, 4, 0])
    assert vc.copy() == [2, 4, 0]


def test_merge_length_mismatch_rejected():
    vc = VectorClock(2)
    with pytest.raises(ValueError):
        vc.merge([1, 2, 3])


def test_dominates():
    a = VectorClock(2)
    a.merge([2, 3])
    assert a.dominates([2, 3])
    assert a.dominates([1, 0])
    assert not a.dominates([3, 0])


def test_notice_wire_size():
    n = IntervalNotice(node=1, idx=2, lamport=3, pages=(4, 5, 6))
    assert n.wire_size == NOTICE_BASE_BYTES + 3 * NOTICE_PER_PAGE_BYTES
    assert notices_wire_size([n, n]) == 2 * n.wire_size


def test_notice_ordering_is_lamport_then_node():
    a = IntervalNotice(node=2, idx=1, lamport=5, pages=(1,))
    b = IntervalNotice(node=1, idx=9, lamport=5, pages=(1,))
    c = IntervalNotice(node=0, idx=1, lamport=7, pages=(1,))
    ordered = sorted([c, a, b], key=lambda n: n.order())
    assert ordered == [b, a, c]


@given(
    updates=st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 100)), min_size=0, max_size=40
    )
)
@settings(max_examples=50)
def test_prop_vector_clock_is_least_upper_bound(updates):
    """After any update sequence, vc[i] == max index seen for i."""
    vc = VectorClock(4)
    highest = [0, 0, 0, 0]
    for node, idx in updates:
        vc.advance(node, idx)
        highest[node] = max(highest[node], idx)
    assert vc.copy() == highest
    assert vc.dominates(highest)


@given(
    a=st.lists(st.integers(0, 50), min_size=4, max_size=4),
    b=st.lists(st.integers(0, 50), min_size=4, max_size=4),
)
@settings(max_examples=50)
def test_prop_merge_dominates_both(a, b):
    vc = VectorClock(4)
    vc.merge(a)
    vc.merge(b)
    assert vc.dominates(a)
    assert vc.dominates(b)
    assert vc.copy() == [max(x, y) for x, y in zip(a, b)]
