"""Tests for the home-based LRC protocol (HLRC_d)."""

import numpy as np
import pytest

from repro.apps import gauss, is_sort, nn, sor
from repro.apps.common import run_app
from repro.net.config import NetConfig
from repro.net.message import MessageKind
from repro.protocols.system import DsmSystem
from tests.protocols.conftest import as_u8, from_u8, run_workers

IS_SMALL = is_sort.IsConfig(n_keys=1500, b_max=64, reps=3, bucket_views=4, work_factor=1.0)


def make(n, **kw):
    return DsmSystem(n, protocol="hlrc_d", page_size=kw.pop("page_size", 256), **kw)


def test_basic_lock_data_transfer():
    system = make(2)
    system.alloc("x", 8)

    def worker(p, rank):
        if rank == 0:
            yield from p.acquire_lock(0)
            yield from p.mm.write_bytes(0, as_u8([42]))
            yield from p.release_lock(0)
        yield from p.barrier()
        yield from p.acquire_lock(0)
        raw = yield from p.mm.read_bytes(0, 8)
        yield from p.release_lock(0)
        return from_u8(raw)[0]

    assert run_workers(system, worker) == [42, 42]


def test_faults_fetch_full_pages_not_diffs():
    system = make(3)
    system.alloc("slots", 8 * 3)

    def worker(p, rank):
        yield from p.mm.write_bytes(8 * rank, as_u8([rank + 1]))
        yield from p.barrier()
        raw = yield from p.mm.read_bytes(0, 24)
        yield from p.barrier()
        return list(from_u8(raw))

    results = run_workers(system, worker)
    for r in results:
        assert r == [1, 2, 3]
    by_kind = system.stats.net.by_kind
    # HLRC never requests diffs
    assert str(MessageKind.DIFF_REQUEST) not in by_kind
    assert system.stats.diff_requests == 0
    # but it pushed diffs to homes and fetched pages
    assert str(MessageKind.MERGE_VIEWS) in by_kind  # DIFF_PUSH channel
    assert str(MessageKind.PAGE_REQUEST) in by_kind


def test_multiple_writer_merge_at_home():
    """False sharing: concurrent writers of one page; home merges pushes."""
    n = 4
    system = make(n)
    region = system.alloc("slots", 8 * n)
    assert len(set(region.page_range(256))) == 1

    def worker(p, rank):
        yield from p.mm.write_bytes(8 * rank, as_u8([(rank + 1) * 5]))
        yield from p.barrier()
        raw = yield from p.mm.read_bytes(0, 8 * n)
        yield from p.barrier()
        return list(from_u8(raw))

    results = run_workers(system, worker)
    for r in results:
        assert r == [5, 10, 15, 20]


def test_repeated_rounds_home_stays_current():
    n = 3
    system = make(n)
    system.alloc("cells", 8 * n)

    def worker(p, rank):
        left = (rank - 1) % n
        yield from p.mm.write_bytes(8 * rank, as_u8([rank]))
        yield from p.barrier()
        for _ in range(4):
            # race-free phasing: everyone reads, barrier, everyone writes
            raw = yield from p.mm.read_bytes(8 * left, 8)
            neighbour = from_u8(raw)[0]
            raw = yield from p.mm.read_bytes(8 * rank, 8)
            mine = from_u8(raw)[0]
            yield from p.barrier()
            yield from p.mm.write_bytes(8 * rank, as_u8([mine + neighbour]))
            yield from p.barrier()
        raw = yield from p.mm.read_bytes(8 * rank, 8)
        return from_u8(raw)[0]

    expected = [0, 1, 2]
    for _ in range(4):
        expected = [expected[i] + expected[(i - 1) % n] for i in range(n)]
    assert run_workers(system, worker) == expected


@pytest.mark.parametrize("app,cfg", [
    (is_sort, IS_SMALL),
    (gauss, gauss.GaussConfig(n=20, work_factor=1.0)),
    (sor, sor.SorConfig(rows=24, cols=16, iterations=2, work_factor=1.0)),
    (nn, nn.NnConfig(n_samples=48, epochs=3, d_hidden=6, work_factor=1.0)),
])
def test_all_apps_correct_on_hlrc(app, cfg):
    result = run_app(app, "hlrc_d", 4, cfg)
    assert result.verified


def test_correct_under_injected_loss():
    """Push/notice races under loss: ordering guard must hold."""
    netcfg = NetConfig(random_drop_prob=0.05, drop_seed=17, rexmit_timeout=0.1)
    result = run_app(is_sort, "hlrc_d", 4, IS_SMALL, netcfg=netcfg)
    assert result.verified
    assert result.stats.net.rexmit > 0


def test_hlrc_vs_lrc_tradeoff_on_is():
    """HLRC removes diff-request round trips but moves more eager data."""
    lrc = run_app(is_sort, "lrc_d", 4, IS_SMALL)
    hlrc = run_app(is_sort, "hlrc_d", 4, IS_SMALL)
    assert hlrc.stats.diff_requests == 0
    assert lrc.stats.diff_requests > 0


def test_traditional_system_accepts_hlrc():
    from repro.core import TraditionalSystem, make_system

    assert isinstance(make_system(2, "hlrc_d"), TraditionalSystem)
    with pytest.raises(ValueError):
        TraditionalSystem(2, protocol="vc_sd")
