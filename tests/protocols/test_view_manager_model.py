"""Model-based property test of the view manager.

Hypothesis generates random per-node access scripts (exclusive/read
acquisitions of random views with random hold times); the run must satisfy
the view-manager invariants for every generated schedule:

* mutual exclusion — never two exclusive holders, never a reader alongside
  a writer;
* progress — every script runs to completion (no lost wakeups/deadlock);
* data integrity — a counter incremented under exclusive access never loses
  an update.
"""

from hypothesis import given, settings, strategies as st

from repro.protocols.system import DsmSystem
from tests.protocols.conftest import as_u8, from_u8, run_workers

N_VIEWS = 3

step = st.tuples(
    st.integers(0, N_VIEWS - 1),  # view
    st.sampled_from(["w", "r"]),  # mode
    st.integers(0, 3),  # hold time (ms)
)
script = st.lists(step, min_size=1, max_size=6)


@given(scripts=st.lists(script, min_size=2, max_size=4), proto=st.sampled_from(["vc_d", "vc_sd"]))
@settings(max_examples=30, deadline=None)
def test_prop_view_manager_invariants(scripts, proto):
    nprocs = len(scripts)
    system = DsmSystem(nprocs, protocol=proto, page_size=256)
    counters = [system.alloc(f"c{v}", 8, page_aligned=True) for v in range(N_VIEWS)]
    # live occupancy per view: ("w", node) entries / ("r", node) entries
    holders: dict[int, list] = {v: [] for v in range(N_VIEWS)}
    violations: list[str] = []
    expected_increments = [0] * N_VIEWS

    def worker(p, rank):
        for view, mode, hold_ms in scripts[rank]:
            if mode == "w":
                yield from p.acquire_view(view)
                if any(m == "w" for m, _ in holders[view]) or any(
                    m == "r" for m, _ in holders[view]
                ):
                    violations.append(f"writer {rank} entered busy view {view}")
                holders[view].append(("w", rank))
                base = counters[view].base
                raw = yield from p.mm.read_bytes(base, 8)
                yield from p.mm.write_bytes(base, as_u8([from_u8(raw)[0] + 1]))
                yield from p.node.compute(hold_ms / 1000.0)
                holders[view].remove(("w", rank))
                yield from p.release_view(view)
            else:
                yield from p.acquire_rview(view)
                if any(m == "w" for m, _ in holders[view]):
                    violations.append(f"reader {rank} entered written view {view}")
                holders[view].append(("r", rank))
                yield from p.node.compute(hold_ms / 1000.0)
                holders[view].remove(("r", rank))
                yield from p.release_rview(view)
        yield from p.barrier()
        if rank == 0:
            finals = []
            for v in range(N_VIEWS):
                yield from p.acquire_rview(v)
                raw = yield from p.mm.read_bytes(counters[v].base, 8)
                finals.append(int(from_u8(raw)[0]))
                yield from p.release_rview(v)
            return finals

    for r, s in enumerate(scripts):
        for view, mode, _ in s:
            if mode == "w":
                expected_increments[view] += 1

    results = run_workers(system, worker)  # progress: raises on deadlock
    assert not violations, violations
    assert results[0] == expected_increments  # no lost updates
