"""Regression tests for the retry budget and duplicate-suppression bounds.

* A reliable send must survive exactly ``max_retries`` lost transmissions:
  the final retransmission gets a full ``rexmit_timeout`` for its ack to
  come back (historically the sender gave up right after putting the last
  copy on the wire).
* ``_seen_reliable``/``_reply_cache`` are bounded by the duplicate horizon,
  not by run length, while preserving exactly-once delivery.
"""

import pytest

from repro.net import Cluster, MessageKind, NetConfig
from repro.net.transport import RequestError
from repro.sim import Timeout


def _drop_first(cluster: Cluster, kind: MessageKind, count: int) -> list:
    """Patch the switch to drop the first ``count`` messages of ``kind``."""
    dropped = []
    real_transfer = cluster.switch.transfer

    def lossy_transfer(msg):
        if msg.kind is kind and len(dropped) < count:
            dropped.append(msg.msg_id)
            return
        real_transfer(msg)

    cluster.switch.transfer = lossy_transfer
    return dropped


def _sink(received):
    def handler(msg):
        received.append(msg.payload)
        return
        yield  # pragma: no cover

    return handler


def test_send_survives_exactly_max_retries_losses():
    """Dropping ``max_retries`` copies leaves one — it must complete the send."""
    c = Cluster(2, netcfg=NetConfig(rexmit_timeout=0.1, max_retries=3))
    received = []
    c[1].register_handler(MessageKind.TEST, _sink(received))
    dropped = _drop_first(c, MessageKind.TEST, count=3)
    outcome = []

    def sender():
        yield from c[0].send_reliable(1, MessageKind.TEST, "payload", size=64)
        outcome.append("acked")

    c.sim.spawn(sender())
    c.run()
    assert len(dropped) == 3
    assert received == ["payload"]
    assert outcome == ["acked"]


def test_send_fails_after_budget_exhausted():
    """One more loss than the budget absorbs must still raise."""
    c = Cluster(2, netcfg=NetConfig(rexmit_timeout=0.1, max_retries=3))
    c[1].register_handler(MessageKind.TEST, _sink([]))
    _drop_first(c, MessageKind.TEST, count=4)

    def sender():
        with pytest.raises(RequestError):
            yield from c[0].send_reliable(1, MessageKind.TEST, "payload", size=64)

    c.sim.spawn(sender())
    c.run()


def test_request_survives_exactly_max_retries_losses():
    c = Cluster(2, netcfg=NetConfig(rexmit_timeout=0.1, max_retries=3))

    def responder(msg):
        c[1].reply_to(msg, MessageKind.TEST, msg.payload * 2, size=32)
        return
        yield  # pragma: no cover

    c[1].register_handler(MessageKind.TEST, responder)
    _drop_first(c, MessageKind.TEST, count=3)
    out = []

    def requester():
        reply = yield from c[0].request(1, MessageKind.TEST, 21, size=64)
        out.append(reply.payload)

    c.sim.spawn(requester())
    c.run()
    assert out == [42]


def test_seen_reliable_stays_bounded():
    """Long runs must not accumulate duplicate-suppression state forever."""
    n_messages = 200
    c = Cluster(2, netcfg=NetConfig(rexmit_timeout=0.05, max_retries=3))
    horizon = c[1].transport._dup_horizon
    received = []
    c[1].register_handler(MessageKind.TEST, _sink(received))
    high_water = []

    def sender():
        for k in range(n_messages):
            yield from c[0].send_reliable(1, MessageKind.TEST, k, size=64)
            yield Timeout(horizon / 4)
            high_water.append(len(c[1].transport._seen_reliable))

    c.sim.spawn(sender())
    c.run()
    # exactly-once delivery, in order, despite eviction
    assert received == list(range(n_messages))
    # table size tracks the horizon (a handful of in-flight ids), not run length
    assert max(high_water) <= 8
    assert len(c[1].transport._seen_reliable) <= 8


def test_reply_cache_stays_bounded():
    n_requests = 150
    c = Cluster(2, netcfg=NetConfig(rexmit_timeout=0.05, max_retries=3))
    horizon = c[1].transport._dup_horizon
    calls = []

    def responder(msg):
        calls.append(msg.payload)
        c[1].reply_to(msg, MessageKind.TEST, msg.payload, size=32)
        return
        yield  # pragma: no cover

    c[1].register_handler(MessageKind.TEST, responder)
    high_water = []

    def requester():
        for k in range(n_requests):
            reply = yield from c[0].request(1, MessageKind.TEST, k, size=64)
            assert reply.payload == k
            yield Timeout(horizon / 4)
            high_water.append(len(c[1].transport._reply_cache))

    c.sim.spawn(requester())
    c.run()
    # at-most-once handler execution preserved
    assert calls == list(range(n_requests))
    assert max(high_water) <= 8


def test_duplicate_within_horizon_still_suppressed():
    """A duplicate arriving before the horizon expires is filtered out."""
    c = Cluster(2, netcfg=NetConfig(rexmit_timeout=0.1, max_retries=3))
    received = []
    c[1].register_handler(MessageKind.TEST, _sink(received))
    # drop the first ACK so node 0 retransmits an already-delivered message
    dropped = _drop_first(c, MessageKind.ACK, count=1)

    def sender():
        yield from c[0].send_reliable(1, MessageKind.TEST, "once", size=64)

    c.sim.spawn(sender())
    c.run()
    assert dropped, "expected the first ack to be dropped"
    assert received == ["once"]
