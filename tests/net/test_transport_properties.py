"""Property-based tests of the reliable transport under random loss."""

from hypothesis import given, settings, strategies as st

from repro.net import Cluster, MessageKind, NetConfig
from repro.sim import Timeout


@given(
    drop_prob=st.floats(min_value=0.0, max_value=0.4),
    seed=st.integers(0, 10_000),
    n_messages=st.integers(1, 25),
)
@settings(max_examples=40, deadline=None)
def test_prop_reliable_send_exactly_once(drop_prob, seed, n_messages):
    """Every reliable send is delivered exactly once, in per-sender order,
    for any loss rate the retry budget can absorb."""
    c = Cluster(
        3,
        netcfg=NetConfig(
            random_drop_prob=drop_prob,
            drop_seed=seed,
            rexmit_timeout=0.05,
            max_retries=200,
        ),
    )
    received = []

    def handler(msg):
        received.append(msg.payload)
        return
        yield  # pragma: no cover

    c[0].register_handler(MessageKind.TEST, handler)

    def sender(src):
        for k in range(n_messages):
            yield from c[src].send_reliable(0, MessageKind.TEST, (src, k), size=100)

    c.sim.spawn(sender(1))
    c.sim.spawn(sender(2))
    c.run()
    assert sorted(received) == sorted(
        (src, k) for src in (1, 2) for k in range(n_messages)
    )
    # per-sender FIFO (reliable sends complete in order)
    for src in (1, 2):
        ks = [k for s, k in received if s == src]
        assert ks == sorted(ks)


@given(
    drop_prob=st.floats(min_value=0.0, max_value=0.4),
    seed=st.integers(0, 10_000),
)
@settings(max_examples=40, deadline=None)
def test_prop_request_reply_at_most_once(drop_prob, seed):
    """Request handlers execute at most once per request, replies always
    arrive, for any seeded loss pattern."""
    c = Cluster(
        2,
        netcfg=NetConfig(
            random_drop_prob=drop_prob,
            drop_seed=seed,
            rexmit_timeout=0.05,
            max_retries=200,
        ),
    )
    executions = []

    def handler(msg):
        executions.append(msg.payload)
        c[1].reply_to(msg, MessageKind.TEST, msg.payload * 2, size=20)
        return
        yield  # pragma: no cover

    c[1].register_handler(MessageKind.TEST, handler)
    replies = []

    def client():
        for k in range(10):
            r = yield from c[0].request(1, MessageKind.TEST, k, size=20)
            replies.append(r.payload)

    c.sim.spawn(client())
    c.run()
    assert replies == [k * 2 for k in range(10)]
    assert sorted(executions) == list(range(10))  # exactly once each


@given(seed=st.integers(0, 1_000))
@settings(max_examples=20, deadline=None)
def test_prop_rx_buffer_accounting_never_negative(seed):
    """Byte accounting on the receive buffer stays consistent under bursts."""
    c = Cluster(
        5,
        netcfg=NetConfig(
            recv_buffer_bytes=10_000,
            red_threshold_bytes=4_000,
            drop_seed=seed,
            rexmit_timeout=0.05,
        ),
    )

    def handler(msg):
        yield Timeout(0.001)

    c[0].register_handler(MessageKind.TEST, handler)

    def sender(src):
        for k in range(5):
            yield from c[src].send_reliable(0, MessageKind.TEST, k, size=3_000)

    for src in range(1, 5):
        c.sim.spawn(sender(src))
    c.run()
    for node in c.nodes:
        assert node.nic.rx_bytes == 0  # fully drained, no leak
