"""Unit tests for the NIC/switch/transport stack."""

import pytest

from repro.net import Cluster, Message, MessageKind, NetConfig
from repro.sim import Timeout


def make_cluster(n=2, **cfg):
    return Cluster(n, netcfg=NetConfig(**cfg))


def install_sink(node, kind=MessageKind.TEST):
    """Register a handler that records (payload, time) tuples."""
    log = []

    def handler(msg):
        log.append((msg.payload, node.sim.now))
        return
        yield  # pragma: no cover

    node.register_handler(kind, handler)
    return log


def test_reliable_send_delivers_payload():
    c = make_cluster()
    log = install_sink(c[1])

    def sender():
        yield from c[0].send_reliable(1, MessageKind.TEST, {"x": 1}, size=100)

    c.sim.spawn(sender())
    c.run()
    assert [p for p, _ in log] == [{"x": 1}]
    assert c.stats.num_msg == 1
    assert c.stats.data_bytes == 100
    assert c.stats.acks == 1
    assert c.stats.rexmit == 0


def test_latency_accounts_for_size():
    """A 1 MB message takes visibly longer than a 100 B one."""
    c = make_cluster()
    log = install_sink(c[1])

    def sender():
        yield from c[0].send_reliable(1, MessageKind.TEST, "small", size=100)
        t_small = c.sim.now
        yield from c[0].send_reliable(1, MessageKind.TEST, "big", size=1_000_000)
        t_big = c.sim.now
        assert (t_big - t_small) > 10 * t_small

    c.sim.spawn(sender())
    c.run()
    assert [p for p, _ in log] == ["small", "big"]


def test_request_reply_roundtrip():
    c = make_cluster()

    def echo_handler(msg):
        c[1].reply_to(msg, MessageKind.TEST, msg.payload * 2, size=50)
        return
        yield  # pragma: no cover

    c[1].register_handler(MessageKind.TEST, echo_handler)
    out = []

    def client():
        reply = yield from c[0].request(1, MessageKind.TEST, 21, size=30)
        out.append(reply.payload)

    c.sim.spawn(client())
    c.run()
    assert out == [42]
    assert c.stats.num_msg == 2  # request + reply
    assert c.stats.data_bytes == 80


def test_self_send_rejected():
    c = make_cluster()
    with pytest.raises(ValueError):
        c[0].send_reliable(0, MessageKind.TEST, None, size=1)
    with pytest.raises(ValueError):
        c[0].request(0, MessageKind.TEST, None, size=1)


def test_message_validation():
    with pytest.raises(ValueError):
        Message(src=0, dst=1, kind=MessageKind.TEST, payload=None, size=-5)
    with pytest.raises(ValueError):
        Message(src=3, dst=3, kind=MessageKind.TEST, payload=None, size=5)


def test_unknown_kind_raises_via_run():
    c = make_cluster()

    def sender():
        yield from c[0].send_reliable(1, MessageKind.TEST, None, size=10)

    c.sim.spawn(sender())
    with pytest.raises(Exception):
        c.run()


def test_buffer_overflow_drops_and_retransmission_recovers():
    """Many senders bursting large messages into one node overflow its byte
    buffer; reliable transport still delivers everything, at the cost of
    rexmits and time."""
    n = 16
    c = Cluster(
        n,
        netcfg=NetConfig(
            recv_buffer_bytes=16_000, red_threshold_bytes=8_000, rexmit_timeout=0.5
        ),
    )
    log = install_sink(c[0])

    def sender(i):
        yield from c[i].send_reliable(0, MessageKind.TEST, i, size=4000)

    for i in range(1, n):
        c.sim.spawn(sender(i))
    c.run()
    assert sorted(p for p, _ in log) == list(range(1, n))
    assert c.stats.drops > 0
    assert c.stats.rexmit > 0
    # every original message counted exactly once
    assert c.stats.num_msg == n - 1


def test_tiny_messages_never_congest():
    """A burst of small control messages stays under the RED threshold."""
    n = 16
    c = Cluster(n, netcfg=NetConfig(recv_buffer_bytes=16_000, red_threshold_bytes=8_000))
    log = install_sink(c[0])

    def sender(i):
        yield from c[i].send_reliable(0, MessageKind.TEST, i, size=16)

    for i in range(1, n):
        c.sim.spawn(sender(i))
    c.run()
    assert c.stats.drops == 0
    assert c.stats.rexmit == 0
    assert len(log) == n - 1


def test_no_duplicate_delivery_under_loss():
    """Duplicate suppression: even with heavy loss each payload arrives once."""
    n = 12
    c = Cluster(
        n,
        netcfg=NetConfig(
            recv_buffer_bytes=6_000, red_threshold_bytes=2_000, rexmit_timeout=0.3
        ),
    )
    log = install_sink(c[0])

    def sender(i):
        for k in range(3):
            yield from c[i].send_reliable(0, MessageKind.TEST, (i, k), size=2000)

    for i in range(1, n):
        c.sim.spawn(sender(i))
    c.run()
    payloads = [p for p, _ in log]
    assert len(payloads) == len(set(payloads)) == (n - 1) * 3


def test_random_drop_is_seeded_and_deterministic():
    def run_once():
        c = Cluster(4, netcfg=NetConfig(random_drop_prob=0.2, drop_seed=7, rexmit_timeout=0.2))
        install_sink(c[0])

        def sender(i):
            for k in range(10):
                yield from c[i].send_reliable(0, MessageKind.TEST, (i, k), size=500)

        for i in range(1, 4):
            c.sim.spawn(sender(i))
        c.run()
        return (c.stats.rexmit, c.stats.drops, c.sim.now)

    assert run_once() == run_once()


def test_request_retry_when_reply_lost():
    """With random loss, requests eventually complete and handlers run once."""
    c = Cluster(2, netcfg=NetConfig(random_drop_prob=0.3, drop_seed=3, rexmit_timeout=0.2))
    calls = []

    def handler(msg):
        calls.append(msg.payload)
        c[1].reply_to(msg, MessageKind.TEST, "ok", size=10)
        return
        yield  # pragma: no cover

    c[1].register_handler(MessageKind.TEST, handler)
    replies = []

    def client():
        for k in range(20):
            r = yield from c[0].request(1, MessageKind.TEST, k, size=10)
            replies.append(r.payload)

    c.sim.spawn(client())
    c.run()
    assert replies == ["ok"] * 20
    # at-most-once execution: each request ran the handler exactly once
    assert sorted(calls) == list(range(20))


def test_rexmit_budget_exhaustion_raises():
    from repro.net.transport import RequestError

    c = Cluster(2, netcfg=NetConfig(random_drop_prob=1.0, rexmit_timeout=0.01, max_retries=3))
    install_sink(c[1])
    errors = []

    def sender():
        try:
            yield from c[0].send_reliable(1, MessageKind.TEST, None, size=10)
        except RequestError as exc:
            errors.append(exc)

    c.sim.spawn(sender())
    c.run()
    assert len(errors) == 1
    assert c.stats.rexmit == 3


def test_serial_dispatcher_orders_handlers():
    """Handlers at one node run serially: total handling time accumulates."""
    c = make_cluster(n=3)
    done_times = []

    def slow_handler(msg):
        yield Timeout(0.010)
        done_times.append(c.sim.now)

    c[0].register_handler(MessageKind.TEST, slow_handler)

    def sender(i):
        yield from c[i].send_reliable(0, MessageKind.TEST, i, size=10)

    c.sim.spawn(sender(1))
    c.sim.spawn(sender(2))
    c.run()
    assert len(done_times) == 2
    assert done_times[1] - done_times[0] >= 0.010  # strictly serialised


def test_compute_charges_simulated_time():
    c = make_cluster()
    out = []

    def proc():
        yield from c[0].compute(0.5)
        out.append(c.sim.now)
        yield from c[0].compute_cycles(350e6)  # 1 second at 350 MHz
        out.append(c.sim.now)
        yield from c[0].copy_cost(80_000_000)  # 1 second at 80 MB/s
        out.append(c.sim.now)

    c.sim.spawn(proc())
    c.run()
    assert out == [0.5, 1.5, 2.5]


def test_cluster_requires_positive_size():
    with pytest.raises(ValueError):
        Cluster(0)


def test_stats_snapshot_roundtrip():
    c = make_cluster()
    install_sink(c[1])

    def sender():
        yield from c[0].send_reliable(1, MessageKind.TEST, None, size=64)

    c.sim.spawn(sender())
    c.run()
    snap = c.stats.snapshot()
    assert snap["num_msg"] == 1
    assert snap["data_bytes"] == 64
    assert snap["by_kind"] == {str(MessageKind.TEST): {"count": 1, "bytes": 64}}
