"""Seeded uniform loss: determinism and the loss-invariance property.

``NetConfig.random_drop_prob``/``drop_seed`` drive the switch's uniform-loss
stream.  Three properties, parametrised across the app × protocol matrix:

* **replay**: the same seed reproduces the identical drop sequence — same
  statistics row, same executed-event count, bit for bit;
* **seed sensitivity**: a different seed produces a different loss pattern
  (observably: a different Rexmit count);
* **loss invariance**: either way the application's *answers* are identical
  to the loss-free run — the reliable transport absorbs loss into timing and
  Rexmit, never into results.
"""

import hashlib
import json

import pytest

from repro.apps import APPS
from repro.apps.common import run_app
from repro.net.config import NetConfig

MATRIX = [
    ("is", "lrc_d"),
    ("is", "vc_sd"),
    ("sor", "vc_d"),
    ("gauss", "lrc_d"),
    ("nn", "vc_sd"),
]

DROP_PROB = 0.02
NPROCS = 4


def _fingerprint(result) -> str:
    return hashlib.sha256(
        json.dumps(result.table_row(), sort_keys=True).encode()
    ).hexdigest()[:16]


def _lossy(app, protocol, seed):
    return run_app(
        APPS[app],
        protocol,
        NPROCS,
        netcfg=NetConfig(random_drop_prob=DROP_PROB, drop_seed=seed),
    )


@pytest.mark.parametrize("app,protocol", MATRIX)
def test_seeded_loss_replays_and_answers_are_loss_invariant(app, protocol):
    base = run_app(APPS[app], protocol, NPROCS)
    first = _lossy(app, protocol, seed=1)
    replay = _lossy(app, protocol, seed=1)
    other = _lossy(app, protocol, seed=2)

    # replay: same seed, same everything
    assert first.table_row() == replay.table_row()
    assert _fingerprint(first) == _fingerprint(replay)
    assert first.events == replay.events

    # seed sensitivity: a different stream loses different messages
    net_first = getattr(first.stats, "net", first.stats)
    net_other = getattr(other.stats, "net", other.stats)
    assert net_first.rexmit > 0, "0.02 loss must actually bite"
    assert net_first.rexmit != net_other.rexmit

    # loss invariance: answers identical to the loss-free run, under any seed
    module = APPS[app]
    for lossy in (first, other):
        assert lossy.verified
        assert module.outputs_match(lossy.output, base.output)
    assert net_first.drops_by_cause.get("random", 0) > 0


def test_loss_free_default_is_untouched():
    """random_drop_prob defaults to 0: no drops, no rexmit, no RNG draws."""
    result = run_app(APPS["is"], "vc_sd", 2)
    net = getattr(result.stats, "net", result.stats)
    assert net.drops_by_cause.get("random", 0) == 0
