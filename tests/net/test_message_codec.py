"""The PDES frame codec: struct-packed batches and header-only routing."""

import math
import pickle

import numpy as np
import pytest

from repro.net.message import (
    Message,
    MessageKind,
    decode_frames,
    encode_frames,
    route_frames,
)


def _frame(dst, t_arr, t_dep, src, dep, *, kind=MessageKind.MPI_DATA,
           payload=None, size=128, need_ack=True, req_id=None,
           is_reply=False):
    msg = Message(
        src=src, dst=dst, kind=kind,
        payload=payload if payload is not None else {"tag": dep},
        size=size, need_ack=need_ack, req_id=req_id, is_reply=is_reply,
    )
    return (dst, t_arr, t_dep, src, dep, msg)


def test_roundtrip_preserves_all_fields():
    frames = [
        _frame(3, 1e-3, 0.5e-3, 0, 0),
        _frame(1, 2e-3, 1.5e-3, 2, 7, kind=MessageKind.DIFF_REPLY,
               payload=np.arange(4.0), size=4096, req_id=42, is_reply=True),
        _frame(2, 3e-3, 2.5e-3, 1, 1, kind=MessageKind.ACK,
               payload=None, size=0, need_ack=False),
    ]
    out = decode_frames(encode_frames(frames))
    assert len(out) == len(frames)
    for (dst, t_arr, t_dep, src, dep, msg), \
            (odst, ot_arr, ot_dep, osrc, odep, omsg) in zip(frames, out):
        assert (odst, ot_arr, ot_dep, osrc, odep) == (dst, t_arr, t_dep, src, dep)
        for f in ("src", "dst", "kind", "size", "need_ack", "req_id",
                  "is_reply", "msg_id", "attempt"):
            assert getattr(omsg, f) == getattr(msg, f)
        assert pickle.dumps(omsg.payload) == pickle.dumps(msg.payload)


def test_empty_batch_is_null_barrier_sentinel():
    assert encode_frames([]) == b""
    assert decode_frames(b"") == []


def test_route_frames_splits_by_destination_partition():
    dest_of = {0: 0, 1: 0, 2: 1, 3: 1}
    buf_a = encode_frames([_frame(2, 5e-3, 4e-3, 0, 0),
                           _frame(1, 3e-3, 2e-3, 3, 0)])
    buf_b = encode_frames([_frame(3, 7e-3, 6e-3, 1, 1)])
    chunks, mins, loads = route_frames([buf_a, buf_b], dest_of, nparts=2)
    routed = [decode_frames(c) for c in chunks]
    assert [f[0] for f in routed[0]] == [1]
    assert sorted(f[0] for f in routed[1]) == [2, 3]
    assert mins == [3e-3, 5e-3]
    # byte_seconds=0 ⇒ load bound degenerates to the arrival bound
    assert loads == mins
    # routing slices records through verbatim — no field survives mangled
    relayed = {f[5].msg_id: f for c in routed for f in c}
    original = {f[5].msg_id: f for f in
                decode_frames(buf_a) + decode_frames(buf_b)}
    assert relayed.keys() == original.keys()
    for msg_id, frame in relayed.items():
        assert frame[:5] == original[msg_id][:5]
        assert frame[5].payload == original[msg_id][5].payload


def test_route_frames_empty_partition_gets_sentinel():
    chunks, mins, loads = route_frames(
        [encode_frames([_frame(0, 1e-3, 0.5e-3, 2, 0)])],
        {0: 0, 2: 1}, nparts=2,
    )
    assert chunks[1] == b""
    assert mins[1] == math.inf and loads[1] == math.inf


def test_route_frames_load_bound_is_size_aware():
    """A large frame's induced bound must include its receive-wire time."""
    byte_seconds = 8.0 / 100e6
    big = _frame(0, 1e-3, 0.9e-3, 1, 0, size=2048)
    small = _frame(0, 1.1e-3, 1.0e-3, 1, 1, size=0)
    _, mins, loads = route_frames(
        [encode_frames([big, small])], {0: 0, 1: 1}, nparts=2,
        byte_seconds=byte_seconds,
    )
    assert mins[0] == 1e-3  # the big frame still arrives first...
    # ...but the zero-size frame clears the wire sooner
    assert loads[0] == pytest.approx(1.1e-3)
    assert loads[0] < 1e-3 + byte_seconds * 2048
