"""Exponential backoff, deterministic jitter, and the derived dup horizon.

The duplicate-suppression horizon regression: the transport used to hard-code
``(max_retries + 2) * rexmit_timeout``, which is only correct for the fixed
default schedule.  Under backoff the retry window is wider, a retransmission
can arrive *after* the receiver already evicted its suppression entry, and a
reliable send silently delivers twice.  The horizon is now derived from
:meth:`NetConfig.worst_case_retry_window`; these tests fail on the old
hard-code.
"""

import pytest

from repro.net import Cluster, MessageKind, NetConfig
from repro.net.transport import _jitter_unit
from repro.sim import Timeout


def _sink(received):
    def handler(msg):
        received.append(msg.payload)
        return
        yield  # pragma: no cover

    return handler


# -- retry schedule --------------------------------------------------------------


def test_default_schedule_is_the_papers_fixed_timeout():
    cfg = NetConfig()
    schedule = cfg.retry_schedule()
    assert len(schedule) == cfg.max_retries + 1
    assert set(schedule) == {cfg.rexmit_timeout}
    assert cfg.worst_case_retry_window() == pytest.approx(
        (cfg.max_retries + 1) * cfg.rexmit_timeout
    )


def test_backoff_schedule_grows_and_caps():
    cfg = NetConfig(rexmit_timeout=1.0, max_retries=4, backoff_factor=2.0)
    assert cfg.retry_schedule() == (1.0, 2.0, 4.0, 8.0, 16.0)
    capped = NetConfig(
        rexmit_timeout=1.0, max_retries=4, backoff_factor=2.0, backoff_max=5.0
    )
    assert capped.retry_schedule() == (1.0, 2.0, 4.0, 5.0, 5.0)


def test_jitter_widens_the_worst_case_window():
    cfg = NetConfig(
        rexmit_timeout=1.0, max_retries=2, backoff_factor=2.0, backoff_jitter=0.1
    )
    assert cfg.worst_case_retry_window() == pytest.approx((1 + 2 + 4) * 1.1)


def test_invalid_backoff_config_rejected():
    with pytest.raises(ValueError, match="backoff_factor"):
        NetConfig(backoff_factor=0.5).retry_schedule()
    with pytest.raises(ValueError, match="backoff_jitter"):
        NetConfig(backoff_jitter=1.0).retry_schedule()
    with pytest.raises(ValueError, match="backoff_jitter"):
        NetConfig(backoff_jitter=-0.1).retry_schedule()


# -- deterministic jitter --------------------------------------------------------


def test_jitter_unit_is_a_deterministic_fraction():
    seen = set()
    for key in range(1, 50):
        for attempt in range(4):
            u = _jitter_unit(key, attempt)
            assert 0.0 <= u < 1.0
            assert u == _jitter_unit(key, attempt)  # pure function
            seen.add(u)
    assert len(seen) > 150, "jitter must actually vary across keys/attempts"


def test_jittered_retries_replay_identically_in_one_process():
    """Two back-to-back runs (same process, fresh clusters) must time every
    jittered retransmission identically — the jitter key is run-local."""

    def one_run():
        cfg = NetConfig(
            rexmit_timeout=0.05,
            max_retries=5,
            backoff_factor=2.0,
            backoff_jitter=0.3,
        )
        c = Cluster(2, netcfg=cfg)
        received = []
        c[1].register_handler(MessageKind.TEST, _sink(received))
        dropped = []
        real = c.switch.transfer

        def lossy(msg):
            if msg.kind is MessageKind.TEST and len(dropped) < 2:
                dropped.append(msg.msg_id)
                return
            real(msg)

        c.switch.transfer = lossy
        done = []

        def sender():
            yield from c[0].send_reliable(1, MessageKind.TEST, "p", size=64)
            done.append(c.sim.now)

        c.sim.spawn(sender())
        c.run()
        assert received == ["p"]
        return done[0], c.sim.events_processed

    assert one_run() == one_run()


# -- timer-lane ordering under backoff schedules ----------------------------------


def test_timer_order_matches_reference_under_backoff_delays():
    """Property: whatever mix of backed-off delays a transport schedules,
    timers fire in (deadline, schedule order).  The engine's per-delay FIFO
    lanes assumed non-decreasing delays per lane — a backoff schedule is
    exactly the workload that used to break that assumption, so this drives
    the lanes with delays drawn from real ``retry_schedule()`` values at
    randomised interleavings and checks against the naive stable sort."""
    import random

    from repro.sim import Simulator

    rng = random.Random(0xB0FF)
    for _ in range(15):
        cfg = NetConfig(
            rexmit_timeout=0.05,
            max_retries=5,
            backoff_factor=rng.choice([1.0, 1.5, 2.0, 3.0]),
            backoff_jitter=rng.choice([0.0, 0.1, 0.3]),
        )
        delays = cfg.retry_schedule()
        sim = Simulator()
        fired: list[int] = []
        expected: list[tuple[float, int]] = []

        def driver():
            for seq in range(60):
                d = rng.choice(delays) * (1.0 + rng.choice([0.0, cfg.backoff_jitter]))
                expected.append((sim.now + d, seq))
                sim.schedule_timer(d, (lambda k: lambda: fired.append(k))(seq))
                yield Timeout(rng.choice([0.001, 0.01, 0.037]))

        sim.spawn(driver())
        sim.run()
        reference = [k for _, k in sorted(expected, key=lambda e: e[0])]
        assert fired == reference


# -- the dup-horizon regression --------------------------------------------------


def test_dup_horizon_covers_the_backoff_window():
    """Fails on the old ``(max_retries + 2) * rexmit_timeout`` hard-code:
    with backoff the retry window dwarfs the fixed-schedule horizon."""
    cfg = NetConfig(rexmit_timeout=0.05, max_retries=6, backoff_factor=2.0)
    c = Cluster(2, netcfg=cfg)
    horizon = c[0].transport._dup_horizon
    assert horizon >= cfg.worst_case_retry_window()
    # and it keeps the one-base-timeout slack for delivery delays
    assert horizon == pytest.approx(
        cfg.worst_case_retry_window() + cfg.rexmit_timeout
    )


def test_late_backed_off_duplicate_still_suppressed():
    """End-to-end form of the regression: a retransmission arriving *after*
    the old fixed-schedule horizon (but inside the backed-off window) must
    not be delivered twice, even while other traffic churns the eviction
    scan past it."""
    cfg = NetConfig(rexmit_timeout=0.05, max_retries=3, backoff_factor=3.0)
    # schedule (0.05, 0.15, 0.45, 1.35): the third retransmission leaves at
    # t=0.65 — far beyond the old horizon of (3 + 2) * 0.05 = 0.25
    old_horizon = (cfg.max_retries + 2) * cfg.rexmit_timeout
    assert cfg.worst_case_retry_window() > old_horizon

    c = Cluster(2, netcfg=cfg)
    received = []
    c[1].register_handler(MessageKind.TEST, _sink(received))

    target = {}
    dropped = []
    real = c.switch.transfer

    def drop_victims_acks(msg):
        if msg.kind is MessageKind.TEST and "id" not in target:
            target["id"] = msg.msg_id
        if (
            msg.kind is MessageKind.ACK
            and msg.payload == target.get("id")
            and len(dropped) < 3
        ):
            dropped.append(msg.msg_id)
            return
        real(msg)

    c.switch.transfer = drop_victims_acks

    def victim():
        yield from c[0].send_reliable(1, MessageKind.TEST, "victim", size=64)

    def churn():
        # periodic unrelated receives keep running the receiver's eviction
        # scan; under the old horizon they expel the victim's suppression
        # entry before its t=0.65 duplicate lands
        for k in range(4):
            yield Timeout(old_horizon + 0.01)
            yield from c[0].send_reliable(1, MessageKind.TEST, f"churn{k}", size=64)

    c.sim.spawn(victim())
    c.sim.spawn(churn())
    c.run()
    assert len(dropped) == 3, "all three of the victim's first acks dropped"
    assert received.count("victim") == 1, "late duplicate delivered twice"
    assert received.count("churn0") == 1
