"""PDES observer merging: contention metrics and the consistency oracle.

Earlier the partitioned driver *refused* ``metrics``; now both observers run
per-partition and their shards are k-way merged by simulated time (stable in
partition order), the same discipline stats and tracers use.  The claims:

* a partitioned run's merged metrics registry equals the serial registry —
  counters, gauges and histograms — in both inline and fork modes;
* a partitioned run's merged access history is multiset-identical to the
  serial history (ordering may differ only among t=0 ties, which carry no
  cross-node causality) and checks CLEAN;
* the simulated results stay bit-identical throughout.
"""

import collections
import hashlib
import json

import pytest

from repro.apps import APPS
from repro.apps.common import run_app
from repro.obs import Metrics
from repro.obs.oracle import AccessRecorder, check_history


def _fingerprint(result) -> str:
    return hashlib.sha256(
        json.dumps(result.table_row(), sort_keys=True).encode()
    ).hexdigest()


@pytest.fixture(scope="module")
def serial():
    oracle, metrics = AccessRecorder(), Metrics()
    result = run_app(APPS["is"], "vc_sd", 8, oracle=oracle, metrics=metrics)
    return result, oracle, metrics


@pytest.mark.parametrize("mode", ["inline", "fork"])
def test_partitioned_observers_match_serial(mode, serial):
    serial_result, serial_oracle, serial_metrics = serial
    oracle, metrics = AccessRecorder(), Metrics()
    pdes = run_app(
        APPS["is"], "vc_sd", 8, oracle=oracle, metrics=metrics,
        pdes_workers=2, pdes_mode=mode,
    )
    assert pdes.verified
    assert _fingerprint(pdes) == _fingerprint(serial_result)
    assert pdes.time == serial_result.time

    # metrics: the merged registry replays to the serial snapshot exactly
    assert metrics.snapshot() == serial_metrics.snapshot()
    assert pdes.metrics is metrics

    # oracle: multiset-identical history (only t=0 ties may reorder), clean
    assert collections.Counter(oracle.events) == collections.Counter(
        serial_oracle.events
    )
    reordered = [
        (a, b)
        for a, b in zip(oracle.events, serial_oracle.events)
        if a != b
    ]
    assert all(a[1] == 0.0 and b[1] == 0.0 for a, b in reordered)
    report = check_history(oracle, nprocs=8, protocol="vc_sd")
    assert report.verdict == "clean"


def test_partitioned_metrics_alone(serial):
    """The old refusal is gone: metrics work without the oracle riding along."""
    _, _, serial_metrics = serial
    metrics = Metrics()
    result = run_app(
        APPS["is"], "vc_sd", 8, metrics=metrics,
        pdes_workers=4, pdes_mode="inline",
    )
    assert result.verified
    assert metrics.snapshot() == serial_metrics.snapshot()


@pytest.mark.parametrize("mode", ["inline", "fork"])
def test_partitioned_view_tracer_matches_serial(mode, serial):
    """The PR-8-era view-tracer refusal is lifted: per-partition log-mode
    shards merge by simulated timestamp into the serial report."""
    from repro.tools.tracer import ViewTracer

    serial_result, _, _ = serial
    serial_vt = ViewTracer()
    ser = run_app(APPS["is"], "vc_sd", 8, view_tracer=serial_vt)
    vt = ViewTracer()
    pdes = run_app(
        APPS["is"], "vc_sd", 8, view_tracer=vt,
        pdes_workers=2, pdes_mode=mode,
    )
    assert pdes.verified
    assert _fingerprint(pdes) == _fingerprint(ser) == _fingerprint(serial_result)

    # the user-visible outputs — profile table, report text, advice — are
    # bit-identical to serial; the raw event list is multiset-identical
    # (ties at equal simulated timestamps may interleave differently)
    assert vt.profiles == serial_vt.profiles
    assert vt.report() == serial_vt.report()
    assert vt.advice() == serial_vt.advice()
    assert collections.Counter(
        json.dumps(e, sort_keys=True) for e in vt.events
    ) == collections.Counter(
        json.dumps(e, sort_keys=True) for e in serial_vt.events
    )


def test_merged_metrics_requires_logged_shards():
    with pytest.raises(ValueError, match="logged"):
        Metrics.merged([Metrics()])


def test_metrics_log_mode_replays_identically():
    """A logged registry replayed through merged() equals itself."""

    class _Clock:
        now = 0.0

    clock = _Clock()
    logged = Metrics(sim=clock)
    logged.inc("msgs", 2.0, view=1)
    clock.now = 1.5
    logged.gauge("depth", 3.0, node=0)
    logged.observe("wait", 0.25, view=1)
    clock.now = 2.0
    logged.gauge("depth", 7.0, node=0)
    logged.detach_clock()
    merged = Metrics.merged([logged])
    assert merged.snapshot() == logged.snapshot()
    assert merged.gauges == {("depth", (("node", 0),)): 7.0}
