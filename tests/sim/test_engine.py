"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim import Simulator, Timeout, SimError, Interrupt


def test_empty_run_finishes_at_zero():
    sim = Simulator()
    assert sim.run() == 0.0
    assert sim.now == 0.0


def test_single_timeout_advances_clock():
    sim = Simulator()
    seen = []

    def proc():
        yield Timeout(2.5)
        seen.append(sim.now)

    sim.spawn(proc())
    sim.run()
    assert seen == [2.5]
    assert sim.now == 2.5


def test_timeout_returns_value():
    sim = Simulator()
    out = []

    def proc():
        out.append((yield Timeout(1.0, value="hello")))

    sim.spawn(proc())
    sim.run()
    assert out == ["hello"]


def test_negative_timeout_rejected():
    with pytest.raises(SimError):
        Timeout(-1.0)


def test_fifo_order_for_simultaneous_events():
    sim = Simulator()
    order = []

    def proc(tag):
        yield Timeout(1.0)
        order.append(tag)

    for tag in range(5):
        sim.spawn(proc(tag))
    sim.run()
    assert order == [0, 1, 2, 3, 4]


def test_interleaving_is_deterministic():
    def run_once():
        sim = Simulator()
        trace = []

        def a():
            for i in range(3):
                yield Timeout(1.0)
                trace.append(("a", sim.now))

        def b():
            for i in range(3):
                yield Timeout(1.5)
                trace.append(("b", sim.now))

        sim.spawn(a())
        sim.spawn(b())
        sim.run()
        return trace

    assert run_once() == run_once()
    assert run_once() == [
        ("a", 1.0),
        ("b", 1.5),
        ("a", 2.0),
        ("b", 3.0),  # b's wake-up was scheduled at t=1.5, before a's at t=2.0
        ("a", 3.0),
        ("b", 4.5),
    ]


def test_fork_and_join():
    sim = Simulator()
    results = []

    def child(n):
        yield Timeout(n)
        return n * 10

    def parent():
        c1 = yield sim.fork(child(1))
        c2 = yield sim.fork(child(2))
        results.append((yield c2.join()))
        results.append((yield c1.join()))

    sim.spawn(parent())
    sim.run()
    assert results == [20, 10]
    assert sim.now == 2.0


def test_join_already_finished_process():
    sim = Simulator()
    out = []

    def quick():
        yield Timeout(0)
        return "done"

    def waiter(proc):
        yield Timeout(5.0)
        out.append((yield proc.join()))

    p = sim.spawn(quick())
    sim.spawn(waiter(p))
    sim.run()
    assert out == ["done"]


def test_all_of_helper():
    sim = Simulator()
    collected = []

    def child(n):
        yield Timeout(n)
        return n

    def parent():
        procs = []
        for n in (3, 1, 2):
            procs.append((yield sim.fork(child(n))))
        collected.extend((yield from sim.all_of(procs)))

    sim.spawn(parent())
    sim.run()
    assert collected == [3, 1, 2]


def test_exception_in_process_propagates_from_run():
    sim = Simulator()

    def bad():
        yield Timeout(1.0)
        raise ValueError("boom")

    sim.spawn(bad())
    with pytest.raises(SimError) as excinfo:
        sim.run()
    assert isinstance(excinfo.value.__cause__, ValueError)


def test_yielding_non_effect_is_an_error():
    sim = Simulator()

    def bad():
        yield 42

    sim.spawn(bad())
    with pytest.raises(SimError):
        sim.run()


def test_run_until_stops_clock():
    sim = Simulator()
    ticks = []

    def ticker():
        while True:
            yield Timeout(1.0)
            ticks.append(sim.now)

    sim.spawn(ticker())
    sim.run(until=3.5)
    assert ticks == [1.0, 2.0, 3.0]
    assert sim.now == 3.5


def test_interrupt_wakes_blocked_process():
    sim = Simulator()
    log = []

    def sleeper():
        try:
            yield Timeout(100.0)
            log.append("slept")
        except Interrupt as exc:
            log.append(("interrupted", exc.cause, sim.now))

    def killer(target):
        yield Timeout(2.0)
        target.interrupt("stop")

    p = sim.spawn(sleeper())
    sim.spawn(killer(p))
    sim.run()
    assert log == [("interrupted", "stop", 2.0)]


def test_interrupt_finished_process_is_noop():
    sim = Simulator()

    def quick():
        yield Timeout(0)

    p = sim.spawn(quick())
    sim.run()
    p.interrupt("late")
    sim.run()  # must not blow up
    assert p.finished


def test_live_process_count():
    sim = Simulator()

    def child():
        yield Timeout(1.0)

    sim.spawn(child())
    sim.spawn(child())
    assert sim.live_processes == 2
    sim.run()
    assert sim.live_processes == 0


def test_schedule_in_past_rejected():
    sim = Simulator()
    with pytest.raises(SimError):
        sim.schedule(-0.1, lambda: None)


def test_nested_yield_from_composition():
    sim = Simulator()
    out = []

    def inner():
        yield Timeout(1.0)
        return "inner-done"

    def middle():
        rv = yield from inner()
        yield Timeout(1.0)
        return rv + "+middle"

    def outer():
        rv = yield from middle()
        out.append((rv, sim.now))

    sim.spawn(outer())
    sim.run()
    assert out == [("inner-done+middle", 2.0)]


def test_process_return_value_via_stopiteration():
    sim = Simulator()
    holder = []

    def child():
        yield Timeout(0)
        return {"k": 1}

    def parent():
        p = yield sim.fork(child())
        holder.append((yield p.join()))

    sim.spawn(parent())
    sim.run()
    assert holder == [{"k": 1}]


def test_interrupt_cancels_pending_timeout():
    """A timeout pending at interrupt time must not fire as a stale wake-up.

    The sleeper is interrupted out of its first sleep at t=1 and immediately
    starts a second one.  The first timeout's scheduled resumption (t=10) is
    stale: if it were delivered, the second sleep would end early with the
    first sleep's value.
    """
    sim = Simulator()
    log = []

    def sleeper():
        try:
            got = yield Timeout(10.0, value="first")
            log.append((got, sim.now))
        except Interrupt:
            pass
        got = yield Timeout(20.0, value="second")
        log.append((got, sim.now))

    def killer(target):
        yield Timeout(1.0)
        target.interrupt("wake")

    p = sim.spawn(sleeper())
    sim.spawn(killer(p))
    sim.run()
    assert log == [("second", 21.0)]
    assert sim.now == 21.0


def test_events_processed_counter():
    sim = Simulator()

    def proc():
        yield Timeout(1.0)
        yield Timeout(0)

    sim.spawn(proc())
    sim.run()
    assert sim.events_processed > 0
