"""Unit tests for the discrete-event kernel."""

import random

import pytest

from repro.sim import Simulator, Timeout, SimError, Interrupt


def test_empty_run_finishes_at_zero():
    sim = Simulator()
    assert sim.run() == 0.0
    assert sim.now == 0.0


def test_single_timeout_advances_clock():
    sim = Simulator()
    seen = []

    def proc():
        yield Timeout(2.5)
        seen.append(sim.now)

    sim.spawn(proc())
    sim.run()
    assert seen == [2.5]
    assert sim.now == 2.5


def test_timeout_returns_value():
    sim = Simulator()
    out = []

    def proc():
        out.append((yield Timeout(1.0, value="hello")))

    sim.spawn(proc())
    sim.run()
    assert out == ["hello"]


def test_negative_timeout_rejected():
    with pytest.raises(SimError):
        Timeout(-1.0)


def test_fifo_order_for_simultaneous_events():
    sim = Simulator()
    order = []

    def proc(tag):
        yield Timeout(1.0)
        order.append(tag)

    for tag in range(5):
        sim.spawn(proc(tag))
    sim.run()
    assert order == [0, 1, 2, 3, 4]


def test_interleaving_is_deterministic():
    def run_once():
        sim = Simulator()
        trace = []

        def a():
            for i in range(3):
                yield Timeout(1.0)
                trace.append(("a", sim.now))

        def b():
            for i in range(3):
                yield Timeout(1.5)
                trace.append(("b", sim.now))

        sim.spawn(a())
        sim.spawn(b())
        sim.run()
        return trace

    assert run_once() == run_once()
    assert run_once() == [
        ("a", 1.0),
        ("b", 1.5),
        ("a", 2.0),
        ("b", 3.0),  # b's wake-up was scheduled at t=1.5, before a's at t=2.0
        ("a", 3.0),
        ("b", 4.5),
    ]


def test_fork_and_join():
    sim = Simulator()
    results = []

    def child(n):
        yield Timeout(n)
        return n * 10

    def parent():
        c1 = yield sim.fork(child(1))
        c2 = yield sim.fork(child(2))
        results.append((yield c2.join()))
        results.append((yield c1.join()))

    sim.spawn(parent())
    sim.run()
    assert results == [20, 10]
    assert sim.now == 2.0


def test_join_already_finished_process():
    sim = Simulator()
    out = []

    def quick():
        yield Timeout(0)
        return "done"

    def waiter(proc):
        yield Timeout(5.0)
        out.append((yield proc.join()))

    p = sim.spawn(quick())
    sim.spawn(waiter(p))
    sim.run()
    assert out == ["done"]


def test_all_of_helper():
    sim = Simulator()
    collected = []

    def child(n):
        yield Timeout(n)
        return n

    def parent():
        procs = []
        for n in (3, 1, 2):
            procs.append((yield sim.fork(child(n))))
        collected.extend((yield from sim.all_of(procs)))

    sim.spawn(parent())
    sim.run()
    assert collected == [3, 1, 2]


def test_exception_in_process_propagates_from_run():
    sim = Simulator()

    def bad():
        yield Timeout(1.0)
        raise ValueError("boom")

    sim.spawn(bad())
    with pytest.raises(SimError) as excinfo:
        sim.run()
    assert isinstance(excinfo.value.__cause__, ValueError)


def test_yielding_non_effect_is_an_error():
    sim = Simulator()

    def bad():
        yield 42

    sim.spawn(bad())
    with pytest.raises(SimError):
        sim.run()


def test_run_until_stops_clock():
    sim = Simulator()
    ticks = []

    def ticker():
        while True:
            yield Timeout(1.0)
            ticks.append(sim.now)

    sim.spawn(ticker())
    sim.run(until=3.5)
    assert ticks == [1.0, 2.0, 3.0]
    assert sim.now == 3.5


def test_interrupt_wakes_blocked_process():
    sim = Simulator()
    log = []

    def sleeper():
        try:
            yield Timeout(100.0)
            log.append("slept")
        except Interrupt as exc:
            log.append(("interrupted", exc.cause, sim.now))

    def killer(target):
        yield Timeout(2.0)
        target.interrupt("stop")

    p = sim.spawn(sleeper())
    sim.spawn(killer(p))
    sim.run()
    assert log == [("interrupted", "stop", 2.0)]


def test_interrupt_finished_process_is_noop():
    sim = Simulator()

    def quick():
        yield Timeout(0)

    p = sim.spawn(quick())
    sim.run()
    p.interrupt("late")
    sim.run()  # must not blow up
    assert p.finished


def test_live_process_count():
    sim = Simulator()

    def child():
        yield Timeout(1.0)

    sim.spawn(child())
    sim.spawn(child())
    assert sim.live_processes == 2
    sim.run()
    assert sim.live_processes == 0


def test_schedule_in_past_rejected():
    sim = Simulator()
    with pytest.raises(SimError):
        sim.schedule(-0.1, lambda: None)


def test_nested_yield_from_composition():
    sim = Simulator()
    out = []

    def inner():
        yield Timeout(1.0)
        return "inner-done"

    def middle():
        rv = yield from inner()
        yield Timeout(1.0)
        return rv + "+middle"

    def outer():
        rv = yield from middle()
        out.append((rv, sim.now))

    sim.spawn(outer())
    sim.run()
    assert out == [("inner-done+middle", 2.0)]


def test_process_return_value_via_stopiteration():
    sim = Simulator()
    holder = []

    def child():
        yield Timeout(0)
        return {"k": 1}

    def parent():
        p = yield sim.fork(child())
        holder.append((yield p.join()))

    sim.spawn(parent())
    sim.run()
    assert holder == [{"k": 1}]


def test_interrupt_cancels_pending_timeout():
    """A timeout pending at interrupt time must not fire as a stale wake-up.

    The sleeper is interrupted out of its first sleep at t=1 and immediately
    starts a second one.  The first timeout's scheduled resumption (t=10) is
    stale: if it were delivered, the second sleep would end early with the
    first sleep's value.
    """
    sim = Simulator()
    log = []

    def sleeper():
        try:
            got = yield Timeout(10.0, value="first")
            log.append((got, sim.now))
        except Interrupt:
            pass
        got = yield Timeout(20.0, value="second")
        log.append((got, sim.now))

    def killer(target):
        yield Timeout(1.0)
        target.interrupt("wake")

    p = sim.spawn(sleeper())
    sim.spawn(killer(p))
    sim.run()
    assert log == [("second", 21.0)]
    assert sim.now == 21.0


def test_events_processed_counter():
    sim = Simulator()

    def proc():
        yield Timeout(1.0)
        yield Timeout(0)

    sim.spawn(proc())
    sim.run()
    assert sim.events_processed > 0


# -- pid determinism (simulator-local counter) -----------------------------------


def test_pids_are_simulator_local():
    """A second Simulator in the same OS process must hand out the same pids
    as a fresh process would — the old class-global ``Process._ids`` counter
    made run N's pids depend on how many processes ran before it."""

    def one_run():
        sim = Simulator()

        def worker():
            yield Timeout(1.0)

        pids = [sim.spawn(worker()).pid for _ in range(3)]
        sim.run()
        return pids

    first, second = one_run(), one_run()
    assert first == second == [0, 1, 2]


# -- run(until=...) boundary semantics -------------------------------------------


def test_run_until_in_past_raises_and_clock_never_rewinds():
    sim = Simulator()

    def worker():
        yield Timeout(10.0)

    sim.spawn(worker())
    sim.run(until=5.0)
    assert sim.now == 5.0
    with pytest.raises(SimError):
        sim.run(until=3.0)  # pre-fix: silently rewound the clock to 3.0
    assert sim.now == 5.0


def test_run_until_advances_clock_when_drained():
    """If the queues drain before ``until`` the clock still runs out the
    window — pre-fix it stopped at the last event time, so the PDES outer
    loop saw a non-monotone `now` across idle windows."""
    sim = Simulator()

    def worker():
        yield Timeout(1.0)

    sim.spawn(worker())
    assert sim.run(until=5.0) == 5.0
    assert sim.now == 5.0
    # an idle window over an already-empty queue advances too
    assert sim.run(until=7.5) == 7.5


def test_run_until_executes_events_exactly_at_until():
    sim = Simulator()
    fired = []

    def worker():
        yield Timeout(3.5)
        fired.append(sim.now)

    sim.spawn(worker())
    sim.run(until=3.5)
    assert fired == [3.5]
    assert sim.now == 3.5


def test_run_until_exclusive_leaves_boundary_events_queued():
    sim = Simulator()
    fired = []

    def worker():
        yield Timeout(2.0)
        fired.append(sim.now)

    sim.spawn(worker())
    sim.run(until=2.0, inclusive=False)
    assert fired == []  # the window [0, 2) is half-open
    assert sim.now == 2.0
    sim.run()
    assert fired == [2.0]


def test_run_until_windows_compose_into_a_full_run():
    """Driving the clock through half-open windows (the PDES outer loop)
    must execute exactly the events a single run() would, in order."""

    def ticks(windowed):
        sim = Simulator()
        seen = []

        def ticker():
            while sim.now < 2.9:
                yield Timeout(0.5)
                seen.append(sim.now)

        sim.spawn(ticker())
        if windowed:
            w = 0.0
            while sim.peek_next_time() != float("inf"):
                w = max(w + 0.7, sim.now)
                sim.run(until=w, inclusive=False)
                assert sim.now == w  # monotone, even through idle windows
        else:
            sim.run()
        return seen

    assert ticks(windowed=True) == ticks(windowed=False)


# -- schedule_timer lanes under mixed (backoff) delays ---------------------------


def test_timer_lanes_absorb_mixed_backoff_delays():
    """Structural regression for the backoff-era lane bug: one long
    backed-off timer used to reroute every subsequent shorter-delay timer
    into the main heap (the single FIFO assumed non-decreasing deadlines).
    With per-delay lanes, a handful of distinct delays never touches the
    main queue."""
    sim = Simulator()
    backoff = [0.05 * (2.0 ** k) for k in range(5)]
    for step in range(30):
        sim.schedule_timer(0.05, lambda: None)
        sim.schedule_timer(backoff[step % 5], lambda: None)
        assert not sim._heap, "a timer spilled into the main event queue"
        sim.run(until=sim.now + 0.01)
    assert sim.timer_spills == 0


def test_timer_spill_when_lane_budget_exhausted_stays_ordered():
    sim = Simulator()
    fired = []
    ndelays = Simulator.MAX_TIMER_LANES + 4
    for i in range(ndelays):
        delay = 1.0 + i * 0.1
        sim.schedule_timer(delay, fired.append, delay)
    assert sim.timer_spills == 4
    sim.run()
    assert fired == sorted(fired)


def _mixed_timer_workload(use_timer_lanes, ops):
    """Drive one simulator through ``ops``; return the exact firing order."""
    sim = Simulator()
    fired = []

    def driver():
        for i, (kind, delay) in enumerate(ops):
            if kind == "advance":
                yield Timeout(delay)
            elif kind == "timer" and use_timer_lanes:
                sim.schedule_timer(delay, fired.append, (i, "t"))
            else:
                sim.schedule(delay, fired.append, (i, kind[0]))

    sim.spawn(driver())
    sim.run()
    return fired


def test_timer_order_matches_single_heap_reference():
    """Property: under arbitrary interleavings of fixed and backed-off
    delays, the lane merge fires timers in exactly the order a single
    (time, seq) heap would.  Both runs allocate sequence numbers from the
    same counter in the same order, so the firing orders must be equal
    element for element."""
    rng = random.Random(0xBACC0FF)
    delays = [0.05, 0.05, 0.1, 0.2, 0.4, 0.8, 1.6, 0.05 * 1.37, 0.05 * 2.93]
    for trial in range(25):
        ops = []
        for _ in range(rng.randint(5, 60)):
            r = rng.random()
            if r < 0.5:
                ops.append(("timer", rng.choice(delays)))
            elif r < 0.7:
                ops.append(("plain", rng.choice(delays)))
            else:
                ops.append(("advance", rng.choice([0.0, 0.01, 0.06, 0.31])))
        lanes = _mixed_timer_workload(True, ops)
        reference = _mixed_timer_workload(False, ops)
        assert lanes == reference, f"divergence on trial {trial}: {ops!r}"
