"""Unit tests for simulator-local synchronisation resources."""

import pytest

from repro.sim import Simulator, Timeout, Mutex, Semaphore, Condition, Event, Barrier
from repro.sim.engine import SimError


def test_mutex_serialises_critical_sections():
    sim = Simulator()
    trace = []
    mutex = Mutex(sim)

    def worker(tag):
        yield mutex.acquire()
        trace.append(("enter", tag, sim.now))
        yield Timeout(1.0)
        trace.append(("exit", tag, sim.now))
        mutex.release()

    sim.spawn(worker("a"))
    sim.spawn(worker("b"))
    sim.run()
    assert trace == [
        ("enter", "a", 0.0),
        ("exit", "a", 1.0),
        ("enter", "b", 1.0),
        ("exit", "b", 2.0),
    ]


def test_mutex_holding_helper_releases_on_error():
    sim = Simulator()
    mutex = Mutex(sim)

    def crasher():
        raise ValueError("inside")
        yield  # pragma: no cover

    def proc():
        try:
            yield from mutex.holding(crasher())
        except ValueError:
            pass
        assert not mutex.locked()

    sim.spawn(proc())
    sim.run()


def test_semaphore_counts():
    sim = Simulator()
    sem = Semaphore(sim, value=2)
    active = []
    peak = []

    def worker():
        yield sem.acquire()
        active.append(1)
        peak.append(len(active))
        yield Timeout(1.0)
        active.pop()
        sem.release()

    for _ in range(5):
        sim.spawn(worker())
    sim.run()
    assert max(peak) == 2


def test_semaphore_negative_value_rejected():
    sim = Simulator()
    with pytest.raises(SimError):
        Semaphore(sim, value=-1)


def test_event_wait_before_and_after_set():
    sim = Simulator()
    evt = Event(sim)
    out = []

    def early():
        out.append(("early", (yield evt.wait()), sim.now))

    def late():
        yield Timeout(5.0)
        out.append(("late", (yield evt.wait()), sim.now))

    def setter():
        yield Timeout(2.0)
        evt.set("v")

    sim.spawn(early())
    sim.spawn(late())
    sim.spawn(setter())
    sim.run()
    assert out == [("early", "v", 2.0), ("late", "v", 5.0)]


def test_event_set_is_idempotent():
    sim = Simulator()
    evt = Event(sim)
    evt.set(1)
    evt.set(2)
    out = []

    def proc():
        out.append((yield evt.wait()))

    sim.spawn(proc())
    sim.run()
    assert out == [1]


def test_condition_wait_notify():
    sim = Simulator()
    cond = Condition(sim)
    out = []

    def waiter(tag):
        yield cond.mutex.acquire()
        yield from cond.wait()
        out.append((tag, sim.now))
        cond.mutex.release()

    def notifier():
        yield Timeout(1.0)
        yield cond.mutex.acquire()
        cond.notify()
        cond.mutex.release()
        yield Timeout(1.0)
        yield cond.mutex.acquire()
        cond.notify_all()
        cond.mutex.release()

    sim.spawn(waiter("w1"))
    sim.spawn(waiter("w2"))
    sim.spawn(waiter("w3"))
    sim.spawn(notifier())
    sim.run()
    assert out == [("w1", 1.0), ("w2", 2.0), ("w3", 2.0)]


def test_barrier_releases_all_parties_together():
    sim = Simulator()
    bar = Barrier(sim, parties=3)
    out = []

    def worker(delay, tag):
        yield Timeout(delay)
        yield from bar.wait()
        out.append((tag, sim.now))

    sim.spawn(worker(1.0, "a"))
    sim.spawn(worker(2.0, "b"))
    sim.spawn(worker(3.0, "c"))
    sim.run()
    assert out == [("c", 3.0), ("a", 3.0), ("b", 3.0)]


def test_barrier_is_reusable_across_generations():
    sim = Simulator()
    bar = Barrier(sim, parties=2)
    gens = []

    def worker():
        g0 = yield from bar.wait()
        g1 = yield from bar.wait()
        gens.append((g0, g1))

    sim.spawn(worker())
    sim.spawn(worker())
    sim.run()
    assert gens == [(0, 1), (0, 1)]


def test_barrier_needs_positive_parties():
    sim = Simulator()
    with pytest.raises(SimError):
        Barrier(sim, parties=0)
